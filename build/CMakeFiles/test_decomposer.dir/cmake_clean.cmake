file(REMOVE_RECURSE
  "CMakeFiles/test_decomposer.dir/tests/test_decomposer.cc.o"
  "CMakeFiles/test_decomposer.dir/tests/test_decomposer.cc.o.d"
  "test_decomposer"
  "test_decomposer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
