# Empty dependencies file for test_decomposer.
# This may be replaced when dependencies are built.
