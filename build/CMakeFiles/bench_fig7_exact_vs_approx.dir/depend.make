# Empty dependencies file for bench_fig7_exact_vs_approx.
# This may be replaced when dependencies are built.
