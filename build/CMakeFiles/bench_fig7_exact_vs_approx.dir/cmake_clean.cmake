file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_exact_vs_approx.dir/bench/bench_fig7_exact_vs_approx.cc.o"
  "CMakeFiles/bench_fig7_exact_vs_approx.dir/bench/bench_fig7_exact_vs_approx.cc.o.d"
  "bench_fig7_exact_vs_approx"
  "bench_fig7_exact_vs_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_exact_vs_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
