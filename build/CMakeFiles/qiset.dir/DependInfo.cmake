
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fermi_hubbard.cc" "CMakeFiles/qiset.dir/src/apps/fermi_hubbard.cc.o" "gcc" "CMakeFiles/qiset.dir/src/apps/fermi_hubbard.cc.o.d"
  "/root/repo/src/apps/qaoa.cc" "CMakeFiles/qiset.dir/src/apps/qaoa.cc.o" "gcc" "CMakeFiles/qiset.dir/src/apps/qaoa.cc.o.d"
  "/root/repo/src/apps/qft.cc" "CMakeFiles/qiset.dir/src/apps/qft.cc.o" "gcc" "CMakeFiles/qiset.dir/src/apps/qft.cc.o.d"
  "/root/repo/src/apps/qv.cc" "CMakeFiles/qiset.dir/src/apps/qv.cc.o" "gcc" "CMakeFiles/qiset.dir/src/apps/qv.cc.o.d"
  "/root/repo/src/calibration/calibration_model.cc" "CMakeFiles/qiset.dir/src/calibration/calibration_model.cc.o" "gcc" "CMakeFiles/qiset.dir/src/calibration/calibration_model.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "CMakeFiles/qiset.dir/src/circuit/circuit.cc.o" "gcc" "CMakeFiles/qiset.dir/src/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/draw.cc" "CMakeFiles/qiset.dir/src/circuit/draw.cc.o" "gcc" "CMakeFiles/qiset.dir/src/circuit/draw.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/qiset.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/qiset.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/qiset.dir/src/common/table.cc.o" "gcc" "CMakeFiles/qiset.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/qiset.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/qiset.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/compiler/consolidate.cc" "CMakeFiles/qiset.dir/src/compiler/consolidate.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/consolidate.cc.o.d"
  "/root/repo/src/compiler/crosstalk.cc" "CMakeFiles/qiset.dir/src/compiler/crosstalk.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/crosstalk.cc.o.d"
  "/root/repo/src/compiler/mapping.cc" "CMakeFiles/qiset.dir/src/compiler/mapping.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/mapping.cc.o.d"
  "/root/repo/src/compiler/pass_manager.cc" "CMakeFiles/qiset.dir/src/compiler/pass_manager.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/pass_manager.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "CMakeFiles/qiset.dir/src/compiler/passes.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/passes.cc.o.d"
  "/root/repo/src/compiler/pipeline.cc" "CMakeFiles/qiset.dir/src/compiler/pipeline.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/pipeline.cc.o.d"
  "/root/repo/src/compiler/profile_cache.cc" "CMakeFiles/qiset.dir/src/compiler/profile_cache.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/profile_cache.cc.o.d"
  "/root/repo/src/compiler/routing.cc" "CMakeFiles/qiset.dir/src/compiler/routing.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/routing.cc.o.d"
  "/root/repo/src/compiler/translate.cc" "CMakeFiles/qiset.dir/src/compiler/translate.cc.o" "gcc" "CMakeFiles/qiset.dir/src/compiler/translate.cc.o.d"
  "/root/repo/src/device/aspen8.cc" "CMakeFiles/qiset.dir/src/device/aspen8.cc.o" "gcc" "CMakeFiles/qiset.dir/src/device/aspen8.cc.o.d"
  "/root/repo/src/device/device.cc" "CMakeFiles/qiset.dir/src/device/device.cc.o" "gcc" "CMakeFiles/qiset.dir/src/device/device.cc.o.d"
  "/root/repo/src/device/sycamore.cc" "CMakeFiles/qiset.dir/src/device/sycamore.cc.o" "gcc" "CMakeFiles/qiset.dir/src/device/sycamore.cc.o.d"
  "/root/repo/src/device/topology.cc" "CMakeFiles/qiset.dir/src/device/topology.cc.o" "gcc" "CMakeFiles/qiset.dir/src/device/topology.cc.o.d"
  "/root/repo/src/isa/gate_set.cc" "CMakeFiles/qiset.dir/src/isa/gate_set.cc.o" "gcc" "CMakeFiles/qiset.dir/src/isa/gate_set.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "CMakeFiles/qiset.dir/src/metrics/metrics.cc.o" "gcc" "CMakeFiles/qiset.dir/src/metrics/metrics.cc.o.d"
  "/root/repo/src/nuop/bfgs.cc" "CMakeFiles/qiset.dir/src/nuop/bfgs.cc.o" "gcc" "CMakeFiles/qiset.dir/src/nuop/bfgs.cc.o.d"
  "/root/repo/src/nuop/decomposer.cc" "CMakeFiles/qiset.dir/src/nuop/decomposer.cc.o" "gcc" "CMakeFiles/qiset.dir/src/nuop/decomposer.cc.o.d"
  "/root/repo/src/nuop/kak.cc" "CMakeFiles/qiset.dir/src/nuop/kak.cc.o" "gcc" "CMakeFiles/qiset.dir/src/nuop/kak.cc.o.d"
  "/root/repo/src/nuop/template_circuit.cc" "CMakeFiles/qiset.dir/src/nuop/template_circuit.cc.o" "gcc" "CMakeFiles/qiset.dir/src/nuop/template_circuit.cc.o.d"
  "/root/repo/src/qc/gates.cc" "CMakeFiles/qiset.dir/src/qc/gates.cc.o" "gcc" "CMakeFiles/qiset.dir/src/qc/gates.cc.o.d"
  "/root/repo/src/qc/linalg.cc" "CMakeFiles/qiset.dir/src/qc/linalg.cc.o" "gcc" "CMakeFiles/qiset.dir/src/qc/linalg.cc.o.d"
  "/root/repo/src/qc/matrix.cc" "CMakeFiles/qiset.dir/src/qc/matrix.cc.o" "gcc" "CMakeFiles/qiset.dir/src/qc/matrix.cc.o.d"
  "/root/repo/src/sim/density_matrix.cc" "CMakeFiles/qiset.dir/src/sim/density_matrix.cc.o" "gcc" "CMakeFiles/qiset.dir/src/sim/density_matrix.cc.o.d"
  "/root/repo/src/sim/noise_model.cc" "CMakeFiles/qiset.dir/src/sim/noise_model.cc.o" "gcc" "CMakeFiles/qiset.dir/src/sim/noise_model.cc.o.d"
  "/root/repo/src/sim/statevector.cc" "CMakeFiles/qiset.dir/src/sim/statevector.cc.o" "gcc" "CMakeFiles/qiset.dir/src/sim/statevector.cc.o.d"
  "/root/repo/src/sim/trajectory.cc" "CMakeFiles/qiset.dir/src/sim/trajectory.cc.o" "gcc" "CMakeFiles/qiset.dir/src/sim/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
