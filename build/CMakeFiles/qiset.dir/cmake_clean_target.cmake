file(REMOVE_RECURSE
  "libqiset.a"
)
