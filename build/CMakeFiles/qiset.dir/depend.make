# Empty dependencies file for qiset.
# This may be replaced when dependencies are built.
