file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_decomposition_examples.dir/bench/bench_fig2_decomposition_examples.cc.o"
  "CMakeFiles/bench_fig2_decomposition_examples.dir/bench/bench_fig2_decomposition_examples.cc.o.d"
  "bench_fig2_decomposition_examples"
  "bench_fig2_decomposition_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_decomposition_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
