# Empty dependencies file for bench_fig10f_fh_scaling.
# This may be replaced when dependencies are built.
