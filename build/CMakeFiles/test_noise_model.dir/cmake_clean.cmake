file(REMOVE_RECURSE
  "CMakeFiles/test_noise_model.dir/tests/test_noise_model.cc.o"
  "CMakeFiles/test_noise_model.dir/tests/test_noise_model.cc.o.d"
  "test_noise_model"
  "test_noise_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
