# Empty dependencies file for test_noise_model.
# This may be replaced when dependencies are built.
