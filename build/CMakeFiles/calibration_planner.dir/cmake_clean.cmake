file(REMOVE_RECURSE
  "CMakeFiles/calibration_planner.dir/examples/calibration_planner.cpp.o"
  "CMakeFiles/calibration_planner.dir/examples/calibration_planner.cpp.o.d"
  "calibration_planner"
  "calibration_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
