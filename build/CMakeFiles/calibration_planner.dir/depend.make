# Empty dependencies file for calibration_planner.
# This may be replaced when dependencies are built.
