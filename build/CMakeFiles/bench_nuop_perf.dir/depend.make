# Empty dependencies file for bench_nuop_perf.
# This may be replaced when dependencies are built.
