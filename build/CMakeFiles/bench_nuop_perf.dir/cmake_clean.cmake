file(REMOVE_RECURSE
  "CMakeFiles/bench_nuop_perf.dir/bench/bench_nuop_perf.cc.o"
  "CMakeFiles/bench_nuop_perf.dir/bench/bench_nuop_perf.cc.o.d"
  "bench_nuop_perf"
  "bench_nuop_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nuop_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
