file(REMOVE_RECURSE
  "CMakeFiles/test_consolidate.dir/tests/test_consolidate.cc.o"
  "CMakeFiles/test_consolidate.dir/tests/test_consolidate.cc.o.d"
  "test_consolidate"
  "test_consolidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consolidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
