# Empty dependencies file for test_consolidate.
# This may be replaced when dependencies are built.
