file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_heatmaps.dir/bench/bench_fig8_heatmaps.cc.o"
  "CMakeFiles/bench_fig8_heatmaps.dir/bench/bench_fig8_heatmaps.cc.o.d"
  "bench_fig8_heatmaps"
  "bench_fig8_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
