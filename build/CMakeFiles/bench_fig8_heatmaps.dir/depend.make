# Empty dependencies file for bench_fig8_heatmaps.
# This may be replaced when dependencies are built.
