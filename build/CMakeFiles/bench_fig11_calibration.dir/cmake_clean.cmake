file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_calibration.dir/bench/bench_fig11_calibration.cc.o"
  "CMakeFiles/bench_fig11_calibration.dir/bench/bench_fig11_calibration.cc.o.d"
  "bench_fig11_calibration"
  "bench_fig11_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
