# Empty dependencies file for bench_fig11_calibration.
# This may be replaced when dependencies are built.
