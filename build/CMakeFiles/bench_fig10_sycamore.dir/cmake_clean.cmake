file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sycamore.dir/bench/bench_fig10_sycamore.cc.o"
  "CMakeFiles/bench_fig10_sycamore.dir/bench/bench_fig10_sycamore.cc.o.d"
  "bench_fig10_sycamore"
  "bench_fig10_sycamore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sycamore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
