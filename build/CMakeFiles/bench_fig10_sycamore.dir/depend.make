# Empty dependencies file for bench_fig10_sycamore.
# This may be replaced when dependencies are built.
