file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rigetti.dir/bench/bench_fig9_rigetti.cc.o"
  "CMakeFiles/bench_fig9_rigetti.dir/bench/bench_fig9_rigetti.cc.o.d"
  "bench_fig9_rigetti"
  "bench_fig9_rigetti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rigetti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
