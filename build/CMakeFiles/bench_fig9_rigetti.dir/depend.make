# Empty dependencies file for bench_fig9_rigetti.
# This may be replaced when dependencies are built.
