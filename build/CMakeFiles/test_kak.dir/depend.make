# Empty dependencies file for test_kak.
# This may be replaced when dependencies are built.
