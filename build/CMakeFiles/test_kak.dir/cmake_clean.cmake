file(REMOVE_RECURSE
  "CMakeFiles/test_kak.dir/tests/test_kak.cc.o"
  "CMakeFiles/test_kak.dir/tests/test_kak.cc.o.d"
  "test_kak"
  "test_kak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
