file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cphase_family.dir/bench/bench_ext_cphase_family.cc.o"
  "CMakeFiles/bench_ext_cphase_family.dir/bench/bench_ext_cphase_family.cc.o.d"
  "bench_ext_cphase_family"
  "bench_ext_cphase_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cphase_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
