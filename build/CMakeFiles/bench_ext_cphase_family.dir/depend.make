# Empty dependencies file for bench_ext_cphase_family.
# This may be replaced when dependencies are built.
