file(REMOVE_RECURSE
  "CMakeFiles/test_draw.dir/tests/test_draw.cc.o"
  "CMakeFiles/test_draw.dir/tests/test_draw.cc.o.d"
  "test_draw"
  "test_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
