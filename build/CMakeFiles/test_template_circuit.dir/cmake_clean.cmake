file(REMOVE_RECURSE
  "CMakeFiles/test_template_circuit.dir/tests/test_template_circuit.cc.o"
  "CMakeFiles/test_template_circuit.dir/tests/test_template_circuit.cc.o.d"
  "test_template_circuit"
  "test_template_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
