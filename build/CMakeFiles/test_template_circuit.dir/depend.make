# Empty dependencies file for test_template_circuit.
# This may be replaced when dependencies are built.
