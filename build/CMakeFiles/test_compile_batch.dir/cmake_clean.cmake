file(REMOVE_RECURSE
  "CMakeFiles/test_compile_batch.dir/tests/test_compile_batch.cc.o"
  "CMakeFiles/test_compile_batch.dir/tests/test_compile_batch.cc.o.d"
  "test_compile_batch"
  "test_compile_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
