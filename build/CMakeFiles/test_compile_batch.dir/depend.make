# Empty dependencies file for test_compile_batch.
# This may be replaced when dependencies are built.
