file(REMOVE_RECURSE
  "CMakeFiles/compile_and_draw.dir/examples/compile_and_draw.cpp.o"
  "CMakeFiles/compile_and_draw.dir/examples/compile_and_draw.cpp.o.d"
  "compile_and_draw"
  "compile_and_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
