# Empty dependencies file for compile_and_draw.
# This may be replaced when dependencies are built.
