file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_instruction_sets.dir/bench/bench_table2_instruction_sets.cc.o"
  "CMakeFiles/bench_table2_instruction_sets.dir/bench/bench_table2_instruction_sets.cc.o.d"
  "bench_table2_instruction_sets"
  "bench_table2_instruction_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_instruction_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
