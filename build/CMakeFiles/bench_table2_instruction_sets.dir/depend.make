# Empty dependencies file for bench_table2_instruction_sets.
# This may be replaced when dependencies are built.
