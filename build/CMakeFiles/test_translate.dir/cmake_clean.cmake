file(REMOVE_RECURSE
  "CMakeFiles/test_translate.dir/tests/test_translate.cc.o"
  "CMakeFiles/test_translate.dir/tests/test_translate.cc.o.d"
  "test_translate"
  "test_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
