# Empty dependencies file for test_translate.
# This may be replaced when dependencies are built.
