# Empty dependencies file for bench_table1_gate_families.
# This may be replaced when dependencies are built.
