file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gate_families.dir/bench/bench_table1_gate_families.cc.o"
  "CMakeFiles/bench_table1_gate_families.dir/bench/bench_table1_gate_families.cc.o.d"
  "bench_table1_gate_families"
  "bench_table1_gate_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gate_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
