file(REMOVE_RECURSE
  "CMakeFiles/test_profile_cache.dir/tests/test_profile_cache.cc.o"
  "CMakeFiles/test_profile_cache.dir/tests/test_profile_cache.cc.o.d"
  "test_profile_cache"
  "test_profile_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
