# Empty dependencies file for test_profile_cache.
# This may be replaced when dependencies are built.
