# Empty dependencies file for bench_fig6_cirq_comparison.
# This may be replaced when dependencies are built.
