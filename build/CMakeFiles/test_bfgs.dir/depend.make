# Empty dependencies file for test_bfgs.
# This may be replaced when dependencies are built.
