file(REMOVE_RECURSE
  "CMakeFiles/test_bfgs.dir/tests/test_bfgs.cc.o"
  "CMakeFiles/test_bfgs.dir/tests/test_bfgs.cc.o.d"
  "test_bfgs"
  "test_bfgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
