file(REMOVE_RECURSE
  "CMakeFiles/noise_adaptive_compile.dir/examples/noise_adaptive_compile.cpp.o"
  "CMakeFiles/noise_adaptive_compile.dir/examples/noise_adaptive_compile.cpp.o.d"
  "noise_adaptive_compile"
  "noise_adaptive_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_adaptive_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
