# Empty dependencies file for noise_adaptive_compile.
# This may be replaced when dependencies are built.
