#ifndef QISET_SIM_STATEVECTOR_H
#define QISET_SIM_STATEVECTOR_H

/**
 * @file
 * Pure-state (noiseless) simulator.
 *
 * Used for ideal reference distributions (heavy-output sets, XEB ideal
 * probabilities) and as the state engine inside the trajectory
 * simulator. Scales comfortably to the paper's 20-qubit Fermi-Hubbard
 * circuits.
 */

#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "qc/matrix.h"

namespace qiset {

/** 2^n-amplitude pure state with in-place gate application. */
class StateVector
{
  public:
    /** Initialize to |0...0> on num_qubits qubits. */
    explicit StateVector(int num_qubits);

    /** Initialize to the given computational basis state. */
    StateVector(int num_qubits, size_t basis_index);

    int numQubits() const { return num_qubits_; }
    size_t dim() const { return amps_.size(); }

    const std::vector<cplx>& amplitudes() const { return amps_; }
    std::vector<cplx>& mutableAmplitudes() { return amps_; }

    /** Apply a 2x2 unitary (or Kraus operator) to one qubit. */
    void apply1q(const Matrix& gate, int qubit);

    /** Apply a 4x4 unitary (or Kraus operator) to a qubit pair. */
    void apply2q(const Matrix& gate, int qubit_a, int qubit_b);

    /** Apply a circuit operation (dispatches on arity). */
    void applyOperation(const Operation& op);

    /** Apply an operation viewed in place inside a Circuit. */
    void applyOperation(ConstOpRef op);

    /** Run an entire circuit (no noise). */
    void run(const Circuit& circuit);

    /** Measurement probabilities |amp|^2 for every basis state. */
    std::vector<double> probabilities() const;

    /** L2 norm of the state. */
    double norm() const;

    /** Rescale to unit norm. */
    void normalize();

    /** Inner product <this|other>. */
    cplx innerProduct(const StateVector& other) const;

    /** Sample shot measurement outcomes from the probabilities. */
    std::vector<size_t> sample(Rng& rng, int shots) const;

  private:
    int num_qubits_;
    std::vector<cplx> amps_;
};

} // namespace qiset

#endif // QISET_SIM_STATEVECTOR_H
