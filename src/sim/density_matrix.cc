#include "sim/density_matrix.h"

#include <cmath>

#include "common/error.h"

namespace qiset {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(size_t{1} << num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1 && num_qubits <= 13,
                  "density matrix supports 1..13 qubits (",
                  num_qubits, " requested)");
    rho_.assign(dim_ * dim_, cplx(0.0, 0.0));
    rho_[0] = 1.0;
}

DensityMatrix::DensityMatrix(const StateVector& state)
    : num_qubits_(state.numQubits()), dim_(state.dim())
{
    QISET_REQUIRE(num_qubits_ <= 13,
                  "density matrix supports 1..13 qubits");
    rho_.resize(dim_ * dim_);
    const auto& amps = state.amplitudes();
    for (size_t r = 0; r < dim_; ++r)
        for (size_t c = 0; c < dim_; ++c)
            rho_[r * dim_ + c] = amps[r] * std::conj(amps[c]);
}

cplx
DensityMatrix::element(size_t row, size_t col) const
{
    return rho_[row * dim_ + col];
}

void
DensityMatrix::applyLeft(const Matrix& gate, Qubits qubits)
{
    if (qubits.size() == 1) {
        size_t mask = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        cplx g00 = gate(0, 0), g01 = gate(0, 1);
        cplx g10 = gate(1, 0), g11 = gate(1, 1);
        for (size_t r = 0; r < dim_; ++r) {
            if (r & mask)
                continue;
            size_t r1 = r | mask;
            cplx* row0 = &rho_[r * dim_];
            cplx* row1 = &rho_[r1 * dim_];
            for (size_t c = 0; c < dim_; ++c) {
                cplx a0 = row0[c];
                cplx a1 = row1[c];
                row0[c] = g00 * a0 + g01 * a1;
                row1[c] = g10 * a0 + g11 * a1;
            }
        }
        return;
    }

    size_t mask_a = size_t{1} << (num_qubits_ - 1 - qubits[0]);
    size_t mask_b = size_t{1} << (num_qubits_ - 1 - qubits[1]);
    cplx g[4][4];
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            g[i][j] = gate(i, j);
    for (size_t r = 0; r < dim_; ++r) {
        if (r & (mask_a | mask_b))
            continue;
        cplx* rows[4] = {
            &rho_[r * dim_],
            &rho_[(r | mask_b) * dim_],
            &rho_[(r | mask_a) * dim_],
            &rho_[(r | mask_a | mask_b) * dim_],
        };
        for (size_t c = 0; c < dim_; ++c) {
            cplx a0 = rows[0][c], a1 = rows[1][c];
            cplx a2 = rows[2][c], a3 = rows[3][c];
            rows[0][c] = g[0][0] * a0 + g[0][1] * a1 + g[0][2] * a2 +
                         g[0][3] * a3;
            rows[1][c] = g[1][0] * a0 + g[1][1] * a1 + g[1][2] * a2 +
                         g[1][3] * a3;
            rows[2][c] = g[2][0] * a0 + g[2][1] * a1 + g[2][2] * a2 +
                         g[2][3] * a3;
            rows[3][c] = g[3][0] * a0 + g[3][1] * a1 + g[3][2] * a2 +
                         g[3][3] * a3;
        }
    }
}

void
DensityMatrix::applyRight(const Matrix& gate, Qubits qubits)
{
    // rho <- rho * gate^dagger, i.e. apply conj(gate) along columns.
    if (qubits.size() == 1) {
        size_t mask = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        cplx g00 = std::conj(gate(0, 0)), g01 = std::conj(gate(0, 1));
        cplx g10 = std::conj(gate(1, 0)), g11 = std::conj(gate(1, 1));
        for (size_t r = 0; r < dim_; ++r) {
            cplx* row = &rho_[r * dim_];
            for (size_t c = 0; c < dim_; ++c) {
                if (c & mask)
                    continue;
                size_t c1 = c | mask;
                cplx a0 = row[c];
                cplx a1 = row[c1];
                row[c] = g00 * a0 + g01 * a1;
                row[c1] = g10 * a0 + g11 * a1;
            }
        }
        return;
    }

    size_t mask_a = size_t{1} << (num_qubits_ - 1 - qubits[0]);
    size_t mask_b = size_t{1} << (num_qubits_ - 1 - qubits[1]);
    cplx g[4][4];
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            g[i][j] = std::conj(gate(i, j));
    for (size_t r = 0; r < dim_; ++r) {
        cplx* row = &rho_[r * dim_];
        for (size_t c = 0; c < dim_; ++c) {
            if (c & (mask_a | mask_b))
                continue;
            size_t c01 = c | mask_b;
            size_t c10 = c | mask_a;
            size_t c11 = c | mask_a | mask_b;
            cplx a0 = row[c], a1 = row[c01];
            cplx a2 = row[c10], a3 = row[c11];
            row[c] = g[0][0] * a0 + g[0][1] * a1 + g[0][2] * a2 +
                     g[0][3] * a3;
            row[c01] = g[1][0] * a0 + g[1][1] * a1 + g[1][2] * a2 +
                       g[1][3] * a3;
            row[c10] = g[2][0] * a0 + g[2][1] * a1 + g[2][2] * a2 +
                       g[2][3] * a3;
            row[c11] = g[3][0] * a0 + g[3][1] * a1 + g[3][2] * a2 +
                       g[3][3] * a3;
        }
    }
}

void
DensityMatrix::applyUnitary(const Matrix& gate,
                            Qubits qubits)
{
    applyLeft(gate, qubits);
    applyRight(gate, qubits);
}

void
DensityMatrix::applyKraus(const std::vector<Matrix>& kraus,
                          Qubits qubits)
{
    QISET_REQUIRE(!kraus.empty(), "empty Kraus set");
    if (kraus.size() == 1) {
        applyUnitary(kraus[0], qubits);
        return;
    }

    // Blockwise application: for each pair of "external" basis
    // indices, the touched qubits select a small k x k sub-block B of
    // rho; the channel maps B -> sum K B K^dagger independently per
    // block.
    size_t k = qubits.size() == 1 ? 2 : 4;
    std::vector<size_t> masks(k, 0);
    if (qubits.size() == 1) {
        size_t m = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        masks = {0, m};
    } else {
        size_t ma = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        size_t mb = size_t{1} << (num_qubits_ - 1 - qubits[1]);
        masks = {0, mb, ma, ma | mb};
    }
    size_t select = 0;
    for (size_t m : masks)
        select |= m;

    cplx block[4][4], out[4][4], tmp[4][4];
    for (size_t r = 0; r < dim_; ++r) {
        if (r & select)
            continue;
        for (size_t c = 0; c < dim_; ++c) {
            if (c & select)
                continue;
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j)
                    block[i][j] = rho_[(r | masks[i]) * dim_ +
                                       (c | masks[j])];
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j)
                    out[i][j] = cplx(0.0, 0.0);
            for (const auto& op : kraus) {
                // tmp = K * B
                for (size_t i = 0; i < k; ++i)
                    for (size_t j = 0; j < k; ++j) {
                        cplx sum(0.0, 0.0);
                        for (size_t l = 0; l < k; ++l)
                            sum += op(i, l) * block[l][j];
                        tmp[i][j] = sum;
                    }
                // out += tmp * K^dagger
                for (size_t i = 0; i < k; ++i)
                    for (size_t j = 0; j < k; ++j) {
                        cplx sum(0.0, 0.0);
                        for (size_t l = 0; l < k; ++l)
                            sum += tmp[i][l] * std::conj(op(j, l));
                        out[i][j] += sum;
                    }
            }
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j)
                    rho_[(r | masks[i]) * dim_ + (c | masks[j])] =
                        out[i][j];
        }
    }
}

void
DensityMatrix::applyDepolarizing(double p, Qubits qubits)
{
    QISET_REQUIRE(p >= 0.0 && p <= 1.0, "invalid depolarizing p=", p);
    if (p == 0.0)
        return;
    size_t k = qubits.size() == 1 ? 2 : 4;
    double dim_k = static_cast<double>(k * k);
    double lambda = dim_k * p / (dim_k - 1.0);

    std::vector<size_t> masks;
    if (qubits.size() == 1) {
        size_t m = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        masks = {0, m};
    } else {
        size_t ma = size_t{1} << (num_qubits_ - 1 - qubits[0]);
        size_t mb = size_t{1} << (num_qubits_ - 1 - qubits[1]);
        masks = {0, mb, ma, ma | mb};
    }
    size_t select = 0;
    for (size_t m : masks)
        select |= m;

    for (size_t r = 0; r < dim_; ++r) {
        if (r & select)
            continue;
        for (size_t c = 0; c < dim_; ++c) {
            if (c & select)
                continue;
            // Trace of the block (only exists on the block diagonal).
            cplx tr(0.0, 0.0);
            for (size_t i = 0; i < k; ++i)
                tr += rho_[(r | masks[i]) * dim_ + (c | masks[i])];
            tr /= static_cast<double>(k);
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j) {
                    cplx& value =
                        rho_[(r | masks[i]) * dim_ + (c | masks[j])];
                    value *= (1.0 - lambda);
                    if (i == j)
                        value += lambda * tr;
                }
        }
    }
}

double
DensityMatrix::trace() const
{
    double sum = 0.0;
    for (size_t i = 0; i < dim_; ++i)
        sum += rho_[i * dim_ + i].real();
    return sum;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij |rho_ij|^2 for Hermitian rho.
    double sum = 0.0;
    for (const auto& value : rho_)
        sum += std::norm(value);
    return sum;
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (size_t i = 0; i < dim_; ++i)
        probs[i] = std::max(0.0, rho_[i * dim_ + i].real());
    return probs;
}

double
DensityMatrix::fidelityWithPure(const StateVector& psi) const
{
    QISET_REQUIRE(psi.dim() == dim_, "dimension mismatch");
    const auto& amps = psi.amplitudes();
    cplx sum(0.0, 0.0);
    for (size_t r = 0; r < dim_; ++r) {
        cplx row_dot(0.0, 0.0);
        const cplx* row = &rho_[r * dim_];
        for (size_t c = 0; c < dim_; ++c)
            row_dot += row[c] * amps[c];
        sum += std::conj(amps[r]) * row_dot;
    }
    return std::max(0.0, sum.real());
}

void
DensityMatrix::runNoisy(const Circuit& circuit, const NoiseModel& noise)
{
    QISET_REQUIRE(circuit.numQubits() == num_qubits_,
                  "circuit width mismatch");
    for (const auto& op : circuit.ops()) {
        Qubits qs = op.qubits();
        applyUnitary(op.unitary(), qs);
        if (!noise.enabled())
            continue;
        if (op.errorRate() > 0.0)
            applyDepolarizing(op.errorRate(), qs);
        if (op.durationNs() > 0.0) {
            for (int q : qs)
                applyKraus(noise.thermalKrausFor(q, op.durationNs()),
                           Qubits(q));
        }
    }
}

} // namespace qiset
