#ifndef QISET_SIM_TRAJECTORY_H
#define QISET_SIM_TRAJECTORY_H

/**
 * @file
 * Monte-Carlo quantum-trajectory simulator.
 *
 * For circuits too wide for a density matrix (the paper's 20-qubit
 * Fermi-Hubbard runs), noise is unravelled stochastically: each
 * trajectory evolves a pure state, sampling a Kraus branch after every
 * noisy operation. Averaging observables over trajectories converges
 * to the density-matrix result.
 */

#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"

namespace qiset {

/** Stochastic pure-state unravelling of the noisy evolution. */
class TrajectorySimulator
{
  public:
    /**
     * @param noise Per-qubit noise parameters (thermal + readout).
     */
    explicit TrajectorySimulator(NoiseModel noise);

    /**
     * Evolve one trajectory of the circuit.
     * Depolarizing errors are sampled as random Pauli injections;
     * thermal relaxation is sampled from the Kraus decomposition with
     * probabilities given by the post-branch norms.
     */
    StateVector runTrajectory(const Circuit& circuit, Rng& rng) const;

    /**
     * Average measurement probabilities over num_trajectories runs
     * (readout error applied classically afterwards).
     */
    std::vector<double> averageProbabilities(const Circuit& circuit,
                                             int num_trajectories,
                                             Rng& rng) const;

    /**
     * Average a user observable over trajectories without storing the
     * full probability vector per trajectory. The callback receives
     * each trajectory's final pure state.
     */
    double averageObservable(
        const Circuit& circuit, int num_trajectories, Rng& rng,
        const std::function<double(const StateVector&)>& observable) const;

    const NoiseModel& noise() const { return noise_; }

  private:
    void applyNoise(StateVector& state, ConstOpRef op, Rng& rng) const;

    NoiseModel noise_;
};

} // namespace qiset

#endif // QISET_SIM_TRAJECTORY_H
