#include "sim/noise_model.h"

#include <cmath>

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

NoiseModel::NoiseModel(int num_qubits, const QubitNoise& qubit_noise)
    : qubits_(num_qubits, qubit_noise)
{
}

NoiseModel::NoiseModel(std::vector<QubitNoise> qubits)
    : qubits_(std::move(qubits))
{
}

std::vector<Matrix>
NoiseModel::depolarizingKraus1q(double p)
{
    QISET_REQUIRE(p >= 0.0 && p <= 1.0, "invalid depolarizing p=", p);
    double k0 = std::sqrt(1.0 - p);
    double kp = std::sqrt(p / 3.0);
    return {
        gates::identity1q() * cplx(k0, 0.0),
        gates::pauliX() * cplx(kp, 0.0),
        gates::pauliY() * cplx(kp, 0.0),
        gates::pauliZ() * cplx(kp, 0.0),
    };
}

std::vector<Matrix>
NoiseModel::depolarizingKraus2q(double p)
{
    QISET_REQUIRE(p >= 0.0 && p <= 1.0, "invalid depolarizing p=", p);
    std::vector<Matrix> paulis = {gates::identity1q(), gates::pauliX(),
                                  gates::pauliY(), gates::pauliZ()};
    std::vector<Matrix> kraus;
    kraus.reserve(16);
    double k0 = std::sqrt(1.0 - p);
    double kp = std::sqrt(p / 15.0);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            double scale = (a == 0 && b == 0) ? k0 : kp;
            kraus.push_back(paulis[a].kron(paulis[b]) *
                            cplx(scale, 0.0));
        }
    }
    return kraus;
}

std::vector<Matrix>
NoiseModel::thermalKraus(double t1_ns, double t2_ns, double duration_ns)
{
    QISET_REQUIRE(t1_ns > 0.0 && t2_ns > 0.0, "T1/T2 must be positive");
    QISET_REQUIRE(t2_ns <= 2.0 * t1_ns + 1e-9,
                  "unphysical T2 > 2 T1 (T1=", t1_ns, ", T2=", t2_ns, ")");
    if (duration_ns <= 0.0)
        return {Matrix::identity(2)};

    // Amplitude damping strength over the interval.
    double gamma = 1.0 - std::exp(-duration_ns / t1_ns);
    // Residual pure dephasing so total coherence decay matches
    // exp(-t/T2):   sqrt(1-gamma) * sqrt(1-lambda) = exp(-t/T2).
    double coh = std::exp(-duration_ns / t2_ns);
    double lambda = 1.0 - (coh * coh) / (1.0 - gamma);
    lambda = std::min(std::max(lambda, 0.0), 1.0);

    // Compose amplitude damping {A0, A1} with phase damping {P0, P2}.
    Matrix a0{{1.0, 0.0}, {0.0, std::sqrt(1.0 - gamma)}};
    Matrix a1{{0.0, std::sqrt(gamma)}, {0.0, 0.0}};
    Matrix p0{{1.0, 0.0}, {0.0, std::sqrt(1.0 - lambda)}};
    Matrix p2{{0.0, 0.0}, {0.0, std::sqrt(lambda)}};

    std::vector<Matrix> kraus;
    for (const auto& p : {p0, p2})
        for (const auto& a : {a0, a1}) {
            Matrix k = p * a;
            if (k.frobeniusNorm() > 1e-12)
                kraus.push_back(k);
        }
    return kraus;
}

std::vector<Matrix>
NoiseModel::thermalKrausFor(int qubit, double duration_ns) const
{
    const QubitNoise& qn = qubits_.at(qubit);
    return thermalKraus(qn.t1_ns, qn.t2_ns, duration_ns);
}

std::vector<double>
NoiseModel::applyReadoutError(const std::vector<double>& probs) const
{
    if (qubits_.empty())
        return probs;
    int n = numQubits();
    QISET_REQUIRE(probs.size() == (size_t{1} << n),
                  "probability vector size mismatch");

    std::vector<double> current = probs;
    std::vector<double> next(probs.size());
    for (int q = 0; q < n; ++q) {
        const QubitNoise& qn = qubits_[q];
        if (qn.readout_p01 == 0.0 && qn.readout_p10 == 0.0)
            continue;
        size_t mask = size_t{1} << (n - 1 - q);
        std::fill(next.begin(), next.end(), 0.0);
        for (size_t idx = 0; idx < current.size(); ++idx) {
            double p = current[idx];
            if (p == 0.0)
                continue;
            bool bit = idx & mask;
            double flip = bit ? qn.readout_p10 : qn.readout_p01;
            next[idx] += p * (1.0 - flip);
            next[idx ^ mask] += p * flip;
        }
        current.swap(next);
    }
    return current;
}

} // namespace qiset
