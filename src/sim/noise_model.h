#ifndef QISET_SIM_NOISE_MODEL_H
#define QISET_SIM_NOISE_MODEL_H

/**
 * @file
 * Noise channels mirroring the Qiskit Aer model used in the paper
 * (Section VI): per-gate depolarizing noise scaled by the gate's
 * calibrated error rate, amplitude-damping + dephasing driven by
 * T1/T2 and gate duration, and readout (measurement confusion) error.
 */

#include <vector>

#include "circuit/circuit.h"
#include "qc/matrix.h"

namespace qiset {

/** Per-qubit noise parameters. */
struct QubitNoise
{
    /** Amplitude-damping time constant in nanoseconds. */
    double t1_ns = 15e3;
    /** Total dephasing time constant in nanoseconds (T2 <= 2 T1). */
    double t2_ns = 15e3;
    /** Probability of reading 1 when the qubit is 0. */
    double readout_p01 = 0.0;
    /** Probability of reading 0 when the qubit is 1. */
    double readout_p10 = 0.0;
};

/** Device-level noise description consumed by the noisy simulators. */
class NoiseModel
{
  public:
    /** Noiseless model (all channels disabled). */
    NoiseModel() = default;

    /** Homogeneous model with identical parameters on every qubit. */
    NoiseModel(int num_qubits, const QubitNoise& qubit_noise);

    /** Fully specified per-qubit model. */
    explicit NoiseModel(std::vector<QubitNoise> qubits);

    bool enabled() const { return !qubits_.empty(); }
    int numQubits() const { return static_cast<int>(qubits_.size()); }
    const QubitNoise& qubit(int q) const { return qubits_.at(q); }

    /**
     * Kraus operators of the 1Q depolarizing channel with error
     * probability p: {sqrt(1-p) I, sqrt(p/3) X, sqrt(p/3) Y,
     * sqrt(p/3) Z}.
     */
    static std::vector<Matrix> depolarizingKraus1q(double p);

    /** 16-operator 2Q depolarizing channel with error probability p. */
    static std::vector<Matrix> depolarizingKraus2q(double p);

    /**
     * Kraus operators of combined amplitude damping (T1) and pure
     * dephasing (T2) over the given duration.
     */
    static std::vector<Matrix> thermalKraus(double t1_ns, double t2_ns,
                                            double duration_ns);

    /** Thermal channel for a specific qubit of this model. */
    std::vector<Matrix> thermalKrausFor(int qubit,
                                        double duration_ns) const;

    /**
     * Apply per-qubit readout confusion to a measurement probability
     * vector (classical post-processing, as Aer does).
     */
    std::vector<double>
    applyReadoutError(const std::vector<double>& probs) const;

  private:
    std::vector<QubitNoise> qubits_;
};

} // namespace qiset

#endif // QISET_SIM_NOISE_MODEL_H
