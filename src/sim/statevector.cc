#include "sim/statevector.h"

#include <cmath>

#include "common/error.h"

namespace qiset {

StateVector::StateVector(int num_qubits)
    : StateVector(num_qubits, 0)
{
}

StateVector::StateVector(int num_qubits, size_t basis_index)
    : num_qubits_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1 && num_qubits <= 28,
                  "state vector supports 1..28 qubits");
    size_t dim = size_t{1} << num_qubits;
    QISET_REQUIRE(basis_index < dim, "basis index out of range");
    amps_.assign(dim, cplx(0.0, 0.0));
    amps_[basis_index] = 1.0;
}

void
StateVector::apply1q(const Matrix& gate, int qubit)
{
    QISET_REQUIRE(qubit >= 0 && qubit < num_qubits_, "qubit out of range");
    int shift = num_qubits_ - 1 - qubit;
    size_t mask = size_t{1} << shift;
    size_t dim = amps_.size();

    cplx g00 = gate(0, 0), g01 = gate(0, 1);
    cplx g10 = gate(1, 0), g11 = gate(1, 1);

    for (size_t idx = 0; idx < dim; ++idx) {
        if (idx & mask)
            continue;
        size_t idx1 = idx | mask;
        cplx a0 = amps_[idx];
        cplx a1 = amps_[idx1];
        amps_[idx] = g00 * a0 + g01 * a1;
        amps_[idx1] = g10 * a0 + g11 * a1;
    }
}

void
StateVector::apply2q(const Matrix& gate, int qubit_a, int qubit_b)
{
    QISET_REQUIRE(qubit_a != qubit_b, "2Q gate on identical qubits");
    QISET_REQUIRE(qubit_a >= 0 && qubit_a < num_qubits_ && qubit_b >= 0 &&
                      qubit_b < num_qubits_,
                  "qubit out of range");
    size_t mask_a = size_t{1} << (num_qubits_ - 1 - qubit_a);
    size_t mask_b = size_t{1} << (num_qubits_ - 1 - qubit_b);
    size_t dim = amps_.size();

    cplx g[4][4];
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            g[i][j] = gate(i, j);

    for (size_t idx = 0; idx < dim; ++idx) {
        if (idx & (mask_a | mask_b))
            continue;
        size_t i00 = idx;
        size_t i01 = idx | mask_b;
        size_t i10 = idx | mask_a;
        size_t i11 = idx | mask_a | mask_b;
        cplx a00 = amps_[i00], a01 = amps_[i01];
        cplx a10 = amps_[i10], a11 = amps_[i11];
        amps_[i00] = g[0][0] * a00 + g[0][1] * a01 + g[0][2] * a10 +
                     g[0][3] * a11;
        amps_[i01] = g[1][0] * a00 + g[1][1] * a01 + g[1][2] * a10 +
                     g[1][3] * a11;
        amps_[i10] = g[2][0] * a00 + g[2][1] * a01 + g[2][2] * a10 +
                     g[2][3] * a11;
        amps_[i11] = g[3][0] * a00 + g[3][1] * a01 + g[3][2] * a10 +
                     g[3][3] * a11;
    }
}

void
StateVector::applyOperation(const Operation& op)
{
    if (op.isTwoQubit())
        apply2q(op.unitary, op.qubits[0], op.qubits[1]);
    else
        apply1q(op.unitary, op.qubits[0]);
}

void
StateVector::applyOperation(ConstOpRef op)
{
    Qubits qs = op.qubits();
    if (op.isTwoQubit())
        apply2q(op.unitary(), qs[0], qs[1]);
    else
        apply1q(op.unitary(), qs[0]);
}

void
StateVector::run(const Circuit& circuit)
{
    QISET_REQUIRE(circuit.numQubits() == num_qubits_,
                  "circuit width mismatch");
    for (const auto& op : circuit.ops())
        applyOperation(op);
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const auto& amp : amps_)
        sum += std::norm(amp);
    return std::sqrt(sum);
}

void
StateVector::normalize()
{
    double n = norm();
    QISET_REQUIRE(n > 1e-300, "cannot normalize the zero state");
    for (auto& amp : amps_)
        amp /= n;
}

cplx
StateVector::innerProduct(const StateVector& other) const
{
    QISET_REQUIRE(dim() == other.dim(), "dimension mismatch");
    cplx sum(0.0, 0.0);
    for (size_t i = 0; i < amps_.size(); ++i)
        sum += std::conj(amps_[i]) * other.amps_[i];
    return sum;
}

std::vector<size_t>
StateVector::sample(Rng& rng, int shots) const
{
    std::vector<double> probs = probabilities();
    // Cumulative-distribution inversion; one binary search per shot.
    std::vector<double> cdf(probs.size());
    double cum = 0.0;
    for (size_t i = 0; i < probs.size(); ++i) {
        cum += probs[i];
        cdf[i] = cum;
    }
    std::vector<size_t> outcomes;
    outcomes.reserve(shots);
    for (int s = 0; s < shots; ++s) {
        double r = rng.uniform(0.0, cum);
        size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (cdf[mid] < r)
                lo = mid + 1;
            else
                hi = mid;
        }
        outcomes.push_back(lo);
    }
    return outcomes;
}

} // namespace qiset
