#include "sim/trajectory.h"

#include <cmath>

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

TrajectorySimulator::TrajectorySimulator(NoiseModel noise)
    : noise_(std::move(noise))
{
}

namespace {

/** Apply one uniformly-random non-identity Pauli to the op's qubits. */
void
injectPauli(StateVector& state, Qubits qubits, Rng& rng)
{
    static const Matrix paulis[4] = {gates::identity1q(), gates::pauliX(),
                                     gates::pauliY(), gates::pauliZ()};
    if (qubits.isTwoQubit()) {
        // 15 non-identity two-qubit Paulis, uniform.
        int index = rng.uniformInt(1, 15);
        int pa = index / 4;
        int pb = index % 4;
        if (pa != 0)
            state.apply1q(paulis[pa], qubits[0]);
        if (pb != 0)
            state.apply1q(paulis[pb], qubits[1]);
    } else {
        int index = rng.uniformInt(1, 3);
        state.apply1q(paulis[index], qubits[0]);
    }
}

/**
 * Sample a Kraus branch: pick K_i with probability ||K_i psi||^2 and
 * renormalize. Kraus operators here are single-qubit.
 */
void
sampleKraus1q(StateVector& state, const std::vector<Matrix>& kraus,
              int qubit, Rng& rng)
{
    if (kraus.size() == 1) {
        state.apply1q(kraus[0], qubit);
        return;
    }
    // Branch norms: compute ||K_i psi||^2 cheaply from the two
    // marginal populations since each K_i is 2x2.
    size_t mask = size_t{1} << (state.numQubits() - 1 - qubit);
    const auto& amps = state.amplitudes();
    // Gather the 2x2 reduced (unnormalized) density matrix entries we
    // need: populations p0, p1 and coherence c = sum a0 conj(a1).
    double p0 = 0.0, p1 = 0.0;
    cplx coh(0.0, 0.0);
    for (size_t idx = 0; idx < amps.size(); ++idx) {
        if (idx & mask)
            continue;
        cplx a0 = amps[idx];
        cplx a1 = amps[idx | mask];
        p0 += std::norm(a0);
        p1 += std::norm(a1);
        coh += a0 * std::conj(a1);
    }
    std::vector<double> weights;
    weights.reserve(kraus.size());
    for (const auto& k : kraus) {
        // ||K psi||^2 = Tr(K rho_red K^dagger) with rho_red built from
        // p0, p1, coh.
        cplx k00 = k(0, 0), k01 = k(0, 1), k10 = k(1, 0), k11 = k(1, 1);
        double w = std::norm(k00) * p0 + std::norm(k01) * p1 +
                   std::norm(k10) * p0 + std::norm(k11) * p1 +
                   2.0 * (std::conj(k00) * k01 * std::conj(coh)).real() +
                   2.0 * (std::conj(k10) * k11 * std::conj(coh)).real();
        weights.push_back(std::max(w, 0.0));
    }
    size_t choice = rng.discrete(weights);
    // Fold the renormalization into the operator: the post-branch
    // norm is exactly sqrt(w_choice) for a normalized input state, so
    // applying K/sqrt(w) keeps the state normalized in one pass.
    double w = std::max(weights[choice], 1e-300);
    Matrix scaled = kraus[choice] * cplx(1.0 / std::sqrt(w), 0.0);
    state.apply1q(scaled, qubit);
}

} // namespace

void
TrajectorySimulator::applyNoise(StateVector& state, ConstOpRef op,
                                Rng& rng) const
{
    if (!noise_.enabled())
        return;
    if (op.errorRate() > 0.0 && rng.bernoulli(op.errorRate()))
        injectPauli(state, op.qubits(), rng);
    if (op.durationNs() > 0.0) {
        for (int q : op.qubits()) {
            sampleKraus1q(state,
                          noise_.thermalKrausFor(q, op.durationNs()), q,
                          rng);
        }
    }
}

StateVector
TrajectorySimulator::runTrajectory(const Circuit& circuit, Rng& rng) const
{
    StateVector state(circuit.numQubits());
    for (const auto& op : circuit.ops()) {
        state.applyOperation(op);
        applyNoise(state, op, rng);
    }
    return state;
}

std::vector<double>
TrajectorySimulator::averageProbabilities(const Circuit& circuit,
                                          int num_trajectories,
                                          Rng& rng) const
{
    QISET_REQUIRE(num_trajectories > 0, "need at least one trajectory");
    std::vector<double> accum(size_t{1} << circuit.numQubits(), 0.0);
    for (int t = 0; t < num_trajectories; ++t) {
        StateVector state = runTrajectory(circuit, rng);
        const auto& amps = state.amplitudes();
        for (size_t i = 0; i < amps.size(); ++i)
            accum[i] += std::norm(amps[i]);
    }
    for (auto& p : accum)
        p /= num_trajectories;
    return noise_.applyReadoutError(accum);
}

double
TrajectorySimulator::averageObservable(
    const Circuit& circuit, int num_trajectories, Rng& rng,
    const std::function<double(const StateVector&)>& observable) const
{
    QISET_REQUIRE(num_trajectories > 0, "need at least one trajectory");
    double sum = 0.0;
    for (int t = 0; t < num_trajectories; ++t) {
        StateVector state = runTrajectory(circuit, rng);
        sum += observable(state);
    }
    return sum / num_trajectories;
}

} // namespace qiset
