#ifndef QISET_SIM_DENSITY_MATRIX_H
#define QISET_SIM_DENSITY_MATRIX_H

/**
 * @file
 * Exact noisy simulation via density matrices.
 *
 * For the paper's 3-6 qubit benchmark circuits (and up to ~10-11
 * qubits) the density matrix fits easily in memory, and evolving it
 * through the noise channels gives the *exact* output distribution —
 * equivalent to Aer with infinitely many shots, which removes shot
 * noise from every figure reproduction.
 */

#include <vector>

#include "circuit/circuit.h"
#include "qc/matrix.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"

namespace qiset {

/** 2^n x 2^n density operator with in-place channel application. */
class DensityMatrix
{
  public:
    /** Initialize to |0...0><0...0|. */
    explicit DensityMatrix(int num_qubits);

    /** Initialize from a pure state. */
    explicit DensityMatrix(const StateVector& state);

    int numQubits() const { return num_qubits_; }
    size_t dim() const { return dim_; }

    /** Element access rho(row, col). */
    cplx element(size_t row, size_t col) const;

    /** Apply a unitary gate: rho <- U rho U^dagger. */
    void applyUnitary(const Matrix& gate, Qubits qubits);

    /**
     * Apply a Kraus channel: rho <- sum_k K rho K^dagger.
     * Implemented blockwise (gather the 2x2/4x4 sub-block of rho for
     * each pair of external indices, transform, scatter) so cost is
     * one pass over rho regardless of the number of Kraus operators.
     */
    void applyKraus(const std::vector<Matrix>& kraus,
                    Qubits qubits);

    /**
     * Depolarizing channel in closed form:
     * rho <- (1 - lambda) rho + lambda (I/2^k (x) Tr_qubits rho) with
     * lambda = 4^k p / (4^k - 1), matching depolarizingKraus{1,2}q(p).
     */
    void applyDepolarizing(double p, Qubits qubits);

    /** Trace of the density operator (should stay 1). */
    double trace() const;

    /** Purity Tr(rho^2). */
    double purity() const;

    /** Diagonal of rho: the measurement probability distribution. */
    std::vector<double> probabilities() const;

    /** State fidelity <psi| rho |psi> against a pure reference. */
    double fidelityWithPure(const StateVector& psi) const;

    /**
     * Run a circuit with noise: for each operation apply the unitary,
     * then depolarizing noise with the op's error_rate, then thermal
     * relaxation on the touched qubits for the op's duration.
     */
    void runNoisy(const Circuit& circuit, const NoiseModel& noise);

  private:
    /** Apply op to the left (row) index of rho, like a state vector. */
    void applyLeft(const Matrix& gate, Qubits qubits);
    /** Apply conj(op) to the right (column) index of rho. */
    void applyRight(const Matrix& gate, Qubits qubits);

    int num_qubits_;
    size_t dim_;
    std::vector<cplx> rho_;
};

} // namespace qiset

#endif // QISET_SIM_DENSITY_MATRIX_H
