#include "device/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace qiset {

Topology::Topology(int num_qubits)
    : num_qubits_(num_qubits), adjacency_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "topology needs at least one qubit");
}

void
Topology::addEdge(int a, int b)
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "edge endpoint out of range");
    QISET_REQUIRE(a != b, "self-loop edge");
    if (adjacent(a, b))
        return;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
}

bool
Topology::adjacent(int a, int b) const
{
    const auto& nbrs = adjacency_.at(a);
    return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

const std::vector<int>&
Topology::neighbors(int q) const
{
    return adjacency_.at(q);
}

std::vector<std::pair<int, int>>
Topology::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; a < num_qubits_; ++a)
        for (int b : adjacency_[a])
            if (a < b)
                out.emplace_back(a, b);
    return out;
}

int
Topology::numEdges() const
{
    return static_cast<int>(edges().size());
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    std::vector<int> path;
    std::vector<int> scratch;
    shortestPathInto(a, b, path, scratch);
    return path;
}

void
Topology::shortestPathInto(int a, int b, std::vector<int>& path,
                           std::vector<int>& scratch) const
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "path endpoint out of range");
    path.clear();
    if (a == b) {
        path.push_back(a);
        return;
    }
    // Scratch layout: [0, n) parents, [n, 2n) the BFS FIFO (every
    // qubit enters the frontier at most once, so n slots suffice).
    size_t n = static_cast<size_t>(num_qubits_);
    scratch.assign(2 * n, -1);
    int* parent = scratch.data();
    int* frontier = scratch.data() + n;
    size_t head = 0, tail = 0;
    frontier[tail++] = a;
    parent[a] = a;
    while (head < tail) {
        int u = frontier[head++];
        for (int v : adjacency_[u]) {
            if (parent[v] != -1)
                continue;
            parent[v] = u;
            if (v == b) {
                path.push_back(b);
                while (path.back() != a)
                    path.push_back(parent[path.back()]);
                std::reverse(path.begin(), path.end());
                return;
            }
            frontier[tail++] = v;
        }
    }
}

bool
Topology::connected() const
{
    std::vector<bool> seen(num_qubits_, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int count = 1;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++count;
                frontier.push(v);
            }
        }
    }
    return count == num_qubits_;
}

Topology
Topology::inducedSubgraph(const std::vector<int>& qubits) const
{
    Topology sub(static_cast<int>(qubits.size()));
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j)
            if (adjacent(qubits[i], qubits[j]))
                sub.addEdge(static_cast<int>(i), static_cast<int>(j));
    return sub;
}

std::vector<std::vector<int>>
Topology::balancedPartitions(int count) const
{
    QISET_REQUIRE(count >= 1 && count <= num_qubits_,
                  "partition count out of range (", count, " regions, ",
                  num_qubits_, " qubits)");
    QISET_REQUIRE(connected(),
                  "cannot partition a disconnected topology");

    // Farthest-point seeds: qubit 0, then repeatedly the qubit with
    // the largest BFS distance to every seed so far (ties -> lowest
    // index), so regions start spread across the graph.
    std::vector<int> dist(num_qubits_, num_qubits_);
    std::vector<int> seeds;
    auto absorbSeed = [&](int seed) {
        seeds.push_back(seed);
        std::queue<int> frontier;
        frontier.push(seed);
        dist[seed] = 0;
        while (!frontier.empty()) {
            int u = frontier.front();
            frontier.pop();
            for (int v : adjacency_[u]) {
                if (dist[u] + 1 < dist[v]) {
                    dist[v] = dist[u] + 1;
                    frontier.push(v);
                }
            }
        }
    };
    absorbSeed(0);
    while (static_cast<int>(seeds.size()) < count) {
        int farthest = 0;
        for (int q = 1; q < num_qubits_; ++q)
            if (dist[q] > dist[farthest])
                farthest = q;
        absorbSeed(farthest);
    }

    // Round-robin growth: each region claims one qubit per turn, the
    // lowest-index unclaimed neighbor of its earliest member that can
    // still grow. Claiming is monotone, so a member whose neighbors
    // are all claimed can be dropped from the growth queue for good.
    std::vector<std::vector<int>> regions(count);
    std::vector<int> owner(num_qubits_, -1);
    std::vector<std::queue<int>> grow(count);
    for (int r = 0; r < count; ++r) {
        owner[seeds[r]] = r;
        regions[r].push_back(seeds[r]);
        grow[r].push(seeds[r]);
    }
    int claimed = count;
    while (claimed < num_qubits_) {
        for (int r = 0; r < count && claimed < num_qubits_; ++r) {
            while (!grow[r].empty()) {
                int member = grow[r].front();
                int pick = -1;
                for (int v : adjacency_[member])
                    if (owner[v] < 0 && (pick < 0 || v < pick))
                        pick = v;
                if (pick < 0) {
                    grow[r].pop();
                    continue;
                }
                owner[pick] = r;
                regions[r].push_back(pick);
                grow[r].push(pick);
                ++claimed;
                break;
            }
        }
    }
    for (auto& region : regions)
        std::sort(region.begin(), region.end());
    return regions;
}

Topology
Topology::line(int n)
{
    Topology t(n);
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1);
    return t;
}

Topology
Topology::ring(int n)
{
    Topology t = line(n);
    if (n > 2)
        t.addEdge(n - 1, 0);
    return t;
}

Topology
Topology::grid(int rows, int cols)
{
    Topology t(rows * cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            int idx = r * cols + c;
            if (c + 1 < cols)
                t.addEdge(idx, idx + 1);
            if (r + 1 < rows)
                t.addEdge(idx, idx + cols);
        }
    }
    return t;
}

} // namespace qiset
