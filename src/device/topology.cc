#include "device/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace qiset {

Topology::Topology(int num_qubits)
    : num_qubits_(num_qubits), adjacency_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "topology needs at least one qubit");
}

void
Topology::addEdge(int a, int b)
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "edge endpoint out of range");
    QISET_REQUIRE(a != b, "self-loop edge");
    if (adjacent(a, b))
        return;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
}

bool
Topology::adjacent(int a, int b) const
{
    const auto& nbrs = adjacency_.at(a);
    return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

const std::vector<int>&
Topology::neighbors(int q) const
{
    return adjacency_.at(q);
}

std::vector<std::pair<int, int>>
Topology::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; a < num_qubits_; ++a)
        for (int b : adjacency_[a])
            if (a < b)
                out.emplace_back(a, b);
    return out;
}

int
Topology::numEdges() const
{
    return static_cast<int>(edges().size());
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "path endpoint out of range");
    if (a == b)
        return {a};
    std::vector<int> parent(num_qubits_, -1);
    std::queue<int> frontier;
    frontier.push(a);
    parent[a] = a;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (parent[v] != -1)
                continue;
            parent[v] = u;
            if (v == b) {
                std::vector<int> path = {b};
                while (path.back() != a)
                    path.push_back(parent[path.back()]);
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(v);
        }
    }
    return {};
}

bool
Topology::connected() const
{
    std::vector<bool> seen(num_qubits_, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int count = 1;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++count;
                frontier.push(v);
            }
        }
    }
    return count == num_qubits_;
}

Topology
Topology::inducedSubgraph(const std::vector<int>& qubits) const
{
    Topology sub(static_cast<int>(qubits.size()));
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j)
            if (adjacent(qubits[i], qubits[j]))
                sub.addEdge(static_cast<int>(i), static_cast<int>(j));
    return sub;
}

Topology
Topology::line(int n)
{
    Topology t(n);
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1);
    return t;
}

Topology
Topology::ring(int n)
{
    Topology t = line(n);
    if (n > 2)
        t.addEdge(n - 1, 0);
    return t;
}

Topology
Topology::grid(int rows, int cols)
{
    Topology t(rows * cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            int idx = r * cols + c;
            if (c + 1 < cols)
                t.addEdge(idx, idx + 1);
            if (r + 1 < rows)
                t.addEdge(idx, idx + cols);
        }
    }
    return t;
}

} // namespace qiset
