#include "device/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace qiset {

Topology::Topology(int num_qubits)
    : num_qubits_(num_qubits), adjacency_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "topology needs at least one qubit");
}

void
Topology::addEdge(int a, int b)
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "edge endpoint out of range");
    QISET_REQUIRE(a != b, "self-loop edge");
    if (adjacent(a, b))
        return;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
}

bool
Topology::adjacent(int a, int b) const
{
    const auto& nbrs = adjacency_.at(a);
    return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

const std::vector<int>&
Topology::neighbors(int q) const
{
    return adjacency_.at(q);
}

std::vector<std::pair<int, int>>
Topology::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; a < num_qubits_; ++a)
        for (int b : adjacency_[a])
            if (a < b)
                out.emplace_back(a, b);
    return out;
}

int
Topology::numEdges() const
{
    return static_cast<int>(edges().size());
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    std::vector<int> path;
    std::vector<int> scratch;
    shortestPathInto(a, b, path, scratch);
    return path;
}

void
Topology::shortestPathInto(int a, int b, std::vector<int>& path,
                           std::vector<int>& scratch) const
{
    QISET_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                  "path endpoint out of range");
    path.clear();
    if (a == b) {
        path.push_back(a);
        return;
    }
    // Scratch layout: [0, n) parents, [n, 2n) the BFS FIFO (every
    // qubit enters the frontier at most once, so n slots suffice).
    size_t n = static_cast<size_t>(num_qubits_);
    scratch.assign(2 * n, -1);
    int* parent = scratch.data();
    int* frontier = scratch.data() + n;
    size_t head = 0, tail = 0;
    frontier[tail++] = a;
    parent[a] = a;
    while (head < tail) {
        int u = frontier[head++];
        for (int v : adjacency_[u]) {
            if (parent[v] != -1)
                continue;
            parent[v] = u;
            if (v == b) {
                path.push_back(b);
                while (path.back() != a)
                    path.push_back(parent[path.back()]);
                std::reverse(path.begin(), path.end());
                return;
            }
            frontier[tail++] = v;
        }
    }
}

bool
Topology::connected() const
{
    std::vector<bool> seen(num_qubits_, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int count = 1;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++count;
                frontier.push(v);
            }
        }
    }
    return count == num_qubits_;
}

Topology
Topology::inducedSubgraph(const std::vector<int>& qubits) const
{
    Topology sub(static_cast<int>(qubits.size()));
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j)
            if (adjacent(qubits[i], qubits[j]))
                sub.addEdge(static_cast<int>(i), static_cast<int>(j));
    if (!hasCores())
        return sub;

    // Carry the core structure: selected qubits keep their core
    // membership, cores with at least one survivor are renumbered in
    // original order, and a teleport edge survives iff both comm
    // endpoints were selected.
    std::vector<int> new_id(num_qubits_, -1);
    for (size_t i = 0; i < qubits.size(); ++i) {
        QISET_REQUIRE(qubits[i] >= 0 && qubits[i] < num_qubits_,
                      "induced subgraph qubit out of range");
        new_id[qubits[i]] = static_cast<int>(i);
    }
    std::vector<int> new_core(cores_.size(), -1);
    std::vector<Core> sub_cores;
    for (size_t c = 0; c < cores_.size(); ++c) {
        Core mapped;
        for (int q : cores_[c].qubits)
            if (new_id[q] >= 0)
                mapped.qubits.push_back(new_id[q]);
        if (mapped.qubits.empty())
            continue;
        for (int q : cores_[c].comm_qubits)
            if (new_id[q] >= 0)
                mapped.comm_qubits.push_back(new_id[q]);
        std::sort(mapped.qubits.begin(), mapped.qubits.end());
        std::sort(mapped.comm_qubits.begin(), mapped.comm_qubits.end());
        new_core[c] = static_cast<int>(sub_cores.size());
        sub_cores.push_back(std::move(mapped));
    }
    sub.setCores(std::move(sub_cores));
    for (const TeleportEdge& edge : teleport_edges_) {
        if (new_id[edge.comm_a] < 0 || new_id[edge.comm_b] < 0)
            continue;
        TeleportEdge mapped = edge;
        mapped.core_a = new_core[edge.core_a];
        mapped.core_b = new_core[edge.core_b];
        mapped.comm_a = new_id[edge.comm_a];
        mapped.comm_b = new_id[edge.comm_b];
        sub.addTeleportEdge(mapped);
    }
    return sub;
}

std::vector<std::vector<int>>
Topology::balancedPartitions(int count) const
{
    QISET_REQUIRE(count >= 1 && count <= num_qubits_,
                  "partition count out of range (", count, " regions, ",
                  num_qubits_, " qubits)");
    QISET_REQUIRE(connected(),
                  "cannot partition a disconnected topology");

    // Farthest-point seeds: qubit 0, then repeatedly the qubit with
    // the largest BFS distance to every seed so far (ties -> lowest
    // index), so regions start spread across the graph.
    std::vector<int> dist(num_qubits_, num_qubits_);
    std::vector<int> seeds;
    auto absorbSeed = [&](int seed) {
        seeds.push_back(seed);
        std::queue<int> frontier;
        frontier.push(seed);
        dist[seed] = 0;
        while (!frontier.empty()) {
            int u = frontier.front();
            frontier.pop();
            for (int v : adjacency_[u]) {
                if (dist[u] + 1 < dist[v]) {
                    dist[v] = dist[u] + 1;
                    frontier.push(v);
                }
            }
        }
    };
    absorbSeed(0);
    while (static_cast<int>(seeds.size()) < count) {
        int farthest = 0;
        for (int q = 1; q < num_qubits_; ++q)
            if (dist[q] > dist[farthest])
                farthest = q;
        absorbSeed(farthest);
    }

    // Round-robin growth: each region claims one qubit per turn, the
    // lowest-index unclaimed neighbor of its earliest member that can
    // still grow. Claiming is monotone, so a member whose neighbors
    // are all claimed can be dropped from the growth queue for good.
    std::vector<std::vector<int>> regions(count);
    std::vector<int> owner(num_qubits_, -1);
    std::vector<std::queue<int>> grow(count);
    for (int r = 0; r < count; ++r) {
        owner[seeds[r]] = r;
        regions[r].push_back(seeds[r]);
        grow[r].push(seeds[r]);
    }
    int claimed = count;
    while (claimed < num_qubits_) {
        for (int r = 0; r < count && claimed < num_qubits_; ++r) {
            while (!grow[r].empty()) {
                int member = grow[r].front();
                int pick = -1;
                for (int v : adjacency_[member])
                    if (owner[v] < 0 && (pick < 0 || v < pick))
                        pick = v;
                if (pick < 0) {
                    grow[r].pop();
                    continue;
                }
                owner[pick] = r;
                regions[r].push_back(pick);
                grow[r].push(pick);
                ++claimed;
                break;
            }
        }
    }
    for (auto& region : regions)
        std::sort(region.begin(), region.end());
    return regions;
}

Topology
Topology::line(int n)
{
    Topology t(n);
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1);
    return t;
}

Topology
Topology::ring(int n)
{
    Topology t = line(n);
    if (n > 2)
        t.addEdge(n - 1, 0);
    return t;
}

Topology
Topology::grid(int rows, int cols)
{
    Topology t(rows * cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            int idx = r * cols + c;
            if (c + 1 < cols)
                t.addEdge(idx, idx + 1);
            if (r + 1 < rows)
                t.addEdge(idx, idx + cols);
        }
    }
    return t;
}

void
Topology::setCores(std::vector<Core> cores)
{
    QISET_REQUIRE(!cores.empty(), "core partition must be non-empty");
    std::vector<int> owner(num_qubits_, -1);
    for (size_t c = 0; c < cores.size(); ++c) {
        QISET_REQUIRE(!cores[c].qubits.empty(), "core ", c,
                      " has no qubits");
        for (int q : cores[c].qubits) {
            QISET_REQUIRE(q >= 0 && q < num_qubits_, "core qubit ", q,
                          " out of range");
            QISET_REQUIRE(owner[q] < 0, "qubit ", q,
                          " belongs to two cores");
            owner[q] = static_cast<int>(c);
        }
        for (int q : cores[c].comm_qubits)
            QISET_REQUIRE(std::find(cores[c].qubits.begin(),
                                    cores[c].qubits.end(),
                                    q) != cores[c].qubits.end(),
                          "comm qubit ", q, " not a member of core ", c);
    }
    for (int q = 0; q < num_qubits_; ++q)
        QISET_REQUIRE(owner[q] >= 0, "qubit ", q,
                      " belongs to no core");
    cores_ = std::move(cores);
    core_of_ = std::move(owner);
    teleport_edges_.clear();
}

void
Topology::addTeleportEdge(TeleportEdge edge)
{
    QISET_REQUIRE(hasCores(),
                  "teleport edge on a topology without cores");
    QISET_REQUIRE(edge.core_a >= 0 && edge.core_a < numCores() &&
                      edge.core_b >= 0 && edge.core_b < numCores(),
                  "teleport edge core out of range");
    QISET_REQUIRE(edge.core_a != edge.core_b,
                  "teleport edge must join two distinct cores");
    QISET_REQUIRE(coreOf(edge.comm_a) == edge.core_a,
                  "comm qubit ", edge.comm_a, " not in core ",
                  edge.core_a);
    QISET_REQUIRE(coreOf(edge.comm_b) == edge.core_b,
                  "comm qubit ", edge.comm_b, " not in core ",
                  edge.core_b);
    auto designate = [this](int core, int q) {
        auto& comm = cores_[static_cast<size_t>(core)].comm_qubits;
        if (std::find(comm.begin(), comm.end(), q) == comm.end()) {
            comm.push_back(q);
            std::sort(comm.begin(), comm.end());
        }
    };
    designate(edge.core_a, edge.comm_a);
    designate(edge.core_b, edge.comm_b);
    teleport_edges_.push_back(edge);
}

const Core&
Topology::core(int index) const
{
    QISET_REQUIRE(index >= 0 && index < numCores(),
                  "core index out of range");
    return cores_[static_cast<size_t>(index)];
}

int
Topology::coreOf(int q) const
{
    QISET_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    if (core_of_.empty())
        return -1;
    return core_of_[static_cast<size_t>(q)];
}

int
Topology::coreDistance(int core_a, int core_b) const
{
    QISET_REQUIRE(core_a >= 0 && core_a < numCores() && core_b >= 0 &&
                      core_b < numCores(),
                  "core index out of range");
    if (core_a == core_b)
        return 0;
    std::vector<int> dist(cores_.size(), -1);
    std::queue<int> frontier;
    dist[static_cast<size_t>(core_a)] = 0;
    frontier.push(core_a);
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (const TeleportEdge& edge : teleport_edges_) {
            int v = -1;
            if (edge.core_a == u)
                v = edge.core_b;
            else if (edge.core_b == u)
                v = edge.core_a;
            else
                continue;
            if (dist[static_cast<size_t>(v)] >= 0)
                continue;
            dist[static_cast<size_t>(v)] =
                dist[static_cast<size_t>(u)] + 1;
            if (v == core_b)
                return dist[static_cast<size_t>(v)];
            frontier.push(v);
        }
    }
    return -1;
}

int
Topology::intraCoreDistance(int a, int b) const
{
    QISET_REQUIRE(hasCores(), "intra-core distance without cores");
    int core = coreOf(a);
    if (core != coreOf(b))
        return -1;
    if (a == b)
        return 0;
    // BFS restricted to the owning core's qubits.
    std::vector<int> dist(num_qubits_, -1);
    std::queue<int> frontier;
    dist[static_cast<size_t>(a)] = 0;
    frontier.push(a);
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (coreOf(v) != core || dist[static_cast<size_t>(v)] >= 0)
                continue;
            dist[static_cast<size_t>(v)] =
                dist[static_cast<size_t>(u)] + 1;
            if (v == b)
                return dist[static_cast<size_t>(v)];
            frontier.push(v);
        }
    }
    return -1;
}

bool
Topology::connectedWithTeleport() const
{
    std::vector<bool> seen(num_qubits_, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int count = 1;
    auto visit = [&](int v) {
        if (!seen[static_cast<size_t>(v)]) {
            seen[static_cast<size_t>(v)] = true;
            ++count;
            frontier.push(v);
        }
    };
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u])
            visit(v);
        for (const TeleportEdge& edge : teleport_edges_) {
            if (edge.comm_a == u)
                visit(edge.comm_b);
            else if (edge.comm_b == u)
                visit(edge.comm_a);
        }
    }
    return count == num_qubits_;
}

Topology
Topology::gridOfGrids(int core_rows, int core_cols, int rows, int cols,
                      double epr_fidelity, double attempt_duration_ns,
                      double mean_attempts)
{
    QISET_REQUIRE(core_rows >= 1 && core_cols >= 1 && rows >= 1 &&
                      cols >= 1,
                  "grid-of-grids dimensions must be positive");
    int per_core = rows * cols;
    int num_cores = core_rows * core_cols;
    Topology t(num_cores * per_core);

    std::vector<Core> cores(static_cast<size_t>(num_cores));
    for (int cr = 0; cr < core_rows; ++cr) {
        for (int cc = 0; cc < core_cols; ++cc) {
            int core = cr * core_cols + cc;
            int base = core * per_core;
            for (int r = 0; r < rows; ++r) {
                for (int c = 0; c < cols; ++c) {
                    int idx = base + r * cols + c;
                    cores[static_cast<size_t>(core)].qubits.push_back(
                        idx);
                    if (c + 1 < cols)
                        t.addEdge(idx, idx + 1);
                    if (r + 1 < rows)
                        t.addEdge(idx, idx + cols);
                }
            }
        }
    }
    t.setCores(std::move(cores));

    // One teleport link per adjacent core pair, comm qubits at the
    // midpoint of the facing boundary.
    auto local = [&](int r, int c) { return r * cols + c; };
    for (int cr = 0; cr < core_rows; ++cr) {
        for (int cc = 0; cc < core_cols; ++cc) {
            int core = cr * core_cols + cc;
            int base = core * per_core;
            TeleportEdge edge;
            edge.epr_fidelity = epr_fidelity;
            edge.attempt_duration_ns = attempt_duration_ns;
            edge.mean_attempts = mean_attempts;
            if (cc + 1 < core_cols) {
                edge.core_a = core;
                edge.core_b = core + 1;
                edge.comm_a = base + local(rows / 2, cols - 1);
                edge.comm_b = (core + 1) * per_core + local(rows / 2, 0);
                t.addTeleportEdge(edge);
            }
            if (cr + 1 < core_rows) {
                edge.core_a = core;
                edge.core_b = core + core_cols;
                edge.comm_a = base + local(rows - 1, cols / 2);
                edge.comm_b = (core + core_cols) * per_core +
                              local(0, cols / 2);
                t.addTeleportEdge(edge);
            }
        }
    }
    return t;
}

CommQubitLedger::CommQubitLedger(const Topology& topology)
    : comm_(static_cast<size_t>(topology.numQubits()), false),
      held_(static_cast<size_t>(topology.numQubits()), false)
{
    for (int c = 0; c < topology.numCores(); ++c)
        for (int q : topology.core(c).comm_qubits)
            comm_[static_cast<size_t>(q)] = true;
}

bool
CommQubitLedger::isCommQubit(int q) const
{
    return q >= 0 && q < static_cast<int>(comm_.size()) &&
           comm_[static_cast<size_t>(q)];
}

bool
CommQubitLedger::reserve(int q)
{
    if (!isCommQubit(q) || held_[static_cast<size_t>(q)])
        return false;
    held_[static_cast<size_t>(q)] = true;
    return true;
}

void
CommQubitLedger::release(int q)
{
    if (q >= 0 && q < static_cast<int>(held_.size()))
        held_[static_cast<size_t>(q)] = false;
}

bool
CommQubitLedger::held(int q) const
{
    return q >= 0 && q < static_cast<int>(held_.size()) &&
           held_[static_cast<size_t>(q)];
}

} // namespace qiset
