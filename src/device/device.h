#ifndef QISET_DEVICE_DEVICE_H
#define QISET_DEVICE_DEVICE_H

/**
 * @file
 * Device model: topology plus calibration data (per-edge, per-gate-type
 * two-qubit fidelities; per-qubit 1Q error, T1/T2 and readout error;
 * gate durations). The compiler reads fidelities for noise-adaptive
 * gate selection and stamps error rates/durations onto the compiled
 * circuit; the simulators turn those into noise channels.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "device/topology.h"
#include "sim/noise_model.h"

namespace qiset {

/** A calibrated QC device. */
class Device
{
  public:
    Device(std::string name, Topology topology);

    const std::string& name() const { return name_; }
    const Topology& topology() const { return topology_; }
    int numQubits() const { return topology_.numQubits(); }

    /** Set the calibrated fidelity of a gate type on an edge. */
    void setEdgeFidelity(int a, int b, const std::string& gate_type,
                         double fidelity);

    /**
     * Calibrated fidelity of gate_type on edge (a, b); zero when the
     * type is not calibrated there (i.e. unavailable).
     */
    double edgeFidelity(int a, int b, const std::string& gate_type) const;

    /** True if the gate type has nonzero fidelity on the edge. */
    bool supportsGate(int a, int b, const std::string& gate_type) const;

    /** Per-qubit single-qubit gate error rate. */
    void setOneQubitError(int q, double error_rate);
    double oneQubitError(int q) const;

    /** Average 1Q error across qubits (used in Fh estimates). */
    double averageOneQubitError() const;

    /** Per-qubit relaxation and readout parameters. */
    void setQubitNoise(int q, const QubitNoise& noise);
    const QubitNoise& qubitNoise(int q) const;

    /** Gate durations in nanoseconds. */
    void setTwoQubitDuration(double ns) { two_qubit_duration_ns_ = ns; }
    void setOneQubitDuration(double ns) { one_qubit_duration_ns_ = ns; }
    double twoQubitDurationNs() const { return two_qubit_duration_ns_; }
    double oneQubitDurationNs() const { return one_qubit_duration_ns_; }

    /**
     * Noise model for a subset of qubits (compressed register order):
     * entry i of the result describes physical qubit `physical[i]`.
     */
    NoiseModel noiseModelFor(const std::vector<int>& physical) const;

    /** Mean fidelity of a gate type across all edges supporting it. */
    double meanEdgeFidelity(const std::string& gate_type) const;

    /**
     * Copy of this device with every gate type's fidelity on an edge
     * replaced by the edge's reference type fidelity — the "no noise
     * variation across gate types" ablation of Fig. 10e.
     */
    Device withUniformGateTypes(const std::string& reference_type) const;

    /**
     * Copy with all two-qubit error rates scaled by `factor`
     * (error' = min(1, factor * error)); used by the Fig. 7 sweep.
     */
    Device withScaledTwoQubitErrors(double factor) const;

    /**
     * Copy with *all* noise sources scaled: 2Q and 1Q error rates and
     * readout confusion multiplied by `factor`, T1/T2 divided by it
     * (a uniformly better/worse process). Drives the Fig. 10f
     * hardware-improvement axis.
     */
    Device withScaledNoise(double factor) const;

    /** Names of gate types calibrated on at least one edge. */
    std::vector<std::string> calibratedGateTypes() const;

    /**
     * Sub-device on the given qubits (compile-shard extraction):
     * topology is the induced subgraph, and per-qubit noise, 1Q
     * errors, gate durations and the calibrated fidelities of every
     * internal edge carry over (relabeled so result qubit i is
     * `qubits[i]`). Edges leaving the region are dropped, so
     * compiling on the extracted device is exactly compiling on that
     * region of the parent. Qubits must be unique and in range.
     */
    Device extractRegion(const std::vector<int>& qubits,
                         const std::string& region_name = "") const;

    /**
     * Simulate calibration drift (Section IX: parameters drift over
     * time, with gate-error fluctuations of up to 10x): every edge's
     * error rate for every gate type is multiplied by an independent
     * log-uniform factor in [1/max_factor, max_factor].
     * The returned device is the *true* (drifted) hardware; compiling
     * against the stale original models skipping recalibration.
     */
    Device withDriftedCalibration(Rng& rng, double max_factor) const;

  private:
    static uint64_t edgeKey(int a, int b);

    std::string name_;
    Topology topology_;
    std::unordered_map<uint64_t,
                       std::unordered_map<std::string, double>>
        edge_fidelities_;
    std::vector<double> one_qubit_error_;
    std::vector<QubitNoise> qubit_noise_;
    double two_qubit_duration_ns_ = 30.0;
    double one_qubit_duration_ns_ = 25.0;
};

/**
 * Synthetic Rigetti Aspen-8: 30 functional qubits in four octagonal
 * rings. Ring-0 XY(pi)/CZ fidelities are hardcoded from Fig. 3 of the
 * paper; remaining edges are sampled from the same empirical ranges.
 * Arbitrary XY(theta) types get U(0.95, 0.99) fidelity (Abrams et al.).
 */
Device makeAspen8(Rng& rng);

/**
 * Synthetic Google Sycamore: 54 qubits on a 6x9 grid. SYC errors are
 * N(0.62%, 0.24%) truncated positive; every other studied gate type is
 * drawn independently from the same distribution (the paper's own
 * modeling assumption).
 */
Device makeSycamore(Rng& rng);

/** Parameters of a synthetic modular (chiplet) device. */
struct ChipletSpec
{
    /** Grid of cores. */
    int core_rows = 2;
    int core_cols = 2;
    /** Coupling grid inside each core. */
    int rows = 2;
    int cols = 3;
    /** Intra-core two-qubit error distribution, N(mu, sigma)
     *  truncated to [min, max] per gate type per edge. */
    double two_q_error_mu = 0.0062;
    double two_q_error_sigma = 0.0024;
    /** EPR link cost model (shared by every teleport edge). */
    double epr_fidelity = 0.985;
    double attempt_duration_ns = 500.0;
    double mean_attempts = 2.0;
};

/**
 * Synthetic chiplet QPU: an N×M grid of identical grid cores joined by
 * EPR teleport links (Topology::gridOfGrids). Intra-core calibration
 * follows the Sycamore error model; there are no calibrated edges
 * across cores — the only inter-core channel is teleportation.
 */
Device makeChipletDevice(const ChipletSpec& spec, Rng& rng);

} // namespace qiset

#endif // QISET_DEVICE_DEVICE_H
