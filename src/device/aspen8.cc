#include <algorithm>

#include "device/device.h"

namespace qiset {

namespace {

/**
 * Aspen-8 connectivity: four octagonal rings with two bridge couplers
 * between consecutive rings; two qubits of the last ring are not
 * functional (30 usable qubits), matching the paper's description.
 */
Topology
aspen8Topology()
{
    const int num_rings = 4;
    const int total = 30; // 32 sites minus the two dead qubits (30, 31)
    Topology topo(total);
    auto alive = [&](int q) { return q < total; };
    for (int r = 0; r < num_rings; ++r) {
        int base = 8 * r;
        for (int i = 0; i < 8; ++i) {
            int a = base + i;
            int b = base + (i + 1) % 8;
            if (alive(a) && alive(b))
                topo.addEdge(a, b);
        }
        if (r + 1 < num_rings) {
            // Bridges: nodes 1, 2 of ring r to nodes 6, 5 of ring r+1.
            int a1 = base + 1, b1 = base + 8 + 6;
            int a2 = base + 2, b2 = base + 8 + 5;
            if (alive(a1) && alive(b1))
                topo.addEdge(a1, b1);
            if (alive(a2) && alive(b2))
                topo.addEdge(a2, b2);
        }
    }
    return topo;
}

} // namespace

Device
makeAspen8(Rng& rng)
{
    Device device("Aspen-8", aspen8Topology());

    // Ring-0 measured XY(pi) (= S4) and CZ (= S3) fidelities from
    // Fig. 3 of the paper. XY fidelity 0 means the gate is not
    // calibrated on that pair.
    struct Ring0Entry
    {
        int a, b;
        double xy, cz;
    };
    const Ring0Entry ring0[] = {
        {0, 1, 0.00, 0.86}, {1, 2, 0.00, 0.81}, {2, 3, 0.97, 0.94},
        {3, 4, 0.95, 0.97}, {4, 5, 0.84, 0.94}, {5, 6, 0.96, 0.93},
        {6, 7, 0.70, 0.94}, {7, 0, 0.00, 0.96},
    };

    auto in_ring0 = [&](int a, int b, double& xy, double& cz) {
        for (const auto& e : ring0) {
            if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
                xy = e.xy;
                cz = e.cz;
                return true;
            }
        }
        return false;
    };

    for (auto [a, b] : device.topology().edges()) {
        double xy_pi, cz;
        if (!in_ring0(a, b, xy_pi, cz)) {
            // Remaining edges: sampled from the same empirical ranges
            // as the published ring-0 calibration snapshot.
            cz = rng.uniform(0.81, 0.97);
            xy_pi = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.70, 0.97);
        }
        device.setEdgeFidelity(a, b, "S3", cz);
        device.setEdgeFidelity(a, b, "S4", xy_pi);
        // Arbitrary XY(theta) instances (S2 = XY(pi/2), S5 = XY(2pi/3),
        // S6 = XY(3pi/4)) follow the 95-99% fidelity model of Abrams
        // et al. used in Section VI.
        double s2 = rng.uniform(0.95, 0.99);
        double s5 = rng.uniform(0.95, 0.99);
        double s6 = rng.uniform(0.95, 0.99);
        device.setEdgeFidelity(a, b, "S2", s2);
        device.setEdgeFidelity(a, b, "S5", s5);
        device.setEdgeFidelity(a, b, "S6", s6);
        // The continuous family contains every discrete member, so
        // its per-edge fidelity is at least the best of them.
        double xy_family = std::max({rng.uniform(0.95, 0.99), s2, s5,
                                     s6});
        device.setEdgeFidelity(a, b, "XY", xy_family);
        // Continuous Controlled-Phase family (extension study):
        // contains the calibrated CZ as its phi = pi member.
        device.setEdgeFidelity(a, b, "CZt",
                               std::max(rng.uniform(0.95, 0.99), cz));
        device.setEdgeFidelity(a, b, "SWAP", rng.uniform(0.95, 0.99));
    }

    for (int q = 0; q < device.numQubits(); ++q) {
        device.setOneQubitError(q, rng.uniform(0.001, 0.003));
        QubitNoise noise;
        noise.t1_ns = rng.uniform(20e3, 40e3);
        noise.t2_ns = std::min(rng.uniform(15e3, 30e3), 2.0 * noise.t1_ns);
        noise.readout_p01 = rng.uniform(0.02, 0.05);
        noise.readout_p10 = rng.uniform(0.02, 0.05);
        device.setQubitNoise(q, noise);
    }

    device.setTwoQubitDuration(176.0);
    device.setOneQubitDuration(40.0);
    return device;
}

} // namespace qiset
