#include <algorithm>

#include "device/device.h"

namespace qiset {

Device
makeSycamore(Rng& rng)
{
    // 54 qubits on a 6x9 grid (same qubit count and nearest-neighbour
    // degree structure as the Sycamore brick lattice).
    Device device("Sycamore", Topology::grid(6, 9));

    // Two-qubit error-rate distribution: the paper models every
    // non-SYC gate type as N(mu = 0.62%, sigma = 0.24%), matching the
    // measured SYC distribution; we sample each type independently per
    // edge, which is exactly the cross-gate-type variability the
    // noise-adaptive pass exploits.
    const char* types[] = {"S1", "S2", "S3", "S4",
                           "S5", "S6", "S7", "SWAP"};
    for (auto [a, b] : device.topology().edges()) {
        // The continuous family contains every discrete type (SWAP is
        // fSim(pi/2, pi) up to 1Q rotations), so its fidelity on an
        // edge is at least the best calibrated member's.
        double family = 1.0 - rng.truncatedNormal(0.0062, 0.0024,
                                                  0.0005, 0.03);
        for (const char* type : types) {
            double error =
                rng.truncatedNormal(0.0062, 0.0024, 0.0005, 0.03);
            device.setEdgeFidelity(a, b, type, 1.0 - error);
            family = std::max(family, 1.0 - error);
        }
        device.setEdgeFidelity(a, b, "fSim", family);
        // Continuous Controlled-Phase sub-family (extension study):
        // bounded below by its calibrated CZ member.
        device.setEdgeFidelity(
            a, b, "CZt",
            std::max(device.edgeFidelity(a, b, "S3"),
                     1.0 - rng.truncatedNormal(0.0062, 0.0024, 0.0005,
                                               0.03)));
    }

    for (int q = 0; q < device.numQubits(); ++q) {
        device.setOneQubitError(q, rng.uniform(0.0005, 0.0015));
        QubitNoise noise;
        noise.t1_ns = rng.uniform(12e3, 18e3);
        noise.t2_ns = std::min(rng.uniform(10e3, 20e3), 2.0 * noise.t1_ns);
        noise.readout_p01 = rng.uniform(0.01, 0.04);
        noise.readout_p10 = rng.uniform(0.02, 0.05);
        device.setQubitNoise(q, noise);
    }

    device.setTwoQubitDuration(20.0);
    device.setOneQubitDuration(25.0);
    return device;
}

} // namespace qiset
