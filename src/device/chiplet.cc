#include <algorithm>

#include "device/device.h"

namespace qiset {

Device
makeChipletDevice(const ChipletSpec& spec, Rng& rng)
{
    Topology topo = Topology::gridOfGrids(
        spec.core_rows, spec.core_cols, spec.rows, spec.cols,
        spec.epr_fidelity, spec.attempt_duration_ns, spec.mean_attempts);
    Device device("Chiplet" + std::to_string(spec.core_rows) + "x" +
                      std::to_string(spec.core_cols),
                  std::move(topo));

    // Intra-core calibration mirrors the Sycamore error model so
    // chiplet and monolithic shards are comparable in one fleet. Every
    // coupling edge is intra-core by construction; teleport links
    // carry their own EPR cost model on the topology.
    const char* types[] = {"S1", "S2", "S3", "S4",
                           "S5", "S6", "S7", "SWAP"};
    for (auto [a, b] : device.topology().edges()) {
        double family = 1.0 - rng.truncatedNormal(0.0062, 0.0024,
                                                  0.0005, 0.03);
        for (const char* type : types) {
            double error = rng.truncatedNormal(spec.two_q_error_mu,
                                               spec.two_q_error_sigma,
                                               0.0005, 0.03);
            device.setEdgeFidelity(a, b, type, 1.0 - error);
            family = std::max(family, 1.0 - error);
        }
        device.setEdgeFidelity(a, b, "fSim", family);
        device.setEdgeFidelity(
            a, b, "CZt",
            std::max(device.edgeFidelity(a, b, "S3"),
                     1.0 - rng.truncatedNormal(spec.two_q_error_mu,
                                               spec.two_q_error_sigma,
                                               0.0005, 0.03)));
    }

    for (int q = 0; q < device.numQubits(); ++q) {
        device.setOneQubitError(q, rng.uniform(0.0005, 0.0015));
        QubitNoise noise;
        noise.t1_ns = rng.uniform(12e3, 18e3);
        noise.t2_ns = std::min(rng.uniform(10e3, 20e3), 2.0 * noise.t1_ns);
        noise.readout_p01 = rng.uniform(0.01, 0.04);
        noise.readout_p10 = rng.uniform(0.02, 0.05);
        device.setQubitNoise(q, noise);
    }

    device.setTwoQubitDuration(20.0);
    device.setOneQubitDuration(25.0);
    return device;
}

} // namespace qiset
