#include "device/device.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace qiset {

Device::Device(std::string name, Topology topology)
    : name_(std::move(name)), topology_(std::move(topology)),
      one_qubit_error_(topology_.numQubits(), 0.0),
      qubit_noise_(topology_.numQubits())
{
}

uint64_t
Device::edgeKey(int a, int b)
{
    if (a > b)
        std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
}

void
Device::setEdgeFidelity(int a, int b, const std::string& gate_type,
                        double fidelity)
{
    QISET_REQUIRE(topology_.adjacent(a, b), "(", a, ",", b,
                  ") is not a coupled pair");
    QISET_REQUIRE(fidelity >= 0.0 && fidelity <= 1.0,
                  "fidelity out of [0, 1]");
    edge_fidelities_[edgeKey(a, b)][gate_type] = fidelity;
}

double
Device::edgeFidelity(int a, int b, const std::string& gate_type) const
{
    auto edge_it = edge_fidelities_.find(edgeKey(a, b));
    if (edge_it == edge_fidelities_.end())
        return 0.0;
    auto type_it = edge_it->second.find(gate_type);
    if (type_it == edge_it->second.end())
        return 0.0;
    return type_it->second;
}

bool
Device::supportsGate(int a, int b, const std::string& gate_type) const
{
    return edgeFidelity(a, b, gate_type) > 0.0;
}

void
Device::setOneQubitError(int q, double error_rate)
{
    one_qubit_error_.at(q) = error_rate;
}

double
Device::oneQubitError(int q) const
{
    return one_qubit_error_.at(q);
}

double
Device::averageOneQubitError() const
{
    double sum = 0.0;
    for (double e : one_qubit_error_)
        sum += e;
    return sum / one_qubit_error_.size();
}

void
Device::setQubitNoise(int q, const QubitNoise& noise)
{
    qubit_noise_.at(q) = noise;
}

const QubitNoise&
Device::qubitNoise(int q) const
{
    return qubit_noise_.at(q);
}

NoiseModel
Device::noiseModelFor(const std::vector<int>& physical) const
{
    std::vector<QubitNoise> noise;
    noise.reserve(physical.size());
    for (int q : physical)
        noise.push_back(qubit_noise_.at(q));
    return NoiseModel(std::move(noise));
}

double
Device::meanEdgeFidelity(const std::string& gate_type) const
{
    double sum = 0.0;
    int count = 0;
    for (const auto& [key, types] : edge_fidelities_) {
        auto it = types.find(gate_type);
        if (it != types.end() && it->second > 0.0) {
            sum += it->second;
            ++count;
        }
    }
    return count ? sum / count : 0.0;
}

Device
Device::withUniformGateTypes(const std::string& reference_type) const
{
    Device copy = *this;
    for (auto& [key, types] : copy.edge_fidelities_) {
        auto it = types.find(reference_type);
        if (it == types.end() || it->second <= 0.0)
            continue;
        double reference = it->second;
        for (auto& [name, fidelity] : types)
            if (fidelity > 0.0)
                fidelity = reference;
    }
    return copy;
}

Device
Device::withScaledTwoQubitErrors(double factor) const
{
    QISET_REQUIRE(factor >= 0.0, "scale factor must be non-negative");
    Device copy = *this;
    for (auto& [key, types] : copy.edge_fidelities_)
        for (auto& [name, fidelity] : types) {
            if (fidelity <= 0.0)
                continue;
            double error = std::min(1.0, factor * (1.0 - fidelity));
            fidelity = 1.0 - error;
        }
    return copy;
}

Device
Device::withScaledNoise(double factor) const
{
    QISET_REQUIRE(factor > 0.0, "scale factor must be positive");
    Device copy = withScaledTwoQubitErrors(factor);
    for (auto& error : copy.one_qubit_error_)
        error = std::min(1.0, factor * error);
    for (auto& noise : copy.qubit_noise_) {
        noise.t1_ns /= factor;
        noise.t2_ns /= factor;
        noise.readout_p01 = std::min(1.0, factor * noise.readout_p01);
        noise.readout_p10 = std::min(1.0, factor * noise.readout_p10);
    }
    return copy;
}

Device
Device::withDriftedCalibration(Rng& rng, double max_factor) const
{
    QISET_REQUIRE(max_factor >= 1.0, "drift factor must be >= 1");
    Device copy = *this;
    double log_max = std::log(max_factor);
    for (auto& [key, types] : copy.edge_fidelities_)
        for (auto& [name, fidelity] : types) {
            if (fidelity <= 0.0)
                continue;
            double factor = std::exp(rng.uniform(-log_max, log_max));
            double error = std::min(1.0, factor * (1.0 - fidelity));
            fidelity = 1.0 - error;
        }
    return copy;
}

Device
Device::extractRegion(const std::vector<int>& qubits,
                      const std::string& region_name) const
{
    QISET_REQUIRE(!qubits.empty(), "region needs at least one qubit");
    std::set<int> unique(qubits.begin(), qubits.end());
    QISET_REQUIRE(unique.size() == qubits.size(),
                  "region qubits must be unique");
    for (int q : qubits)
        QISET_REQUIRE(q >= 0 && q < numQubits(), "region qubit ", q,
                      " out of range");

    Device region(region_name.empty() ? name_ + "/region" : region_name,
                  topology_.inducedSubgraph(qubits));
    region.two_qubit_duration_ns_ = two_qubit_duration_ns_;
    region.one_qubit_duration_ns_ = one_qubit_duration_ns_;
    for (size_t i = 0; i < qubits.size(); ++i) {
        region.one_qubit_error_[i] = one_qubit_error_.at(qubits[i]);
        region.qubit_noise_[i] = qubit_noise_.at(qubits[i]);
    }
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j) {
            auto it = edge_fidelities_.find(edgeKey(qubits[i], qubits[j]));
            if (it == edge_fidelities_.end() ||
                !topology_.adjacent(qubits[i], qubits[j]))
                continue;
            region.edge_fidelities_[edgeKey(static_cast<int>(i),
                                            static_cast<int>(j))] =
                it->second;
        }
    return region;
}

std::vector<std::string>
Device::calibratedGateTypes() const
{
    std::set<std::string> names;
    for (const auto& [key, types] : edge_fidelities_)
        for (const auto& [name, fidelity] : types)
            if (fidelity > 0.0)
                names.insert(name);
    return {names.begin(), names.end()};
}

} // namespace qiset
