#ifndef QISET_DEVICE_TOPOLOGY_H
#define QISET_DEVICE_TOPOLOGY_H

/**
 * @file
 * Qubit connectivity graphs. NISQ devices restrict two-qubit gates to
 * coupled pairs; the router uses these graphs to insert SWAPs.
 */

#include <utility>
#include <vector>

namespace qiset {

/** Undirected coupling graph over qubits 0..n-1. */
class Topology
{
  public:
    /** Graph with n isolated qubits. */
    explicit Topology(int num_qubits);

    int numQubits() const { return num_qubits_; }

    /** Add an undirected edge (idempotent). */
    void addEdge(int a, int b);

    bool adjacent(int a, int b) const;

    const std::vector<int>& neighbors(int q) const;

    /** All edges with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    int numEdges() const;

    /** BFS shortest path from a to b (inclusive); empty if unreachable. */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * shortestPath into caller-owned storage: `path` receives the
     * result, `scratch` holds the BFS working set. Both grow to
     * steady-state capacity on first use and are reused verbatim on
     * every following call — the routers query paths once per SWAP
     * candidate, and this keeps those sweeps off the heap. Produces
     * exactly the path shortestPath() returns.
     */
    void shortestPathInto(int a, int b, std::vector<int>& path,
                          std::vector<int>& scratch) const;

    /** True if every qubit can reach every other. */
    bool connected() const;

    /**
     * Induced subgraph on the given qubits; node i of the result is
     * qubits[i].
     */
    Topology inducedSubgraph(const std::vector<int>& qubits) const;

    /**
     * Partition all qubits into `count` disjoint connected regions of
     * roughly equal size (the building block of multi-region compile
     * sharding). Seeds are chosen by farthest-point sampling and the
     * regions grow round-robin, one qubit per turn, always claiming
     * the lowest-index unclaimed neighbor — fully deterministic.
     * Every qubit lands in exactly one region; each region is sorted
     * ascending. Requires a connected topology.
     */
    std::vector<std::vector<int>> balancedPartitions(int count) const;

    /** Path graph 0-1-...-(n-1). */
    static Topology line(int n);

    /** Cycle graph. */
    static Topology ring(int n);

    /** Rectangular grid with row-major numbering. */
    static Topology grid(int rows, int cols);

  private:
    int num_qubits_;
    std::vector<std::vector<int>> adjacency_;
};

} // namespace qiset

#endif // QISET_DEVICE_TOPOLOGY_H
