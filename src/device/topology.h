#ifndef QISET_DEVICE_TOPOLOGY_H
#define QISET_DEVICE_TOPOLOGY_H

/**
 * @file
 * Qubit connectivity graphs. NISQ devices restrict two-qubit gates to
 * coupled pairs; the router uses these graphs to insert SWAPs.
 *
 * A topology may additionally carry a *core structure* describing a
 * modular (chiplet) QPU: every qubit belongs to exactly one Core of
 * bounded capacity, and cores are linked by TeleportEdges between
 * designated communication qubits. Coupling edges never cross cores on
 * such devices; the only inter-core channel is EPR-mediated
 * teleportation, which the TeleportRouter ("telesabre") models.
 * Topologies without cores behave exactly as before.
 */

#include <utility>
#include <vector>

namespace qiset {

/**
 * One chiplet of a modular device: a bounded set of qubits plus the
 * subset designated as communication (EPR-half) qubits. Capacity is
 * the qubit count — the shard planner and chooseMapping never place
 * more logicals on a core than it holds.
 */
struct Core
{
    /** Device qubit ids belonging to this core, sorted ascending. */
    std::vector<int> qubits;
    /** Subset of `qubits` usable as EPR endpoints for teleport edges. */
    std::vector<int> comm_qubits;

    int capacity() const { return static_cast<int>(qubits.size()); }
};

/**
 * An EPR-mediated teleportation link between two cores. The endpoints
 * comm_a (in core_a) and comm_b (in core_b) are *not* coupling-adjacent;
 * crossing the link consumes one EPR pair per exchange teleportation,
 * with the attempt cost model below (heralded generation succeeds with
 * fidelity `epr_fidelity` after `mean_attempts` tries of
 * `attempt_duration_ns` each).
 */
struct TeleportEdge
{
    int core_a = -1;
    int core_b = -1;
    /** Communication qubit inside core_a / core_b (device ids). */
    int comm_a = -1;
    int comm_b = -1;
    /** Fidelity of one distilled EPR pair across this link. */
    double epr_fidelity = 0.985;
    /** Wall-clock of one heralded EPR generation attempt. */
    double attempt_duration_ns = 500.0;
    /** Expected attempts until success (geometric model). */
    double mean_attempts = 2.0;
};

/** Undirected coupling graph over qubits 0..n-1. */
class Topology
{
  public:
    /** Graph with n isolated qubits. */
    explicit Topology(int num_qubits);

    int numQubits() const { return num_qubits_; }

    /** Add an undirected edge (idempotent). */
    void addEdge(int a, int b);

    bool adjacent(int a, int b) const;

    const std::vector<int>& neighbors(int q) const;

    /** All edges with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    int numEdges() const;

    /** BFS shortest path from a to b (inclusive); empty if unreachable. */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * shortestPath into caller-owned storage: `path` receives the
     * result, `scratch` holds the BFS working set. Both grow to
     * steady-state capacity on first use and are reused verbatim on
     * every following call — the routers query paths once per SWAP
     * candidate, and this keeps those sweeps off the heap. Produces
     * exactly the path shortestPath() returns.
     */
    void shortestPathInto(int a, int b, std::vector<int>& path,
                          std::vector<int>& scratch) const;

    /** True if every qubit can reach every other. */
    bool connected() const;

    /**
     * Induced subgraph on the given qubits; node i of the result is
     * qubits[i]. On a topology with cores, the core structure is
     * carried over: cores retaining at least one selected qubit are
     * renumbered in original order, comm qubits are kept where
     * selected, and a teleport edge survives iff both of its comm
     * endpoints were selected. Core-less topologies are unaffected.
     */
    Topology inducedSubgraph(const std::vector<int>& qubits) const;

    /**
     * Partition all qubits into `count` disjoint connected regions of
     * roughly equal size (the building block of multi-region compile
     * sharding). Seeds are chosen by farthest-point sampling and the
     * regions grow round-robin, one qubit per turn, always claiming
     * the lowest-index unclaimed neighbor — fully deterministic.
     * Every qubit lands in exactly one region; each region is sorted
     * ascending. Requires a connected topology.
     */
    std::vector<std::vector<int>> balancedPartitions(int count) const;

    /** Path graph 0-1-...-(n-1). */
    static Topology line(int n);

    /** Cycle graph. */
    static Topology ring(int n);

    /** Rectangular grid with row-major numbering. */
    static Topology grid(int rows, int cols);

    // ---- chiplet core structure -------------------------------------

    /**
     * Install the core partition. Every qubit must belong to exactly
     * one core, every core must be non-empty, and comm qubits must be
     * members of their core. Clears any previously installed cores and
     * teleport edges.
     */
    void setCores(std::vector<Core> cores);

    /**
     * Add an inter-core teleport link. Validates that the cores exist,
     * that comm_a/comm_b live in core_a/core_b, and registers both
     * endpoints as comm qubits of their cores if not already listed.
     */
    void addTeleportEdge(TeleportEdge edge);

    /** Number of cores; 0 on a monolithic (core-less) topology. */
    int numCores() const { return static_cast<int>(cores_.size()); }

    /** True when a core structure is installed. */
    bool hasCores() const { return !cores_.empty(); }

    const Core& core(int index) const;

    /** Core owning qubit q, or -1 on a core-less topology. */
    int coreOf(int q) const;

    const std::vector<TeleportEdge>& teleportEdges() const
    {
        return teleport_edges_;
    }

    /**
     * Inter-core hop distance over the teleport-edge graph (each link
     * one hop); 0 for a == b, -1 when unreachable.
     */
    int coreDistance(int core_a, int core_b) const;

    /**
     * BFS distance between two qubits of the *same* core, restricted
     * to that core's qubits; -1 for different cores or unreachable.
     */
    int intraCoreDistance(int a, int b) const;

    /**
     * True when every qubit reaches every other via coupling edges
     * plus teleport links. This is the connectivity contract the
     * TeleportRouter requires (multi-core topologies fail the plain
     * connected() check because coupling never crosses cores).
     */
    bool connectedWithTeleport() const;

    /**
     * N×M grid of cores, each an rows×cols coupling grid (row-major
     * inside each core; cores numbered row-major; qubit id =
     * core_index * rows * cols + local id). Adjacent cores are joined
     * by one teleport edge whose comm qubits sit at the midpoint of
     * the facing boundary, with the given EPR cost model.
     */
    static Topology gridOfGrids(int core_rows, int core_cols, int rows,
                                int cols, double epr_fidelity = 0.985,
                                double attempt_duration_ns = 500.0,
                                double mean_attempts = 2.0);

  private:
    int num_qubits_;
    std::vector<std::vector<int>> adjacency_;
    std::vector<Core> cores_;
    std::vector<TeleportEdge> teleport_edges_;
    /** core_of_[q] = owning core; empty when no cores installed. */
    std::vector<int> core_of_;
};

/**
 * Exclusive-reservation ledger over a topology's communication qubits.
 * A comm qubit can mediate only one EPR generation at a time; routers
 * and schedulers reserve() both endpoints of a link for the duration
 * of a teleport and release() them afterwards. reserve() on a held or
 * non-comm qubit fails (returns false) without changing state.
 */
class CommQubitLedger
{
  public:
    explicit CommQubitLedger(const Topology& topology);

    /** True if q is a designated comm qubit of some core. */
    bool isCommQubit(int q) const;

    /** Acquire q; false when q is not a comm qubit or already held. */
    bool reserve(int q);

    /** Release q (no-op when not held). */
    void release(int q);

    bool held(int q) const;

  private:
    std::vector<bool> comm_;
    std::vector<bool> held_;
};

} // namespace qiset

#endif // QISET_DEVICE_TOPOLOGY_H
