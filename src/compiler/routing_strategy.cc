#include "compiler/routing_strategy.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "compiler/teleport_router.h"
#include "qc/gates.h"

namespace qiset {

// ------------------------------------------------------------ registry

namespace {

using Registry = std::map<std::string, RoutingStrategyFactory>;

std::mutex&
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Lazily-built registry pre-seeded with the built-in strategies. */
Registry&
registryMap()
{
    static Registry registry = [] {
        Registry builtins;
        builtins["greedy"] = [] {
            return std::unique_ptr<RoutingStrategy>(new GreedyRouter());
        };
        builtins["sabre"] = [] {
            return std::unique_ptr<RoutingStrategy>(new SabreRouter());
        };
        builtins["telesabre"] = [] {
            return std::unique_ptr<RoutingStrategy>(
                new TeleportRouter());
        };
        return builtins;
    }();
    return registry;
}

} // namespace

bool
registerRoutingStrategy(const std::string& name,
                        RoutingStrategyFactory factory)
{
    QISET_REQUIRE(factory != nullptr,
                  "cannot register a null routing strategy factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    return registryMap().emplace(name, std::move(factory)).second;
}

std::unique_ptr<RoutingStrategy>
makeRoutingStrategy(const std::string& name)
{
    RoutingStrategyFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registryMap().find(name);
        if (it != registryMap().end())
            factory = it->second;
    }
    if (!factory) {
        std::ostringstream known;
        for (const auto& existing : routingStrategyNames())
            known << ' ' << existing;
        fatal("unknown routing strategy \"", name,
              "\"; registered:", known.str());
    }
    auto strategy = factory();
    QISET_REQUIRE(strategy != nullptr, "routing strategy factory for \"",
                  name, "\" returned null");
    return strategy;
}

std::vector<std::string>
routingStrategyNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registryMap().size());
    for (const auto& [name, factory] : registryMap())
        names.push_back(name);
    return names;
}

// ------------------------------------------------------------- greedy

RoutedCircuit
GreedyRouter::route(const Circuit& logical, const Topology& coupling,
                    const Schedule& schedule) const
{
    (void)schedule; // greedy looks one gate ahead only
    return routeCircuit(logical, coupling);
}

// -------------------------------------------------------------- sabre

namespace {

/**
 * All-pairs BFS distances on the coupling graph, bump-allocated as a
 * flat n x n row-major table (dist[a * n + b]); the BFS queue is an
 * arena array walked by index.
 */
const int*
allPairsDistance(const Topology& coupling, MemArena& arena)
{
    int n = coupling.numQubits();
    int* dist = arena.allocateArray<int>(static_cast<size_t>(n) * n);
    std::fill(dist, dist + static_cast<size_t>(n) * n, -1);
    int* frontier = arena.allocateArray<int>(n);
    for (int source = 0; source < n; ++source) {
        int* row = dist + static_cast<size_t>(source) * n;
        row[source] = 0;
        size_t head = 0;
        size_t tail = 0;
        frontier[tail++] = source;
        while (head < tail) {
            int node = frontier[head++];
            for (int next : coupling.neighbors(node)) {
                if (row[next] >= 0)
                    continue;
                row[next] = row[node] + 1;
                frontier[tail++] = next;
            }
        }
    }
    return dist;
}

/**
 * Gate-dependency DAG over a given execution order of op indices, in
 * CSR form over the arena: op id's successors are
 * succ[succ_begin[id] .. succ_begin[id + 1]).
 */
struct Dag
{
    int* succ = nullptr;
    int* succ_begin = nullptr;
    int* in_degree = nullptr;

    int successorsBegin(int id) const { return succ_begin[id]; }
    int successorsEnd(int id) const { return succ_begin[id + 1]; }
};

Dag
buildDag(const std::vector<Qubits>& op_qubits,
         const std::vector<int>& order, int num_qubits, MemArena& arena)
{
    size_t count = op_qubits.size();
    Dag dag;
    dag.succ_begin = arena.allocateArray<int>(count + 1);
    dag.in_degree = arena.allocateArray<int>(count);
    std::fill(dag.succ_begin, dag.succ_begin + count + 1, 0);
    std::fill(dag.in_degree, dag.in_degree + count, 0);

    int* last_on_qubit = arena.allocateArray<int>(num_qubits);
    std::fill(last_on_qubit, last_on_qubit + num_qubits, -1);

    // Pass 1: count each op's successor edges (succ_begin holds
    // per-op counts shifted by one, turned into offsets below).
    size_t edges = 0;
    for (int id : order) {
        for (int q : op_qubits[static_cast<size_t>(id)]) {
            if (last_on_qubit[q] >= 0) {
                ++dag.succ_begin[last_on_qubit[q] + 1];
                ++dag.in_degree[id];
                ++edges;
            }
            last_on_qubit[q] = id;
        }
    }
    for (size_t i = 0; i < count; ++i)
        dag.succ_begin[i + 1] += dag.succ_begin[i];

    // Pass 2: fill, replaying the identical traversal.
    dag.succ = arena.allocateArray<int>(edges);
    int* cursor = arena.allocateArray<int>(count);
    std::copy(dag.succ_begin, dag.succ_begin + count, cursor);
    std::fill(last_on_qubit, last_on_qubit + num_qubits, -1);
    for (int id : order) {
        for (int q : op_qubits[static_cast<size_t>(id)]) {
            if (last_on_qubit[q] >= 0)
                dag.succ[cursor[last_on_qubit[q]]++] = id;
            last_on_qubit[q] = id;
        }
    }
    return dag;
}

/** Ordered int set whose nodes bump-allocate from the pass arena. */
using ArenaIntSet = std::set<int, std::less<int>, ArenaAllocator<int>>;
using ArenaRankSet = std::set<std::pair<int, int>,
                              std::less<std::pair<int, int>>,
                              ArenaAllocator<std::pair<int, int>>>;

/**
 * One SABRE pass over `order`. Starts from `position` (position[l] =
 * register slot of logical qubit l), returns the final mapping. When
 * `out` is given, mapped ops and inserted SWAPs are emitted into it
 * and *swaps_out counts the insertions; refinement passes leave both
 * null and only advance the mapping. Fully deterministic: ties break
 * on op/edge order, never on randomness.
 */
std::vector<int>
runSabrePass(const Circuit& logical, const std::vector<int>& order,
             const std::vector<int>& lookahead_rank,
             const Topology& coupling, const int* dist,
             const SabreOptions& opt, std::vector<int> position,
             Circuit* out, int* swaps_out, MemArena& arena)
{
    int n = coupling.numQubits();
    RoutingState state(std::move(position));

    // The pass routes on the qubit column alone; unitaries, labels and
    // annotations are only touched when an executed op is emitted
    // (and then column-copied without re-interning or re-allocating).
    const std::vector<Qubits>& op_qubits = logical.opQubits();

    Dag dag = buildDag(op_qubits, order, n, arena);
    ArenaIntSet front{ArenaAllocator<int>(arena)};
    for (int id : order)
        if (dag.in_degree[id] == 0)
            front.insert(id);

    // Unexecuted 2Q ops in lookahead priority order; the extended set
    // is drawn from its head.
    ArenaRankSet pending_2q{
        ArenaAllocator<std::pair<int, int>>(arena)};
    for (int id : order)
        if (op_qubits[static_cast<size_t>(id)].isTwoQubit())
            pending_2q.emplace(lookahead_rank[id], id);

    double* decay = arena.allocateArray<double>(n);
    std::fill(decay, decay + n, 1.0);

    // Per-iteration worklists, hoisted so each keeps its high-water
    // capacity across the whole pass (one arena bump each).
    auto executable = makeArenaVector<int>(arena);
    auto extended = makeArenaVector<int>(arena);
    auto front_gates = makeArenaVector<int>(arena);
    auto candidates =
        makeArenaVector<std::pair<int, int>>(arena);
    int swaps_since_reset = 0;
    int swaps_since_progress = 0;
    // Past this many SWAPs without executing anything, fall back to
    // deterministic shortest-path SWAPs for the oldest blocked gate —
    // each strictly shrinks its distance, so the pass always finishes.
    const int stuck_threshold = 10 * std::max(1, n);

    auto apply_swap = [&](int slot_a, int slot_b) {
        if (out) {
            addSwapOp(*out, slot_a, slot_b);
            ++*swaps_out;
        }
        state.swapSlots(slot_a, slot_b);
    };

    while (!front.empty()) {
        // Execute everything executable under the current mapping.
        executable.clear();
        for (int id : front) {
            Qubits qs = op_qubits[static_cast<size_t>(id)];
            if (!qs.isTwoQubit() ||
                coupling.adjacent(state.position[qs[0]],
                                  state.position[qs[1]]))
                executable.push_back(id);
        }
        if (!executable.empty()) {
            for (int id : executable) {
                Qubits qs = op_qubits[static_cast<size_t>(id)];
                if (out) {
                    Qubits moved =
                        qs.isTwoQubit()
                            ? Qubits(state.position[qs[0]],
                                     state.position[qs[1]])
                            : Qubits(state.position[qs[0]]);
                    out->add(
                        logical.ops()[static_cast<size_t>(id)], moved);
                }
                if (qs.isTwoQubit())
                    pending_2q.erase({lookahead_rank[id], id});
                front.erase(id);
                for (int s = dag.successorsBegin(id);
                     s < dag.successorsEnd(id); ++s)
                    if (--dag.in_degree[dag.succ[s]] == 0)
                        front.insert(dag.succ[s]);
            }
            std::fill(decay, decay + n, 1.0);
            swaps_since_reset = 0;
            swaps_since_progress = 0;
            continue;
        }

        // Everything in the front layer is a blocked 2Q gate.
        if (++swaps_since_progress > stuck_threshold) {
            Qubits qs = op_qubits[static_cast<size_t>(*front.begin())];
            auto path = coupling.shortestPath(state.position[qs[0]],
                                              state.position[qs[1]]);
            QISET_ASSERT(path.size() >= 3, "non-adjacent pair with a "
                                           "path shorter than 3 nodes");
            apply_swap(path[0], path[1]);
            continue;
        }

        // Extended set: the next lookahead gates by schedule order.
        extended.clear();
        for (const auto& [rank, id] : pending_2q) {
            if (front.count(id))
                continue;
            extended.push_back(id);
            if (static_cast<int>(extended.size()) >=
                opt.extended_set_size)
                break;
        }

        // Candidate SWAPs: every coupling edge touching a position
        // that holds a front-layer logical qubit. Collected into the
        // reused worklist and deduped by sort+unique (same ascending
        // order a std::set would yield, without per-node churn).
        candidates.clear();
        for (int id : front)
            for (int l : op_qubits[static_cast<size_t>(id)])
                for (int neighbor : coupling.neighbors(state.position[l]))
                    candidates.emplace_back(
                        std::min(state.position[l], neighbor),
                        std::max(state.position[l], neighbor));
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());

        auto scored_distance = [&](const ArenaVector<int>& gate_ids,
                                   int slot_a, int slot_b) {
            double total = 0.0;
            for (int id : gate_ids) {
                Qubits qs = op_qubits[static_cast<size_t>(id)];
                int pa = state.position[qs[0]];
                int pb = state.position[qs[1]];
                if (pa == slot_a)
                    pa = slot_b;
                else if (pa == slot_b)
                    pa = slot_a;
                if (pb == slot_a)
                    pb = slot_b;
                else if (pb == slot_b)
                    pb = slot_a;
                total += dist[static_cast<size_t>(pa) * n + pb];
            }
            return total / static_cast<double>(gate_ids.size());
        };

        front_gates.assign(front.begin(), front.end());
        double best_score = 0.0;
        std::pair<int, int> best_edge{-1, -1};
        for (const auto& [slot_a, slot_b] : candidates) {
            double score = scored_distance(front_gates, slot_a, slot_b);
            if (!extended.empty())
                score += opt.extended_set_weight *
                         scored_distance(extended, slot_a, slot_b);
            score *= std::max(decay[slot_a], decay[slot_b]);
            if (best_edge.first < 0 || score < best_score) {
                best_score = score;
                best_edge = {slot_a, slot_b};
            }
        }
        QISET_ASSERT(best_edge.first >= 0,
                     "blocked front layer with no candidate SWAPs");

        apply_swap(best_edge.first, best_edge.second);
        decay[best_edge.first] += opt.decay_increment;
        decay[best_edge.second] += opt.decay_increment;
        if (++swaps_since_reset >= opt.decay_reset_interval) {
            std::fill(decay, decay + n, 1.0);
            swaps_since_reset = 0;
        }
    }
    return state.position;
}

} // namespace

SabreRouter::SabreRouter(SabreOptions options) : options_(options)
{
    QISET_REQUIRE(options_.extended_set_size >= 0,
                  "extended set size must be >= 0");
    QISET_REQUIRE(options_.decay_reset_interval >= 1,
                  "decay reset interval must be >= 1");
    QISET_REQUIRE(options_.refinement_rounds >= 0,
                  "refinement rounds must be >= 0");
}

RoutedCircuit
SabreRouter::route(const Circuit& logical, const Topology& coupling,
                   const Schedule& schedule) const
{
    // No caller arena (direct router use, e.g. tests/benches): scratch
    // lives in a route-local arena discarded wholesale on return.
    MemArena arena;
    return route(logical, coupling, schedule, arena);
}

RoutedCircuit
SabreRouter::route(const Circuit& logical, const Topology& coupling,
                   const Schedule& schedule, MemArena& arena) const
{
    QISET_REQUIRE(coupling.numQubits() == logical.numQubits(),
                  "coupling graph width must match the circuit");
    QISET_REQUIRE(coupling.connected() || logical.numQubits() == 1,
                  "coupling graph must be connected");
    QISET_REQUIRE(schedule.consistentWith(logical),
                  "sabre routing needs the schedule of the logical "
                  "circuit being routed");

    int n = logical.numQubits();
    size_t count = logical.size();
    const int* dist = allPairsDistance(coupling, arena);

    std::vector<int> forward_order(count);
    std::vector<int> reverse_order(count);
    for (size_t i = 0; i < count; ++i) {
        forward_order[i] = static_cast<int>(i);
        reverse_order[i] = static_cast<int>(count - 1 - i);
    }
    // Lookahead priority: the schedule's ASAP moment order forward;
    // its mirror (depth-1 - ALAP, the reversed circuit's ASAP) on
    // reverse refinement passes.
    std::vector<int> forward_rank(count, 0);
    std::vector<int> reverse_rank(count, 0);
    for (size_t i = 0; i < count; ++i) {
        forward_rank[i] = schedule.asapMoment(i);
        reverse_rank[i] = schedule.depth() - 1 - schedule.alapMoment(i);
    }

    std::vector<int> position(n);
    for (int l = 0; l < n; ++l)
        position[l] = l;

    // Bidirectional refinement: each pass routes the circuit in
    // alternating directions and hands its final mapping to the next,
    // so the emitting pass starts from a layout already shaped by the
    // whole circuit.
    for (int round = 0; round < options_.refinement_rounds; ++round) {
        bool forward = (round % 2 == 0);
        position = runSabrePass(
            logical, forward ? forward_order : reverse_order,
            forward ? forward_rank : reverse_rank, coupling, dist,
            options_, std::move(position), nullptr, nullptr, arena);
    }

    RoutedCircuit out;
    out.circuit = Circuit(n);
    // Emitted ops = every logical op plus the inserted SWAPs; reserve
    // for the former so only an unusually SWAP-heavy route regrows.
    out.circuit.reserveOps(count);
    out.initial_positions = position;
    out.swaps_inserted = 0;
    out.final_positions =
        runSabrePass(logical, forward_order, forward_rank, coupling,
                     dist, options_, std::move(position), &out.circuit,
                     &out.swaps_inserted, arena);
    return out;
}

} // namespace qiset
