#ifndef QISET_COMPILER_CONSOLIDATE_H
#define QISET_COMPILER_CONSOLIDATE_H

/**
 * @file
 * Two-qubit block consolidation (the "gate optimizations" box of the
 * paper's Fig. 1, mirroring Qiskit's Collect2qBlocks +
 * ConsolidateBlocks passes).
 *
 * Consecutive operations acting on the same qubit pair — including
 * single-qubit rotations sandwiched between them and routing SWAPs
 * followed by application gates — are fused into one SU(4) block, so
 * NuOp decomposes the *combined* unitary once instead of paying for
 * each operation separately.
 */

#include "circuit/circuit.h"

namespace qiset {

class MemArena;

/**
 * Fuse runs of operations confined to one qubit pair into single 4x4
 * unitaries (labeled "block"). Single-qubit ops merge into the
 * enclosing block when one exists on their qubit; otherwise they pass
 * through unchanged. Operation order across disjoint qubit sets is
 * preserved up to commuting reorderings.
 */
Circuit consolidateTwoQubitBlocks(const Circuit& circuit);

/**
 * Arena variant: ownership tables and the in-flight block list
 * bump-allocate from `arena` (dead by return; the caller resets).
 * The returned Circuit holds only regular heap state.
 */
Circuit consolidateTwoQubitBlocks(const Circuit& circuit,
                                  MemArena& arena);

} // namespace qiset

#endif // QISET_COMPILER_CONSOLIDATE_H
