#include "compiler/pass_manager.h"

#include <chrono>

#include "common/error.h"
#include "compiler/passes.h"

namespace qiset {

PassManager&
PassManager::append(std::unique_ptr<Pass> pass)
{
    QISET_REQUIRE(pass != nullptr, "cannot register a null pass");
    passes_.push_back(std::move(pass));
    return *this;
}

size_t
PassManager::indexOf(const std::string& name) const
{
    for (size_t i = 0; i < passes_.size(); ++i)
        if (passes_[i]->name() == name)
            return i;
    return passes_.size();
}

bool
PassManager::insertBefore(const std::string& anchor,
                          std::unique_ptr<Pass> pass)
{
    QISET_REQUIRE(pass != nullptr, "cannot register a null pass");
    size_t index = indexOf(anchor);
    if (index == passes_.size())
        return false;
    passes_.insert(passes_.begin() + index, std::move(pass));
    return true;
}

bool
PassManager::insertAfter(const std::string& anchor,
                         std::unique_ptr<Pass> pass)
{
    QISET_REQUIRE(pass != nullptr, "cannot register a null pass");
    size_t index = indexOf(anchor);
    if (index == passes_.size())
        return false;
    passes_.insert(passes_.begin() + index + 1, std::move(pass));
    return true;
}

bool
PassManager::remove(const std::string& name)
{
    size_t index = indexOf(name);
    if (index == passes_.size())
        return false;
    passes_.erase(passes_.begin() + index);
    return true;
}

bool
PassManager::contains(const std::string& name) const
{
    return indexOf(name) != passes_.size();
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto& pass : passes_)
        names.push_back(pass->name());
    return names;
}

namespace {

/**
 * Publish one pass-span packet. `telemetry` is the compile's identity
 * (job/circuit/shard); a null stream was filtered by the caller.
 */
void
publishPassEvent(const CompileTelemetry& telemetry,
                 ServiceEventType type, int32_t pass_id,
                 double wall_ms)
{
    ServiceEvent event;
    event.type = type;
    event.job = telemetry.job;
    event.circuit = telemetry.circuit;
    event.shard = telemetry.shard;
    event.pass = pass_id;
    event.worker = EventStream::currentWorker();
    event.a = wall_ms;
    telemetry.stream->publishNow(event);
}

} // namespace

void
PassManager::run(CompilationContext& context) const
{
    const CompileTelemetry* telemetry =
        context.telemetry && context.telemetry->stream
            ? context.telemetry
            : nullptr;
    for (const auto& pass : passes_) {
        size_t index = context.pass_metrics.size();
        context.pass_metrics.push_back(PassMetric{pass->name(), 0.0, {}});
        size_t previous = context.current_index_;
        context.current_index_ = index;
        int32_t pass_id = -1;
        if (telemetry) {
            pass_id = telemetry->stream->passId(pass->name());
            publishPassEvent(*telemetry, ServiceEventType::PassBegin,
                             pass_id, 0.0);
        }
        auto start = std::chrono::steady_clock::now();
        try {
            pass->run(context);
        } catch (...) {
            // Keep B/E spans balanced even when the pass throws; the
            // Complete packet the service publishes carries ok=0.
            if (telemetry)
                publishPassEvent(*telemetry,
                                 ServiceEventType::PassComplete,
                                 pass_id, 0.0);
            context.current_index_ = previous;
            throw;
        }
        auto end = std::chrono::steady_clock::now();
        context.pass_metrics[index].wall_ms =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        if (telemetry)
            publishPassEvent(*telemetry, ServiceEventType::PassComplete,
                             pass_id, context.pass_metrics[index].wall_ms);
        context.current_index_ = previous;
    }
}

PassManager
defaultPipeline(const CompileOptions& options)
{
    PassManager manager;
    manager.append(makeMappingPass());
    manager.append(makeRoutingPass(options.routing));
    if (options.consolidate)
        manager.append(makeConsolidationPass());
    manager.append(makeTranslationPass());
    // Scheduling runs on the final (native) circuit so crosstalk and
    // noise annotation share one moment assignment.
    manager.append(makeSchedulingPass());
    if (options.crosstalk_inflation > 1.0)
        manager.append(makeCrosstalkPass(options.crosstalk_inflation));
    manager.append(makeNoiseAnnotationPass());
    return manager;
}

} // namespace qiset
