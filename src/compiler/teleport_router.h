#ifndef QISET_COMPILER_TELEPORT_ROUTER_H
#define QISET_COMPILER_TELEPORT_ROUTER_H

/**
 * @file
 * TeleSABRE-style routing for modular (chiplet) devices.
 *
 * The TeleportRouter ("telesabre" in the RoutingStrategy registry)
 * extends the SABRE lookahead loop to couplings that carry a core
 * structure (Topology::setCores / gridOfGrids): per blocked frontier
 * gate it weighs intra-core SWAP chains against inter-core *exchange
 * teleportations* — SWAP-semantics moves across a TeleportEdge's comm
 * qubit pair, each consuming one EPR pair under the edge's attempt
 * model — over a weighted all-pairs distance table (coupling hop = 1,
 * link hop = TeleportOptions::teleport_weight). Chosen teleports are
 * emitted as explicit "TELEPORT" ops (addTeleportOp) that the rest of
 * the pipeline passes through as native link operations; comm-qubit
 * occupancy is modeled through a CommQubitLedger reservation around
 * every link crossing.
 *
 * With TeleportOptions::use_teleport = false the router routes
 * identically but crosses links with "TELESWAP" ops — the SWAP-only
 * gate-teleportation baseline at three EPR pairs per crossing — which
 * is exactly the comparison bench_chiplet gates on.
 *
 * On couplings with at most one core the router delegates to
 * SabreRouter with the same SabreOptions, bit-identically — single-
 * core devices cannot tell "telesabre" from "sabre".
 */

#include "compiler/routing_strategy.h"

namespace qiset {

/** Teleportation-aware chiplet router ("telesabre" in the registry). */
class TeleportRouter : public RoutingStrategy
{
  public:
    using RoutingStrategy::route;

    explicit TeleportRouter(SabreOptions sabre = SabreOptions(),
                            TeleportOptions teleport = TeleportOptions());

    std::string name() const override { return "telesabre"; }

    /** Routes via a private arena (scratch discarded on return). */
    RoutedCircuit route(const Circuit& logical, const Topology& coupling,
                        const Schedule& schedule) const override;

    /** Bump-allocates all routing scratch from `arena`. */
    RoutedCircuit route(const Circuit& logical, const Topology& coupling,
                        const Schedule& schedule,
                        MemArena& arena) const override;

    const SabreOptions& sabreOptions() const { return sabre_; }
    const TeleportOptions& teleportOptions() const { return teleport_; }

  private:
    SabreOptions sabre_;
    TeleportOptions teleport_;
};

} // namespace qiset

#endif // QISET_COMPILER_TELEPORT_ROUTER_H
