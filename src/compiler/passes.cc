#include "compiler/passes.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "compiler/consolidate.h"
#include "compiler/crosstalk.h"
#include "compiler/mapping.h"
#include "compiler/routing.h"
#include "compiler/routing_strategy.h"
#include "compiler/teleport_router.h"
#include "compiler/translate.h"
#include "nuop/decomposition_strategy.h"

namespace qiset {

namespace {

class MappingPass : public Pass
{
  public:
    std::string name() const override { return "mapping"; }

    void run(CompilationContext& ctx) override
    {
        ctx.physical = chooseMapping(ctx.device(), ctx.circuit.numQubits(),
                                     ctx.gateSet());
        ctx.reportCounter("physical_qubits",
                          static_cast<double>(ctx.physical.size()));
    }
};

class RoutingPass : public Pass
{
  public:
    explicit RoutingPass(std::string strategy)
        : strategy_(std::move(strategy))
    {
    }

    std::string name() const override { return "routing"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "routing requires a mapping pass to run first");
        Topology coupling =
            ctx.device().topology().inducedSubgraph(ctx.physical);

        RoutedCircuit routed;
        std::string winner = strategy_;
        if (coupling.numCores() > 1 && strategy_ != "telesabre") {
            // Multi-core couplings are disconnected in the plain graph
            // sense; only the teleport router can cross cores.
            winner = "telesabre";
            ctx.diagnostic("routing: multi-core coupling forces "
                           "telesabre (requested " +
                           strategy_ + ")");
            routed = routeWith(ctx, coupling, winner);
        } else if (strategy_ == "best-of") {
            routed = routeBestOf(ctx, coupling, winner);
        } else {
            routed = routeWith(ctx, coupling, strategy_);
        }
        ctx.circuit = std::move(routed.circuit);
        ctx.schedule.invalidate(); // SWAPs rewrote the circuit
        ctx.initial_positions = std::move(routed.initial_positions);
        ctx.final_positions = std::move(routed.final_positions);
        ctx.swaps_inserted = routed.swaps_inserted;
        ctx.teleports_inserted = routed.teleports_inserted;
        ctx.epr_attempts = routed.epr_attempts;
        ctx.reportCounter("swaps_inserted", routed.swaps_inserted);
        if (coupling.numCores() > 1) {
            ctx.reportCounter("teleports_inserted",
                              routed.teleports_inserted);
            ctx.reportCounter("epr_attempts", routed.epr_attempts);
        }
        ctx.diagnostic("routing: strategy " + winner + " inserted " +
                       std::to_string(routed.swaps_inserted) + " SWAPs" +
                       (routed.teleports_inserted > 0
                            ? " and " +
                                  std::to_string(
                                      routed.teleports_inserted) +
                                  " teleports"
                            : ""));
    }

  private:
    RoutedCircuit routeWith(CompilationContext& ctx,
                            const Topology& coupling,
                            const std::string& name) const
    {
        // The built-in SABRE and teleport routers take their tuning
        // from the compile options; other names resolve through the
        // registry (whose factories take no options).
        std::unique_ptr<RoutingStrategy> router;
        if (name == "sabre")
            router = std::make_unique<SabreRouter>(ctx.options().sabre);
        else if (name == "telesabre")
            router = std::make_unique<TeleportRouter>(
                ctx.options().sabre, ctx.options().teleport);
        else
            router = makeRoutingStrategy(name);
        // Routing scratch (distance tables, DAG, frontier sets) bumps
        // from the compile arena; rewind it per candidate so best-of
        // runs reuse the same warm blocks instead of accumulating.
        ArenaResetGuard scratch(ctx.arena());
        // Only lookahead strategies need the pre-routing schedule;
        // don't build one the greedy path would throw away.
        return router->wantsSchedule()
                   ? router->route(ctx.circuit, coupling,
                                   ctx.ensureSchedule(), ctx.arena())
                   : router->route(ctx.circuit, coupling, Schedule(),
                                   ctx.arena());
    }

    /**
     * Predicted fidelity of a routed candidate: the shard planner's
     * product-model proxy evaluated per edge — each routed 2Q op
     * contributes the edge's best calibrated fidelity under the gate
     * set, and each SWAP is charged as ~3 native gates (its generic
     * decomposition cost).
     */
    double predictedFidelity(CompilationContext& ctx,
                             const RoutedCircuit& routed) const
    {
        static const LabelId swap_label = internLabel("SWAP");
        static const LabelId teleport_label = internLabel("TELEPORT");
        static const LabelId teleswap_label = internLabel("TELESWAP");
        double fidelity = 1.0;
        for (const auto& op : routed.circuit.ops()) {
            if (!op.isTwoQubit())
                continue;
            if (op.labelId() == teleport_label ||
                op.labelId() == teleswap_label) {
                // Link ops carry their own EPR-model error rate; the
                // endpoints are not coupling-adjacent, so edge lookup
                // would misread them as dead edges.
                fidelity *= 1.0 - op.errorRate();
                continue;
            }
            Qubits qs = op.qubits();
            int pa = ctx.physical[qs[0]];
            int pb = ctx.physical[qs[1]];
            double edge =
                bestEdgeFidelity(ctx.device(), pa, pb, ctx.gateSet());
            if (edge <= 0.0)
                return 0.0; // candidate routes over a dead edge.
            double cost = op.labelId() == swap_label ? 3.0 : 1.0;
            fidelity *= std::pow(edge, cost);
        }
        return fidelity;
    }

    /**
     * The best-of-N meta-router: route with every registered
     * strategy and keep the best predicted-fidelity result (ties
     * break on fewer SWAPs, then registry-name order, so the choice
     * is deterministic).
     */
    RoutedCircuit routeBestOf(CompilationContext& ctx,
                              const Topology& coupling,
                              std::string& winner) const
    {
        std::vector<std::string> names = routingStrategyNames();
        QISET_REQUIRE(!names.empty(), "no routing strategies registered");
        RoutedCircuit best;
        double best_fidelity = -1.0;
        std::ostringstream summary;
        for (const std::string& name : names) {
            RoutedCircuit candidate = routeWith(ctx, coupling, name);
            double fidelity = predictedFidelity(ctx, candidate);
            summary << ' ' << name << "=" << candidate.swaps_inserted
                    << " swaps/" << fidelity << " fid";
            bool take = fidelity > best_fidelity ||
                        (fidelity == best_fidelity &&
                         candidate.swaps_inserted < best.swaps_inserted);
            if (take) {
                best_fidelity = fidelity;
                best = std::move(candidate);
                winner = name;
            }
        }
        ctx.reportCounter("best_of_candidates",
                          static_cast<double>(names.size()));
        ctx.reportCounter("best_of_predicted_fidelity", best_fidelity);
        ctx.diagnostic("routing: best-of candidates:" + summary.str());
        winner = "best-of[" + winner + "]";
        return best;
    }

    std::string strategy_;
};

class ConsolidationPass : public Pass
{
  public:
    std::string name() const override { return "consolidation"; }

    void run(CompilationContext& ctx) override
    {
        int before = ctx.circuit.twoQubitGateCount();
        ArenaResetGuard scratch(ctx.arena());
        ctx.circuit = consolidateTwoQubitBlocks(ctx.circuit, ctx.arena());
        ctx.schedule.invalidate(); // fusing ops rewrote the circuit
        int after = ctx.circuit.twoQubitGateCount();
        ctx.reportCounter("blocks_before", before);
        ctx.reportCounter("blocks_after", after);
    }
};

class TranslationPass : public Pass
{
  public:
    std::string name() const override { return "translation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "translation requires a mapping pass to run first");
        NuOpDecomposer decomposer(ctx.options().nuop);
        std::unique_ptr<DecompositionStrategy> strategy =
            makeDecompositionStrategy(ctx.options().decomposition);
        TranslateResult translated = translateCircuit(
            ctx.circuit, ctx.physical, ctx.device(), ctx.gateSet(),
            decomposer, *strategy, ctx.profileCache(),
            ctx.options().approximate, ctx.threadPool(),
            ctx.options().intra_circuit_parallelism);
        ctx.circuit = std::move(translated.circuit);
        ctx.schedule.invalidate(); // native gates rewrote the circuit
        ctx.two_qubit_count = translated.two_qubit_count;
        ctx.type_usage = std::move(translated.type_usage);
        ctx.estimated_fidelity = translated.estimated_fidelity;

        ctx.reportCounter("two_qubit_count", translated.two_qubit_count);
        // 2Q blocks the analytic engine served (BFGS bypassed).
        ctx.reportCounter("analytic_ops",
                          static_cast<double>(translated.analytic_ops));
        if (translated.dressing_fallbacks > 0) {
            // Canonical dressing failed somewhere: each such op paid
            // a cold BFGS serially — surface it loudly.
            ctx.reportCounter(
                "dressing_fallbacks",
                static_cast<double>(translated.dressing_fallbacks));
            ctx.diagnostic(
                "translation: " +
                std::to_string(translated.dressing_fallbacks) +
                " op(s) fell back from canonical dressing to raw "
                "NuOp profiles");
        }
        // This circuit's own traffic (the shared cache's global stats
        // also include concurrently-compiling circuits).
        ctx.reportCounter("cache_hits",
                          static_cast<double>(translated.cache_hits));
        ctx.reportCounter("cache_misses",
                          static_cast<double>(translated.cache_misses));
    }
};

class SchedulingPass : public Pass
{
  public:
    std::string name() const override { return "scheduling"; }

    void run(CompilationContext& ctx) override
    {
        ArenaResetGuard scratch(ctx.arena());
        ctx.schedule.build(ctx.circuit, &ctx.arena());
        ctx.reportCounter("depth", ctx.schedule.depth());
        ctx.reportCounter("max_parallel_2q",
                          static_cast<double>(
                              ctx.schedule.maxParallelTwoQubit()));
        ctx.reportCounter("duration_ns", ctx.schedule.durationNs());
    }
};

class CrosstalkPass : public Pass
{
  public:
    explicit CrosstalkPass(double inflation) : inflation_(inflation) {}

    std::string name() const override { return "crosstalk"; }

    void run(CompilationContext& ctx) override
    {
        // Simultaneity comes from the shared schedule (built by the
        // scheduling pass; rebuilt here only if a pass rewrote the
        // circuit afterwards). Error-rate inflation keeps it valid.
        ctx.crosstalk_inflated = applyCrosstalkInflation(
            ctx.circuit, ctx.ensureSchedule(), ctx.physical,
            ctx.device().topology(), inflation_);
        ctx.reportCounter("inflated_ops", ctx.crosstalk_inflated);
        if (ctx.crosstalk_inflated > 0) {
            std::ostringstream os;
            os << "crosstalk: inflated " << ctx.crosstalk_inflated
               << " simultaneous adjacent 2Q ops by x" << inflation_;
            ctx.diagnostic(os.str());
        }
    }

  private:
    double inflation_;
};

class NoiseAnnotationPass : public Pass
{
  public:
    std::string name() const override { return "noise-annotation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(!ctx.physical.empty(),
                      "noise annotation requires a mapping");
        ctx.noise = ctx.device().noiseModelFor(ctx.physical);
        // Report the decoherence-relevant wall-clock figures off the
        // shared schedule rather than re-deriving moments privately.
        const Schedule& schedule = ctx.ensureSchedule();
        ctx.reportCounter("schedule_depth", schedule.depth());
        ctx.reportCounter("scheduled_duration_ns",
                          schedule.durationNs());
    }
};

} // namespace

std::unique_ptr<Pass>
makeMappingPass()
{
    return std::make_unique<MappingPass>();
}

std::unique_ptr<Pass>
makeRoutingPass(const std::string& strategy)
{
    return std::make_unique<RoutingPass>(strategy);
}

std::unique_ptr<Pass>
makeSchedulingPass()
{
    return std::make_unique<SchedulingPass>();
}

std::unique_ptr<Pass>
makeConsolidationPass()
{
    return std::make_unique<ConsolidationPass>();
}

std::unique_ptr<Pass>
makeTranslationPass()
{
    return std::make_unique<TranslationPass>();
}

std::unique_ptr<Pass>
makeCrosstalkPass(double inflation)
{
    return std::make_unique<CrosstalkPass>(inflation);
}

std::unique_ptr<Pass>
makeNoiseAnnotationPass()
{
    return std::make_unique<NoiseAnnotationPass>();
}

} // namespace qiset
