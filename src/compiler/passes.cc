#include "compiler/passes.h"

#include <sstream>

#include "common/error.h"
#include "compiler/consolidate.h"
#include "compiler/crosstalk.h"
#include "compiler/mapping.h"
#include "compiler/routing.h"
#include "compiler/translate.h"

namespace qiset {

namespace {

class MappingPass : public Pass
{
  public:
    std::string name() const override { return "mapping"; }

    void run(CompilationContext& ctx) override
    {
        ctx.physical = chooseMapping(ctx.device(), ctx.circuit.numQubits(),
                                     ctx.gateSet());
        ctx.reportCounter("physical_qubits",
                          static_cast<double>(ctx.physical.size()));
    }
};

class RoutingPass : public Pass
{
  public:
    std::string name() const override { return "routing"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "routing requires a mapping pass to run first");
        Topology coupling =
            ctx.device().topology().inducedSubgraph(ctx.physical);
        RoutedCircuit routed = routeCircuit(ctx.circuit, coupling);
        ctx.circuit = std::move(routed.circuit);
        ctx.final_positions = std::move(routed.final_positions);
        ctx.swaps_inserted = routed.swaps_inserted;
        ctx.reportCounter("swaps_inserted", routed.swaps_inserted);
    }
};

class ConsolidationPass : public Pass
{
  public:
    std::string name() const override { return "consolidation"; }

    void run(CompilationContext& ctx) override
    {
        int before = ctx.circuit.twoQubitGateCount();
        ctx.circuit = consolidateTwoQubitBlocks(ctx.circuit);
        int after = ctx.circuit.twoQubitGateCount();
        ctx.reportCounter("blocks_before", before);
        ctx.reportCounter("blocks_after", after);
    }
};

class TranslationPass : public Pass
{
  public:
    std::string name() const override { return "translation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "translation requires a mapping pass to run first");
        NuOpDecomposer decomposer(ctx.options().nuop);
        TranslateResult translated = translateCircuit(
            ctx.circuit, ctx.physical, ctx.device(), ctx.gateSet(),
            decomposer, ctx.profileCache(), ctx.options().approximate,
            ctx.threadPool());
        ctx.circuit = std::move(translated.circuit);
        ctx.two_qubit_count = translated.two_qubit_count;
        ctx.type_usage = std::move(translated.type_usage);
        ctx.estimated_fidelity = translated.estimated_fidelity;

        ctx.reportCounter("two_qubit_count", translated.two_qubit_count);
        // This circuit's own traffic (the shared cache's global stats
        // also include concurrently-compiling circuits).
        ctx.reportCounter("cache_hits",
                          static_cast<double>(translated.cache_hits));
        ctx.reportCounter("cache_misses",
                          static_cast<double>(translated.cache_misses));
    }
};

class CrosstalkPass : public Pass
{
  public:
    explicit CrosstalkPass(double inflation) : inflation_(inflation) {}

    std::string name() const override { return "crosstalk"; }

    void run(CompilationContext& ctx) override
    {
        ctx.crosstalk_inflated = applyCrosstalkInflation(
            ctx.circuit, ctx.physical, ctx.device().topology(),
            inflation_);
        ctx.reportCounter("inflated_ops", ctx.crosstalk_inflated);
        if (ctx.crosstalk_inflated > 0) {
            std::ostringstream os;
            os << "crosstalk: inflated " << ctx.crosstalk_inflated
               << " simultaneous adjacent 2Q ops by x" << inflation_;
            ctx.diagnostic(os.str());
        }
    }

  private:
    double inflation_;
};

class NoiseAnnotationPass : public Pass
{
  public:
    std::string name() const override { return "noise-annotation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(!ctx.physical.empty(),
                      "noise annotation requires a mapping");
        ctx.noise = ctx.device().noiseModelFor(ctx.physical);
    }
};

} // namespace

std::unique_ptr<Pass>
makeMappingPass()
{
    return std::make_unique<MappingPass>();
}

std::unique_ptr<Pass>
makeRoutingPass()
{
    return std::make_unique<RoutingPass>();
}

std::unique_ptr<Pass>
makeConsolidationPass()
{
    return std::make_unique<ConsolidationPass>();
}

std::unique_ptr<Pass>
makeTranslationPass()
{
    return std::make_unique<TranslationPass>();
}

std::unique_ptr<Pass>
makeCrosstalkPass(double inflation)
{
    return std::make_unique<CrosstalkPass>(inflation);
}

std::unique_ptr<Pass>
makeNoiseAnnotationPass()
{
    return std::make_unique<NoiseAnnotationPass>();
}

} // namespace qiset
