#include "compiler/passes.h"

#include <sstream>

#include "common/error.h"
#include "compiler/consolidate.h"
#include "compiler/crosstalk.h"
#include "compiler/mapping.h"
#include "compiler/routing.h"
#include "compiler/routing_strategy.h"
#include "compiler/translate.h"

namespace qiset {

namespace {

class MappingPass : public Pass
{
  public:
    std::string name() const override { return "mapping"; }

    void run(CompilationContext& ctx) override
    {
        ctx.physical = chooseMapping(ctx.device(), ctx.circuit.numQubits(),
                                     ctx.gateSet());
        ctx.reportCounter("physical_qubits",
                          static_cast<double>(ctx.physical.size()));
    }
};

class RoutingPass : public Pass
{
  public:
    explicit RoutingPass(std::string strategy)
        : strategy_(std::move(strategy))
    {
    }

    std::string name() const override { return "routing"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "routing requires a mapping pass to run first");
        // The built-in SABRE router takes its tuning from the compile
        // options; other names resolve through the registry (whose
        // factories take no options).
        std::unique_ptr<RoutingStrategy> router =
            strategy_ == "sabre"
                ? std::make_unique<SabreRouter>(ctx.options().sabre)
                : makeRoutingStrategy(strategy_);
        Topology coupling =
            ctx.device().topology().inducedSubgraph(ctx.physical);
        // Only lookahead strategies need the pre-routing schedule;
        // don't build one the greedy path would throw away.
        RoutedCircuit routed = router->wantsSchedule()
                                   ? router->route(ctx.circuit, coupling,
                                                   ctx.ensureSchedule())
                                   : router->route(ctx.circuit, coupling,
                                                   Schedule());
        ctx.circuit = std::move(routed.circuit);
        ctx.schedule.invalidate(); // SWAPs rewrote the circuit
        ctx.initial_positions = std::move(routed.initial_positions);
        ctx.final_positions = std::move(routed.final_positions);
        ctx.swaps_inserted = routed.swaps_inserted;
        ctx.reportCounter("swaps_inserted", routed.swaps_inserted);
        ctx.diagnostic("routing: strategy " + strategy_ + " inserted " +
                       std::to_string(routed.swaps_inserted) + " SWAPs");
    }

  private:
    std::string strategy_;
};

class ConsolidationPass : public Pass
{
  public:
    std::string name() const override { return "consolidation"; }

    void run(CompilationContext& ctx) override
    {
        int before = ctx.circuit.twoQubitGateCount();
        ctx.circuit = consolidateTwoQubitBlocks(ctx.circuit);
        ctx.schedule.invalidate(); // fusing ops rewrote the circuit
        int after = ctx.circuit.twoQubitGateCount();
        ctx.reportCounter("blocks_before", before);
        ctx.reportCounter("blocks_after", after);
    }
};

class TranslationPass : public Pass
{
  public:
    std::string name() const override { return "translation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(ctx.physical.size() ==
                          static_cast<size_t>(ctx.circuit.numQubits()),
                      "translation requires a mapping pass to run first");
        NuOpDecomposer decomposer(ctx.options().nuop);
        TranslateResult translated = translateCircuit(
            ctx.circuit, ctx.physical, ctx.device(), ctx.gateSet(),
            decomposer, ctx.profileCache(), ctx.options().approximate,
            ctx.threadPool());
        ctx.circuit = std::move(translated.circuit);
        ctx.schedule.invalidate(); // native gates rewrote the circuit
        ctx.two_qubit_count = translated.two_qubit_count;
        ctx.type_usage = std::move(translated.type_usage);
        ctx.estimated_fidelity = translated.estimated_fidelity;

        ctx.reportCounter("two_qubit_count", translated.two_qubit_count);
        // This circuit's own traffic (the shared cache's global stats
        // also include concurrently-compiling circuits).
        ctx.reportCounter("cache_hits",
                          static_cast<double>(translated.cache_hits));
        ctx.reportCounter("cache_misses",
                          static_cast<double>(translated.cache_misses));
    }
};

class SchedulingPass : public Pass
{
  public:
    std::string name() const override { return "scheduling"; }

    void run(CompilationContext& ctx) override
    {
        ctx.schedule.build(ctx.circuit);
        ctx.reportCounter("depth", ctx.schedule.depth());
        ctx.reportCounter("max_parallel_2q",
                          static_cast<double>(
                              ctx.schedule.maxParallelTwoQubit()));
        ctx.reportCounter("duration_ns", ctx.schedule.durationNs());
    }
};

class CrosstalkPass : public Pass
{
  public:
    explicit CrosstalkPass(double inflation) : inflation_(inflation) {}

    std::string name() const override { return "crosstalk"; }

    void run(CompilationContext& ctx) override
    {
        // Simultaneity comes from the shared schedule (built by the
        // scheduling pass; rebuilt here only if a pass rewrote the
        // circuit afterwards). Error-rate inflation keeps it valid.
        ctx.crosstalk_inflated = applyCrosstalkInflation(
            ctx.circuit, ctx.ensureSchedule(), ctx.physical,
            ctx.device().topology(), inflation_);
        ctx.reportCounter("inflated_ops", ctx.crosstalk_inflated);
        if (ctx.crosstalk_inflated > 0) {
            std::ostringstream os;
            os << "crosstalk: inflated " << ctx.crosstalk_inflated
               << " simultaneous adjacent 2Q ops by x" << inflation_;
            ctx.diagnostic(os.str());
        }
    }

  private:
    double inflation_;
};

class NoiseAnnotationPass : public Pass
{
  public:
    std::string name() const override { return "noise-annotation"; }

    void run(CompilationContext& ctx) override
    {
        QISET_REQUIRE(!ctx.physical.empty(),
                      "noise annotation requires a mapping");
        ctx.noise = ctx.device().noiseModelFor(ctx.physical);
        // Report the decoherence-relevant wall-clock figures off the
        // shared schedule rather than re-deriving moments privately.
        const Schedule& schedule = ctx.ensureSchedule();
        ctx.reportCounter("schedule_depth", schedule.depth());
        ctx.reportCounter("scheduled_duration_ns",
                          schedule.durationNs());
    }
};

} // namespace

std::unique_ptr<Pass>
makeMappingPass()
{
    return std::make_unique<MappingPass>();
}

std::unique_ptr<Pass>
makeRoutingPass(const std::string& strategy)
{
    return std::make_unique<RoutingPass>(strategy);
}

std::unique_ptr<Pass>
makeSchedulingPass()
{
    return std::make_unique<SchedulingPass>();
}

std::unique_ptr<Pass>
makeConsolidationPass()
{
    return std::make_unique<ConsolidationPass>();
}

std::unique_ptr<Pass>
makeTranslationPass()
{
    return std::make_unique<TranslationPass>();
}

std::unique_ptr<Pass>
makeCrosstalkPass(double inflation)
{
    return std::make_unique<CrosstalkPass>(inflation);
}

std::unique_ptr<Pass>
makeNoiseAnnotationPass()
{
    return std::make_unique<NoiseAnnotationPass>();
}

} // namespace qiset
