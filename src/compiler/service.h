#ifndef QISET_COMPILER_SERVICE_H
#define QISET_COMPILER_SERVICE_H

/**
 * @file
 * The async compile service: one long-lived process front end serving
 * many concurrent clients on top of the shard planner's queues.
 *
 * Clients build a CompileRequest (circuits + optional per-request
 * CompileOptions + QoS hints: priority, deadline; optionally an
 * on_complete callback — the primary completion pattern) and submit()
 * it to a CompileService, getting back a CompileJob — a future-like
 * handle with onComplete()/wait()/waitFor()/poll()/cancel() and
 * per-job telemetry (queue wait, per-circuit shard assignment, cache
 * hit ratio, accumulated PassMetric roll-up). Observability is
 * streaming: an optional EventStream receives one lock-free packet
 * per lifecycle transition and per compiler pass (exportable as a
 * Chrome trace, metrics/trace_export.h), a periodic publisher can
 * push shardTelemetry() snapshots to a sink, and an online cost model
 * (metrics/cost_model.h) learns compile wall-clock from finished work
 * and — behind ShardPlannerOptions::use_cost_model, default off —
 * feeds predictions back into admission planning. Internally the service owns a DeviceFleet, one
 * shared persistable ProfileCache, a worker ThreadPool, and per-shard
 * admission queues keyed by the planner's predicted queue_ns:
 * arriving requests are re-planned against the current backlog (the
 * plan is cheap and deterministic), admission control can reject work
 * whose predicted completion misses its deadline or overflows a
 * backlog cap, and dispatch is FIFO within priority.
 *
 * Determinism: per-circuit compiles run the same pass pipeline as
 * compileCircuit() with the same seeded-multistart guarantee, so
 * service results are bit-identical to solo compiles on the assigned
 * shard's device — the legacy entry points (compileCircuit,
 * compileBatch, compileBatchSharded) are thin wrappers over one-shot
 * service instances.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/shard.h"
#include "metrics/event_stream.h"

namespace qiset {

class CompileService;
class CompileJob;

/** Lifecycle states of a CompileJob. */
enum class JobStatus
{
    /** Admitted; at least one circuit still waits for dispatch. */
    Queued,
    /** At least one circuit has been dispatched to a worker. */
    Running,
    /** All circuits compiled; results() is complete. */
    Done,
    /** cancel() stopped the job before every circuit compiled. */
    Cancelled,
    /** A compile threw; results() rethrows the first error. */
    Failed,
    /** Admission control refused the request (deadline/backlog). */
    Rejected,
};

/** Human-readable status name ("queued", "done", ...). */
const char* toString(JobStatus status);

/** One client request: circuits plus per-request options and QoS. */
struct CompileRequest
{
    /** Workload; every circuit is planned onto one fleet shard. */
    std::vector<Circuit> circuits;
    /**
     * Per-request compile options. When unset, each circuit compiles
     * with its assigned shard's options. When set, they override the
     * shard options for this request — except NuOpOptions, which must
     * match the fleet's (the shared profile cache is keyed by
     * (unitary, gate type) only; submit() raises FatalError on a
     * mismatch).
     */
    std::optional<CompileOptions> options;
    /** Dispatch priority: higher runs sooner; FIFO within a level. */
    int priority = 0;
    /**
     * Admission deadline in predicted-queue ns (the planner's
     * queue_ns scale). When > 0, the request is Rejected if its
     * predicted completion backlog exceeds this. 0 disables.
     */
    double deadline_ns = 0.0;
    /** Client label carried into telemetry. */
    std::string tag;
    /**
     * Completion callback, invoked exactly once when the job reaches a
     * terminal state (Done / Cancelled / Failed / Rejected — check the
     * handle's poll()). The primary completion pattern: no poll loop,
     * no blocked waiter thread. Runs outside every service and job
     * lock — on the worker that finished the last circuit (async), on
     * the submitting thread (inline mode, rejections, empty requests),
     * or on the draining thread at shutdown. Any service method except
     * shutdown() may be called from inside it; keep it brief, it runs
     * on a compile worker. See also CompileJob::onComplete for
     * registering after submission.
     */
    std::function<void(CompileJob)> on_complete;
};

/** ShardedBatchResult-style aggregate statistics of one job. */
struct CompileJobStats
{
    /** Circuits in the request. */
    size_t circuits = 0;
    /** Mean / max wall-clock wait between admission and dispatch. */
    double queue_wait_ns_mean = 0.0;
    double queue_wait_ns_max = 0.0;
    /** Summed compile wall-clock across the job's circuits. */
    double compile_wall_ms = 0.0;
    /** Shared-cache traffic of this job's translations (exact:
     *  summed from the per-compile translation-pass counters). */
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    /** hits / (hits + misses); 0 when the job did no lookups. */
    double cache_hit_ratio = 0.0;
    int swaps_inserted = 0;
    /** Inter-core teleports of this job's compiles (chiplet shards). */
    int teleports_inserted = 0;
    /** Expected EPR generation attempts those teleports cost. */
    double epr_attempts = 0.0;
    double mean_estimated_fidelity = 0.0;
    double mean_predicted_fidelity = 0.0;
    /** Per-circuit assigned shard index (the plan's view). */
    std::vector<int> shards;
    /**
     * Per-circuit global dispatch sequence number (1-based service-
     * wide order in which circuits reached a worker; 0 = never
     * dispatched). Exposes FIFO-within-priority for tests/telemetry.
     */
    std::vector<uint64_t> dispatch_seq;
};

/**
 * Future-like handle to one submitted request. Copyable (all copies
 * share the same state) and safe to wait()/poll() after the service
 * that produced it has been destroyed (shutdown drains every job to a
 * terminal state first).
 */
class CompileJob
{
  public:
    CompileJob() = default;

    /** False for a default-constructed handle. */
    bool valid() const { return state_ != nullptr; }

    /** Service-wide id (1-based submission order). */
    uint64_t id() const;

    /** Current status without blocking. */
    JobStatus poll() const;

    /** Block until the job reaches a terminal state; returns it. */
    JobStatus wait() const;

    /**
     * Block until the job is terminal or `timeout_ms` elapses; returns
     * the status either way (non-terminal = timed out). A non-positive
     * timeout — including a deadline that already passed before the
     * call — never blocks: it returns the current status immediately
     * rather than waiting out a dispatch cycle.
     */
    JobStatus waitFor(double timeout_ms) const;

    /**
     * Register a completion callback on a live handle (same contract
     * as CompileRequest::on_complete: invoked exactly once, outside
     * all locks). On an already-terminal job the callback runs
     * immediately on the calling thread, so registration can never
     * miss the completion.
     */
    void onComplete(std::function<void(CompileJob)> callback);

    /**
     * Best-effort cancel: circuits not yet dispatched are dropped
     * (releasing their predicted backlog); circuits already on a
     * worker run to completion. Returns true when the job will end
     * Cancelled (some work was dropped), false when it was already
     * terminal or every circuit had been dispatched.
     */
    bool cancel();

    /**
     * Compiled circuits, aligned with the request (blocks until
     * terminal). Throws FatalError unless the status is Done; a
     * Failed job rethrows the first compile error instead.
     */
    const std::vector<CompileResult>& results() const;

    /**
     * Move the compiled circuits out (same contract as results()).
     * Leaves every handle to this job with empty results; the one-shot
     * legacy wrappers use it to avoid deep-copying circuits.
     */
    std::vector<CompileResult> takeResults();

    /** The admission-time plan of this request's circuits. */
    const ShardPlan& plan() const;

    /** Aggregate statistics (complete once the job is terminal). */
    CompileJobStats stats() const;

    /**
     * Per-pass roll-up across the job's circuits
     * (accumulatePassMetrics) plus one trailing "service:job" row of
     * *summable* service counters (circuits, queue_wait_ns_total,
     * cache_hits/misses, swaps_inserted, estimated_fidelity_sum), so
     * folding several jobs with accumulatePassMetrics aggregates
     * service telemetry meaningfully — derive means/ratios from the
     * sums (per-job ones are precomputed on stats()).
     */
    std::vector<PassMetric> passMetrics() const;

    /** The request's client label. */
    const std::string& tag() const;

  private:
    friend class CompileService;
    struct State;
    explicit CompileJob(std::shared_ptr<State> state)
        : state_(std::move(state))
    {
    }
    std::shared_ptr<State> state_;
};

/** Service tuning. */
struct CompileServiceOptions
{
    /**
     * Worker threads of a service-owned ThreadPool. 0 with no
     * borrowed pool means *inline* execution: submit() compiles the
     * request on the calling thread before returning (the mode the
     * one-shot legacy wrappers use — no thread spin-up per call).
     */
    size_t workers = 0;
    /**
     * Borrowed worker pool (takes precedence over `workers`; must
     * outlive the service). Never submit() from inside one of its
     * workers — the drain would deadlock.
     */
    ThreadPool* pool = nullptr;
    /**
     * Intra-circuit translation pool used only in inline mode (async
     * workers keep the inner translation serial so a worker never
     * waits on its own pool).
     */
    ThreadPool* translation_pool = nullptr;
    /** Shard planner settings used on every arrival re-plan. */
    ShardPlannerOptions planner;
    /**
     * Admission cap: reject a request when any shard's predicted
     * backlog would exceed this many ns. 0 = unbounded.
     */
    double max_queue_ns = 0.0;
    /**
     * Dispatched-but-unfinished circuit cap; 0 = worker-pool size.
     * Keeping it at the pool size preserves priority semantics under
     * load (the queue, not the pool's FIFO, orders work).
     */
    size_t max_inflight = 0;
    /**
     * Borrowed profile cache (must outlive the service). When null
     * the service owns one — the warm state the ROADMAP's service
     * item names, persistable across restarts via `cache_path`.
     */
    ProfileCache* cache = nullptr;
    /**
     * When set, the owned cache is load()ed from this path at
     * construction (ignored on NuOp-stamp mismatch) and save()d at
     * shutdown. No effect on a borrowed cache.
     */
    std::string cache_path;
    /**
     * Borrowed event stream (must outlive the service). When set,
     * every lifecycle transition — submit, per-circuit admit, reject,
     * dispatch, per-pass begin/complete, cache traffic, complete,
     * cancel — publishes one fixed-size packet (lock-free, drop-on-
     * full; see metrics/event_stream.h). Null (the default) publishes
     * nothing and keeps the hot path untouched. Telemetry never
     * affects compile results.
     */
    EventStream* events = nullptr;
    /**
     * Borrowed online cost model (must outlive the service). When set
     * — or when the service owns one because planner.use_cost_model is
     * on — every finished compile feeds its measured wall-clock,
     * per-pass breakdown and cache traffic back into the model, and
     * arrival re-plans consult it per planner.use_cost_model. A
     * borrowed model with the planner knob off observes without ever
     * steering (useful for warming a model offline).
     */
    CompileCostModel* cost_model = nullptr;
    /**
     * When > 0 (ms) and telemetry_sink is set, a service-owned
     * publisher thread delivers a shardTelemetry() snapshot to the
     * sink every interval, plus one final snapshot at shutdown after
     * the drain. The sink runs outside all service locks.
     */
    double telemetry_interval_ms = 0.0;
    std::function<void(std::vector<PassMetric>)> telemetry_sink;
};

/** Counter snapshot of a service (all monotonic except gauges). */
struct CompileServiceStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    /** Gauge: circuits currently awaiting dispatch. */
    size_t queued = 0;
    /** Gauge: circuits currently on a worker. */
    size_t in_flight = 0;
    /** Gauge: per-shard predicted ns admitted but not yet compiled. */
    std::vector<double> backlog_ns;
    /** Monotonic per-shard predicted ns ever admitted. */
    std::vector<double> admitted_ns;
};

/**
 * Options for a one-shot service standing in for a legacy entry
 * point: borrow the caller's cache, and route a caller-provided pool
 * the way the old direct execution used it — fanning circuits across
 * workers when it can parallelize the batch (pool of > 1 worker,
 * > 1 circuit), otherwise parallelizing within each circuit's
 * translation. Shared by compileCircuit/compileBatch/
 * compileBatchSharded and the bench helpers so the dispatch rule
 * lives in exactly one place.
 */
CompileServiceOptions oneShotServiceOptions(ProfileCache& cache,
                                            size_t batch_size,
                                            ThreadPool* pool);

/**
 * Long-lived request/job compile front end over a DeviceFleet. All
 * public methods are thread-safe; many clients may submit()
 * concurrently. Destruction (or shutdown()) stops admission, drains
 * every queued and running job to a terminal state, and persists the
 * owned cache when cache_path is set.
 */
class CompileService
{
  public:
    /**
     * @throws FatalError when the fleet is empty or its shards carry
     *         mismatched NuOpOptions (they share one profile cache).
     */
    CompileService(DeviceFleet fleet, GateSet gate_set,
                   CompileServiceOptions options = CompileServiceOptions());
    ~CompileService();

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /**
     * Plan the request against the current per-shard backlog, apply
     * admission control, and enqueue (async) or run (inline mode) its
     * circuits. Returns immediately in async mode. An empty request
     * completes Done immediately; QoS refusals return a Rejected job
     * rather than throwing. Raises FatalError after shutdown, when a
     * circuit fits no shard, or when request options carry NuOp
     * settings different from the fleet's.
     */
    CompileJob submit(CompileRequest request);

    /** Stop dispatching queued circuits (async mode; running ones
     *  finish). Inline submits are unaffected. */
    void pause();

    /** Resume dispatching. */
    void resume();

    /**
     * Stop admitting, resume if paused, and block until every queued
     * and running circuit has drained; saves the owned cache when
     * cache_path is set. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Counter/gauge snapshot. */
    CompileServiceStats stats() const;

    /**
     * Per-shard telemetry in ShardedBatchResult::shard_metrics form:
     * one "shard:<name>" PassMetric per shard with assigned /
     * completed counts, cumulative predicted queue_ns, swaps and mean
     * estimated/predicted fidelities across everything the service
     * has compiled so far.
     */
    std::vector<PassMetric> shardTelemetry() const;

    /** Per-shard per-pass roll-ups (accumulatePassMetrics totals). */
    std::vector<std::vector<PassMetric>> shardPassRollups() const;

    const DeviceFleet& fleet() const;
    const GateSet& gateSet() const;
    /** The shared profile cache (owned or borrowed). */
    ProfileCache& profileCache();

    /**
     * The active cost model (borrowed, or service-owned when
     * planner.use_cost_model is set without one); null when the
     * service neither observes nor consults a model.
     */
    CompileCostModel* costModel();

  private:
    friend class CompileJob;
    struct Impl;
    std::shared_ptr<Impl> impl_;
    std::unique_ptr<ThreadPool> owned_pool_;
};

} // namespace qiset

#endif // QISET_COMPILER_SERVICE_H
