#include "compiler/consolidate.h"

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

namespace {

/** An in-flight fusion block on an ordered qubit pair. */
struct Block
{
    int qubit_a; // first qubit == most-significant bit of the 4x4
    int qubit_b;
    Matrix unitary = Matrix::identity(4);
    int fused_ops = 0;
};

/** Embed a 1Q gate into the block's 4x4 (a is the MSB). */
Matrix
embed1q(const Matrix& gate, bool on_first)
{
    return on_first ? gate.kron(Matrix::identity(2))
                    : Matrix::identity(2).kron(gate);
}

} // namespace

Circuit
consolidateTwoQubitBlocks(const Circuit& circuit)
{
    // No caller arena (direct use in tests/benches): scratch lives in
    // a call-local arena discarded wholesale on return.
    MemArena arena;
    return consolidateTwoQubitBlocks(circuit, arena);
}

Circuit
consolidateTwoQubitBlocks(const Circuit& circuit, MemArena& arena)
{
    Circuit out(circuit.numQubits());
    // Consolidation never grows the op list: every input op either
    // passes through or fuses away.
    out.reserveOps(circuit.size());

    // owner[q] = index into `blocks` of the active block covering
    // qubit q, or -1. A flat array: lookups on the fuse hot path were
    // previously a std::map probe per op.
    auto owner = makeArenaVector<int>(arena, circuit.numQubits(), -1);
    auto blocks = makeArenaVector<Block>(arena);
    // Every 4x4 product lands in these reused scratch matrices
    // (inline SBO storage — the whole fuse loop is allocation-free).
    Matrix embedded, product;

    static const LabelId block_label = internLabel("block");
    auto flush = [&](int index) {
        Block& block = blocks[static_cast<size_t>(index)];
        out.add2q(block.qubit_a, block.qubit_b, block.unitary,
                  block_label);
        owner[block.qubit_a] = -1;
        owner[block.qubit_b] = -1;
    };

    auto flush_qubit = [&](int q) {
        if (owner[q] >= 0)
            flush(owner[q]);
    };

    for (const auto& op : circuit.ops()) {
        Qubits qs = op.qubits();
        if (!op.isTwoQubit()) {
            int q = qs[0];
            if (owner[q] >= 0) {
                Block& block = blocks[static_cast<size_t>(owner[q])];
                embedded = embed1q(op.unitary(), q == block.qubit_a);
                Matrix::multiplyInto(product, embedded, block.unitary);
                std::swap(block.unitary, product);
                ++block.fused_ops;
            } else {
                out.add(op);
            }
            continue;
        }

        int a = qs[0];
        int b = qs[1];
        static const LabelId teleport_label = internLabel("TELEPORT");
        static const LabelId teleswap_label = internLabel("TELESWAP");
        if (op.labelId() == teleport_label ||
            op.labelId() == teleswap_label) {
            // Inter-core link ops are fusion barriers: they are
            // already native (translation passes them through, never
            // decomposes them), so absorbing them into an SU(4) block
            // would put that block on an uncoupled qubit pair.
            flush_qubit(a);
            flush_qubit(b);
            out.add(op);
            continue;
        }
        if (owner[a] >= 0 && owner[a] == owner[b]) {
            // Same pair: fuse (reorienting if the op is reversed).
            Block& block = blocks[static_cast<size_t>(owner[a])];
            if (a != block.qubit_a) {
                const Matrix& s = gates::swap();
                Matrix::multiplyInto(product, s, op.unitary());
                Matrix::multiplyInto(embedded, product, s);
            } else {
                embedded = op.unitary();
            }
            Matrix::multiplyInto(product, embedded, block.unitary);
            std::swap(block.unitary, product);
            ++block.fused_ops;
            continue;
        }
        // Different partners: close whatever these qubits were part of
        // and open a fresh block.
        flush_qubit(a);
        flush_qubit(b);
        Block block;
        block.qubit_a = a;
        block.qubit_b = b;
        block.unitary = op.unitary();
        block.fused_ops = 1;
        blocks.push_back(std::move(block));
        owner[a] = static_cast<int>(blocks.size()) - 1;
        owner[b] = static_cast<int>(blocks.size()) - 1;
    }

    // Flush remaining blocks in creation order for determinism.
    auto open = makeArenaVector<int>(arena);
    for (int q = 0; q < circuit.numQubits(); ++q)
        if (owner[q] >= 0)
            open.push_back(owner[q]);
    std::sort(open.begin(), open.end());
    open.erase(std::unique(open.begin(), open.end()), open.end());
    for (int index : open)
        flush(index);

    return out;
}

} // namespace qiset
