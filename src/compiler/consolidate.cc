#include "compiler/consolidate.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

namespace {

/** An in-flight fusion block on an ordered qubit pair. */
struct Block
{
    int qubit_a; // first qubit == most-significant bit of the 4x4
    int qubit_b;
    Matrix unitary = Matrix::identity(4);
    int fused_ops = 0;
};

/** Embed a 1Q gate into the block's 4x4 (a is the MSB). */
Matrix
embed1q(const Matrix& gate, bool on_first)
{
    return on_first ? gate.kron(Matrix::identity(2))
                    : Matrix::identity(2).kron(gate);
}

} // namespace

Circuit
consolidateTwoQubitBlocks(const Circuit& circuit)
{
    Circuit out(circuit.numQubits());

    // qubit -> index into `blocks` of the active block covering it.
    std::map<int, size_t> owner;
    std::vector<Block> blocks;

    auto flush = [&](size_t index) {
        Block& block = blocks[index];
        Operation op;
        op.qubits = {block.qubit_a, block.qubit_b};
        op.unitary = block.unitary;
        op.label = "block";
        out.add(std::move(op));
        owner.erase(block.qubit_a);
        owner.erase(block.qubit_b);
    };

    auto flush_qubit = [&](int q) {
        auto it = owner.find(q);
        if (it != owner.end())
            flush(it->second);
    };

    for (const auto& op : circuit.ops()) {
        if (!op.isTwoQubit()) {
            int q = op.qubits[0];
            auto it = owner.find(q);
            if (it != owner.end()) {
                Block& block = blocks[it->second];
                block.unitary =
                    embed1q(op.unitary, q == block.qubit_a) *
                    block.unitary;
                ++block.fused_ops;
            } else {
                out.add(op);
            }
            continue;
        }

        int a = op.qubits[0];
        int b = op.qubits[1];
        auto it_a = owner.find(a);
        auto it_b = owner.find(b);
        if (it_a != owner.end() && it_b != owner.end() &&
            it_a->second == it_b->second) {
            // Same pair: fuse (reorienting if the op is reversed).
            Block& block = blocks[it_a->second];
            Matrix u = op.unitary;
            if (a != block.qubit_a) {
                Matrix s = gates::swap();
                u = s * u * s;
            }
            block.unitary = u * block.unitary;
            ++block.fused_ops;
            continue;
        }
        // Different partners: close whatever these qubits were part of
        // and open a fresh block.
        flush_qubit(a);
        flush_qubit(b);
        Block block;
        block.qubit_a = a;
        block.qubit_b = b;
        block.unitary = op.unitary;
        block.fused_ops = 1;
        blocks.push_back(std::move(block));
        owner[a] = blocks.size() - 1;
        owner[b] = blocks.size() - 1;
    }

    // Flush remaining blocks in creation order for determinism.
    std::vector<size_t> open;
    for (const auto& [q, index] : owner)
        open.push_back(index);
    std::sort(open.begin(), open.end());
    open.erase(std::unique(open.begin(), open.end()), open.end());
    for (size_t index : open)
        flush(index);

    return out;
}

} // namespace qiset
