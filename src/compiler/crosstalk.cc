#include "compiler/crosstalk.h"

#include <algorithm>

#include "common/error.h"

namespace qiset {

int
applyCrosstalkInflation(Circuit& circuit, const Schedule& schedule,
                        const std::vector<int>& physical,
                        const Topology& device_topology,
                        double inflation)
{
    QISET_REQUIRE(inflation >= 1.0, "inflation must be >= 1");
    QISET_REQUIRE(physical.size() ==
                      static_cast<size_t>(circuit.numQubits()),
                  "physical map width mismatch");
    QISET_REQUIRE(schedule.consistentWith(circuit),
                  "crosstalk inflation needs the schedule of the "
                  "circuit being inflated");

    auto& ops = circuit.mutableOps();

    // Two couplers interact when any endpoint of one is adjacent to
    // (or shares) an endpoint of the other on the device graph.
    auto couplers_interact = [&](const Operation& a,
                                 const Operation& b) {
        for (int qa : a.qubits) {
            for (int qb : b.qubits) {
                int pa = physical[qa];
                int pb = physical[qb];
                if (pa == pb || device_topology.adjacent(pa, pb))
                    return true;
            }
        }
        return false;
    };

    // Pair up each moment's two-qubit frontier. A zero-error op is
    // ideal/abstract: it is never inflated and does not inflate its
    // later partners.
    std::vector<bool> inflate(ops.size(), false);
    for (const auto& frontier : schedule.twoQubitFrontier()) {
        for (size_t a = 0; a < frontier.size(); ++a) {
            size_t i = frontier[a];
            if (ops[i].error_rate <= 0.0)
                continue;
            for (size_t b = a + 1; b < frontier.size(); ++b) {
                size_t j = frontier[b];
                if (couplers_interact(ops[i], ops[j])) {
                    inflate[i] = true;
                    if (ops[j].error_rate > 0.0)
                        inflate[j] = true;
                }
            }
        }
    }

    int count = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        if (!inflate[i])
            continue;
        ops[i].error_rate =
            std::min(1.0, ops[i].error_rate * inflation);
        ++count;
    }
    return count;
}

int
applyCrosstalkInflation(Circuit& circuit,
                        const std::vector<int>& physical,
                        const Topology& device_topology,
                        double inflation)
{
    return applyCrosstalkInflation(circuit, Schedule(circuit), physical,
                                   device_topology, inflation);
}

} // namespace qiset
