#include "compiler/crosstalk.h"

#include <algorithm>

#include "common/error.h"

namespace qiset {

int
applyCrosstalkInflation(Circuit& circuit, const Schedule& schedule,
                        const std::vector<int>& physical,
                        const Topology& device_topology,
                        double inflation)
{
    QISET_REQUIRE(inflation >= 1.0, "inflation must be >= 1");
    QISET_REQUIRE(physical.size() ==
                      static_cast<size_t>(circuit.numQubits()),
                  "physical map width mismatch");
    QISET_REQUIRE(schedule.consistentWith(circuit),
                  "crosstalk inflation needs the schedule of the "
                  "circuit being inflated");

    // The sweep touches exactly two columns: qubit operands (read) and
    // error rates (read + rewrite).
    const std::vector<Qubits>& op_qubits = circuit.opQubits();
    std::vector<double>& error_rates = circuit.mutableErrorRates();

    // Two couplers interact when any endpoint of one is adjacent to
    // (or shares) an endpoint of the other on the device graph.
    auto couplers_interact = [&](Qubits a, Qubits b) {
        for (int qa : a) {
            for (int qb : b) {
                int pa = physical[qa];
                int pb = physical[qb];
                if (pa == pb || device_topology.adjacent(pa, pb))
                    return true;
            }
        }
        return false;
    };

    // Pair up each moment's two-qubit frontier. A zero-error op is
    // ideal/abstract: it is never inflated and does not inflate its
    // later partners.
    std::vector<bool> inflate(op_qubits.size(), false);
    for (const auto& frontier : schedule.twoQubitFrontier()) {
        for (size_t a = 0; a < frontier.size(); ++a) {
            size_t i = frontier[a];
            if (error_rates[i] <= 0.0)
                continue;
            for (size_t b = a + 1; b < frontier.size(); ++b) {
                size_t j = frontier[b];
                if (couplers_interact(op_qubits[i], op_qubits[j])) {
                    inflate[i] = true;
                    if (error_rates[j] > 0.0)
                        inflate[j] = true;
                }
            }
        }
    }

    int count = 0;
    for (size_t i = 0; i < error_rates.size(); ++i) {
        if (!inflate[i])
            continue;
        error_rates[i] = std::min(1.0, error_rates[i] * inflation);
        ++count;
    }
    return count;
}

int
applyCrosstalkInflation(Circuit& circuit,
                        const std::vector<int>& physical,
                        const Topology& device_topology,
                        double inflation)
{
    return applyCrosstalkInflation(circuit, Schedule(circuit), physical,
                                   device_topology, inflation);
}

} // namespace qiset
