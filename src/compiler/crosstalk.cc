#include "compiler/crosstalk.h"

#include <algorithm>

#include "common/error.h"

namespace qiset {

int
applyCrosstalkInflation(Circuit& circuit,
                        const std::vector<int>& physical,
                        const Topology& device_topology,
                        double inflation)
{
    QISET_REQUIRE(inflation >= 1.0, "inflation must be >= 1");
    QISET_REQUIRE(physical.size() ==
                      static_cast<size_t>(circuit.numQubits()),
                  "physical map width mismatch");

    // ASAP moment assignment.
    std::vector<int> level(circuit.numQubits(), 0);
    std::vector<int> moment(circuit.size());
    auto& ops = circuit.mutableOps();
    for (size_t i = 0; i < ops.size(); ++i) {
        int start = 0;
        for (int q : ops[i].qubits)
            start = std::max(start, level[q]);
        moment[i] = start;
        for (int q : ops[i].qubits)
            level[q] = start + 1;
    }

    // Two couplers interact when any endpoint of one is adjacent to
    // (or shares) an endpoint of the other on the device graph.
    auto couplers_interact = [&](const Operation& a,
                                 const Operation& b) {
        for (int qa : a.qubits) {
            for (int qb : b.qubits) {
                int pa = physical[qa];
                int pb = physical[qb];
                if (pa == pb || device_topology.adjacent(pa, pb))
                    return true;
            }
        }
        return false;
    };

    std::vector<bool> inflate(ops.size(), false);
    for (size_t i = 0; i < ops.size(); ++i) {
        if (!ops[i].isTwoQubit() || ops[i].error_rate <= 0.0)
            continue;
        for (size_t j = i + 1; j < ops.size(); ++j) {
            if (moment[j] != moment[i])
                continue;
            if (!ops[j].isTwoQubit())
                continue;
            if (couplers_interact(ops[i], ops[j])) {
                inflate[i] = true;
                if (ops[j].error_rate > 0.0)
                    inflate[j] = true;
            }
        }
    }

    int count = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        if (!inflate[i])
            continue;
        ops[i].error_rate =
            std::min(1.0, ops[i].error_rate * inflation);
        ++count;
    }
    return count;
}

} // namespace qiset
