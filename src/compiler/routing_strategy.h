#ifndef QISET_COMPILER_ROUTING_STRATEGY_H
#define QISET_COMPILER_ROUTING_STRATEGY_H

/**
 * @file
 * Pluggable SWAP-routing strategies.
 *
 * Routing is a policy, not a fixed algorithm: the RoutingPass
 * resolves CompileOptions::routing through this registry, so new
 * routers drop in without touching the pass pipeline. Two strategies
 * ship built in:
 *
 *  - "greedy": the paper's baseline — walk the op list and close each
 *    non-adjacent 2Q gate with SWAPs along a shortest path
 *    (routing.h).
 *  - "sabre":  a SABRE-style bidirectional lookahead router (Li,
 *    Ding, Xie, ASPLOS'19 shape). It keeps the DAG's front layer of
 *    blocked 2Q gates, scores candidate SWAPs by the summed coupling
 *    distance of the front layer plus a weighted lookahead window
 *    drawn from the Schedule IR's ASAP moment order, multiplies in a
 *    per-position decay to spread SWAPs across the register, and runs
 *    forward/reverse refinement passes whose final mapping seeds the
 *    emitting pass (so the start layout may be a permutation; see
 *    RoutedCircuit::initial_positions).
 *  - "telesabre": the chiplet-aware extension (teleport_router.h).
 *    On couplings carrying a multi-core structure it weighs intra-core
 *    SWAP chains against inter-core exchange teleportations; on
 *    single-core couplings it delegates to "sabre" bit-identically.
 *
 * Extension point: implement RoutingStrategy, then
 * registerRoutingStrategy("name", factory) once at startup;
 * CompileOptions::routing = "name" selects it everywhere (see
 * src/compiler/README.md).
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/schedule.h"
#include "common/arena.h"
#include "compiler/routing.h"

namespace qiset {

/** One SWAP-insertion policy. Implementations must be deterministic. */
class RoutingStrategy
{
  public:
    virtual ~RoutingStrategy() = default;

    /** Registry name (stable identifier, e.g. "greedy", "sabre"). */
    virtual std::string name() const = 0;

    /**
     * Whether route() consumes the schedule argument. Strategies that
     * return false (greedy) receive an empty Schedule and spare the
     * routing pass the build on the common path.
     */
    virtual bool wantsSchedule() const { return true; }

    /**
     * Route `logical` onto `coupling` (register-position numbering).
     * `schedule` is the moment schedule of `logical`, shared from the
     * CompilationContext — an empty Schedule when wantsSchedule() is
     * false. Must satisfy the RoutedCircuit contract: every emitted
     * 2Q op on a coupled pair, positions tracked in
     * initial_positions/final_positions, SWAPs emitted via
     * addSwapOp().
     */
    virtual RoutedCircuit route(const Circuit& logical,
                                const Topology& coupling,
                                const Schedule& schedule) const = 0;

    /**
     * Arena-aware overload: strategies rebuilding large scratch per
     * route (distance tables, dependency DAGs, frontier sets) may
     * bump-allocate it from `arena` instead of the heap. Contract:
     * every arena allocation is dead by return — the caller resets
     * the arena right after — and the returned RoutedCircuit holds
     * only regular heap state. The default ignores the arena.
     */
    virtual RoutedCircuit route(const Circuit& logical,
                                const Topology& coupling,
                                const Schedule& schedule,
                                MemArena& arena) const
    {
        (void)arena;
        return route(logical, coupling, schedule);
    }

    /** Convenience overload building the schedule internally. */
    RoutedCircuit route(const Circuit& logical,
                        const Topology& coupling) const
    {
        return route(logical, coupling,
                     wantsSchedule() ? Schedule(logical) : Schedule());
    }
};

using RoutingStrategyFactory =
    std::function<std::unique_ptr<RoutingStrategy>()>;

/**
 * Register a strategy under `name`.
 * @return false when the name is already taken (registration ignored).
 */
bool registerRoutingStrategy(const std::string& name,
                             RoutingStrategyFactory factory);

/**
 * Instantiate the strategy registered under `name`.
 * Throws FatalError for unknown names (message lists what exists).
 */
std::unique_ptr<RoutingStrategy>
makeRoutingStrategy(const std::string& name);

/** Registered strategy names, sorted. */
std::vector<std::string> routingStrategyNames();

/** The baseline greedy nearest-neighbor router (wraps routeCircuit). */
class GreedyRouter : public RoutingStrategy
{
  public:
    using RoutingStrategy::route;

    std::string name() const override { return "greedy"; }

    bool wantsSchedule() const override { return false; }

    RoutedCircuit route(const Circuit& logical, const Topology& coupling,
                        const Schedule& schedule) const override;
};

/** Tuning knobs of the SABRE-style router. */
struct SabreOptions
{
    /** Lookahead window: 2Q gates past the front layer to score. */
    int extended_set_size = 20;
    /** Weight of the lookahead term relative to the front layer. */
    double extended_set_weight = 0.5;
    /** Decay added to a position's weight per SWAP it partakes in. */
    double decay_increment = 0.001;
    /** SWAPs between decay resets (also reset on any progress). */
    int decay_reset_interval = 5;
    /**
     * Mapping-refinement passes run before the emitting pass:
     * forward, reverse, forward, ... Each seeds the next with its
     * final mapping (the SABRE bidirectional trick); 0 keeps the
     * identity start layout.
     */
    int refinement_rounds = 2;
};

/** Tuning knobs of the teleportation-aware chiplet router. */
struct TeleportOptions
{
    /**
     * Emit TELEPORT ops across inter-core links (one EPR pair each).
     * When false the router still crosses links, but with TELESWAP
     * ops — the gate-teleportation SWAP-only baseline at three EPR
     * pairs per crossing — so the two modes route identically and
     * differ only in link-op cost. The benches compare exactly this.
     */
    bool use_teleport = true;
    /**
     * Distance-table weight of one teleport link hop relative to one
     * intra-core coupling hop (> 1 biases the router toward staying
     * inside a core when a SWAP chain is competitive).
     */
    double teleport_weight = 2.0;
};

/** SABRE-style lookahead router ("sabre" in the registry). */
class SabreRouter : public RoutingStrategy
{
  public:
    using RoutingStrategy::route;

    explicit SabreRouter(SabreOptions options = SabreOptions());

    std::string name() const override { return "sabre"; }

    /** Routes via a private arena (scratch discarded on return). */
    RoutedCircuit route(const Circuit& logical, const Topology& coupling,
                        const Schedule& schedule) const override;

    /** Bump-allocates all routing scratch from `arena`. */
    RoutedCircuit route(const Circuit& logical, const Topology& coupling,
                        const Schedule& schedule,
                        MemArena& arena) const override;

    const SabreOptions& options() const { return options_; }

  private:
    SabreOptions options_;
};

} // namespace qiset

#endif // QISET_COMPILER_ROUTING_STRATEGY_H
