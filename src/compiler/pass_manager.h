#ifndef QISET_COMPILER_PASS_MANAGER_H
#define QISET_COMPILER_PASS_MANAGER_H

/**
 * @file
 * Ordered pass registry and runner.
 *
 * A PassManager owns a sequence of Pass instances and executes them
 * against one CompilationContext, timing each pass and appending a
 * PassMetric record per run. Pipelines are assembled explicitly
 * (append / insertBefore / insertAfter / remove), so alternative stage
 * orders, ablations and new passes need no changes to the core.
 */

#include <memory>
#include <string>
#include <vector>

#include "compiler/pass.h"

namespace qiset {

/** Ordered, named sequence of compiler passes. */
class PassManager
{
  public:
    PassManager() = default;
    PassManager(PassManager&&) = default;
    PassManager& operator=(PassManager&&) = default;

    /** Append a pass at the end of the pipeline. */
    PassManager& append(std::unique_ptr<Pass> pass);

    /**
     * Insert a pass immediately before the named pass.
     * @return true when the anchor was found (no-op otherwise).
     */
    bool insertBefore(const std::string& anchor,
                      std::unique_ptr<Pass> pass);

    /** Insert a pass immediately after the named pass. */
    bool insertAfter(const std::string& anchor,
                     std::unique_ptr<Pass> pass);

    /** Remove the first pass with the given name. */
    bool remove(const std::string& name);

    bool contains(const std::string& name) const;

    /** Registered pass names, in execution order. */
    std::vector<std::string> passNames() const;

    size_t size() const { return passes_.size(); }

    /**
     * Run every pass in order against the context, recording one timed
     * PassMetric per pass in context.pass_metrics.
     */
    void run(CompilationContext& context) const;

  private:
    size_t indexOf(const std::string& name) const;

    std::vector<std::unique_ptr<Pass>> passes_;
};

/**
 * The Fig. 1 pipeline as configured by the options: mapping, routing
 * (strategy options.routing), consolidation (when
 * options.consolidate), NuOp translation, scheduling, crosstalk
 * inflation (when options.crosstalk_inflation > 1) and noise
 * annotation.
 */
PassManager defaultPipeline(const CompileOptions& options);

} // namespace qiset

#endif // QISET_COMPILER_PASS_MANAGER_H
