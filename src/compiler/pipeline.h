#ifndef QISET_COMPILER_PIPELINE_H
#define QISET_COMPILER_PIPELINE_H

/**
 * @file
 * End-to-end compilation pipeline (Fig. 1 of the paper): qubit
 * mapping -> SWAP routing -> NuOp translation -> noise annotation,
 * plus the noisy-simulation entry points the benches use.
 */

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/thread_pool.h"
#include "compiler/translate.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "nuop/decomposer.h"
#include "sim/noise_model.h"

namespace qiset {

/** Compilation settings. */
struct CompileOptions
{
    /** Approximate (Eq. 2) vs exact decomposition selection. */
    bool approximate = true;
    /** Fuse same-pair runs into SU(4) blocks before NuOp. */
    bool consolidate = true;
    /** NuOp settings shared by all decompositions. */
    NuOpOptions nuop;
};

/** Fully compiled circuit with everything needed to simulate it. */
struct CompileResult
{
    /** Native circuit over register positions 0..n-1. */
    Circuit circuit;
    /** physical[i] = device qubit hosting register position i. */
    std::vector<int> physical;
    /** final_positions[l] = register position of logical qubit l. */
    std::vector<int> final_positions;
    /** Noise parameters of the compressed register. */
    NoiseModel noise;
    /** Native two-qubit instruction count. */
    int two_qubit_count = 0;
    /** SWAPs inserted by routing (before decomposition). */
    int swaps_inserted = 0;
    /** Native 2Q usage per gate type. */
    std::map<std::string, int> type_usage;
    /** Compiler's overall fidelity estimate (product model). */
    double estimated_fidelity = 1.0;

    CompileResult() : circuit(1) {}
};

/**
 * Compile an application circuit for a device and instruction set.
 * The ProfileCache may be shared across calls (and instruction sets)
 * to amortize NuOp optimizations.
 */
CompileResult compileCircuit(const Circuit& app, const Device& device,
                             const GateSet& gate_set, ProfileCache& cache,
                             const CompileOptions& options,
                             ThreadPool* pool = nullptr);

/**
 * Exact noisy output distribution of a compiled circuit (density
 * matrix + readout error), reordered to logical qubit order.
 * Register width must be <= 13.
 */
std::vector<double> simulateCompiled(const CompileResult& result);

/** Ideal (noiseless) output distribution of a logical circuit. */
std::vector<double> idealProbabilities(const Circuit& app);

/**
 * State-fidelity success rate <psi_ideal| rho_noisy |psi_ideal> of a
 * compiled circuit against the ideal output state of the logical
 * circuit, tracking the router's final qubit permutation (the paper's
 * QFT metric). Density-matrix path; register width <= 13.
 */
double simulateSuccessRate(const CompileResult& result,
                           const Circuit& app);

/**
 * Re-stamp a compiled circuit's error rates and noise model from
 * another device's calibration — the "true" hardware in stale-
 * calibration (drift) studies, where the compiler saw outdated data.
 * Native 2Q ops are matched by their gate-type label on the physical
 * edge they run on.
 */
void reannotateErrorRates(CompileResult& result, const Device& truth);

} // namespace qiset

#endif // QISET_COMPILER_PIPELINE_H
