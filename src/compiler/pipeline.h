#ifndef QISET_COMPILER_PIPELINE_H
#define QISET_COMPILER_PIPELINE_H

/**
 * @file
 * End-to-end compilation entry points (Fig. 1 of the paper): qubit
 * mapping -> SWAP routing -> NuOp translation -> noise annotation,
 * plus the noisy-simulation helpers the benches use.
 *
 * The pipeline itself is a PassManager over the passes in passes.h;
 * compileCircuit() is a thin wrapper running the default pipeline, and
 * compileBatch() fans a workload of circuits over a ThreadPool with
 * one shared decomposition profile cache.
 */

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/thread_pool.h"
#include "compiler/pass.h"
#include "compiler/pass_manager.h"
#include "compiler/passes.h"
#include "compiler/translate.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "nuop/decomposer.h"
#include "sim/noise_model.h"

namespace qiset {

/**
 * Raw pass-pipeline primitive: run the default pipeline built from
 * `options` on one circuit, on the calling thread. This is what the
 * CompileService executes per admitted circuit; almost every caller
 * wants compileCircuit() (the service-routed wrapper, same results
 * bit-for-bit) instead.
 *
 * `telemetry` (optional) attributes PassBegin/PassComplete packets to
 * a service job on an EventStream (see metrics/event_stream.h); null
 * — the default everywhere outside the service — publishes nothing
 * and costs one branch per pass. Telemetry never affects compile
 * results.
 */
CompileResult runCompilePipeline(const Circuit& app, const Device& device,
                                 const GateSet& gate_set,
                                 ProfileCache& cache,
                                 const CompileOptions& options,
                                 ThreadPool* pool = nullptr,
                                 const CompileTelemetry* telemetry =
                                     nullptr);

/**
 * Compile an application circuit for a device and instruction set by
 * running the default pass pipeline built from `options`. The
 * ProfileCache may be shared across calls (and instruction sets) to
 * amortize NuOp optimizations.
 *
 * A thin wrapper over a one-shot inline CompileService (see
 * compiler/service.h) — results are bit-identical to the raw
 * pipeline, and the request/job path is exercised on every call.
 */
CompileResult compileCircuit(const Circuit& app, const Device& device,
                             const GateSet& gate_set, ProfileCache& cache,
                             const CompileOptions& options,
                             ThreadPool* pool = nullptr);

/**
 * Compile many circuits against one device/instruction set, sharing
 * one thread-safe profile cache so every distinct (unitary, gate type)
 * profile is optimized at most once across the whole batch.
 *
 * With a pool, circuits compile concurrently (one worker per circuit;
 * each worker additionally fans its circuit's decompositions across
 * otherwise-idle workers via the cooperative parallelFor, capped by
 * options.intra_circuit_parallelism). Results are positionally
 * aligned with `apps` and,
 * thanks to deterministic multistart seeding, bit-identical to serial
 * compileCircuit() calls. Like compileCircuit, a thin wrapper over a
 * one-shot single-device CompileService.
 */
std::vector<CompileResult>
compileBatch(const std::vector<Circuit>& apps, const Device& device,
             const GateSet& gate_set, ProfileCache& cache,
             const CompileOptions& options, ThreadPool* pool = nullptr);

/**
 * Exact noisy output distribution of a compiled circuit (density
 * matrix + readout error), reordered to logical qubit order.
 * Register width must be <= 13.
 */
std::vector<double> simulateCompiled(const CompileResult& result);

/** Ideal (noiseless) output distribution of a logical circuit. */
std::vector<double> idealProbabilities(const Circuit& app);

/**
 * State-fidelity success rate <psi_ideal| rho_noisy |psi_ideal> of a
 * compiled circuit against the ideal output state of the logical
 * circuit, tracking the router's final qubit permutation (the paper's
 * QFT metric). Density-matrix path; register width <= 13.
 */
double simulateSuccessRate(const CompileResult& result,
                           const Circuit& app);

/**
 * Re-stamp a compiled circuit's error rates and noise model from
 * another device's calibration — the "true" hardware in stale-
 * calibration (drift) studies, where the compiler saw outdated data.
 * Native 2Q ops are matched by their gate-type label on the physical
 * edge they run on.
 */
void reannotateErrorRates(CompileResult& result, const Device& truth);

} // namespace qiset

#endif // QISET_COMPILER_PIPELINE_H
