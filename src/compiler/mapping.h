#ifndef QISET_COMPILER_MAPPING_H
#define QISET_COMPILER_MAPPING_H

/**
 * @file
 * Qubit mapping: choose the physical qubits a logical circuit runs on.
 * The pass greedily grows a connected subgraph from the device's
 * highest-fidelity coupler, scoring edges by the best gate fidelity
 * available under the target instruction set (noise-aware placement).
 */

#include <string>
#include <vector>

#include "device/device.h"
#include "isa/gate_set.h"

namespace qiset {

/**
 * Calibration keys an instruction set reads on each edge: one per
 * discrete type plus the family key ("XY" / "fSim") for continuous
 * sets.
 */
std::vector<std::string> fidelityKeys(const GateSet& gate_set);

/**
 * Best available gate fidelity on edge (a, b) under the instruction
 * set (zero if no set member is calibrated there).
 */
double bestEdgeFidelity(const Device& device, int a, int b,
                        const GateSet& gate_set);

/**
 * bestEdgeFidelity against precomputed fidelityKeys(gate_set) — the
 * form the mapping pass calls once per candidate edge, so the key
 * list is built once per mapping rather than once per query.
 */
double bestEdgeFidelity(const Device& device, int a, int b,
                        const std::vector<std::string>& keys);

/**
 * Choose num_logical physical qubits forming a connected subgraph,
 * greedily maximizing attachment fidelity. Returns physical qubit ids;
 * entry i hosts register position i.
 */
std::vector<int> chooseMapping(const Device& device, int num_logical,
                               const GateSet& gate_set);

} // namespace qiset

#endif // QISET_COMPILER_MAPPING_H
