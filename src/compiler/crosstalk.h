#ifndef QISET_COMPILER_CROSSTALK_H
#define QISET_COMPILER_CROSSTALK_H

/**
 * @file
 * Crosstalk error inflation.
 *
 * Section IX notes that calibrating parallel operations is part of the
 * real tune-up burden, and the paper's ref. [30] shows simultaneous
 * two-qubit gates on adjacent couplers suffer elevated error rates.
 * This pass models that: 2Q operations scheduled in the same ASAP
 * moment whose couplers are adjacent on the device get their
 * depolarizing error multiplied by an inflation factor.
 */

#include <vector>

#include "circuit/circuit.h"
#include "circuit/schedule.h"
#include "device/topology.h"

namespace qiset {

/**
 * Inflate the error rate of simultaneously-scheduled adjacent 2Q ops.
 * Simultaneity is read off the schedule's per-moment two-qubit
 * frontier (in the pipeline, the shared Schedule IR built by the
 * scheduling pass).
 *
 * @param circuit Compiled circuit (register positions 0..n-1);
 *        error rates are modified in place.
 * @param schedule Moment schedule of `circuit` (must be consistent
 *        with it). Error-rate edits keep it consistent, so the caller
 *        can reuse it afterwards.
 * @param physical Register position -> device qubit id.
 * @param device_topology Full device coupling graph.
 * @param inflation Multiplier applied to each affected op's error.
 * @return Number of operations whose error rate was inflated.
 */
int applyCrosstalkInflation(Circuit& circuit, const Schedule& schedule,
                            const std::vector<int>& physical,
                            const Topology& device_topology,
                            double inflation);

/** Convenience overload scheduling the circuit internally. */
int applyCrosstalkInflation(Circuit& circuit,
                            const std::vector<int>& physical,
                            const Topology& device_topology,
                            double inflation);

} // namespace qiset

#endif // QISET_COMPILER_CROSSTALK_H
