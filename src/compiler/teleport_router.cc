#include "compiler/teleport_router.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/error.h"

namespace qiset {

namespace {

/**
 * All-pairs weighted distances over coupling edges (weight 1) plus
 * teleport links (weight `link_weight`), bump-allocated as a flat
 * n x n row-major table. Dense Dijkstra per source — chiplet couplings
 * are small and the table is built once per route.
 */
const double*
weightedDistances(const Topology& coupling, double link_weight,
                  MemArena& arena)
{
    int n = coupling.numQubits();
    double* dist =
        arena.allocateArray<double>(static_cast<size_t>(n) * n);
    const double kInf = 1e300;
    std::fill(dist, dist + static_cast<size_t>(n) * n, kInf);
    bool* done = arena.allocateArray<bool>(n);
    const auto& links = coupling.teleportEdges();
    for (int source = 0; source < n; ++source) {
        double* row = dist + static_cast<size_t>(source) * n;
        std::fill(done, done + n, false);
        row[source] = 0.0;
        for (int it = 0; it < n; ++it) {
            int u = -1;
            for (int v = 0; v < n; ++v)
                if (!done[v] && (u < 0 || row[v] < row[u]))
                    u = v;
            if (u < 0 || row[u] >= kInf)
                break;
            done[u] = true;
            for (int v : coupling.neighbors(u))
                row[v] = std::min(row[v], row[u] + 1.0);
            for (const TeleportEdge& link : links) {
                if (link.comm_a == u)
                    row[link.comm_b] =
                        std::min(row[link.comm_b],
                                 row[u] + link_weight);
                else if (link.comm_b == u)
                    row[link.comm_a] =
                        std::min(row[link.comm_a],
                                 row[u] + link_weight);
            }
        }
    }
    return dist;
}

/** Gate-dependency DAG in CSR form (mirrors the SABRE builder). */
struct Dag
{
    int* succ = nullptr;
    int* succ_begin = nullptr;
    int* in_degree = nullptr;

    int successorsBegin(int id) const { return succ_begin[id]; }
    int successorsEnd(int id) const { return succ_begin[id + 1]; }
};

Dag
buildDag(const std::vector<Qubits>& op_qubits,
         const std::vector<int>& order, int num_qubits, MemArena& arena)
{
    size_t count = op_qubits.size();
    Dag dag;
    dag.succ_begin = arena.allocateArray<int>(count + 1);
    dag.in_degree = arena.allocateArray<int>(count);
    std::fill(dag.succ_begin, dag.succ_begin + count + 1, 0);
    std::fill(dag.in_degree, dag.in_degree + count, 0);

    int* last_on_qubit = arena.allocateArray<int>(num_qubits);
    std::fill(last_on_qubit, last_on_qubit + num_qubits, -1);

    size_t edges = 0;
    for (int id : order) {
        for (int q : op_qubits[static_cast<size_t>(id)]) {
            if (last_on_qubit[q] >= 0) {
                ++dag.succ_begin[last_on_qubit[q] + 1];
                ++dag.in_degree[id];
                ++edges;
            }
            last_on_qubit[q] = id;
        }
    }
    for (size_t i = 0; i < count; ++i)
        dag.succ_begin[i + 1] += dag.succ_begin[i];

    dag.succ = arena.allocateArray<int>(edges);
    int* cursor = arena.allocateArray<int>(count);
    std::copy(dag.succ_begin, dag.succ_begin + count, cursor);
    std::fill(last_on_qubit, last_on_qubit + num_qubits, -1);
    for (int id : order) {
        for (int q : op_qubits[static_cast<size_t>(id)]) {
            if (last_on_qubit[q] >= 0)
                dag.succ[cursor[last_on_qubit[q]]++] = id;
            last_on_qubit[q] = id;
        }
    }
    return dag;
}

using ArenaIntSet = std::set<int, std::less<int>, ArenaAllocator<int>>;
using ArenaRankSet = std::set<std::pair<int, int>,
                              std::less<std::pair<int, int>>,
                              ArenaAllocator<std::pair<int, int>>>;

/** Counters the emitting pass accumulates into the RoutedCircuit. */
struct LinkCounters
{
    int swaps = 0;
    int teleports = 0;
    double epr_attempts = 0.0;
};

/**
 * One telesabre pass over `order`: the SABRE loop with inter-core
 * exchange teleportations as additional candidate moves. Starts from
 * `position`, returns the final mapping; when `out` is given, mapped
 * ops, SWAPs and link ops are emitted and counted. Deterministic: ties
 * break on edge order, and intra-core SWAPs win score ties against
 * link crossings (links are the expensive move).
 */
std::vector<int>
runTelePass(const Circuit& logical, const std::vector<int>& order,
            const std::vector<int>& lookahead_rank,
            const Topology& coupling, const double* dist,
            const SabreOptions& opt, const TeleportOptions& tele,
            std::vector<int> position, Circuit* out,
            LinkCounters* counters, MemArena& arena)
{
    int n = coupling.numQubits();
    RoutingState state(std::move(position));
    const std::vector<Qubits>& op_qubits = logical.opQubits();
    const std::vector<TeleportEdge>& links = coupling.teleportEdges();

    // Comm-qubit occupancy: both endpoints of a link are reserved
    // exclusively for the duration of each crossing.
    CommQubitLedger ledger(coupling);

    Dag dag = buildDag(op_qubits, order, n, arena);
    ArenaIntSet front{ArenaAllocator<int>(arena)};
    for (int id : order)
        if (dag.in_degree[id] == 0)
            front.insert(id);

    ArenaRankSet pending_2q{ArenaAllocator<std::pair<int, int>>(arena)};
    for (int id : order)
        if (op_qubits[static_cast<size_t>(id)].isTwoQubit())
            pending_2q.emplace(lookahead_rank[id], id);

    double* decay = arena.allocateArray<double>(n);
    std::fill(decay, decay + n, 1.0);

    // Link edges incident to each slot, for candidate collection and
    // the shortest-path fallback.
    auto links_at = makeArenaVector<std::pair<int, int>>(arena);
    for (size_t e = 0; e < links.size(); ++e) {
        links_at.emplace_back(links[e].comm_a, static_cast<int>(e));
        links_at.emplace_back(links[e].comm_b, static_cast<int>(e));
    }
    std::sort(links_at.begin(), links_at.end());

    auto executable = makeArenaVector<int>(arena);
    auto extended = makeArenaVector<int>(arena);
    auto front_gates = makeArenaVector<int>(arena);
    auto swap_candidates = makeArenaVector<std::pair<int, int>>(arena);
    auto link_candidates = makeArenaVector<int>(arena);
    int swaps_since_reset = 0;
    int swaps_since_progress = 0;
    const int stuck_threshold = 10 * std::max(1, n);
    // Skip the exact inverse of the previous move while no gate has
    // executed in between: both SWAP and exchange teleportation are
    // involutions, so this cheaply breaks 2-cycles the pure distance
    // score cannot see (a comm-pair teleport leaves the score
    // unchanged).
    std::pair<int, int> last_move{-1, -1};

    auto apply_swap = [&](int slot_a, int slot_b) {
        if (out) {
            addSwapOp(*out, slot_a, slot_b);
            ++counters->swaps;
        }
        state.swapSlots(slot_a, slot_b);
        last_move = {std::min(slot_a, slot_b), std::max(slot_a, slot_b)};
    };
    auto apply_link = [&](int edge_idx) {
        const TeleportEdge& link = links[static_cast<size_t>(edge_idx)];
        if (out) {
            bool a_ok = ledger.reserve(link.comm_a);
            bool b_ok = ledger.reserve(link.comm_b);
            QISET_ASSERT(a_ok && b_ok,
                         "comm qubit reserved twice for one crossing");
            if (tele.use_teleport) {
                addTeleportOp(*out, link.comm_a, link.comm_b,
                              1.0 - link.epr_fidelity,
                              link.mean_attempts *
                                  link.attempt_duration_ns);
                ++counters->teleports;
                counters->epr_attempts += link.mean_attempts;
            } else {
                double pair3 = link.epr_fidelity * link.epr_fidelity *
                               link.epr_fidelity;
                addTeleportSwapOp(*out, link.comm_a, link.comm_b,
                                  1.0 - pair3,
                                  3.0 * link.mean_attempts *
                                      link.attempt_duration_ns);
                ++counters->swaps;
                counters->epr_attempts += 3.0 * link.mean_attempts;
            }
            ledger.release(link.comm_a);
            ledger.release(link.comm_b);
        }
        state.swapSlots(link.comm_a, link.comm_b);
        last_move = {std::min(link.comm_a, link.comm_b),
                     std::max(link.comm_a, link.comm_b)};
    };

    // Deterministic progress fallback: one move along a weighted
    // shortest path from the oldest blocked gate's pair. When the
    // remaining path is a bare link whose far comm slot holds the
    // partner logical (an exchange teleport would only swap the pair),
    // vacate the far comm slot with an intra-core SWAP first.
    auto fallback_move = [&](int pa, int pb) {
        double here = dist[static_cast<size_t>(pa) * n + pb];
        int hop = -1;
        bool hop_is_link = false;
        int hop_edge = -1;
        const double eps = 1e-9;
        for (int v : coupling.neighbors(pa)) {
            if (v == pb)
                continue; // adjacent pairs never reach the fallback
            if (std::abs(1.0 + dist[static_cast<size_t>(v) * n + pb] -
                         here) <= eps &&
                (hop < 0 || v < hop)) {
                hop = v;
                hop_is_link = false;
            }
        }
        for (const auto& [slot, e] : links_at) {
            if (slot != pa)
                continue;
            const TeleportEdge& link = links[static_cast<size_t>(e)];
            int far = link.comm_a == pa ? link.comm_b : link.comm_a;
            if (far == pb)
                continue;
            if (std::abs(tele.teleport_weight +
                         dist[static_cast<size_t>(far) * n + pb] -
                         here) <= eps &&
                (hop < 0 || far < hop)) {
                hop = far;
                hop_is_link = true;
                hop_edge = e;
            }
        }
        if (hop < 0) {
            // Shortest route ends with the link whose far slot is pb:
            // move the partner one coupling hop off the comm slot so
            // the crossing becomes productive.
            const auto& away = coupling.neighbors(pb);
            QISET_ASSERT(!away.empty(),
                         "blocked gate on an isolated comm qubit");
            int lowest = *std::min_element(away.begin(), away.end());
            apply_swap(pb, lowest);
            return;
        }
        if (hop_is_link)
            apply_link(hop_edge);
        else
            apply_swap(pa, hop);
    };

    while (!front.empty()) {
        executable.clear();
        for (int id : front) {
            Qubits qs = op_qubits[static_cast<size_t>(id)];
            if (!qs.isTwoQubit() ||
                coupling.adjacent(state.position[qs[0]],
                                  state.position[qs[1]]))
                executable.push_back(id);
        }
        if (!executable.empty()) {
            for (int id : executable) {
                Qubits qs = op_qubits[static_cast<size_t>(id)];
                if (out) {
                    Qubits moved =
                        qs.isTwoQubit()
                            ? Qubits(state.position[qs[0]],
                                     state.position[qs[1]])
                            : Qubits(state.position[qs[0]]);
                    out->add(
                        logical.ops()[static_cast<size_t>(id)], moved);
                }
                if (qs.isTwoQubit())
                    pending_2q.erase({lookahead_rank[id], id});
                front.erase(id);
                for (int s = dag.successorsBegin(id);
                     s < dag.successorsEnd(id); ++s)
                    if (--dag.in_degree[dag.succ[s]] == 0)
                        front.insert(dag.succ[s]);
            }
            std::fill(decay, decay + n, 1.0);
            swaps_since_reset = 0;
            swaps_since_progress = 0;
            last_move = {-1, -1};
            continue;
        }

        if (++swaps_since_progress > stuck_threshold) {
            Qubits qs = op_qubits[static_cast<size_t>(*front.begin())];
            fallback_move(state.position[qs[0]],
                          state.position[qs[1]]);
            continue;
        }

        extended.clear();
        for (const auto& [rank, id] : pending_2q) {
            if (front.count(id))
                continue;
            extended.push_back(id);
            if (static_cast<int>(extended.size()) >=
                opt.extended_set_size)
                break;
        }

        // Candidate moves: intra-core SWAPs on coupling edges touching
        // a front position, plus link crossings whose comm slot holds
        // a front-layer logical.
        swap_candidates.clear();
        link_candidates.clear();
        for (int id : front) {
            for (int l : op_qubits[static_cast<size_t>(id)]) {
                int p = state.position[l];
                for (int neighbor : coupling.neighbors(p))
                    swap_candidates.emplace_back(std::min(p, neighbor),
                                                 std::max(p, neighbor));
                for (const auto& [slot, e] : links_at)
                    if (slot == p)
                        link_candidates.push_back(e);
            }
        }
        std::sort(swap_candidates.begin(), swap_candidates.end());
        swap_candidates.erase(
            std::unique(swap_candidates.begin(), swap_candidates.end()),
            swap_candidates.end());
        std::sort(link_candidates.begin(), link_candidates.end());
        link_candidates.erase(
            std::unique(link_candidates.begin(), link_candidates.end()),
            link_candidates.end());

        auto scored_distance = [&](const ArenaVector<int>& gate_ids,
                                   int slot_a, int slot_b) {
            double total = 0.0;
            for (int id : gate_ids) {
                Qubits qs = op_qubits[static_cast<size_t>(id)];
                int pa = state.position[qs[0]];
                int pb = state.position[qs[1]];
                if (pa == slot_a)
                    pa = slot_b;
                else if (pa == slot_b)
                    pa = slot_a;
                if (pb == slot_a)
                    pb = slot_b;
                else if (pb == slot_b)
                    pb = slot_a;
                total += dist[static_cast<size_t>(pa) * n + pb];
            }
            return total / static_cast<double>(gate_ids.size());
        };
        auto move_score = [&](int slot_a, int slot_b) {
            double score = scored_distance(front_gates, slot_a, slot_b);
            if (!extended.empty())
                score += opt.extended_set_weight *
                         scored_distance(extended, slot_a, slot_b);
            return score * std::max(decay[slot_a], decay[slot_b]);
        };

        front_gates.assign(front.begin(), front.end());
        double best_score = 0.0;
        int best_swap = -1; // index into swap_candidates
        int best_link = -1; // index into links
        for (size_t i = 0; i < swap_candidates.size(); ++i) {
            auto [slot_a, slot_b] = swap_candidates[i];
            if (std::pair<int, int>{slot_a, slot_b} == last_move)
                continue;
            double score = move_score(slot_a, slot_b);
            if ((best_swap < 0 && best_link < 0) ||
                score < best_score) {
                best_score = score;
                best_swap = static_cast<int>(i);
            }
        }
        for (int e : link_candidates) {
            const TeleportEdge& link = links[static_cast<size_t>(e)];
            std::pair<int, int> move{
                std::min(link.comm_a, link.comm_b),
                std::max(link.comm_a, link.comm_b)};
            if (move == last_move)
                continue;
            double score = move_score(link.comm_a, link.comm_b);
            if ((best_swap < 0 && best_link < 0) ||
                score < best_score) {
                best_score = score;
                best_swap = -1;
                best_link = e;
            }
        }
        if (best_swap < 0 && best_link < 0) {
            // Every candidate was the previous move's inverse; force
            // progress along the shortest path instead of oscillating.
            Qubits qs = op_qubits[static_cast<size_t>(*front.begin())];
            fallback_move(state.position[qs[0]],
                          state.position[qs[1]]);
            continue;
        }

        int touched_a;
        int touched_b;
        if (best_link >= 0) {
            apply_link(best_link);
            touched_a = links[static_cast<size_t>(best_link)].comm_a;
            touched_b = links[static_cast<size_t>(best_link)].comm_b;
        } else {
            auto [slot_a, slot_b] =
                swap_candidates[static_cast<size_t>(best_swap)];
            apply_swap(slot_a, slot_b);
            touched_a = slot_a;
            touched_b = slot_b;
        }
        decay[touched_a] += opt.decay_increment;
        decay[touched_b] += opt.decay_increment;
        if (++swaps_since_reset >= opt.decay_reset_interval) {
            std::fill(decay, decay + n, 1.0);
            swaps_since_reset = 0;
        }
    }
    return state.position;
}

} // namespace

TeleportRouter::TeleportRouter(SabreOptions sabre, TeleportOptions teleport)
    : sabre_(sabre), teleport_(teleport)
{
    QISET_REQUIRE(teleport_.teleport_weight > 0.0,
                  "teleport weight must be positive");
}

RoutedCircuit
TeleportRouter::route(const Circuit& logical, const Topology& coupling,
                      const Schedule& schedule) const
{
    MemArena arena;
    return route(logical, coupling, schedule, arena);
}

RoutedCircuit
TeleportRouter::route(const Circuit& logical, const Topology& coupling,
                      const Schedule& schedule, MemArena& arena) const
{
    // Single-core (or core-less) couplings cannot teleport: delegate
    // to SABRE outright so "telesabre" is bit-identical to "sabre" on
    // every monolithic device.
    if (coupling.numCores() <= 1)
        return SabreRouter(sabre_).route(logical, coupling, schedule,
                                         arena);

    QISET_REQUIRE(coupling.numQubits() == logical.numQubits(),
                  "coupling graph width must match the circuit");
    QISET_REQUIRE(coupling.connectedWithTeleport(),
                  "chiplet coupling must be connected through its "
                  "teleport links");
    QISET_REQUIRE(schedule.consistentWith(logical),
                  "telesabre routing needs the schedule of the logical "
                  "circuit being routed");

    int n = logical.numQubits();
    size_t count = logical.size();
    const double* dist =
        weightedDistances(coupling, teleport_.teleport_weight, arena);

    std::vector<int> forward_order(count);
    std::vector<int> reverse_order(count);
    for (size_t i = 0; i < count; ++i) {
        forward_order[i] = static_cast<int>(i);
        reverse_order[i] = static_cast<int>(count - 1 - i);
    }
    std::vector<int> forward_rank(count, 0);
    std::vector<int> reverse_rank(count, 0);
    for (size_t i = 0; i < count; ++i) {
        forward_rank[i] = schedule.asapMoment(i);
        reverse_rank[i] = schedule.depth() - 1 - schedule.alapMoment(i);
    }

    std::vector<int> position(n);
    for (int l = 0; l < n; ++l)
        position[l] = l;

    for (int round = 0; round < sabre_.refinement_rounds; ++round) {
        bool forward = (round % 2 == 0);
        position = runTelePass(
            logical, forward ? forward_order : reverse_order,
            forward ? forward_rank : reverse_rank, coupling, dist,
            sabre_, teleport_, std::move(position), nullptr, nullptr,
            arena);
    }

    RoutedCircuit out;
    out.circuit = Circuit(n);
    out.circuit.reserveOps(count);
    out.initial_positions = position;
    LinkCounters counters;
    out.final_positions = runTelePass(
        logical, forward_order, forward_rank, coupling, dist, sabre_,
        teleport_, std::move(position), &out.circuit, &counters, arena);
    out.swaps_inserted = counters.swaps;
    out.teleports_inserted = counters.teleports;
    out.epr_attempts = counters.epr_attempts;
    return out;
}

} // namespace qiset
