#ifndef QISET_COMPILER_PASS_H
#define QISET_COMPILER_PASS_H

/**
 * @file
 * The compiler core: compilation options/results, the shared
 * CompilationContext every pass reads and mutates, and the Pass
 * interface.
 *
 * The Fig. 1 pipeline stages (mapping -> SWAP routing -> consolidation
 * -> NuOp translation -> crosstalk check -> noise annotation) are
 * expressed as Pass implementations (see passes.h) registered into a
 * PassManager (pass_manager.h). The context carries the working
 * circuit, device/gate-set inputs, layout and routing state, per-pass
 * timing metrics, diagnostics, and the shared decomposition profile
 * cache, so passes compose without hard-coded stage wiring.
 */

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/schedule.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "compiler/profile_cache.h"
#include "compiler/routing_strategy.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "metrics/event_stream.h"
#include "metrics/metrics.h"
#include "nuop/decomposer.h"
#include "sim/noise_model.h"

namespace qiset {

/** Compilation settings. */
struct CompileOptions
{
    /** Approximate (Eq. 2) vs exact decomposition selection. */
    bool approximate = true;
    /** Fuse same-pair runs into SU(4) blocks before NuOp. */
    bool consolidate = true;
    /**
     * Error-rate multiplier for simultaneously-scheduled adjacent 2Q
     * gates; values > 1 register the crosstalk pass in the default
     * pipeline (1.0 disables it, matching the paper's baseline).
     */
    double crosstalk_inflation = 1.0;
    /**
     * Routing strategy name resolved through the RoutingStrategy
     * registry (routing_strategy.h): "greedy" (nearest-neighbor SWAP
     * chains, the paper's baseline), "sabre" (bidirectional
     * lookahead; fewer SWAPs on long-range workloads), or "best-of"
     * (meta-router: route with every registered strategy and keep the
     * best predicted-fidelity result).
     */
    std::string routing = "greedy";
    /**
     * Decomposition engine name resolved through the
     * DecompositionStrategy registry (nuop/decomposition_strategy.h):
     * "nuop" (BFGS multistarts, the paper's engine — bit-identical to
     * the historical path), "kak" (analytic Cartan synthesis, the
     * Cirq-style baseline), or "auto" (analytic when it reaches the
     * exact threshold, NuOp fallback otherwise — bypasses the BFGS
     * hot path on every analytically reachable target).
     */
    std::string decomposition = "nuop";
    /**
     * SABRE tuning used when `routing == "sabre"` (lookahead window,
     * decay, refinement rounds). Per-compile — and therefore per-shard
     * in a sharded batch — so each target can tune its router.
     */
    SabreOptions sabre;
    /**
     * Chiplet-router tuning used when `routing == "telesabre"` (and
     * whenever a multi-core coupling forces the teleport router; see
     * the routing pass). use_teleport = false selects the SWAP-only
     * link baseline the benches compare against.
     */
    TeleportOptions teleport;
    /** NuOp settings shared by all decompositions. */
    NuOpOptions nuop;
    /**
     * Cap on the threads (including the calling one) a single compile
     * may use for intra-circuit work — today, fanning a circuit's
     * independent two-qubit decompositions across the worker pool.
     * 0 means "no cap" (use every pool worker), 1 forces the serial
     * path. Parallel and serial results are bit-identical; the cap
     * only trades latency of one job against throughput of many.
     */
    size_t intra_circuit_parallelism = 0;
};

/**
 * Telemetry identity of one compile: where PassBegin/PassComplete
 * packets published while it runs should be attributed. The service
 * stacks one per dispatched circuit; a null stream (or a null
 * CompilationContext::telemetry, the default everywhere outside the
 * service) disables pass events entirely — the compile hot path pays
 * one branch.
 */
struct CompileTelemetry
{
    /** Destination stream; null disables publishing. */
    EventStream* stream = nullptr;
    /** Service-wide job id (CompileJob::id). */
    uint64_t job = 0;
    /** Circuit index within the job. */
    int32_t circuit = -1;
    /** Fleet shard the compile runs on. */
    int32_t shard = -1;
};

/** Fully compiled circuit with everything needed to simulate it. */
struct CompileResult
{
    /** Native circuit over register positions 0..n-1. */
    Circuit circuit;
    /** physical[i] = device qubit hosting register position i. */
    std::vector<int> physical;
    /**
     * initial_positions[l] = register position of logical qubit l at
     * circuit start. Identity for the greedy router; lookahead
     * routers may permute the start layout (harmless for the all-|0>
     * register input every simulator here uses, and the final
     * permutation below is tracked regardless).
     */
    std::vector<int> initial_positions;
    /** final_positions[l] = register position of logical qubit l. */
    std::vector<int> final_positions;
    /** Noise parameters of the compressed register. */
    NoiseModel noise;
    /** Native two-qubit instruction count. */
    int two_qubit_count = 0;
    /** SWAPs inserted by routing (before decomposition). */
    int swaps_inserted = 0;
    /** Inter-core teleport ops inserted by chiplet routing. */
    int teleports_inserted = 0;
    /** Expected EPR generation attempts of inter-core traffic. */
    double epr_attempts = 0.0;
    /** Ops whose error rate the crosstalk pass inflated. */
    int crosstalk_inflated = 0;
    /** Native 2Q usage per gate type. */
    std::map<std::string, int> type_usage;
    /** Compiler's overall fidelity estimate (product model). */
    double estimated_fidelity = 1.0;
    /** Wall-clock and counters of every pass that ran, in order. */
    std::vector<PassMetric> pass_metrics;
    /** Human-readable notes passes emitted while compiling. */
    std::vector<std::string> diagnostics;

    CompileResult() : circuit(1) {}
};

/**
 * Shared state of one compilation, owned for the duration of a
 * PassManager run. The application circuit, device and cache are held
 * by reference and must outlive the context; the gate set and options
 * are small and copied, so temporaries are safe to pass.
 */
class CompilationContext
{
  public:
    CompilationContext(const Circuit& app, const Device& device,
                       GateSet gate_set, CompileOptions options,
                       ProfileCache& cache, ThreadPool* pool = nullptr)
        : circuit(app), app_(app), device_(device),
          gate_set_(std::move(gate_set)),
          options_(std::move(options)), cache_(cache), pool_(pool)
    {
    }

    CompilationContext(const CompilationContext&) = delete;
    CompilationContext& operator=(const CompilationContext&) = delete;

    // ----- immutable inputs -------------------------------------------
    const Circuit& app() const { return app_; }
    const Device& device() const { return device_; }
    const GateSet& gateSet() const { return gate_set_; }
    const CompileOptions& options() const { return options_; }
    ProfileCache& profileCache() { return cache_; }
    /** Worker pool for intra-pass parallelism; may be null. */
    ThreadPool* threadPool() { return pool_; }

    /**
     * Per-compile bump arena for pass-local scratch (frontier sets,
     * distance rows, moment tables). Lifetime rules: allocations live
     * until the pass that made them returns — each pass that uses the
     * arena resets it on exit (ArenaResetGuard), so no pass may hold
     * arena pointers across its own run() exit, and blocks chained by
     * one pass are reused warm by the next. Single-threaded: only the
     * pass running on the context's thread may allocate; work fanned
     * onto the pool must not touch it.
     */
    MemArena& arena() { return arena_; }

    // ----- mutable pipeline state (passes read/write directly) -------
    /** Working circuit; starts as a copy of the application circuit. */
    Circuit circuit;
    /**
     * Shared moment schedule of `circuit`. The scheduling pass builds
     * it; passes that rewrite the circuit invalidate() it; consumers
     * go through ensureSchedule() so they never read a stale one.
     */
    Schedule schedule;
    /** physical[i] = device qubit hosting register position i. */
    std::vector<int> physical;
    /** initial_positions[l] = start position of logical qubit l. */
    std::vector<int> initial_positions;
    /** final_positions[l] = register position of logical qubit l. */
    std::vector<int> final_positions;
    /** Noise parameters of the compressed register. */
    NoiseModel noise;
    int two_qubit_count = 0;
    int swaps_inserted = 0;
    int teleports_inserted = 0;
    double epr_attempts = 0.0;
    int crosstalk_inflated = 0;
    std::map<std::string, int> type_usage;
    double estimated_fidelity = 1.0;

    // ----- metrics & diagnostics --------------------------------------
    /**
     * Telemetry identity of this compile (may be null, the default):
     * when set, the PassManager publishes PassBegin/PassComplete
     * packets onto its stream as passes run. The pointee must outlive
     * the pipeline run; the service keeps one on the worker's stack.
     */
    const CompileTelemetry* telemetry = nullptr;
    /** Per-pass records, appended by the PassManager as passes run. */
    std::vector<PassMetric> pass_metrics;
    std::vector<std::string> diagnostics;

    /** Record a note for the compile report. */
    void diagnostic(std::string message)
    {
        diagnostics.push_back(std::move(message));
    }

    /**
     * The schedule of the current working circuit, rebuilding it when
     * it is missing or stale (circuit rewritten since the last build).
     */
    const Schedule& ensureSchedule()
    {
        // The build's per-qubit scratch bumps from the compile arena;
        // the Schedule itself stores only heap state, so the rebuild
        // leaves nothing arena-held behind.
        if (!schedule.consistentWith(circuit))
            schedule.build(circuit, &arena_);
        return schedule;
    }

    /**
     * Report a counter on the currently running pass (no-op when
     * called outside a PassManager run).
     */
    void reportCounter(const std::string& name, double value)
    {
        if (current_index_ < pass_metrics.size())
            pass_metrics[current_index_].counters[name] = value;
    }

    /** Assemble the final CompileResult (moves the context's state). */
    CompileResult takeResult()
    {
        CompileResult out;
        out.circuit = std::move(circuit);
        out.physical = std::move(physical);
        out.initial_positions = std::move(initial_positions);
        out.final_positions = std::move(final_positions);
        out.noise = std::move(noise);
        out.two_qubit_count = two_qubit_count;
        out.swaps_inserted = swaps_inserted;
        out.teleports_inserted = teleports_inserted;
        out.epr_attempts = epr_attempts;
        out.crosstalk_inflated = crosstalk_inflated;
        out.type_usage = std::move(type_usage);
        out.estimated_fidelity = estimated_fidelity;
        out.pass_metrics = std::move(pass_metrics);
        out.diagnostics = std::move(diagnostics);
        return out;
    }

  private:
    friend class PassManager;

    const Circuit& app_;
    const Device& device_;
    GateSet gate_set_;
    CompileOptions options_;
    ProfileCache& cache_;
    ThreadPool* pool_ = nullptr;
    MemArena arena_;
    /**
     * Index into pass_metrics of the pass currently running, or
     * SIZE_MAX outside a run (index, not pointer: a nested manager run
     * may grow the vector and reallocate).
     */
    size_t current_index_ = static_cast<size_t>(-1);
};

/** One unit of compilation work, composable through the PassManager. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable identifier used for ordering, lookup and reporting. */
    virtual std::string name() const = 0;

    /** Transform the context (may throw QisetError on misuse). */
    virtual void run(CompilationContext& context) = 0;
};

} // namespace qiset

#endif // QISET_COMPILER_PASS_H
