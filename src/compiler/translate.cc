#include "compiler/translate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

namespace qiset {

std::vector<GateSpec>
gateSpecs(const GateSet& gate_set)
{
    std::vector<GateSpec> specs;
    for (const auto& type : gate_set.types) {
        GateSpec spec;
        spec.type_name = type.name;
        spec.family = TemplateFamily::Fixed;
        spec.unitary = type.unitary();
        // The instruction set advertises what the analytic engine can
        // do with each type, so strategies need not re-classify.
        spec.analytic = type.analyticTier();
        specs.push_back(std::move(spec));
    }
    if (gate_set.continuous == ContinuousFamily::FullXy) {
        GateSpec spec;
        spec.type_name = "XY";
        spec.family = TemplateFamily::FullXy;
        spec.analytic = AnalyticTier::None;
        specs.push_back(std::move(spec));
    } else if (gate_set.continuous == ContinuousFamily::FullFsim) {
        GateSpec spec;
        spec.type_name = "fSim";
        spec.family = TemplateFamily::FullFsim;
        spec.analytic = AnalyticTier::None;
        specs.push_back(std::move(spec));
    } else if (gate_set.continuous == ContinuousFamily::FullCphase) {
        GateSpec spec;
        spec.type_name = "CZt";
        spec.family = TemplateFamily::FullCphase;
        spec.analytic = AnalyticTier::None;
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
precomputeProfiles(const Circuit& circuit,
                   const std::vector<GateSpec>& specs,
                   const NuOpDecomposer& decomposer,
                   const DecompositionStrategy& strategy,
                   ProfileCache& cache, ThreadPool* pool,
                   LocalCacheCounters* local, size_t max_parallelism)
{
    // Collect distinct (op, spec) jobs; the cache key dedups repeats.
    // Only the unitary column matters here — pointers into it stay
    // valid for the whole sweep (the circuit is not mutated).
    std::vector<const Matrix*> two_q_unitaries;
    const auto& op_qubits = circuit.opQubits();
    const auto& op_unitaries = circuit.opUnitaries();
    for (size_t i = 0; i < op_qubits.size(); ++i)
        if (op_qubits[i].isTwoQubit())
            two_q_unitaries.push_back(&op_unitaries[i]);

    size_t total = two_q_unitaries.size() * specs.size();
    auto job = [&](size_t index) {
        const Matrix& unitary = *two_q_unitaries[index / specs.size()];
        const GateSpec& spec = specs[index % specs.size()];
        cache.get(unitary, spec, decomposer, strategy, local);
    };
    // Fan out only when more than one worker can actually run the
    // jobs: with an effective worker count of 1 (a one-thread pool or
    // a parallelism cap of 1) the claim/atomic overhead of the
    // cooperative loop is pure loss, so take the plain serial path.
    size_t effective_workers =
        pool ? std::min(pool->size(),
                        max_parallelism == 0
                            ? std::numeric_limits<size_t>::max()
                            : max_parallelism)
             : 0;
    if (effective_workers > 1) {
        parallelFor(*pool, total, job, max_parallelism);
    } else {
        for (size_t i = 0; i < total; ++i)
            job(i);
    }
}

GateChoice
selectGate(const std::vector<const GateProfile*>& profiles,
           const std::vector<double>& edge_fidelities,
           double one_qubit_fidelity, bool approximate,
           double exact_threshold)
{
    QISET_REQUIRE(profiles.size() == edge_fidelities.size(),
                  "profile/fidelity arity mismatch");
    GateChoice best;
    // Deterministic tie-break on exactly equal Fu: fewer layers, then
    // the lexicographically smaller type name — the choice must not
    // depend on the order the instruction set lists its types.
    auto better = [&best](double fu, const LayerFit& fit,
                          const GateProfile& profile) {
        if (fu != best.overall)
            return fu > best.overall;
        if (!best.profile)
            return false; // fu == 0: never select a zero-Fu fit.
        if (fit.layers != best.fit->layers)
            return fit.layers < best.fit->layers;
        return profile.type_name < best.profile->type_name;
    };
    for (size_t g = 0; g < profiles.size(); ++g) {
        double f2q = edge_fidelities[g];
        if (f2q <= 0.0)
            continue; // gate type not calibrated on this edge.
        const GateProfile* profile = profiles[g];
        for (const auto& fit : profile->fits) {
            // Zero-layer fits only count when they are exact (local
            // targets); lossy gate-dropping is not a NuOp template.
            if (fit.layers == 0 && fit.fd < exact_threshold)
                continue;
            double fh = std::pow(f2q, fit.layers) *
                        std::pow(one_qubit_fidelity,
                                 2.0 * (fit.layers + 1));
            double fu = fit.fd * fh;
            // Exact mode: only threshold-meeting fits compete.
            if (!approximate && fit.fd < exact_threshold)
                continue;
            if (better(fu, fit, *profile)) {
                best.profile = profile;
                best.fit = &fit;
                best.edge_fidelity = f2q;
                best.overall = fu;
            }
        }
    }
    if (!best.profile && !approximate) {
        // No gate type reached the exact threshold; fall back to the
        // highest-Fd fit available (mirrors NuOp returning its best
        // attempt).
        for (size_t g = 0; g < profiles.size(); ++g) {
            double f2q = edge_fidelities[g];
            if (f2q <= 0.0)
                continue;
            for (const auto& fit : profiles[g]->fits) {
                double fh = std::pow(f2q, fit.layers) *
                            std::pow(one_qubit_fidelity,
                                     2.0 * (fit.layers + 1));
                if (better(fit.fd * fh, fit, *profiles[g])) {
                    best.profile = profiles[g];
                    best.fit = &fit;
                    best.edge_fidelity = f2q;
                    best.overall = fit.fd * fh;
                }
            }
        }
    }
    QISET_REQUIRE(best.profile != nullptr,
                  "no hardware gate type with a usable decomposition "
                  "is available on this edge");
    return best;
}

namespace {

/**
 * Local factors re-dressing a canonical-representative circuit into
 * the concrete target: target == phase * left * representative *
 * right, split into per-qubit U3 corrections.
 */
struct TargetDressing
{
    bool active = false;
    Matrix pre_a, pre_b;   // merged into the first U3 pair
    Matrix post_a, post_b; // merged into the last U3 pair
};

} // namespace

TranslateResult
translateCircuit(const Circuit& routed, const std::vector<int>& physical,
                 const Device& device, const GateSet& gate_set,
                 const NuOpDecomposer& decomposer,
                 const DecompositionStrategy& strategy,
                 ProfileCache& cache, bool approximate, ThreadPool* pool,
                 size_t max_parallelism)
{
    QISET_REQUIRE(physical.size() ==
                      static_cast<size_t>(routed.numQubits()),
                  "physical qubit list must match register width");

    std::vector<GateSpec> specs = gateSpecs(gate_set);
    QISET_REQUIRE(!specs.empty(), "instruction set is empty");
    LocalCacheCounters local;
    precomputeProfiles(routed, specs, decomposer, strategy, cache, pool,
                       &local, max_parallelism);

    int n = routed.numQubits();
    TranslateResult result;
    result.circuit = Circuit(n);

    double f1q_avg = 1.0 - device.averageOneQubitError();

    static const LabelId u3_label = internLabel("U3");
    static const LabelId teleport_label = internLabel("TELEPORT");
    static const LabelId teleswap_label = internLabel("TELESWAP");

    // Per-2Q-block working sets, hoisted so the selection and emission
    // loops reuse their capacity (and the U3 matrices' inline storage)
    // instead of allocating per op.
    std::vector<std::shared_ptr<const GateProfile>> holders;
    std::vector<const GateProfile*> profiles;
    std::vector<double> fidelities;
    std::vector<Matrix> u3s;

    // Selection pre-pass: resolve every 2Q block's gate choice once,
    // up front. Each block expands to exactly 2 + 3*layers native ops,
    // so summing the chosen fits sizes the output columns *exactly* —
    // one reservation, no growth reallocations while emitting (the
    // unitary column alone is megabytes on wide circuits, and doubling
    // it dominated the warm-compile allocation profile). The stored
    // choices are reused by the emission loop below; `all_holders`
    // keeps every selected profile alive even if a bounded cache
    // evicts the entries in between.
    std::vector<GateChoice> block_choices;
    std::vector<std::shared_ptr<const GateProfile>> all_holders;
    size_t routed_2q = static_cast<size_t>(routed.twoQubitGateCount());
    block_choices.reserve(routed_2q);
    all_holders.reserve(routed_2q * specs.size());
    size_t exact_ops = 0;
    for (const auto& op : routed.ops()) {
        if (!op.isTwoQubit() || op.labelId() == teleport_label ||
            op.labelId() == teleswap_label) {
            ++exact_ops; // passes through as a single op.
            continue;
        }
        Qubits qs = op.qubits();
        int pa = physical[qs[0]];
        int pb = physical[qs[1]];
        profiles.clear();
        fidelities.clear();
        for (const auto& spec : specs) {
            // Re-fetch of a profile precomputeProfiles just warmed:
            // don't tally the hit, or a stone-cold compile would
            // report a warm-looking hit rate.
            all_holders.push_back(cache.get(op.unitary(), spec,
                                            decomposer, strategy, &local,
                                            /*tally_hit=*/false));
            profiles.push_back(all_holders.back().get());
            fidelities.push_back(
                device.edgeFidelity(pa, pb, spec.type_name));
        }
        block_choices.push_back(
            selectGate(profiles, fidelities, f1q_avg, approximate,
                       decomposer.options().exact_threshold));
        exact_ops += 2 + 3 * block_choices.back().fit->layers;
    }
    result.circuit.reserveOps(exact_ops);

    auto emit_1q = [&](int reg, const Matrix& unitary, LabelId label) {
        double error_rate = device.oneQubitError(physical[reg]);
        result.estimated_fidelity *= 1.0 - error_rate;
        result.circuit.add1q(reg, unitary, label, error_rate,
                             device.oneQubitDurationNs());
    };

    size_t block_index = 0;
    for (const auto& op : routed.ops()) {
        const Matrix& op_unitary = op.unitary();
        Qubits qs = op.qubits();
        if (!op.isTwoQubit()) {
            emit_1q(qs[0], op_unitary, op.labelId());
            continue;
        }

        if (op.labelId() == teleport_label ||
            op.labelId() == teleswap_label) {
            // Inter-core link ops are already native: their endpoints
            // are not coupling-adjacent (no calibrated edge to
            // decompose onto) and they carry the EPR link's error rate
            // and duration from routing. Pass through untouched.
            result.circuit.add(op);
            result.estimated_fidelity *= 1.0 - op.errorRate();
            ++result.type_usage[op.label()];
            continue;
        }

        int ra = qs[0];
        int rb = qs[1];
        int pa = physical[ra];
        int pb = physical[rb];

        // Canonicalizing strategies store profiles against the
        // Weyl-chamber representative; recover the local factors that
        // dress it back into this exact target. A failed solve (never
        // observed, but numerically conceivable) falls back to a
        // raw-keyed NuOp profile for this op.
        const DecompositionStrategy* op_strategy = &strategy;
        TargetDressing dressing;
        if (strategy.canonicalizesTargets()) {
            Matrix representative = strategy.profileTarget(op_unitary);
            if (representative.maxAbsDiff(op_unitary) > 0.0) {
                LocalEquivalence equivalence =
                    localFactorsBetween(representative, op_unitary);
                bool usable =
                    equivalence.ok &&
                    ((equivalence.left * representative *
                      equivalence.right) *
                     equivalence.phase)
                            .maxAbsDiff(op_unitary) < 1e-6;
                if (usable) {
                    dressing.active = true;
                    auto post = decomposeLocalUnitary(equivalence.left);
                    auto pre = decomposeLocalUnitary(equivalence.right);
                    dressing.post_a = std::move(post.first);
                    dressing.post_b = std::move(post.second);
                    dressing.pre_a = std::move(pre.first);
                    dressing.pre_b = std::move(pre.second);
                } else {
                    op_strategy = &nuopDecompositionStrategy();
                    ++result.dressing_fallbacks;
                }
            }
        }

        // The pre-pass already selected this block's gate under the
        // primary strategy; only the (numerically conceivable, never
        // observed) dressing fallback re-selects here, against the
        // raw-keyed profiles its op_strategy switch demands. Holders
        // keep those profiles alive across selection even if a bounded
        // cache evicts the entries concurrently.
        GateChoice choice;
        if (op_strategy == &strategy) {
            choice = block_choices[block_index];
        } else {
            holders.clear();
            profiles.clear();
            fidelities.clear();
            for (const auto& spec : specs) {
                holders.push_back(cache.get(op_unitary, spec, decomposer,
                                            *op_strategy, &local,
                                            /*tally_hit=*/false));
                profiles.push_back(holders.back().get());
                fidelities.push_back(
                    device.edgeFidelity(pa, pb, spec.type_name));
            }
            choice =
                selectGate(profiles, fidelities, f1q_avg, approximate,
                           decomposer.options().exact_threshold);
        }
        ++block_index;

        const GateProfile& profile = *choice.profile;
        const LayerFit& fit = *choice.fit;
        if (profile.engine == "kak")
            ++result.analytic_ops;

        TwoQubitTemplate templ =
            profile.family == TemplateFamily::Fixed
                ? TwoQubitTemplate(fit.layers, profile.unitary)
                : TwoQubitTemplate(fit.layers, profile.family);
        templ.u3MatricesInto(fit.params, u3s);
        if (dressing.active) {
            // C' = post . C . pre implements the target exactly when C
            // implements the representative (Fd is invariant under
            // local dressing, so the profiled fidelities carry over).
            u3s[0] = u3s[0] * dressing.pre_a;
            u3s[1] = u3s[1] * dressing.pre_b;
            u3s[2 * fit.layers] = dressing.post_a * u3s[2 * fit.layers];
            u3s[2 * fit.layers + 1] =
                dressing.post_b * u3s[2 * fit.layers + 1];
        }

        emit_1q(ra, u3s[0], u3_label);
        emit_1q(rb, u3s[1], u3_label);
        // One intern per 2Q block; every layer reuses the id (the
        // common single-type compile hits the LabelTable's shared-lock
        // fast path once per block).
        LabelId type_label = internLabel(profile.type_name);
        for (int layer = 0; layer < fit.layers; ++layer) {
            result.circuit.add2q(ra, rb,
                                 templ.layerGate(fit.params, layer),
                                 type_label,
                                 1.0 - choice.edge_fidelity,
                                 device.twoQubitDurationNs());
            result.estimated_fidelity *= choice.edge_fidelity;
            ++result.two_qubit_count;
            ++result.type_usage[profile.type_name];
            emit_1q(ra, u3s[2 * (layer + 1)], u3_label);
            emit_1q(rb, u3s[2 * (layer + 1) + 1], u3_label);
        }
        result.estimated_fidelity *= fit.fd;
    }
    result.cache_hits = local.hits.load();
    result.cache_misses = local.misses.load();
    return result;
}

TranslateResult
translateCircuit(const Circuit& routed, const std::vector<int>& physical,
                 const Device& device, const GateSet& gate_set,
                 const NuOpDecomposer& decomposer, ProfileCache& cache,
                 bool approximate, ThreadPool* pool,
                 size_t max_parallelism)
{
    return translateCircuit(routed, physical, device, gate_set,
                            decomposer, nuopDecompositionStrategy(),
                            cache, approximate, pool, max_parallelism);
}

} // namespace qiset
