#ifndef QISET_COMPILER_TRANSLATE_H
#define QISET_COMPILER_TRANSLATE_H

/**
 * @file
 * Gate translation: rewrite routed application circuits into the
 * target instruction set using NuOp (Section V).
 *
 * Decomposition fidelity Fd for a (target unitary, gate type, layer
 * count) triple is independent of which edge the gate runs on, so the
 * pass computes a *fidelity profile* per (unitary, type) once and
 * reuses it across edges, circuits and instruction sets. The per-edge
 * noise-adaptive selection (Eq. 2) then only combines the cached Fd
 * values with the edge's calibrated fidelities.
 */

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/thread_pool.h"
#include "compiler/profile_cache.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "nuop/decomposer.h"
#include "nuop/decomposition_strategy.h"

namespace qiset {

/**
 * Gate specs an instruction set exposes (discrete + continuous),
 * with the analytic-availability tier each type advertises.
 */
std::vector<GateSpec> gateSpecs(const GateSet& gate_set);

/**
 * Warm the cache for every distinct (2Q unitary, gate spec) pair of a
 * circuit, in parallel across the pool when provided (cooperatively —
 * safe even when the caller is itself a pool worker). Lookups are
 * tallied into `local` when given. `max_parallelism` caps the threads
 * used, including the caller (0 = no cap, 1 = serial).
 */
void precomputeProfiles(const Circuit& circuit,
                        const std::vector<GateSpec>& specs,
                        const NuOpDecomposer& decomposer,
                        const DecompositionStrategy& strategy,
                        ProfileCache& cache, ThreadPool* pool,
                        LocalCacheCounters* local = nullptr,
                        size_t max_parallelism = 0);

/** Outcome of selecting the best decomposition for one edge. */
struct GateChoice
{
    const GateProfile* profile = nullptr;
    const LayerFit* fit = nullptr;
    /** Calibrated fidelity of the chosen type on the edge. */
    double edge_fidelity = 1.0;
    /** Overall implementation fidelity Fu = Fd * Fh. */
    double overall = 0.0;
};

/**
 * Noise-adaptive selection (Eq. 2) across the profiles available on an
 * edge. In exact mode the smallest depth reaching the exact threshold
 * wins per type; in approximate mode Fu is maximized over depths.
 * Exact Fu ties break deterministically — fewer layers first, then
 * lexicographically smaller gate-type name — so the choice never
 * depends on the order profiles are supplied in.
 */
GateChoice selectGate(const std::vector<const GateProfile*>& profiles,
                      const std::vector<double>& edge_fidelities,
                      double one_qubit_fidelity, bool approximate,
                      double exact_threshold);

/** A compiled circuit plus bookkeeping for simulation and metrics. */
struct TranslateResult
{
    Circuit circuit;
    /** Two-qubit native gate count (the paper's instruction count). */
    int two_qubit_count = 0;
    /** Native 2Q gates by type name. */
    std::map<std::string, int> type_usage;
    /** Product of per-gate fidelity estimates (compiler's Fu). */
    double estimated_fidelity = 1.0;
    /**
     * Profile-cache traffic of *this* translation only (global cache
     * stats also include concurrently-compiling circuits).
     */
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    /** 2Q blocks served by the analytic engine (engine == "kak"). */
    int analytic_ops = 0;
    /**
     * 2Q blocks whose canonical-representative dressing failed and
     * fell back to a raw-keyed NuOp profile — each one pays a cold
     * BFGS inside the emission loop, so a nonzero count flags a
     * performance cliff (expected to stay zero).
     */
    int dressing_fallbacks = 0;

    TranslateResult() : circuit(1) {}
};

/**
 * Translate a routed circuit (register positions 0..n-1 hosted on
 * physical qubits `physical`) into native gates of the instruction
 * set, stamping error rates and durations from the device calibration.
 * The decomposition strategy chooses the engine per (unitary, gate
 * type); for canonicalizing strategies the cached circuit implements
 * the Weyl-chamber representative and is re-dressed here with the
 * exact local factors of each concrete target.
 */
TranslateResult translateCircuit(const Circuit& routed,
                                 const std::vector<int>& physical,
                                 const Device& device,
                                 const GateSet& gate_set,
                                 const NuOpDecomposer& decomposer,
                                 const DecompositionStrategy& strategy,
                                 ProfileCache& cache, bool approximate,
                                 ThreadPool* pool = nullptr,
                                 size_t max_parallelism = 0);

/** Baseline overload: the "nuop" engine (pre-registry behavior). */
TranslateResult translateCircuit(const Circuit& routed,
                                 const std::vector<int>& physical,
                                 const Device& device,
                                 const GateSet& gate_set,
                                 const NuOpDecomposer& decomposer,
                                 ProfileCache& cache, bool approximate,
                                 ThreadPool* pool = nullptr,
                                 size_t max_parallelism = 0);

} // namespace qiset

#endif // QISET_COMPILER_TRANSLATE_H
