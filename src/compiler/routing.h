#ifndef QISET_COMPILER_ROUTING_H
#define QISET_COMPILER_ROUTING_H

/**
 * @file
 * SWAP routing: rewrite a fully-connected logical circuit onto a
 * restricted coupling graph by inserting application-level SWAP
 * operations (which NuOp later decomposes into native gates — or maps
 * 1:1 when the instruction set has a hardware SWAP, as in R5/G7).
 */

#include <vector>

#include "circuit/circuit.h"
#include "device/topology.h"

namespace qiset {

/** Result of the routing pass. */
struct RoutedCircuit
{
    /** Circuit over register positions 0..n-1 (labels preserved;
     *  inserted SWAPs are labeled "SWAP"). */
    Circuit circuit;
    /** final_positions[l] = register position of logical qubit l at
     *  measurement time. */
    std::vector<int> final_positions;
    /** Number of SWAP operations inserted. */
    int swaps_inserted = 0;

    RoutedCircuit() : circuit(1) {}
};

/**
 * Route a logical circuit onto the given connectivity (the induced
 * subgraph of the chosen physical qubits, in register-position
 * numbering). Logical qubit l starts at register position l.
 */
RoutedCircuit routeCircuit(const Circuit& logical,
                           const Topology& coupling);

} // namespace qiset

#endif // QISET_COMPILER_ROUTING_H
