#ifndef QISET_COMPILER_ROUTING_H
#define QISET_COMPILER_ROUTING_H

/**
 * @file
 * SWAP routing: rewrite a fully-connected logical circuit onto a
 * restricted coupling graph by inserting application-level SWAP
 * operations (which NuOp later decomposes into native gates — or maps
 * 1:1 when the instruction set has a hardware SWAP, as in R5/G7).
 */

#include <vector>

#include "circuit/circuit.h"
#include "device/topology.h"

namespace qiset {

/** Result of the routing pass. */
struct RoutedCircuit
{
    /** Circuit over register positions 0..n-1 (labels preserved;
     *  inserted SWAPs are labeled "SWAP"). */
    Circuit circuit;
    /** initial_positions[l] = register position of logical qubit l at
     *  circuit start. Identity for the greedy router; lookahead
     *  routers may pick a permuted start layout (sound for the
     *  all-|0> register input the simulators use, since the routed
     *  circuit carries every preparation gate with it). */
    std::vector<int> initial_positions;
    /** final_positions[l] = register position of logical qubit l at
     *  measurement time. */
    std::vector<int> final_positions;
    /** Number of SWAP operations inserted (including link SWAPs the
     *  SWAP-only chiplet baseline emits across teleport edges). */
    int swaps_inserted = 0;
    /** Number of inter-core teleport operations inserted. */
    int teleports_inserted = 0;
    /** Expected EPR generation attempts consumed by inter-core
     *  traffic (1 pair per teleport, 3 per link SWAP, times the
     *  link's mean attempts per pair). */
    double epr_attempts = 0.0;

    RoutedCircuit() : circuit(1) {}
};

/**
 * Route a logical circuit onto the given connectivity (the induced
 * subgraph of the chosen physical qubits, in register-position
 * numbering) by greedy nearest-neighbor SWAP chains. Logical qubit l
 * starts at register position l. This is the "greedy" strategy of the
 * RoutingStrategy registry (routing_strategy.h); alternative routers
 * plug in there.
 */
RoutedCircuit routeCircuit(const Circuit& logical,
                           const Topology& coupling);

/**
 * Append the canonical application-level SWAP operation (the one
 * NuOp later decomposes, or maps 1:1 on hardware-SWAP sets). Every
 * router must emit SWAPs through this so label/unitary stay uniform.
 */
void addSwapOp(Circuit& circuit, int slot_a, int slot_b);

/**
 * Append an inter-core exchange teleportation: SWAP semantics between
 * the two comm slots of a teleport edge, labeled "TELEPORT" and
 * carrying the link's error rate / duration. Translation passes these
 * through untouched (the endpoints are not coupling-adjacent, so they
 * must never reach gate decomposition) and consolidation treats them
 * as fusion barriers.
 */
void addTeleportOp(Circuit& circuit, int slot_a, int slot_b,
                   double error_rate, double duration_ns);

/**
 * Append a link SWAP across a teleport edge — the SWAP-only baseline
 * the teleport router compares against, implemented by gate
 * teleportation at a cost of three EPR pairs. Labeled "TELESWAP";
 * handled like TELEPORT by consolidation/translation.
 */
void addTeleportSwapOp(Circuit& circuit, int slot_a, int slot_b,
                       double error_rate, double duration_ns);

/**
 * The logical<->position mapping a router mutates while inserting
 * SWAPs, shared by every strategy so the two sides of the bijection
 * cannot drift apart.
 */
struct RoutingState
{
    /** position[l] = register slot currently holding logical qubit l. */
    std::vector<int> position;
    /** occupant[s] = logical qubit currently held by register slot s. */
    std::vector<int> occupant;

    /** Identity layout on n slots. */
    explicit RoutingState(int num_positions);

    /** Start from a given layout (position[l] = initial slot of l). */
    explicit RoutingState(std::vector<int> initial_positions);

    /** Record a SWAP of the occupants of two slots. */
    void swapSlots(int slot_a, int slot_b);
};

} // namespace qiset

#endif // QISET_COMPILER_ROUTING_H
