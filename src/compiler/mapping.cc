#include "compiler/mapping.h"

#include <algorithm>

#include "common/error.h"

namespace qiset {

std::vector<std::string>
fidelityKeys(const GateSet& gate_set)
{
    std::vector<std::string> keys;
    for (const auto& type : gate_set.types)
        keys.push_back(type.name);
    if (gate_set.continuous == ContinuousFamily::FullXy)
        keys.push_back("XY");
    else if (gate_set.continuous == ContinuousFamily::FullFsim)
        keys.push_back("fSim");
    else if (gate_set.continuous == ContinuousFamily::FullCphase)
        keys.push_back("CZt");
    return keys;
}

double
bestEdgeFidelity(const Device& device, int a, int b,
                 const GateSet& gate_set)
{
    return bestEdgeFidelity(device, a, b, fidelityKeys(gate_set));
}

double
bestEdgeFidelity(const Device& device, int a, int b,
                 const std::vector<std::string>& keys)
{
    double best = 0.0;
    for (const auto& key : keys)
        best = std::max(best, device.edgeFidelity(a, b, key));
    return best;
}

std::vector<int>
chooseMapping(const Device& device, int num_logical,
              const GateSet& gate_set)
{
    QISET_REQUIRE(num_logical >= 1, "need at least one logical qubit");
    QISET_REQUIRE(num_logical <= device.numQubits(),
                  "circuit wider than device (", num_logical, " > ",
                  device.numQubits(), ")");
    const Topology& topo = device.topology();

    if (num_logical == 1)
        return {0};

    // One key list for the whole mapping; every edge query below
    // reads it instead of rebuilding the strings.
    const std::vector<std::string> keys = fidelityKeys(gate_set);

    // Seed: the highest-fidelity edge under this instruction set.
    auto edges = topo.edges();
    QISET_REQUIRE(!edges.empty(), "device has no couplers");
    double best_fid = -1.0;
    std::pair<int, int> seed = edges.front();
    for (auto [a, b] : edges) {
        double f = bestEdgeFidelity(device, a, b, keys);
        if (f > best_fid) {
            best_fid = f;
            seed = {a, b};
        }
    }

    std::vector<int> chosen = {seed.first, seed.second};
    std::vector<bool> in_set(device.numQubits(), false);
    in_set[seed.first] = in_set[seed.second] = true;

    // Candidate scoring: compactness first (in-set degree), then a
    // one-step lookahead (does picking this qubit enable a future
    // high-degree attachment? distinguishes L-shaped growth, which
    // can close squares, from straight lines, which cannot), then
    // calibrated fidelity.
    auto in_set_degree = [&](int q, int extra) {
        int degree = 0;
        for (int member : chosen)
            if (topo.adjacent(q, member))
                ++degree;
        if (extra >= 0 && topo.adjacent(q, extra))
            ++degree;
        return degree;
    };

    while (static_cast<int>(chosen.size()) < num_logical) {
        int best_q = -1;
        int best_degree = -1;
        int best_lookahead = -1;
        double best_fid = -1.0;
        for (int member : chosen) {
            for (int nbr : topo.neighbors(member)) {
                if (in_set[nbr])
                    continue;
                int degree = in_set_degree(nbr, -1);
                double fid = 0.0;
                for (int m2 : chosen)
                    if (topo.adjacent(nbr, m2))
                        fid += bestEdgeFidelity(device, nbr, m2, keys);
                int lookahead = 0;
                for (int m2 : chosen)
                    for (int v : topo.neighbors(m2)) {
                        if (in_set[v] || v == nbr)
                            continue;
                        lookahead = std::max(
                            lookahead, in_set_degree(v, nbr));
                    }
                for (int v : topo.neighbors(nbr)) {
                    if (in_set[v])
                        continue;
                    lookahead =
                        std::max(lookahead, in_set_degree(v, nbr));
                }
                bool better =
                    degree > best_degree ||
                    (degree == best_degree &&
                     (lookahead > best_lookahead ||
                      (lookahead == best_lookahead &&
                       fid > best_fid)));
                if (better) {
                    best_degree = degree;
                    best_lookahead = lookahead;
                    best_fid = fid;
                    best_q = nbr;
                }
            }
        }
        QISET_REQUIRE(best_q >= 0,
                      "device subgraph exhausted before placing all "
                      "logical qubits");
        chosen.push_back(best_q);
        in_set[best_q] = true;
    }
    return chosen;
}

} // namespace qiset
