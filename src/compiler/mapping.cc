#include "compiler/mapping.h"

#include <algorithm>

#include "common/error.h"

namespace qiset {

std::vector<std::string>
fidelityKeys(const GateSet& gate_set)
{
    std::vector<std::string> keys;
    for (const auto& type : gate_set.types)
        keys.push_back(type.name);
    if (gate_set.continuous == ContinuousFamily::FullXy)
        keys.push_back("XY");
    else if (gate_set.continuous == ContinuousFamily::FullFsim)
        keys.push_back("fSim");
    else if (gate_set.continuous == ContinuousFamily::FullCphase)
        keys.push_back("CZt");
    return keys;
}

double
bestEdgeFidelity(const Device& device, int a, int b,
                 const GateSet& gate_set)
{
    return bestEdgeFidelity(device, a, b, fidelityKeys(gate_set));
}

double
bestEdgeFidelity(const Device& device, int a, int b,
                 const std::vector<std::string>& keys)
{
    double best = 0.0;
    for (const auto& key : keys)
        best = std::max(best, device.edgeFidelity(a, b, key));
    return best;
}

namespace {

/**
 * Greedy connected growth of `chosen` to `target` qubits, restricted
 * to the qubits flagged in `allowed` — the monolithic chooseMapping
 * criterion (in-set degree, one-step lookahead, summed fidelity)
 * applied within one core. With no seeds, starts from the best
 * calibrated edge inside the allowed set.
 */
std::vector<int>
growWithin(const Device& device, const std::vector<std::string>& keys,
           const std::vector<char>& allowed, std::vector<int> chosen,
           int target)
{
    const Topology& topo = device.topology();
    std::vector<bool> in_set(device.numQubits(), false);
    for (int q : chosen)
        in_set[q] = true;

    if (chosen.empty() && target >= 2) {
        double best_fid = -1.0;
        std::pair<int, int> seed{-1, -1};
        for (auto [a, b] : topo.edges()) {
            if (!allowed[static_cast<size_t>(a)] ||
                !allowed[static_cast<size_t>(b)])
                continue;
            double f = bestEdgeFidelity(device, a, b, keys);
            if (f > best_fid) {
                best_fid = f;
                seed = {a, b};
            }
        }
        QISET_REQUIRE(seed.first >= 0, "core has no couplers");
        chosen = {seed.first, seed.second};
        in_set[seed.first] = in_set[seed.second] = true;
    } else if (chosen.empty()) {
        for (int q = 0; q < device.numQubits(); ++q)
            if (allowed[static_cast<size_t>(q)]) {
                chosen = {q};
                in_set[q] = true;
                break;
            }
    }

    auto in_set_degree = [&](int q, int extra) {
        int degree = 0;
        for (int member : chosen)
            if (topo.adjacent(q, member))
                ++degree;
        if (extra >= 0 && topo.adjacent(q, extra))
            ++degree;
        return degree;
    };

    while (static_cast<int>(chosen.size()) < target) {
        int best_q = -1;
        int best_degree = -1;
        int best_lookahead = -1;
        double best_fid = -1.0;
        for (int member : chosen) {
            for (int nbr : topo.neighbors(member)) {
                if (in_set[nbr] || !allowed[static_cast<size_t>(nbr)])
                    continue;
                int degree = in_set_degree(nbr, -1);
                double fid = 0.0;
                for (int m2 : chosen)
                    if (topo.adjacent(nbr, m2))
                        fid += bestEdgeFidelity(device, nbr, m2, keys);
                int lookahead = 0;
                for (int m2 : chosen)
                    for (int v : topo.neighbors(m2)) {
                        if (in_set[v] || v == nbr ||
                            !allowed[static_cast<size_t>(v)])
                            continue;
                        lookahead = std::max(
                            lookahead, in_set_degree(v, nbr));
                    }
                for (int v : topo.neighbors(nbr)) {
                    if (in_set[v] || !allowed[static_cast<size_t>(v)])
                        continue;
                    lookahead =
                        std::max(lookahead, in_set_degree(v, nbr));
                }
                bool better =
                    degree > best_degree ||
                    (degree == best_degree &&
                     (lookahead > best_lookahead ||
                      (lookahead == best_lookahead &&
                       fid > best_fid)));
                if (better) {
                    best_degree = degree;
                    best_lookahead = lookahead;
                    best_fid = fid;
                    best_q = nbr;
                }
            }
        }
        QISET_REQUIRE(best_q >= 0,
                      "core subgraph exhausted before placing all "
                      "logical qubits");
        chosen.push_back(best_q);
        in_set[best_q] = true;
    }
    return chosen;
}

/**
 * Capacity-aware placement on a chiplet device: fit inside the best
 * single core when one has room; otherwise greedily grow a teleport-
 * connected core set until the total capacity suffices, pin the comm
 * qubits of the spanning links into the selection, and fill per-core
 * quotas with the monolithic growth criterion.
 */
std::vector<int>
chooseChipletMapping(const Device& device, int num_logical,
                     const std::vector<std::string>& keys)
{
    const Topology& topo = device.topology();
    int num_cores = topo.numCores();

    // Core quality: mean best calibrated fidelity of its couplers.
    std::vector<double> core_score(static_cast<size_t>(num_cores), 0.0);
    std::vector<int> core_edges(static_cast<size_t>(num_cores), 0);
    for (auto [a, b] : topo.edges()) {
        int c = topo.coreOf(a);
        if (c != topo.coreOf(b))
            continue;
        core_score[static_cast<size_t>(c)] +=
            bestEdgeFidelity(device, a, b, keys);
        ++core_edges[static_cast<size_t>(c)];
    }
    for (int c = 0; c < num_cores; ++c)
        if (core_edges[static_cast<size_t>(c)] > 0)
            core_score[static_cast<size_t>(c)] /=
                core_edges[static_cast<size_t>(c)];

    auto core_allowed = [&](int c) {
        std::vector<char> allowed(
            static_cast<size_t>(device.numQubits()), 0);
        for (int q : topo.core(c).qubits)
            allowed[static_cast<size_t>(q)] = 1;
        return allowed;
    };

    // Single-core fit: the whole circuit stays SWAP-routed (and
    // telesabre delegates to sabre on the induced coupling).
    int best_single = -1;
    for (int c = 0; c < num_cores; ++c) {
        if (topo.core(c).capacity() < num_logical)
            continue;
        if (best_single < 0 ||
            core_score[static_cast<size_t>(c)] >
                core_score[static_cast<size_t>(best_single)])
            best_single = c;
    }
    if (best_single >= 0) {
        std::vector<int> chosen =
            growWithin(device, keys, core_allowed(best_single), {},
                       num_logical);
        std::sort(chosen.begin(), chosen.end());
        return chosen;
    }

    // Wider than any core: grow a teleport-connected core set, best
    // score first, until the capacity suffices.
    std::vector<char> selected(static_cast<size_t>(num_cores), 0);
    std::vector<int> sel_order;
    int start = 0;
    for (int c = 1; c < num_cores; ++c)
        if (core_score[static_cast<size_t>(c)] >
            core_score[static_cast<size_t>(start)])
            start = c;
    selected[static_cast<size_t>(start)] = 1;
    sel_order.push_back(start);
    int total_capacity = topo.core(start).capacity();
    std::vector<TeleportEdge> spanning;
    const auto& links = topo.teleportEdges();
    while (total_capacity < num_logical) {
        int best_core = -1;
        size_t best_link = 0;
        for (size_t e = 0; e < links.size(); ++e) {
            bool a_in = selected[static_cast<size_t>(links[e].core_a)];
            bool b_in = selected[static_cast<size_t>(links[e].core_b)];
            if (a_in == b_in)
                continue;
            int cand = a_in ? links[e].core_b : links[e].core_a;
            if (best_core < 0 ||
                core_score[static_cast<size_t>(cand)] >
                    core_score[static_cast<size_t>(best_core)] ||
                (core_score[static_cast<size_t>(cand)] ==
                     core_score[static_cast<size_t>(best_core)] &&
                 cand < best_core)) {
                best_core = cand;
                best_link = e;
            }
        }
        QISET_REQUIRE(best_core >= 0,
                      "circuit wider than the teleport-connected "
                      "capacity of the device (", num_logical,
                      " logical qubits)");
        selected[static_cast<size_t>(best_core)] = 1;
        sel_order.push_back(best_core);
        spanning.push_back(links[best_link]);
        total_capacity += topo.core(best_core).capacity();
    }

    // The spanning links' comm qubits must be part of the selection so
    // the routed circuit can actually cross between cores.
    std::vector<std::vector<int>> required(
        static_cast<size_t>(num_cores));
    for (const TeleportEdge& edge : spanning) {
        required[static_cast<size_t>(edge.core_a)].push_back(
            edge.comm_a);
        required[static_cast<size_t>(edge.core_b)].push_back(
            edge.comm_b);
    }
    int total_required = 0;
    for (int c : sel_order) {
        auto& req = required[static_cast<size_t>(c)];
        std::sort(req.begin(), req.end());
        req.erase(std::unique(req.begin(), req.end()), req.end());
        total_required += static_cast<int>(req.size());
    }
    QISET_REQUIRE(num_logical >= total_required,
                  "circuit too narrow for the comm qubits of its core "
                  "span (", num_logical, " < ", total_required, ")");

    // Per-core quotas: comm qubits first, remaining width filled in
    // selection order (best cores first) up to capacity.
    std::vector<int> quota(static_cast<size_t>(num_cores), 0);
    int leftover = num_logical - total_required;
    for (int c : sel_order) {
        int req =
            static_cast<int>(required[static_cast<size_t>(c)].size());
        int room = topo.core(c).capacity() - req;
        int add = std::min(room, leftover);
        quota[static_cast<size_t>(c)] = req + add;
        leftover -= add;
    }
    QISET_ASSERT(leftover == 0, "chiplet quota distribution failed");

    std::vector<int> physical;
    physical.reserve(static_cast<size_t>(num_logical));
    for (int c : sel_order) {
        std::vector<int> chosen = growWithin(
            device, keys, core_allowed(c),
            required[static_cast<size_t>(c)],
            quota[static_cast<size_t>(c)]);
        std::sort(chosen.begin(), chosen.end());
        physical.insert(physical.end(), chosen.begin(), chosen.end());
    }
    return physical;
}

} // namespace

std::vector<int>
chooseMapping(const Device& device, int num_logical,
              const GateSet& gate_set)
{
    QISET_REQUIRE(num_logical >= 1, "need at least one logical qubit");
    QISET_REQUIRE(num_logical <= device.numQubits(),
                  "circuit wider than device (", num_logical, " > ",
                  device.numQubits(), ")");
    const Topology& topo = device.topology();

    if (num_logical == 1)
        return {0};

    // One key list for the whole mapping; every edge query below
    // reads it instead of rebuilding the strings.
    const std::vector<std::string> keys = fidelityKeys(gate_set);

    // Modular devices place capacity-aware: per-core selections joined
    // through teleport links. Monolithic devices take the historical
    // path below, byte-identically.
    if (topo.numCores() > 1)
        return chooseChipletMapping(device, num_logical, keys);

    // Seed: the highest-fidelity edge under this instruction set.
    auto edges = topo.edges();
    QISET_REQUIRE(!edges.empty(), "device has no couplers");
    double best_fid = -1.0;
    std::pair<int, int> seed = edges.front();
    for (auto [a, b] : edges) {
        double f = bestEdgeFidelity(device, a, b, keys);
        if (f > best_fid) {
            best_fid = f;
            seed = {a, b};
        }
    }

    std::vector<int> chosen = {seed.first, seed.second};
    std::vector<bool> in_set(device.numQubits(), false);
    in_set[seed.first] = in_set[seed.second] = true;

    // Candidate scoring: compactness first (in-set degree), then a
    // one-step lookahead (does picking this qubit enable a future
    // high-degree attachment? distinguishes L-shaped growth, which
    // can close squares, from straight lines, which cannot), then
    // calibrated fidelity.
    auto in_set_degree = [&](int q, int extra) {
        int degree = 0;
        for (int member : chosen)
            if (topo.adjacent(q, member))
                ++degree;
        if (extra >= 0 && topo.adjacent(q, extra))
            ++degree;
        return degree;
    };

    while (static_cast<int>(chosen.size()) < num_logical) {
        int best_q = -1;
        int best_degree = -1;
        int best_lookahead = -1;
        double best_fid = -1.0;
        for (int member : chosen) {
            for (int nbr : topo.neighbors(member)) {
                if (in_set[nbr])
                    continue;
                int degree = in_set_degree(nbr, -1);
                double fid = 0.0;
                for (int m2 : chosen)
                    if (topo.adjacent(nbr, m2))
                        fid += bestEdgeFidelity(device, nbr, m2, keys);
                int lookahead = 0;
                for (int m2 : chosen)
                    for (int v : topo.neighbors(m2)) {
                        if (in_set[v] || v == nbr)
                            continue;
                        lookahead = std::max(
                            lookahead, in_set_degree(v, nbr));
                    }
                for (int v : topo.neighbors(nbr)) {
                    if (in_set[v])
                        continue;
                    lookahead =
                        std::max(lookahead, in_set_degree(v, nbr));
                }
                bool better =
                    degree > best_degree ||
                    (degree == best_degree &&
                     (lookahead > best_lookahead ||
                      (lookahead == best_lookahead &&
                       fid > best_fid)));
                if (better) {
                    best_degree = degree;
                    best_lookahead = lookahead;
                    best_fid = fid;
                    best_q = nbr;
                }
            }
        }
        QISET_REQUIRE(best_q >= 0,
                      "device subgraph exhausted before placing all "
                      "logical qubits");
        chosen.push_back(best_q);
        in_set[best_q] = true;
    }
    return chosen;
}

} // namespace qiset
