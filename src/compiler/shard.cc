#include "compiler/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "compiler/mapping.h"
#include "compiler/service.h"
#include "metrics/metrics.h"

namespace qiset {

// ---------------------------------------------------------- DeviceFleet

size_t
DeviceFleet::addDevice(Device device, std::string name)
{
    return addDevice(std::move(device), defaults_, std::move(name));
}

size_t
DeviceFleet::addDevice(Device device, CompileOptions options,
                       std::string name)
{
    std::string shard_name = name.empty() ? device.name() : std::move(name);
    shards_.push_back(Shard{std::move(shard_name), std::move(device),
                            std::move(options)});
    return shards_.size() - 1;
}

size_t
DeviceFleet::addRegions(const Device& device, int num_regions)
{
    return addRegions(device, num_regions, defaults_);
}

size_t
DeviceFleet::addRegions(const Device& device, int num_regions,
                        CompileOptions options)
{
    std::vector<std::vector<int>> regions =
        device.topology().balancedPartitions(num_regions);
    size_t first = shards_.size();
    for (size_t r = 0; r < regions.size(); ++r) {
        std::string name =
            device.name() + "/r" + std::to_string(r);
        addDevice(device.extractRegion(regions[r], name), options, name);
    }
    return first;
}

// -------------------------------------------------------------- planner

namespace {

/** Per-shard calibration aggregates, computed once per plan. */
struct ShardAggregates
{
    int capacity = 0;
    int num_edges = 0;
    /** Mean best-available edge fidelity under the gate set. */
    double mean_edge_fid = 1.0;
    double avg_1q_error = 0.0;
    /** Mean pairwise coupling distance (routing-overhead proxy). */
    double mean_distance = 0.0;
};

/** Per-circuit workload features, computed once per plan. */
struct CircuitFeatures
{
    int qubits = 0;
    int two_q = 0;
    int one_q = 0;
    ScheduleSummary schedule;
};

double
meanPairwiseDistance(const Topology& topo)
{
    int n = topo.numQubits();
    if (n < 2)
        return 0.0;
    long long total = 0;
    long long pairs = 0;
    // Chiplet couplings are disconnected across cores by design;
    // traversing teleport links as unit edges keeps the proxy finite
    // there instead of charging every cross-core pair the worst-case
    // distance n. Topologies without links are unaffected.
    const auto& links = topo.teleportEdges();
    for (int source = 0; source < n; ++source) {
        std::vector<int> dist(n, -1);
        std::queue<int> frontier;
        frontier.push(source);
        dist[source] = 0;
        while (!frontier.empty()) {
            int u = frontier.front();
            frontier.pop();
            for (int v : topo.neighbors(u))
                if (dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    frontier.push(v);
                }
            for (const TeleportEdge& link : links) {
                int v = link.comm_a == u
                            ? link.comm_b
                            : (link.comm_b == u ? link.comm_a : -1);
                if (v >= 0 && dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    frontier.push(v);
                }
            }
        }
        for (int target = source + 1; target < n; ++target) {
            // Unreachable pairs get the worst-case distance so
            // fragmented shards rank below connected ones.
            total += dist[target] > 0 ? dist[target] : n;
            ++pairs;
        }
    }
    return static_cast<double>(total) / static_cast<double>(pairs);
}

ShardAggregates
aggregatesFor(const Shard& shard, const GateSet& gate_set)
{
    const Device& device = shard.device;
    ShardAggregates agg;
    agg.capacity = device.numQubits();
    auto edges = device.topology().edges();
    agg.num_edges = static_cast<int>(edges.size());
    double sum = 0.0;
    for (auto [a, b] : edges)
        sum += bestEdgeFidelity(device, a, b, gate_set);
    agg.mean_edge_fid = edges.empty() ? 1.0 : sum / edges.size();
    agg.avg_1q_error = device.averageOneQubitError();
    agg.mean_distance = meanPairwiseDistance(device.topology());
    return agg;
}

/** One (circuit, shard) candidate's predicted cost/quality. */
struct Candidate
{
    bool feasible = false;
    double fidelity = 0.0;
    double duration_ns = 0.0;
};

Candidate
scoreCandidate(const CircuitFeatures& circuit, const ShardAggregates& agg,
               const Device& device)
{
    Candidate candidate;
    if (circuit.qubits > agg.capacity)
        return candidate;
    if (circuit.two_q > 0 && agg.num_edges == 0)
        return candidate;
    candidate.feasible = true;

    // Routing-overhead proxy: half the excess mean coupling distance
    // in SWAPs per 2Q gate, each SWAP ~3 native 2Q gates.
    double est_swaps = circuit.two_q * 0.5 *
                       std::max(0.0, agg.mean_distance - 1.0);
    double est_native_2q = circuit.two_q + 3.0 * est_swaps;
    candidate.fidelity =
        std::pow(agg.mean_edge_fid, est_native_2q) *
        std::pow(1.0 - agg.avg_1q_error, circuit.one_q);

    // Queue cost: the schedule's critical path (or its depth at the
    // device's 2Q cadence when the logical circuit carries no
    // durations), stretched by the predicted routing overhead.
    double base_ns =
        std::max(circuit.schedule.duration_ns,
                 circuit.schedule.depth * device.twoQubitDurationNs());
    double overhead =
        circuit.two_q > 0 ? est_native_2q / circuit.two_q : 1.0;
    candidate.duration_ns = base_ns * overhead;
    return candidate;
}

} // namespace

ShardPlan
planShardAssignments(const std::vector<Circuit>& apps,
                     const DeviceFleet& fleet, const GateSet& gate_set,
                     const ShardPlannerOptions& planner,
                     const std::vector<double>& initial_queue_ns,
                     const CompileCostModel* cost_model)
{
    QISET_REQUIRE(fleet.size() > 0,
                  "cannot plan a sharded batch over an empty fleet");
    QISET_REQUIRE(planner.policy == "greedy" ||
                      planner.policy == "round-robin",
                  "unknown shard policy \"", planner.policy,
                  "\"; known: greedy round-robin");
    QISET_REQUIRE(initial_queue_ns.empty() ||
                      initial_queue_ns.size() == fleet.size(),
                  "initial_queue_ns must carry one entry per shard (",
                  fleet.size(), "), got ", initial_queue_ns.size());

    ShardPlan plan;
    plan.assignments.resize(apps.size());
    plan.queues.resize(fleet.size());
    plan.queue_ns.resize(fleet.size(), 0.0);
    if (!initial_queue_ns.empty())
        plan.queue_ns = initial_queue_ns;
    if (apps.empty())
        return plan;

    std::vector<ShardAggregates> aggregates;
    aggregates.reserve(fleet.size());
    for (const Shard& shard : fleet.shards())
        aggregates.push_back(aggregatesFor(shard, gate_set));

    std::vector<CircuitFeatures> features(apps.size());
    for (size_t c = 0; c < apps.size(); ++c) {
        features[c].qubits = apps[c].numQubits();
        features[c].two_q = apps[c].twoQubitGateCount();
        features[c].one_q = apps[c].oneQubitGateCount();
        features[c].schedule = Schedule(apps[c]).summary();
    }

    std::vector<CompileCostModel::Features> model_features(apps.size());
    for (size_t c = 0; c < apps.size(); ++c) {
        model_features[c].ops = static_cast<double>(apps[c].size());
        model_features[c].two_q = features[c].two_q;
        model_features[c].depth = features[c].schedule.depth;
    }

    // All (circuit, shard) candidates up front: cheap (schedule
    // summaries + calibration aggregates), and both policies need the
    // per-pair durations.
    std::vector<std::vector<Candidate>> candidates(apps.size());
    for (size_t c = 0; c < apps.size(); ++c) {
        // The online cost model's predicted compile wall-clock: a
        // per-circuit term (the model knows nothing of shards), added
        // to every feasible candidate so queue_ns reflects the worker
        // time the compile will actually occupy. A cold model (fewer
        // than cost_model_min_samples observations) contributes
        // nothing — the static proxy carries the cold start.
        double compile_ns = 0.0;
        if (planner.use_cost_model && cost_model) {
            double ms = 0.0;
            if (cost_model->predictCompileMs(
                    model_features[c], &ms,
                    planner.cost_model_min_samples)) {
                // Derate the translation share by the predicted cache
                // hit ratio: warm-cache lookups skip the BFGS hot path
                // entirely, so a workload the model expects to hit
                // mostly warm costs far less worker time than its raw
                // wall-clock fit suggests. Both sub-models cold (or
                // the hit model untrained) leave ms untouched — and
                // the whole term is still gated on use_cost_model, so
                // knob-off plans stay bit-identical.
                double translation_ms = 0.0;
                double hit_ratio = 0.0;
                if (cost_model->predictPassMs(
                        "translation", model_features[c],
                        &translation_ms,
                        planner.cost_model_min_samples) &&
                    cost_model->predictHitRatio(
                        model_features[c], &hit_ratio,
                        planner.cost_model_min_samples))
                    ms -= std::max(0.0, translation_ms) * hit_ratio;
                compile_ns =
                    planner.cost_model_weight * std::max(0.0, ms) * 1e6;
            }
        }
        candidates[c].reserve(fleet.size());
        for (size_t s = 0; s < fleet.size(); ++s) {
            Candidate candidate = scoreCandidate(
                features[c], aggregates[s], fleet.shard(s).device);
            if (candidate.feasible)
                candidate.duration_ns += compile_ns;
            candidates[c].push_back(candidate);
        }
    }

    auto assign = [&](size_t c, size_t s) {
        const Candidate& candidate = candidates[c][s];
        plan.assignments[c].shard = static_cast<int>(s);
        plan.assignments[c].predicted_fidelity = candidate.fidelity;
        plan.assignments[c].predicted_duration_ns = candidate.duration_ns;
        plan.assignments[c].features = model_features[c];
        plan.queues[s].push_back(c);
        plan.queue_ns[s] += candidate.duration_ns;
    };
    auto requireFeasible = [&](size_t c, bool found) {
        QISET_REQUIRE(found, "circuit ", c, " (", features[c].qubits,
                      " qubits, ", features[c].two_q,
                      " 2Q gates) fits no shard of the fleet");
    };

    if (planner.policy == "round-robin") {
        for (size_t c = 0; c < apps.size(); ++c) {
            bool found = false;
            for (size_t off = 0; off < fleet.size() && !found; ++off) {
                size_t s = (c + off) % fleet.size();
                if (candidates[c][s].feasible) {
                    assign(c, s);
                    found = true;
                }
            }
            requireFeasible(c, found);
        }
        return plan;
    }

    // Greedy ranked assignment, longest predicted duration first so
    // big circuits anchor the balance and small ones fill the gaps.
    std::vector<double> sort_dur(apps.size(), 0.0);
    double total_min_dur = 0.0;
    for (size_t c = 0; c < apps.size(); ++c) {
        double min_dur = std::numeric_limits<double>::max();
        bool found = false;
        for (const Candidate& candidate : candidates[c])
            if (candidate.feasible) {
                found = true;
                sort_dur[c] =
                    std::max(sort_dur[c], candidate.duration_ns);
                min_dur = std::min(min_dur, candidate.duration_ns);
            }
        requireFeasible(c, found);
        total_min_dur += min_dur;
    }
    std::vector<size_t> order(apps.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return sort_dur[a] > sort_dur[b];
                     });

    // Normalize queue load by the ideal per-shard makespan so the
    // penalty stays commensurate with fidelity regardless of device
    // time scales.
    double scale = std::max(1.0, total_min_dur / fleet.size());
    for (size_t c : order) {
        int best = -1;
        double best_score = -std::numeric_limits<double>::max();
        for (size_t s = 0; s < fleet.size(); ++s) {
            const Candidate& candidate = candidates[c][s];
            if (!candidate.feasible)
                continue;
            double load =
                (plan.queue_ns[s] + candidate.duration_ns) / scale;
            double score = planner.fidelity_weight * candidate.fidelity -
                           planner.load_weight * load;
            if (score > best_score) {
                best_score = score;
                best = static_cast<int>(s);
            }
        }
        assign(c, static_cast<size_t>(best));
    }
    return plan;
}

// ------------------------------------------------------------ execution

/**
 * Profiles are keyed by (unitary, gate type) only, so every shard
 * sharing one cache must run NuOp under identical optimizer settings
 * — including the inner BFGS knobs, which shape the cached LayerFit
 * params even though the ProfileCache save-file stamp omits them.
 */
bool
sameNuOpOptions(const NuOpOptions& a, const NuOpOptions& b)
{
    return a.max_layers == b.max_layers &&
           a.multistarts == b.multistarts &&
           a.exact_threshold == b.exact_threshold &&
           a.one_qubit_fidelity == b.one_qubit_fidelity &&
           a.seed == b.seed &&
           a.bfgs.max_iterations == b.bfgs.max_iterations &&
           a.bfgs.gradient_tol == b.bfgs.gradient_tol &&
           a.bfgs.value_tol == b.bfgs.value_tol &&
           a.bfgs.finite_diff_eps == b.bfgs.finite_diff_eps &&
           a.bfgs.stop_below == b.bfgs.stop_below;
}

ShardedBatchResult
compileBatchSharded(const std::vector<Circuit>& apps,
                    const DeviceFleet& fleet, const GateSet& gate_set,
                    ProfileCache& cache,
                    const ShardPlannerOptions& planner, ThreadPool* pool)
{
    // One-shot service over the caller's fleet: the constructor
    // enforces the shared-cache NuOp invariant, submit() plans against
    // an idle backlog (so the plan matches a direct
    // planShardAssignments call), and the job fans circuits over the
    // pool exactly as the old direct execution did.
    CompileServiceOptions service_options =
        oneShotServiceOptions(cache, apps.size(), pool);
    service_options.planner = planner;
    CompileService service(fleet, gate_set, service_options);

    CompileRequest request;
    request.circuits = apps;
    CompileJob job = service.submit(std::move(request));

    ShardedBatchResult out;
    out.plan = job.plan();
    out.results = job.takeResults();

    out.shard_pass_rollups.resize(fleet.size());
    for (size_t s = 0; s < fleet.size(); ++s) {
        PassMetric metric{"shard:" + fleet.shard(s).name, 0.0, {}};
        double estimated_sum = 0.0;
        double predicted_sum = 0.0;
        int swaps = 0;
        int teleports = 0;
        double epr_attempts = 0.0;
        for (size_t i : out.plan.queues[s]) {
            metric.wall_ms += totalWallMs(out.results[i].pass_metrics);
            estimated_sum += out.results[i].estimated_fidelity;
            predicted_sum += out.plan.assignments[i].predicted_fidelity;
            swaps += out.results[i].swaps_inserted;
            teleports += out.results[i].teleports_inserted;
            epr_attempts += out.results[i].epr_attempts;
            accumulatePassMetrics(out.shard_pass_rollups[s],
                                  out.results[i].pass_metrics);
        }
        size_t assigned = out.plan.queues[s].size();
        metric.counters["assigned"] = static_cast<double>(assigned);
        metric.counters["queue_ns"] = out.plan.queue_ns[s];
        metric.counters["swaps_inserted"] = swaps;
        metric.counters["teleports_inserted"] = teleports;
        metric.counters["epr_attempts"] = epr_attempts;
        if (assigned > 0) {
            metric.counters["mean_estimated_fidelity"] =
                estimated_sum / assigned;
            metric.counters["mean_predicted_fidelity"] =
                predicted_sum / assigned;
        }
        out.shard_metrics.push_back(std::move(metric));
    }
    return out;
}

} // namespace qiset
