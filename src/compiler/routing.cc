#include "compiler/routing.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

RoutedCircuit
routeCircuit(const Circuit& logical, const Topology& coupling)
{
    QISET_REQUIRE(coupling.numQubits() == logical.numQubits(),
                  "coupling graph width must match the circuit");
    QISET_REQUIRE(coupling.connected() || logical.numQubits() == 1,
                  "coupling graph must be connected");

    int n = logical.numQubits();
    RoutedCircuit out;
    out.circuit = Circuit(n);

    // position[l] = register slot currently holding logical qubit l.
    std::vector<int> position(n);
    std::vector<int> occupant(n);
    for (int i = 0; i < n; ++i)
        position[i] = occupant[i] = i;

    Matrix swap_unitary = gates::swap();

    auto emit_swap = [&](int slot_a, int slot_b) {
        out.circuit.add2q(slot_a, slot_b, swap_unitary, "SWAP");
        ++out.swaps_inserted;
        int la = occupant[slot_a];
        int lb = occupant[slot_b];
        std::swap(occupant[slot_a], occupant[slot_b]);
        position[la] = slot_b;
        position[lb] = slot_a;
    };

    for (const auto& op : logical.ops()) {
        if (!op.isTwoQubit()) {
            Operation moved = op;
            moved.qubits = {position[op.qubits[0]]};
            out.circuit.add(std::move(moved));
            continue;
        }
        int la = op.qubits[0];
        int lb = op.qubits[1];
        while (!coupling.adjacent(position[la], position[lb])) {
            auto path = coupling.shortestPath(position[la], position[lb]);
            QISET_ASSERT(path.size() >= 3, "non-adjacent pair with a "
                                           "path shorter than 3 nodes");
            emit_swap(path[0], path[1]);
        }
        Operation moved = op;
        moved.qubits = {position[la], position[lb]};
        out.circuit.add(std::move(moved));
    }

    out.final_positions = position;
    return out;
}

} // namespace qiset
