#include "compiler/routing.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

void
addSwapOp(Circuit& circuit, int slot_a, int slot_b)
{
    static const LabelId swap_label = internLabel("SWAP");
    circuit.add2q(slot_a, slot_b, gates::swap(), swap_label);
}

void
addTeleportOp(Circuit& circuit, int slot_a, int slot_b,
              double error_rate, double duration_ns)
{
    static const LabelId teleport_label = internLabel("TELEPORT");
    circuit.add2q(slot_a, slot_b, gates::swap(), teleport_label,
                  error_rate, duration_ns);
}

void
addTeleportSwapOp(Circuit& circuit, int slot_a, int slot_b,
                  double error_rate, double duration_ns)
{
    static const LabelId teleswap_label = internLabel("TELESWAP");
    circuit.add2q(slot_a, slot_b, gates::swap(), teleswap_label,
                  error_rate, duration_ns);
}

RoutingState::RoutingState(int num_positions)
    : position(num_positions), occupant(num_positions)
{
    for (int i = 0; i < num_positions; ++i)
        position[i] = occupant[i] = i;
}

RoutingState::RoutingState(std::vector<int> initial_positions)
    : position(std::move(initial_positions)),
      occupant(position.size(), -1)
{
    for (size_t l = 0; l < position.size(); ++l) {
        QISET_REQUIRE(position[l] >= 0 &&
                          position[l] <
                              static_cast<int>(position.size()) &&
                      occupant[position[l]] < 0,
                      "initial positions must be a permutation");
        occupant[position[l]] = static_cast<int>(l);
    }
}

void
RoutingState::swapSlots(int slot_a, int slot_b)
{
    int la = occupant[slot_a];
    int lb = occupant[slot_b];
    std::swap(occupant[slot_a], occupant[slot_b]);
    position[la] = slot_b;
    position[lb] = slot_a;
}

RoutedCircuit
routeCircuit(const Circuit& logical, const Topology& coupling)
{
    QISET_REQUIRE(coupling.numQubits() == logical.numQubits(),
                  "coupling graph width must match the circuit");
    QISET_REQUIRE(coupling.connected() || logical.numQubits() == 1,
                  "coupling graph must be connected");

    int n = logical.numQubits();
    RoutedCircuit out;
    out.circuit = Circuit(n);
    // Output = every logical op plus inserted SWAPs; pre-size for the
    // known part so the append loop rarely reallocates.
    out.circuit.reserveOps(logical.size());

    RoutingState state(n);

    auto emit_swap = [&](int slot_a, int slot_b) {
        addSwapOp(out.circuit, slot_a, slot_b);
        ++out.swaps_inserted;
        state.swapSlots(slot_a, slot_b);
    };

    // One path/scratch pair for the whole sweep: the BFS queries
    // reuse their capacity instead of allocating per SWAP candidate.
    std::vector<int> path;
    std::vector<int> path_scratch;
    for (const auto& op : logical.ops()) {
        Qubits qs = op.qubits();
        if (!op.isTwoQubit()) {
            out.circuit.add(op, Qubits(state.position[qs[0]]));
            continue;
        }
        int la = qs[0];
        int lb = qs[1];
        while (!coupling.adjacent(state.position[la],
                                  state.position[lb])) {
            coupling.shortestPathInto(state.position[la],
                                      state.position[lb], path,
                                      path_scratch);
            QISET_ASSERT(path.size() >= 3, "non-adjacent pair with a "
                                           "path shorter than 3 nodes");
            emit_swap(path[0], path[1]);
        }
        out.circuit.add(
            op, Qubits(state.position[la], state.position[lb]));
    }

    out.initial_positions.resize(n);
    for (int i = 0; i < n; ++i)
        out.initial_positions[i] = i;
    out.final_positions = state.position;
    return out;
}

} // namespace qiset
