#include "compiler/pipeline.h"

#include "compiler/service.h"
#include "metrics/metrics.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

namespace qiset {

CompileResult
runCompilePipeline(const Circuit& app, const Device& device,
                   const GateSet& gate_set, ProfileCache& cache,
                   const CompileOptions& options, ThreadPool* pool,
                   const CompileTelemetry* telemetry)
{
    CompilationContext context(app, device, gate_set, options, cache,
                               pool);
    context.telemetry = telemetry;
    defaultPipeline(options).run(context);
    return context.takeResult();
}

CompileResult
compileCircuit(const Circuit& app, const Device& device,
               const GateSet& gate_set, ProfileCache& cache,
               const CompileOptions& options, ThreadPool* pool)
{
    DeviceFleet fleet(options);
    fleet.addDevice(device, options);
    CompileService service(std::move(fleet), gate_set,
                           oneShotServiceOptions(cache, 1, pool));
    CompileRequest request;
    request.circuits.push_back(app);
    std::vector<CompileResult> results =
        service.submit(std::move(request)).takeResults();
    return std::move(results.front());
}

std::vector<CompileResult>
compileBatch(const std::vector<Circuit>& apps, const Device& device,
             const GateSet& gate_set, ProfileCache& cache,
             const CompileOptions& options, ThreadPool* pool)
{
    DeviceFleet fleet(options);
    fleet.addDevice(device, options);
    CompileService service(
        std::move(fleet), gate_set,
        oneShotServiceOptions(cache, apps.size(), pool));
    CompileRequest request;
    request.circuits = apps;
    return service.submit(std::move(request)).takeResults();
}

std::vector<double>
simulateCompiled(const CompileResult& result)
{
    DensityMatrix rho(result.circuit.numQubits());
    rho.runNoisy(result.circuit, result.noise);
    std::vector<double> probs =
        result.noise.applyReadoutError(rho.probabilities());
    return permuteProbabilities(probs, result.final_positions);
}

std::vector<double>
idealProbabilities(const Circuit& app)
{
    StateVector state(app.numQubits());
    state.run(app);
    return state.probabilities();
}

void
reannotateErrorRates(CompileResult& result, const Device& truth)
{
    for (OpRef op : result.circuit.mutableOps()) {
        Qubits qs = op.qubits();
        if (op.isTwoQubit()) {
            int pa = result.physical.at(qs[0]);
            int pb = result.physical.at(qs[1]);
            double fidelity = truth.edgeFidelity(pa, pb, op.label());
            // A type the true hardware no longer supports behaves as
            // a fully broken gate.
            op.setErrorRate(fidelity > 0.0 ? 1.0 - fidelity : 1.0);
        } else {
            op.setErrorRate(
                truth.oneQubitError(result.physical.at(qs[0])));
        }
    }
    result.noise = truth.noiseModelFor(result.physical);
}

double
simulateSuccessRate(const CompileResult& result, const Circuit& app)
{
    StateVector ideal(app.numQubits());
    ideal.run(app);

    // Move the ideal amplitudes into physical register order: logical
    // qubit l sits at position final_positions[l] at measurement time.
    int n = app.numQubits();
    StateVector permuted(n);
    auto& amps = permuted.mutableAmplitudes();
    std::fill(amps.begin(), amps.end(), cplx(0.0, 0.0));
    const auto& map = result.final_positions;
    for (size_t logical = 0; logical < ideal.dim(); ++logical) {
        size_t phys = 0;
        for (int l = 0; l < n; ++l) {
            if (logical & (size_t{1} << (n - 1 - l)))
                phys |= size_t{1} << (n - 1 - map[l]);
        }
        amps[phys] = ideal.amplitudes()[logical];
    }

    DensityMatrix rho(result.circuit.numQubits());
    rho.runNoisy(result.circuit, result.noise);
    return rho.fidelityWithPure(permuted);
}

} // namespace qiset
