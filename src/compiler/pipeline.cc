#include "compiler/pipeline.h"

#include "compiler/consolidate.h"
#include "compiler/mapping.h"
#include "compiler/routing.h"
#include "metrics/metrics.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

namespace qiset {

CompileResult
compileCircuit(const Circuit& app, const Device& device,
               const GateSet& gate_set, ProfileCache& cache,
               const CompileOptions& options, ThreadPool* pool)
{
    CompileResult out;

    // 1. Placement: pick physical qubits, noise-aware.
    out.physical = chooseMapping(device, app.numQubits(), gate_set);

    // 2. Routing on the induced coupling subgraph.
    Topology coupling = device.topology().inducedSubgraph(out.physical);
    RoutedCircuit routed = routeCircuit(app, coupling);
    out.final_positions = routed.final_positions;
    out.swaps_inserted = routed.swaps_inserted;

    // 3. Gate optimization: fuse runs on a pair (SWAP + application
    // gate, consecutive interactions) into single SU(4) blocks so
    // NuOp pays for the combined unitary once.
    Circuit consolidated = options.consolidate
                               ? consolidateTwoQubitBlocks(routed.circuit)
                               : routed.circuit;

    // 4. NuOp translation with per-edge noise adaptivity.
    NuOpDecomposer decomposer(options.nuop);
    TranslateResult translated =
        translateCircuit(consolidated, out.physical, device, gate_set,
                         decomposer, cache, options.approximate, pool);
    out.circuit = std::move(translated.circuit);
    out.two_qubit_count = translated.two_qubit_count;
    out.type_usage = std::move(translated.type_usage);
    out.estimated_fidelity = translated.estimated_fidelity;

    // 5. Noise model for the compressed register.
    out.noise = device.noiseModelFor(out.physical);
    return out;
}

std::vector<double>
simulateCompiled(const CompileResult& result)
{
    DensityMatrix rho(result.circuit.numQubits());
    rho.runNoisy(result.circuit, result.noise);
    std::vector<double> probs =
        result.noise.applyReadoutError(rho.probabilities());
    return permuteProbabilities(probs, result.final_positions);
}

std::vector<double>
idealProbabilities(const Circuit& app)
{
    StateVector state(app.numQubits());
    state.run(app);
    return state.probabilities();
}

void
reannotateErrorRates(CompileResult& result, const Device& truth)
{
    for (auto& op : result.circuit.mutableOps()) {
        if (op.isTwoQubit()) {
            int pa = result.physical.at(op.qubits[0]);
            int pb = result.physical.at(op.qubits[1]);
            double fidelity = truth.edgeFidelity(pa, pb, op.label);
            // A type the true hardware no longer supports behaves as
            // a fully broken gate.
            op.error_rate = fidelity > 0.0 ? 1.0 - fidelity : 1.0;
        } else {
            op.error_rate =
                truth.oneQubitError(result.physical.at(op.qubits[0]));
        }
    }
    result.noise = truth.noiseModelFor(result.physical);
}

double
simulateSuccessRate(const CompileResult& result, const Circuit& app)
{
    StateVector ideal(app.numQubits());
    ideal.run(app);

    // Move the ideal amplitudes into physical register order: logical
    // qubit l sits at position final_positions[l] at measurement time.
    int n = app.numQubits();
    StateVector permuted(n);
    auto& amps = permuted.mutableAmplitudes();
    std::fill(amps.begin(), amps.end(), cplx(0.0, 0.0));
    const auto& map = result.final_positions;
    for (size_t logical = 0; logical < ideal.dim(); ++logical) {
        size_t phys = 0;
        for (int l = 0; l < n; ++l) {
            if (logical & (size_t{1} << (n - 1 - l)))
                phys |= size_t{1} << (n - 1 - map[l]);
        }
        amps[phys] = ideal.amplitudes()[logical];
    }

    DensityMatrix rho(result.circuit.numQubits());
    rho.runNoisy(result.circuit, result.noise);
    return rho.fidelityWithPure(permuted);
}

} // namespace qiset
