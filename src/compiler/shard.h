#ifndef QISET_COMPILER_SHARD_H
#define QISET_COMPILER_SHARD_H

/**
 * @file
 * Multi-device sharded batch compilation.
 *
 * A DeviceFleet is a set of compile *shards*: whole devices and/or
 * disjoint connected regions carved out of one large device
 * (Topology::balancedPartitions + Device::extractRegion), each with
 * its own CompileOptions (so per-shard routing strategy and SABRE
 * tuning can differ). planShardAssignments() scores every
 * (circuit, shard) candidate by predicted fidelity and by the
 * Schedule IR's depth / critical-path duration, then assigns circuits
 * with a load-balancing policy; compileBatchSharded() executes the
 * plan by fanning per-shard queues over a ThreadPool with one shared
 * ProfileCache (profile keys are device-independent, so sharing
 * across shards is sound and maximizes BFGS reuse).
 *
 * Determinism: planning is pure arithmetic over calibration data and
 * schedules, and per-circuit compiles inherit the seeded-multistart
 * guarantee, so a sharded batch is bit-identical to compiling each
 * circuit alone on its assigned shard's device.
 */

#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "metrics/cost_model.h"

namespace qiset {

/** One compile target of a fleet: a device plus per-shard options. */
struct Shard
{
    std::string name;
    Device device;
    CompileOptions options;
};

/** The set of compile shards a sharded batch spreads over. */
class DeviceFleet
{
  public:
    /**
     * @param default_options Options shards get when addDevice /
     *        addRegions are called without explicit ones.
     */
    explicit DeviceFleet(CompileOptions default_options = CompileOptions())
        : defaults_(std::move(default_options))
    {
    }

    /**
     * Add a whole device as one shard (name defaults to the device's).
     * @return the new shard's index.
     */
    size_t addDevice(Device device, std::string name = "");
    size_t addDevice(Device device, CompileOptions options,
                     std::string name = "");

    /**
     * Carve `num_regions` disjoint connected regions out of one large
     * device (balanced partition of its topology) and add each as a
     * shard named "<device>/r<k>".
     * @return the index of the first added region shard.
     */
    size_t addRegions(const Device& device, int num_regions);
    size_t addRegions(const Device& device, int num_regions,
                      CompileOptions options);

    size_t size() const { return shards_.size(); }
    const Shard& shard(size_t i) const { return shards_.at(i); }
    const std::vector<Shard>& shards() const { return shards_; }
    const CompileOptions& defaultOptions() const { return defaults_; }

  private:
    CompileOptions defaults_;
    std::vector<Shard> shards_;
};

/** Shard-planner knobs. */
struct ShardPlannerOptions
{
    /**
     * Assignment policy:
     *  - "greedy": rank circuits by predicted duration (longest
     *    first), then give each to the shard maximizing
     *    fidelity_weight * predicted_fidelity minus a queue-depth
     *    penalty proportional to the shard's accumulated load.
     *  - "round-robin": circuit i -> feasible shard i mod k
     *    (baseline; ignores fidelity and load).
     */
    std::string policy = "greedy";
    /** Weight of predicted fidelity in the greedy score. */
    double fidelity_weight = 1.0;
    /** Weight of the normalized queue-load penalty. */
    double load_weight = 1.0;
    /**
     * Add the online cost model's predicted compile wall-clock (see
     * metrics/cost_model.h) to every candidate's predicted duration,
     * making the planner self-calibrating under real traffic: the
     * compile time the service's workers actually spend — not just
     * the circuit's own critical path — drives load balancing and
     * admission. Off by default, and inert until a model is passed to
     * planShardAssignments (the CompileService does this
     * automatically); **with the knob off the plan — and therefore
     * every compile result — is bit-identical to a model-free plan.**
     */
    bool use_cost_model = false;
    /** Scale of the predicted-compile-time term, in queue-ns per
     *  predicted compile-ns (1.0 = count compile time at par). */
    double cost_model_weight = 1.0;
    /** Observations the model needs before its term switches on (the
     *  static proxy alone carries the cold start). */
    uint64_t cost_model_min_samples = 16;
    /**
     * Cap on the circuits of one shard the CompileService will hold
     * in flight simultaneously (0 = unlimited, the default). A planner
     * option rather than a service one because it shapes the same
     * trade the planner's load term does — per-shard backlog versus
     * fleet throughput — and rides the same options plumbing into the
     * service. Inert outside the threaded service dispatch loop
     * (inline compiles are strictly sequential already).
     */
    size_t max_in_flight_per_shard = 0;
};

/** One circuit's planned placement. */
struct ShardAssignment
{
    /** Index into the fleet of the chosen shard. */
    int shard = -1;
    /** Product-model fidelity estimate on that shard. */
    double predicted_fidelity = 0.0;
    /**
     * Schedule-derived compile/queue cost estimate on that shard
     * (plus the cost model's predicted compile time, when the planner
     * runs with use_cost_model and a warmed-up model).
     */
    double predicted_duration_ns = 0.0;
    /**
     * The circuit's workload features (ops / 2Q ops / logical depth),
     * captured at plan time so the service can feed the compile's
     * measured wall-clock back into the online cost model without
     * re-deriving them.
     */
    CompileCostModel::Features features;
};

/** Output of the shard planner. */
struct ShardPlan
{
    /** Per-circuit placements, aligned with the workload. */
    std::vector<ShardAssignment> assignments;
    /** Circuit indices queued per shard, in assignment order. */
    std::vector<std::vector<size_t>> queues;
    /** Predicted accumulated load per shard, in ns. */
    std::vector<double> queue_ns;
};

/**
 * Score every (circuit, shard) candidate and assign each circuit to
 * one shard. Candidate scoring is cheap by construction: one Schedule
 * build per circuit (depth / critical path), plus per-shard
 * calibration aggregates (mean edge fidelity under the gate set,
 * mean coupling distance as a routing-overhead proxy). Deterministic;
 * throws FatalError when a circuit fits no shard or the fleet is
 * empty.
 *
 * `initial_queue_ns` seeds the per-shard predicted load (one value
 * per shard, or empty for an idle fleet): the CompileService re-plans
 * every arriving request against its live backlog this way, so the
 * greedy policy steers new work away from busy shards. The returned
 * plan's queue_ns is cumulative (initial load plus this workload).
 *
 * `cost_model`, combined with `planner.use_cost_model`, adds the
 * model's predicted compile wall-clock to every candidate duration
 * (the term is per-circuit — the model is options-agnostic — so it
 * shifts load balance and admission backlog, never the relative
 * fidelity ranking). Null, a cold model, or the knob off leave the
 * plan bit-identical to the static proxy.
 */
ShardPlan planShardAssignments(const std::vector<Circuit>& apps,
                               const DeviceFleet& fleet,
                               const GateSet& gate_set,
                               const ShardPlannerOptions& planner =
                                   ShardPlannerOptions(),
                               const std::vector<double>&
                                   initial_queue_ns = {},
                               const CompileCostModel* cost_model =
                                   nullptr);

/**
 * True when two NuOp option sets produce interchangeable cached
 * profiles (including the inner BFGS knobs, which shape the optimized
 * parameters even though profile keys omit them). Everything sharing
 * one ProfileCache — the shards of a fleet, the requests of a
 * CompileService — must agree under this predicate.
 */
bool sameNuOpOptions(const NuOpOptions& a, const NuOpOptions& b);

/** A sharded batch's results plus its plan and per-shard telemetry. */
struct ShardedBatchResult
{
    /** Aligned with the input workload. */
    std::vector<CompileResult> results;
    ShardPlan plan;
    /**
     * One roll-up record per shard ("shard:<name>"): wall_ms is the
     * summed compile time of the shard's queue; counters report
     * assigned circuits, predicted queue_ns, swaps and the mean
     * estimated/predicted fidelities.
     */
    std::vector<PassMetric> shard_metrics;
    /** Per-shard per-pass totals (accumulatePassMetrics roll-up). */
    std::vector<std::vector<PassMetric>> shard_pass_rollups;
};

/**
 * Plan and execute a sharded batch: circuits are assigned to shards
 * by planShardAssignments(), then all per-circuit compiles fan out
 * over `pool` (serial without one). Every shard must share the same
 * NuOpOptions — the shared cache's profiles are keyed by
 * (unitary, gate type) only, so mixing optimizer settings across
 * shards would let one shard's profiles answer another's lookups.
 * Results are bit-identical to compileCircuit() on the assigned
 * shard's device with the shard's options.
 */
ShardedBatchResult
compileBatchSharded(const std::vector<Circuit>& apps,
                    const DeviceFleet& fleet, const GateSet& gate_set,
                    ProfileCache& cache,
                    const ShardPlannerOptions& planner =
                        ShardPlannerOptions(),
                    ThreadPool* pool = nullptr);

} // namespace qiset

#endif // QISET_COMPILER_SHARD_H
