#include "compiler/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "metrics/metrics.h"
#include "nuop/decomposition_strategy.h"

namespace qiset {

namespace {

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
}

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Sum the translation pass's shared-cache counters of one compile. */
void
cacheTraffic(const std::vector<PassMetric>& metrics, double& hits,
             double& misses)
{
    for (const PassMetric& metric : metrics) {
        if (metric.pass != "translation")
            continue;
        auto hit = metric.counters.find("cache_hits");
        if (hit != metric.counters.end())
            hits += hit->second;
        auto miss = metric.counters.find("cache_misses");
        if (miss != metric.counters.end())
            misses += miss->second;
    }
}

} // namespace

const char*
toString(JobStatus status)
{
    switch (status) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::Failed: return "failed";
    case JobStatus::Rejected: return "rejected";
    }
    return "unknown";
}

// ------------------------------------------------------------ job state

/** Shared state of one job; outlives both service and handles. */
struct CompileJob::State
{
    // Immutable after admission.
    uint64_t id = 0;
    std::vector<Circuit> circuits;
    std::optional<CompileOptions> options;
    int priority = 0;
    std::string tag;
    ShardPlan plan;
    Clock::time_point submit_time;
    std::weak_ptr<CompileService::Impl> service;

    // Guarded by m. The service's lock order is service mutex first,
    // then this one; handle-only methods take only this one.
    mutable std::mutex m;
    mutable std::condition_variable cv;
    JobStatus status = JobStatus::Queued;
    bool cancel_requested = false;
    /** Circuits finished or skipped (terminal when == circuits). */
    size_t accounted = 0;
    size_t compiled_count = 0;
    std::vector<CompileResult> results;
    std::vector<double> queue_wait_ns;
    std::vector<double> wall_ms;
    std::vector<uint64_t> dispatch_seq;
    std::vector<char> compiled;
    std::exception_ptr error;
    /**
     * Completion callbacks not yet fired. Appended under m; swapped
     * out (again under m) and invoked with no lock held once the job
     * is terminal, so each runs exactly once.
     */
    std::vector<std::function<void(CompileJob)>> callbacks;

    bool terminalLocked() const
    {
        return status == JobStatus::Done ||
               status == JobStatus::Cancelled ||
               status == JobStatus::Failed ||
               status == JobStatus::Rejected;
    }

    CompileJobStats statsLocked() const
    {
        CompileJobStats out;
        out.circuits = circuits.size();
        out.shards.reserve(plan.assignments.size());
        for (const ShardAssignment& a : plan.assignments) {
            out.shards.push_back(a.shard);
            out.mean_predicted_fidelity += a.predicted_fidelity;
        }
        if (!plan.assignments.empty())
            out.mean_predicted_fidelity /= plan.assignments.size();
        out.dispatch_seq = dispatch_seq;

        size_t dispatched = 0;
        for (size_t i = 0; i < circuits.size(); ++i) {
            out.compile_wall_ms += wall_ms[i];
            if (dispatch_seq[i] != 0) {
                ++dispatched;
                out.queue_wait_ns_mean += queue_wait_ns[i];
                out.queue_wait_ns_max =
                    std::max(out.queue_wait_ns_max, queue_wait_ns[i]);
            }
            if (!compiled[i])
                continue;
            out.swaps_inserted += results[i].swaps_inserted;
            out.teleports_inserted += results[i].teleports_inserted;
            out.epr_attempts += results[i].epr_attempts;
            out.mean_estimated_fidelity += results[i].estimated_fidelity;
            for (const PassMetric& metric : results[i].pass_metrics) {
                if (metric.pass != "translation")
                    continue;
                auto hit = metric.counters.find("cache_hits");
                if (hit != metric.counters.end())
                    out.cache_hits +=
                        static_cast<uint64_t>(hit->second);
                auto miss = metric.counters.find("cache_misses");
                if (miss != metric.counters.end())
                    out.cache_misses +=
                        static_cast<uint64_t>(miss->second);
            }
        }
        if (dispatched > 0)
            out.queue_wait_ns_mean /= dispatched;
        if (compiled_count > 0)
            out.mean_estimated_fidelity /= compiled_count;
        uint64_t lookups = out.cache_hits + out.cache_misses;
        if (lookups > 0)
            out.cache_hit_ratio =
                static_cast<double>(out.cache_hits) / lookups;
        return out;
    }
};

// --------------------------------------------------------- service impl

struct CompileService::Impl
    : std::enable_shared_from_this<CompileService::Impl>
{
    /** One queued circuit of one job. */
    struct QueueEntry
    {
        std::shared_ptr<CompileJob::State> job;
        size_t index = 0;
        int priority = 0;
        uint64_t seq = 0;
    };

    /** Per-shard running telemetry (guarded by m). */
    struct ShardAccum
    {
        uint64_t assigned = 0;
        uint64_t completed = 0;
        double wall_ms = 0.0;
        int swaps = 0;
        int teleports = 0;
        double epr_attempts = 0.0;
        double est_fid_sum = 0.0;
        double pred_fid_sum = 0.0;
        /** Summed workload features of the admitted circuits, so the
         *  snapshot can ask the cost model about the shard's *mean*
         *  workload without keeping per-circuit history. */
        double feat_ops_sum = 0.0;
        double feat_two_q_sum = 0.0;
        double feat_depth_sum = 0.0;
        std::vector<PassMetric> pass_rollup;
    };

    DeviceFleet fleet;
    GateSet gate_set;
    CompileServiceOptions opts;
    ProfileCache owned_cache;
    ProfileCache* cache = nullptr;
    /** Worker pool (owned or borrowed); null => inline execution. */
    ThreadPool* pool = nullptr;
    size_t max_inflight = 1;
    /** Borrowed event stream; null publishes nothing. */
    EventStream* events = nullptr;
    /** Active cost model (opts.cost_model, or owned_model when the
     *  planner knob asks for one); null observes nothing. */
    CompileCostModel owned_model;
    CompileCostModel* cost_model = nullptr;

    mutable std::mutex m;
    std::condition_variable idle_cv;
    bool paused = false;
    bool stopping = false;
    bool cache_saved = false;
    uint64_t next_job_id = 1;
    uint64_t next_entry_seq = 1;
    uint64_t next_dispatch_seq = 1;
    size_t queued = 0;
    size_t in_flight = 0;

    /**
     * Per-shard admission queues, each sorted so the back holds the
     * next dispatch: ascending (priority, then submission recency) —
     * i.e. back = highest priority, earliest sequence number.
     */
    std::vector<std::vector<QueueEntry>> queues;
    /** Gauge: circuits dispatched but not yet finished, per shard
     *  (threaded mode only; drives max_in_flight_per_shard). */
    std::vector<size_t> shard_in_flight;
    /** Gauge: predicted ns admitted but not yet compiled, per shard. */
    std::vector<double> backlog_ns;
    /** Monotonic predicted ns ever admitted, per shard. */
    std::vector<double> admitted_ns;
    std::vector<ShardAccum> shard_accum;

    uint64_t submitted = 0;
    uint64_t admitted_jobs = 0;
    uint64_t rejected = 0;
    uint64_t completed_jobs = 0;
    uint64_t failed_jobs = 0;
    uint64_t cancelled_jobs = 0;

    /**
     * Jobs that turned terminal with callbacks still registered
     * (guarded by m). Every path that can finalize a job drains this
     * via fireReadyCallbacks() after releasing m, so callbacks never
     * run under a service or job lock.
     */
    std::vector<std::shared_ptr<CompileJob::State>> ready_callbacks;
    /** Threads currently inside fireReadyCallbacks' invoke loop
     *  (guarded by m); shutdown() drains to zero so no callback ever
     *  outlives the service. */
    size_t callback_firers = 0;

    // Periodic shardTelemetry() publisher (separate mutex: the thread
    // must be stoppable without touching the heavily-contended m).
    std::thread publisher;
    std::mutex pub_m;
    std::condition_variable pub_cv;
    bool pub_stop = false;

    /** True when a dispatches before b (FIFO within priority). */
    static bool dispatchesBefore(const QueueEntry& a, const QueueEntry& b)
    {
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq < b.seq;
    }

    void enqueueLocked(QueueEntry entry)
    {
        auto& queue = queues[static_cast<size_t>(
            entry.job->plan.assignments[entry.index].shard)];
        // Sorted worst-first so the best entry pops from the back.
        auto pos = std::upper_bound(
            queue.begin(), queue.end(), entry,
            [](const QueueEntry& a, const QueueEntry& b) {
                return dispatchesBefore(b, a);
            });
        queue.insert(pos, std::move(entry));
        ++queued;
    }

    /**
     * Fill the identity fields and publish one packet; no-op without
     * a stream. Lock-free — safe under any lock.
     */
    void publishEvent(ServiceEventType type, uint64_t job,
                      int32_t circuit, int32_t shard, double a = 0.0,
                      double b = 0.0)
    {
        if (!events)
            return;
        ServiceEvent event;
        event.type = type;
        event.job = job;
        event.circuit = circuit;
        event.shard = shard;
        event.worker = EventStream::currentWorker();
        event.a = a;
        event.b = b;
        events->publishNow(event);
    }

    /**
     * Finalize a job whose circuits are all accounted for. Both the
     * service mutex and the job mutex must be held. A finalized job
     * with registered callbacks lands on ready_callbacks; the caller
     * must fireReadyCallbacks() after releasing every lock.
     */
    void maybeFinalizeJobLocked(
        const std::shared_ptr<CompileJob::State>& job_ptr)
    {
        CompileJob::State& job = *job_ptr;
        if (job.accounted < job.circuits.size() || job.terminalLocked())
            return;
        if (job.error) {
            job.status = JobStatus::Failed;
            ++failed_jobs;
        } else if (job.compiled_count == job.circuits.size()) {
            job.status = JobStatus::Done;
            ++completed_jobs;
        } else {
            job.status = JobStatus::Cancelled;
            ++cancelled_jobs;
        }
        job.cv.notify_all();
        if (!job.callbacks.empty())
            ready_callbacks.push_back(job_ptr);
    }

    /**
     * Invoke the completion callbacks of every newly-terminal job.
     * Must be called with no service or job lock held; safe to call
     * concurrently (each callback still runs exactly once, because
     * both the ready list and each job's callback list are swapped
     * out under their mutex before any invocation).
     */
    void fireReadyCallbacks()
    {
        std::vector<std::shared_ptr<CompileJob::State>> ready;
        {
            std::lock_guard<std::mutex> lock(m);
            if (ready_callbacks.empty())
                return;
            ready.swap(ready_callbacks);
            ++callback_firers;
        }
        for (const auto& job : ready) {
            std::vector<std::function<void(CompileJob)>> callbacks;
            {
                std::lock_guard<std::mutex> jl(job->m);
                callbacks.swap(job->callbacks);
            }
            for (const auto& callback : callbacks)
                callback(CompileJob(job));
        }
        {
            std::lock_guard<std::mutex> lock(m);
            --callback_firers;
        }
        idle_cv.notify_all();
    }

    /** Dispatch queued entries while capacity allows (m held). */
    void pumpLocked()
    {
        if (!pool)
            return;
        size_t per_shard_cap = opts.planner.max_in_flight_per_shard;
        while (!paused && in_flight < max_inflight) {
            int best_shard = -1;
            for (size_t s = 0; s < queues.size(); ++s) {
                if (queues[s].empty())
                    continue;
                // Per-shard cap: a saturated shard's queue waits, but
                // other shards keep dispatching — finishEntry re-pumps
                // when a slot frees up, so nothing is ever lost.
                if (per_shard_cap > 0 &&
                    shard_in_flight[s] >= per_shard_cap)
                    continue;
                if (best_shard < 0 ||
                    dispatchesBefore(
                        queues[s].back(),
                        queues[static_cast<size_t>(best_shard)].back()))
                    best_shard = static_cast<int>(s);
            }
            if (best_shard < 0)
                break;
            auto& queue = queues[static_cast<size_t>(best_shard)];
            QueueEntry entry = std::move(queue.back());
            queue.pop_back();
            --queued;

            bool skip = false;
            {
                std::lock_guard<std::mutex> jl(entry.job->m);
                skip = entry.job->cancel_requested ||
                       entry.job->error != nullptr;
                if (skip) {
                    ++entry.job->accounted;
                    maybeFinalizeJobLocked(entry.job);
                } else {
                    markDispatchedLocked(*entry.job, entry.index);
                }
            }
            if (skip) {
                publishEvent(ServiceEventType::Cancel, entry.job->id,
                             static_cast<int32_t>(entry.index),
                             entry.job->plan.assignments[entry.index]
                                 .shard);
                releaseBacklogLocked(entry);
                idle_cv.notify_all();
                continue;
            }
            ++in_flight;
            ++shard_in_flight[static_cast<size_t>(best_shard)];
            auto self = shared_from_this();
            pool->submit([self, entry] { self->runEntry(entry); });
        }
    }

    /** Stamp dispatch bookkeeping on one circuit (job mutex held). */
    void markDispatchedLocked(CompileJob::State& job, size_t index)
    {
        job.dispatch_seq[index] = next_dispatch_seq++;
        job.queue_wait_ns[index] = nsSince(job.submit_time);
        if (job.status == JobStatus::Queued)
            job.status = JobStatus::Running;
    }

    void releaseBacklogLocked(const QueueEntry& entry)
    {
        const ShardAssignment& a =
            entry.job->plan.assignments[entry.index];
        backlog_ns[static_cast<size_t>(a.shard)] -=
            a.predicted_duration_ns;
    }

    /** Compile one circuit (no service lock held). */
    void runEntry(const QueueEntry& entry)
    {
        const ShardAssignment& assignment =
            entry.job->plan.assignments[entry.index];
        const Shard& shard =
            fleet.shard(static_cast<size_t>(assignment.shard));
        const CompileOptions& options =
            entry.job->options ? *entry.job->options : shard.options;
        // Dispatch is published here, on the worker, so the trace's
        // job span opens on the track that actually runs it.
        publishEvent(ServiceEventType::Dispatch, entry.job->id,
                     static_cast<int32_t>(entry.index),
                     assignment.shard);
        CompileTelemetry telemetry;
        telemetry.stream = events;
        telemetry.job = entry.job->id;
        telemetry.circuit = static_cast<int32_t>(entry.index);
        telemetry.shard = assignment.shard;
        // Async workers fan a single circuit's decompositions across
        // the same pool: parallelFor is cooperative (the worker claims
        // indices itself; it never waits on the pool), so a lone large
        // job recruits otherwise-idle workers while a saturated pool
        // degrades gracefully to per-worker serial. Inline submits use
        // the caller-provided translation pool as before. Either way
        // options.intra_circuit_parallelism caps the fan-out.
        ThreadPool* inner = pool ? pool : opts.translation_pool;
        if (options.intra_circuit_parallelism == 1)
            inner = nullptr;

        CompileResult result;
        std::exception_ptr error;
        auto start = Clock::now();
        try {
            result = runCompilePipeline(entry.job->circuits[entry.index],
                                        shard.device, gate_set, *cache,
                                        options, inner,
                                        events ? &telemetry : nullptr);
        } catch (...) {
            error = std::current_exception();
        }
        finishEntry(entry, std::move(result), error, msSince(start));
    }

    /**
     * Account one already-dispatched circuit as skipped without
     * compiling it (inline-mode fail-fast after a sibling's error).
     */
    void skipEntry(const QueueEntry& entry)
    {
        publishEvent(ServiceEventType::Cancel, entry.job->id,
                     static_cast<int32_t>(entry.index),
                     entry.job->plan.assignments[entry.index].shard);
        {
            std::lock_guard<std::mutex> lock(m);
            releaseBacklogLocked(entry);
            {
                std::lock_guard<std::mutex> jl(entry.job->m);
                ++entry.job->accounted;
                maybeFinalizeJobLocked(entry.job);
            }
            --in_flight;
            // Inline submits never touch the per-shard gauges, so
            // only pool dispatches pay one back here.
            if (pool)
                --shard_in_flight[static_cast<size_t>(
                    entry.job->plan.assignments[entry.index].shard)];
            idle_cv.notify_all();
        }
        fireReadyCallbacks();
    }

    void finishEntry(const QueueEntry& entry, CompileResult result,
                     std::exception_ptr error, double wall_ms)
    {
        const ShardAssignment& assignment =
            entry.job->plan.assignments[entry.index];
        size_t s = static_cast<size_t>(assignment.shard);

        // Telemetry and model feedback before any lock: the cost model
        // has its own mutex, and the packets come from the finishing
        // worker's thread (its trace track).
        double hits = 0.0, misses = 0.0;
        if (!error)
            cacheTraffic(result.pass_metrics, hits, misses);
        if (cost_model && !error) {
            cost_model->observeCompile(assignment.features, wall_ms,
                                       static_cast<uint64_t>(hits),
                                       static_cast<uint64_t>(misses));
            for (const PassMetric& metric : result.pass_metrics)
                cost_model->observePass(metric.pass, assignment.features,
                                        metric.wall_ms);
        }
        if (!error && hits + misses > 0.0)
            publishEvent(ServiceEventType::CacheStats, entry.job->id,
                         static_cast<int32_t>(entry.index),
                         assignment.shard, hits, misses);
        if (!error && result.teleports_inserted > 0)
            publishEvent(ServiceEventType::Teleport, entry.job->id,
                         static_cast<int32_t>(entry.index),
                         assignment.shard,
                         static_cast<double>(result.teleports_inserted),
                         result.epr_attempts);
        publishEvent(ServiceEventType::Complete, entry.job->id,
                     static_cast<int32_t>(entry.index), assignment.shard,
                     wall_ms, error ? 0.0 : 1.0);

        {
            std::lock_guard<std::mutex> lock(m);
            releaseBacklogLocked(entry);
            if (!error) {
                ShardAccum& acc = shard_accum[s];
                ++acc.completed;
                acc.wall_ms += totalWallMs(result.pass_metrics);
                acc.swaps += result.swaps_inserted;
                acc.teleports += result.teleports_inserted;
                acc.epr_attempts += result.epr_attempts;
                acc.est_fid_sum += result.estimated_fidelity;
                accumulatePassMetrics(acc.pass_rollup,
                                      result.pass_metrics);
            }
            {
                std::lock_guard<std::mutex> jl(entry.job->m);
                CompileJob::State& job = *entry.job;
                if (error) {
                    if (!job.error)
                        job.error = error;
                } else {
                    job.results[entry.index] = std::move(result);
                    job.compiled[entry.index] = 1;
                    ++job.compiled_count;
                }
                job.wall_ms[entry.index] = wall_ms;
                ++job.accounted;
                maybeFinalizeJobLocked(entry.job);
            }
            --in_flight;
            if (pool)
                --shard_in_flight[s];
            pumpLocked();
            idle_cv.notify_all();
        }
        fireReadyCallbacks();
    }

    /** shardTelemetry() body, shared with the publisher thread. */
    std::vector<PassMetric> shardTelemetrySnapshot() const
    {
        std::lock_guard<std::mutex> lock(m);
        std::vector<PassMetric> out;
        out.reserve(fleet.size());
        for (size_t s = 0; s < fleet.size(); ++s) {
            const ShardAccum& acc = shard_accum[s];
            PassMetric metric{"shard:" + fleet.shard(s).name,
                              acc.wall_ms,
                              {}};
            metric.counters["assigned"] =
                static_cast<double>(acc.assigned);
            metric.counters["completed"] =
                static_cast<double>(acc.completed);
            metric.counters["queue_ns"] = admitted_ns[s];
            metric.counters["backlog_ns"] = backlog_ns[s];
            metric.counters["swaps_inserted"] = acc.swaps;
            metric.counters["teleports_inserted"] = acc.teleports;
            metric.counters["epr_attempts"] = acc.epr_attempts;
            if (acc.completed > 0)
                metric.counters["mean_estimated_fidelity"] =
                    acc.est_fid_sum / acc.completed;
            if (acc.assigned > 0) {
                metric.counters["mean_predicted_fidelity"] =
                    acc.pred_fid_sum / acc.assigned;
                if (cost_model) {
                    // The cost model's view of the shard's mean
                    // admitted workload: whole-compile and per-pass
                    // wall-clock plus the expected warm-cache
                    // fraction. Cold models simply contribute no
                    // counters (the predicates below return false).
                    CompileCostModel::Features mean;
                    mean.ops = acc.feat_ops_sum / acc.assigned;
                    mean.two_q = acc.feat_two_q_sum / acc.assigned;
                    mean.depth = acc.feat_depth_sum / acc.assigned;
                    double value = 0.0;
                    if (cost_model->predictCompileMs(
                            mean, &value,
                            opts.planner.cost_model_min_samples))
                        metric.counters["predicted_compile_ms"] = value;
                    if (cost_model->predictHitRatio(
                            mean, &value,
                            opts.planner.cost_model_min_samples))
                        metric.counters["predicted_hit_ratio"] = value;
                    for (const std::string& pass :
                         cost_model->passNames())
                        if (cost_model->predictPassMs(
                                pass, mean, &value,
                                opts.planner.cost_model_min_samples))
                            metric.counters["predicted_" + pass +
                                            "_ms"] = value;
                }
            }
            out.push_back(std::move(metric));
        }
        return out;
    }

    /** Publisher thread: deliver periodic snapshots to the sink. */
    void publisherLoop()
    {
        std::unique_lock<std::mutex> lock(pub_m);
        while (!pub_stop) {
            pub_cv.wait_for(lock,
                            std::chrono::duration<double, std::milli>(
                                opts.telemetry_interval_ms),
                            [this] { return pub_stop; });
            if (pub_stop)
                return;
            lock.unlock();
            // The sink runs outside pub_m and m (the snapshot takes m
            // only while copying), so it may call back into the
            // service.
            opts.telemetry_sink(shardTelemetrySnapshot());
            lock.lock();
        }
    }
};

// -------------------------------------------------------------- handles

uint64_t
CompileJob::id() const
{
    QISET_REQUIRE(state_, "id() on an invalid CompileJob");
    return state_->id;
}

const std::string&
CompileJob::tag() const
{
    QISET_REQUIRE(state_, "tag() on an invalid CompileJob");
    return state_->tag;
}

JobStatus
CompileJob::poll() const
{
    QISET_REQUIRE(state_, "poll() on an invalid CompileJob");
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->status;
}

JobStatus
CompileJob::wait() const
{
    QISET_REQUIRE(state_, "wait() on an invalid CompileJob");
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [this] { return state_->terminalLocked(); });
    return state_->status;
}

JobStatus
CompileJob::waitFor(double timeout_ms) const
{
    QISET_REQUIRE(state_, "waitFor() on an invalid CompileJob");
    std::unique_lock<std::mutex> lock(state_->m);
    // An expired deadline answers immediately — never charge the
    // caller a dispatch cycle for asking about the present.
    if (timeout_ms <= 0.0 || state_->terminalLocked())
        return state_->status;
    state_->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [this] { return state_->terminalLocked(); });
    return state_->status;
}

void
CompileJob::onComplete(std::function<void(CompileJob)> callback)
{
    QISET_REQUIRE(state_, "onComplete() on an invalid CompileJob");
    QISET_REQUIRE(callback != nullptr,
                  "onComplete() needs a non-empty callback");
    {
        std::lock_guard<std::mutex> lock(state_->m);
        if (!state_->terminalLocked()) {
            state_->callbacks.push_back(std::move(callback));
            return;
        }
    }
    // Already terminal: run here, outside the lock, so registration
    // can never miss the completion (and never deadlocks a callback
    // that touches the job).
    callback(*this);
}

const std::vector<CompileResult>&
CompileJob::results() const
{
    JobStatus status = wait();
    std::lock_guard<std::mutex> lock(state_->m);
    if (state_->error)
        std::rethrow_exception(state_->error);
    QISET_REQUIRE(status == JobStatus::Done,
                  "results() on a job that ended \"", toString(status),
                  "\"");
    return state_->results;
}

std::vector<CompileResult>
CompileJob::takeResults()
{
    JobStatus status = wait();
    std::lock_guard<std::mutex> lock(state_->m);
    if (state_->error)
        std::rethrow_exception(state_->error);
    QISET_REQUIRE(status == JobStatus::Done,
                  "takeResults() on a job that ended \"",
                  toString(status), "\"");
    return std::move(state_->results);
}

const ShardPlan&
CompileJob::plan() const
{
    QISET_REQUIRE(state_, "plan() on an invalid CompileJob");
    return state_->plan;
}

CompileJobStats
CompileJob::stats() const
{
    QISET_REQUIRE(state_, "stats() on an invalid CompileJob");
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->statsLocked();
}

std::vector<PassMetric>
CompileJob::passMetrics() const
{
    QISET_REQUIRE(state_, "passMetrics() on an invalid CompileJob");
    std::lock_guard<std::mutex> lock(state_->m);
    std::vector<PassMetric> out;
    for (size_t i = 0; i < state_->circuits.size(); ++i)
        if (state_->compiled[i])
            accumulatePassMetrics(out,
                                  state_->results[i].pass_metrics);
    CompileJobStats stats = state_->statsLocked();
    // Summable counters only: accumulatePassMetrics adds counters
    // across jobs, so ratios and means (which do not survive
    // summation) stay on CompileJobStats; consumers derive them from
    // these sums plus "circuits"/"runs".
    PassMetric service{"service:job", stats.compile_wall_ms, {}};
    service.counters["circuits"] =
        static_cast<double>(stats.circuits);
    double queue_wait_total = 0.0;
    for (double wait : state_->queue_wait_ns)
        queue_wait_total += wait;
    service.counters["queue_wait_ns_total"] = queue_wait_total;
    service.counters["cache_hits"] =
        static_cast<double>(stats.cache_hits);
    service.counters["cache_misses"] =
        static_cast<double>(stats.cache_misses);
    service.counters["swaps_inserted"] =
        static_cast<double>(stats.swaps_inserted);
    service.counters["teleports_inserted"] =
        static_cast<double>(stats.teleports_inserted);
    service.counters["epr_attempts"] = stats.epr_attempts;
    double fidelity_sum = 0.0;
    for (size_t i = 0; i < state_->circuits.size(); ++i)
        if (state_->compiled[i])
            fidelity_sum += state_->results[i].estimated_fidelity;
    service.counters["estimated_fidelity_sum"] = fidelity_sum;
    out.push_back(std::move(service));
    return out;
}

bool
CompileJob::cancel()
{
    QISET_REQUIRE(state_, "cancel() on an invalid CompileJob");
    std::shared_ptr<CompileService::Impl> impl = state_->service.lock();
    if (!impl) {
        // The service is gone, so the job was drained to a terminal
        // state; there is nothing left to cancel.
        return false;
    }
    size_t dropped = 0;
    {
        std::lock_guard<std::mutex> lock(impl->m);
        std::lock_guard<std::mutex> jl(state_->m);
        if (state_->terminalLocked())
            return false;
        state_->cancel_requested = true;

        // Drop this job's still-queued circuits and release their
        // backlog.
        for (auto& queue : impl->queues) {
            auto it = queue.begin();
            while (it != queue.end()) {
                if (it->job.get() != state_.get()) {
                    ++it;
                    continue;
                }
                impl->publishEvent(
                    ServiceEventType::Cancel, state_->id,
                    static_cast<int32_t>(it->index),
                    state_->plan.assignments[it->index].shard);
                impl->releaseBacklogLocked(*it);
                ++state_->accounted;
                ++dropped;
                --impl->queued;
                it = queue.erase(it);
            }
        }
        impl->maybeFinalizeJobLocked(state_);
        impl->idle_cv.notify_all();
    }
    impl->fireReadyCallbacks();
    return dropped > 0;
}

// -------------------------------------------------------------- service

CompileServiceOptions
oneShotServiceOptions(ProfileCache& cache, size_t batch_size,
                      ThreadPool* pool)
{
    CompileServiceOptions options;
    options.cache = &cache;
    if (pool && pool->size() > 1 && batch_size > 1) {
        // Fan circuits over the pool. Each worker's translation may
        // additionally recruit idle workers (cooperative parallelFor),
        // so a skewed batch with one giant circuit still saturates.
        options.pool = pool;
    } else {
        // Inline on the calling thread; the pool (if any) instead
        // parallelizes within each circuit's translation.
        options.translation_pool = pool;
    }
    return options;
}

CompileService::CompileService(DeviceFleet fleet, GateSet gate_set,
                               CompileServiceOptions options)
{
    QISET_REQUIRE(fleet.size() > 0,
                  "a CompileService needs a non-empty fleet");
    for (size_t s = 1; s < fleet.size(); ++s)
        QISET_REQUIRE(
            sameNuOpOptions(fleet.shard(0).options.nuop,
                            fleet.shard(s).options.nuop),
            "shards \"", fleet.shard(0).name, "\" and \"",
            fleet.shard(s).name,
            "\" have different NuOp settings; they cannot share one "
            "profile cache");

    // Fail fast on unknown engines (per-shard knobs are resolved
    // per-compile inside the translation pass).
    for (size_t s = 0; s < fleet.size(); ++s)
        makeDecompositionStrategy(fleet.shard(s).options.decomposition);

    impl_ = std::make_shared<Impl>();
    impl_->fleet = std::move(fleet);
    impl_->gate_set = std::move(gate_set);
    impl_->opts = std::move(options);
    impl_->cache = impl_->opts.cache ? impl_->opts.cache
                                     : &impl_->owned_cache;
    if (!impl_->opts.cache && !impl_->opts.cache_path.empty()) {
        // Warm state from a previous service run; a stale, missing or
        // differently-stamped file simply means a cold start.
        impl_->owned_cache.load(
            impl_->opts.cache_path, impl_->fleet.shard(0).options.nuop,
            *makeDecompositionStrategy(
                impl_->fleet.shard(0).options.decomposition));
    }
    if (!impl_->opts.pool && impl_->opts.workers > 0)
        owned_pool_ = std::make_unique<ThreadPool>(impl_->opts.workers);
    impl_->pool = impl_->opts.pool ? impl_->opts.pool
                                   : owned_pool_.get();
    impl_->max_inflight =
        impl_->opts.max_inflight > 0
            ? impl_->opts.max_inflight
            : (impl_->pool ? std::max<size_t>(impl_->pool->size(), 1)
                           : 1);

    size_t shards = impl_->fleet.size();
    impl_->queues.resize(shards);
    impl_->shard_in_flight.assign(shards, 0);
    impl_->backlog_ns.assign(shards, 0.0);
    impl_->admitted_ns.assign(shards, 0.0);
    impl_->shard_accum.resize(shards);

    impl_->events = impl_->opts.events;
    // A borrowed model always observes (and steers only when the
    // planner knob is on); asking for the knob without providing one
    // makes the service own a model.
    impl_->cost_model =
        impl_->opts.cost_model
            ? impl_->opts.cost_model
            : (impl_->opts.planner.use_cost_model ? &impl_->owned_model
                                                  : nullptr);

    if (impl_->opts.telemetry_interval_ms > 0.0 &&
        impl_->opts.telemetry_sink) {
        // Raw capture is safe: shutdown() joins before impl_ dies.
        Impl* impl = impl_.get();
        impl_->publisher = std::thread([impl] { impl->publisherLoop(); });
    }
}

CompileService::~CompileService()
{
    shutdown();
    // Joining the owned workers after the drain guarantees no task
    // still references impl state through the raw pool pointer.
    owned_pool_.reset();
}

CompileJob
CompileService::submit(CompileRequest request)
{
    if (request.options) {
        QISET_REQUIRE(
            sameNuOpOptions(request.options->nuop,
                            impl_->fleet.shard(0).options.nuop),
            "per-request NuOp settings differ from the fleet's; the "
            "shared profile cache would mix incompatible profiles");
        // Per-request decomposition engines are fine — strategy tags
        // in the cache keys keep mixed engines collision-free — but
        // an unknown name should reject at submit, not mid-compile.
        makeDecompositionStrategy(request.options->decomposition);
    }

    auto state = std::make_shared<CompileJob::State>();
    state->circuits = std::move(request.circuits);
    state->options = std::move(request.options);
    state->priority = request.priority;
    state->tag = std::move(request.tag);
    state->service = impl_;
    if (request.on_complete)
        state->callbacks.push_back(std::move(request.on_complete));

    std::unique_lock<std::mutex> lock(impl_->m);
    QISET_REQUIRE(!impl_->stopping,
                  "submit() on a CompileService that was shut down");
    state->id = impl_->next_job_id++;
    state->submit_time = Clock::now();
    impl_->publishEvent(ServiceEventType::Submit, state->id, -1, -1,
                        static_cast<double>(state->circuits.size()));
    // Re-plan on arrival against the current predicted backlog: the
    // plan is cheap and deterministic, and load-balances new work away
    // from busy shards.
    state->plan =
        planShardAssignments(state->circuits, impl_->fleet,
                             impl_->gate_set, impl_->opts.planner,
                             impl_->backlog_ns, impl_->cost_model);
    ++impl_->submitted;

    size_t n = state->circuits.size();
    state->results.resize(n);
    state->queue_wait_ns.assign(n, 0.0);
    state->wall_ms.assign(n, 0.0);
    state->dispatch_seq.assign(n, 0);
    state->compiled.assign(n, 0);

    // ---- admission control over the planner's predicted queue_ns ----
    double predicted_completion_ns = 0.0;
    for (size_t s = 0; s < impl_->fleet.size(); ++s)
        if (!state->plan.queues[s].empty())
            predicted_completion_ns = std::max(predicted_completion_ns,
                                               state->plan.queue_ns[s]);
    bool reject = false;
    if (request.deadline_ns > 0.0 &&
        predicted_completion_ns > request.deadline_ns)
        reject = true;
    if (impl_->opts.max_queue_ns > 0.0)
        for (size_t s = 0; s < impl_->fleet.size(); ++s)
            if (!state->plan.queues[s].empty() &&
                state->plan.queue_ns[s] > impl_->opts.max_queue_ns)
                reject = true;
    if (reject) {
        ++impl_->rejected;
        impl_->publishEvent(ServiceEventType::Reject, state->id, -1, -1,
                            static_cast<double>(n));
        {
            std::lock_guard<std::mutex> jl(state->m);
            state->status = JobStatus::Rejected;
            state->cv.notify_all();
            if (!state->callbacks.empty())
                impl_->ready_callbacks.push_back(state);
        }
        lock.unlock();
        impl_->fireReadyCallbacks();
        return CompileJob(std::move(state));
    }

    ++impl_->admitted_jobs;
    if (n == 0) {
        ++impl_->completed_jobs;
        {
            std::lock_guard<std::mutex> jl(state->m);
            state->status = JobStatus::Done;
            state->cv.notify_all();
            if (!state->callbacks.empty())
                impl_->ready_callbacks.push_back(state);
        }
        lock.unlock();
        impl_->fireReadyCallbacks();
        return CompileJob(std::move(state));
    }

    for (size_t s = 0; s < impl_->fleet.size(); ++s) {
        impl_->admitted_ns[s] +=
            state->plan.queue_ns[s] - impl_->backlog_ns[s];
        impl_->backlog_ns[s] = state->plan.queue_ns[s];
    }
    for (size_t c = 0; c < n; ++c) {
        const ShardAssignment& a = state->plan.assignments[c];
        Impl::ShardAccum& acc =
            impl_->shard_accum[static_cast<size_t>(a.shard)];
        ++acc.assigned;
        acc.pred_fid_sum += a.predicted_fidelity;
        acc.feat_ops_sum += a.features.ops;
        acc.feat_two_q_sum += a.features.two_q;
        acc.feat_depth_sum += a.features.depth;
        impl_->publishEvent(ServiceEventType::Admit, state->id,
                            static_cast<int32_t>(c), a.shard,
                            a.predicted_duration_ns,
                            a.predicted_fidelity);
    }

    if (impl_->pool) {
        for (size_t c = 0; c < n; ++c)
            impl_->enqueueLocked(Impl::QueueEntry{
                state, c, state->priority, impl_->next_entry_seq++});
        impl_->pumpLocked();
        lock.unlock();
        impl_->fireReadyCallbacks();
        return CompileJob(std::move(state));
    }

    // Inline mode: compile on the calling thread before returning.
    std::vector<Impl::QueueEntry> entries;
    entries.reserve(n);
    {
        std::lock_guard<std::mutex> jl(state->m);
        for (size_t c = 0; c < n; ++c) {
            impl_->markDispatchedLocked(*state, c);
            entries.push_back(Impl::QueueEntry{
                state, c, state->priority, impl_->next_entry_seq++});
        }
    }
    impl_->in_flight += n;
    lock.unlock();
    for (const Impl::QueueEntry& entry : entries) {
        bool bail;
        {
            std::lock_guard<std::mutex> jl(state->m);
            // Fail fast: once one circuit errored (or another thread
            // cancelled), skip the rest instead of compiling work
            // whose job is already lost.
            bail = state->error != nullptr || state->cancel_requested;
        }
        if (bail)
            impl_->skipEntry(entry);
        else
            impl_->runEntry(entry);
    }
    return CompileJob(std::move(state));
}

void
CompileService::pause()
{
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->paused = true;
}

void
CompileService::resume()
{
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->paused = false;
        impl_->pumpLocked();
    }
    impl_->fireReadyCallbacks();
}

void
CompileService::shutdown()
{
    bool save = false;
    {
        std::unique_lock<std::mutex> lock(impl_->m);
        impl_->stopping = true;
        impl_->paused = false;
        impl_->pumpLocked();
        impl_->idle_cv.wait(lock, [this] {
            return impl_->queued == 0 && impl_->in_flight == 0;
        });
        if (!impl_->opts.cache && !impl_->opts.cache_path.empty() &&
            !impl_->cache_saved) {
            impl_->cache_saved = true;
            save = true;
        }
    }
    // The drain can finalize jobs whose callbacks nothing else will
    // fire (e.g. cancelled work skipped by the pump).
    impl_->fireReadyCallbacks();
    {
        // Workers decrement in_flight before invoking callbacks, so
        // also wait until every firing thread has finished: after
        // shutdown() no callback is running or pending.
        std::unique_lock<std::mutex> lock(impl_->m);
        impl_->idle_cv.wait(lock, [this] {
            return impl_->ready_callbacks.empty() &&
                   impl_->callback_firers == 0;
        });
    }
    {
        std::lock_guard<std::mutex> pl(impl_->pub_m);
        impl_->pub_stop = true;
    }
    impl_->pub_cv.notify_all();
    if (impl_->publisher.joinable()) {
        impl_->publisher.join();
        // One final snapshot so the sink always sees the drained end
        // state (fires once: joinable() is false from here on).
        impl_->opts.telemetry_sink(impl_->shardTelemetrySnapshot());
    }
    if (save)
        impl_->owned_cache.save(
            impl_->opts.cache_path, impl_->fleet.shard(0).options.nuop,
            *makeDecompositionStrategy(
                impl_->fleet.shard(0).options.decomposition));
}

CompileServiceStats
CompileService::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    CompileServiceStats out;
    out.submitted = impl_->submitted;
    out.admitted = impl_->admitted_jobs;
    out.rejected = impl_->rejected;
    out.completed = impl_->completed_jobs;
    out.failed = impl_->failed_jobs;
    out.cancelled = impl_->cancelled_jobs;
    out.queued = impl_->queued;
    out.in_flight = impl_->in_flight;
    out.backlog_ns = impl_->backlog_ns;
    out.admitted_ns = impl_->admitted_ns;
    return out;
}

std::vector<PassMetric>
CompileService::shardTelemetry() const
{
    return impl_->shardTelemetrySnapshot();
}

std::vector<std::vector<PassMetric>>
CompileService::shardPassRollups() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    std::vector<std::vector<PassMetric>> out;
    out.reserve(impl_->shard_accum.size());
    for (const Impl::ShardAccum& acc : impl_->shard_accum)
        out.push_back(acc.pass_rollup);
    return out;
}

const DeviceFleet&
CompileService::fleet() const
{
    return impl_->fleet;
}

const GateSet&
CompileService::gateSet() const
{
    return impl_->gate_set;
}

ProfileCache&
CompileService::profileCache()
{
    return *impl_->cache;
}

CompileCostModel*
CompileService::costModel()
{
    return impl_->cost_model;
}

} // namespace qiset
