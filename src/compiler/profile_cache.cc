#include "compiler/profile_cache.h"

#include <cstdio>
#include <fstream>
#include <iomanip>

#include "common/error.h"
#include "nuop/decomposer.h"

namespace qiset {

ProfileCache::ProfileCache(size_t max_entries) : max_entries_(max_entries)
{
}

std::string
ProfileCache::key(const Matrix& target, const GateSpec& spec)
{
    return profileKeyCore(target, spec);
}

void
ProfileCache::touchLocked(Entry& entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

std::shared_ptr<const GateProfile>
ProfileCache::insertLocked(const std::string& k,
                           std::shared_ptr<const GateProfile> profile)
{
    auto it = profiles_.find(k);
    if (it != profiles_.end()) {
        touchLocked(it->second);
        return it->second.profile;
    }
    lru_.push_front(k);
    Entry entry;
    entry.profile = std::move(profile);
    entry.lru_it = lru_.begin();
    auto inserted = profiles_.emplace(k, std::move(entry)).first;
    // Evict from the cold end; the new entry sits at the front and is
    // never the victim while anything else remains.
    while (max_entries_ > 0 && profiles_.size() > max_entries_ &&
           profiles_.size() > 1) {
        profiles_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
    return inserted->second.profile;
}

std::shared_ptr<const GateProfile>
ProfileCache::get(const Matrix& target, const GateSpec& spec,
                  const NuOpDecomposer& decomposer,
                  const DecompositionStrategy& strategy,
                  LocalCacheCounters* local, bool tally_hit)
{
    // Warm lookups are the pass-sweep hot path: build the key in a
    // reused per-thread buffer so a cache hit performs zero heap
    // allocations. The map copies the buffer only on insert (misses).
    thread_local std::string k;
    k.clear();
    strategy.cacheKeyInto(k, target, spec);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = profiles_.find(k);
        if (it != profiles_.end()) {
            touchLocked(it->second);
            if (tally_hit) {
                ++hits_;
                if (local)
                    local->hits.fetch_add(1,
                                          std::memory_order_relaxed);
            }
            return it->second.profile;
        }
        ++misses_;
        if (local)
            local->misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Compute outside the lock (the expensive part); duplicated work
    // between racing threads is harmless and rare — the first insert
    // wins and both count as misses, since both paid the computation.
    // Snapshot the key first: computeProfile may call back into code
    // that reuses this thread's key buffer.
    std::string key_copy = k;
    auto profile = std::make_shared<GateProfile>(
        strategy.computeProfile(target, spec, decomposer));

    std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(key_copy, std::move(profile));
}

std::shared_ptr<const GateProfile>
ProfileCache::get(const Matrix& target, const GateSpec& spec,
                  const NuOpDecomposer& decomposer,
                  LocalCacheCounters* local, bool tally_hit)
{
    return get(target, spec, decomposer, nuopDecompositionStrategy(),
               local, tally_hit);
}

size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return profiles_.size();
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ProfileCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.loaded = loaded_;
    s.entries = profiles_.size();
    return s;
}

void
ProfileCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    hits_ = misses_ = evictions_ = loaded_ = 0;
}

void
ProfileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    profiles_.clear();
    lru_.clear();
}

namespace {

constexpr const char* kMagic = "qiset-profile-cache";
// v3: the header carries the NuOp options stamp *and* the
// decomposition strategy stamp (name + canonicalization), and every
// entry records the engine that computed it. v1 files (no stamp) and
// v2 files (no strategy stamp, raw-keyed only) cannot prove their
// profiles match the current configuration and are rejected.
constexpr int kVersion = 3;

void
writeMatrix(std::ostream& os, const Matrix& m)
{
    os << m.rows() << ' ' << m.cols();
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            os << ' ' << m(i, j).real() << ' ' << m(i, j).imag();
    os << '\n';
}

bool
readMatrix(std::istream& is, Matrix& m)
{
    size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols))
        return false;
    if (rows > 16 || cols > 16)
        return false; // gates are at most 4x4; reject corrupt sizes.
    m = Matrix(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j) {
            double re = 0.0, im = 0.0;
            if (!(is >> re >> im))
                return false;
            m(i, j) = cplx(re, im);
        }
    return true;
}

} // namespace

bool
ProfileCache::save(const std::string& path, const NuOpOptions& nuop,
                   const DecompositionStrategy& strategy) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << std::setprecision(17);

    std::lock_guard<std::mutex> lock(mutex_);
    os << kMagic << ' ' << kVersion << '\n';
    // The strategy shapes both the keys (canonicalized or raw) and
    // the fit contents, so it is part of the compatibility contract.
    os << "strategy " << strategy.name() << ' '
       << (strategy.canonicalizesTargets() ? 1 : 0) << '\n';
    // Everything that changes what the BFGS multistarts can find:
    // layer bound, start count, exact tolerance, and the seed.
    os << "nuop " << nuop.max_layers << ' ' << nuop.multistarts << ' '
       << nuop.exact_threshold << ' ' << nuop.seed << '\n';
    os << profiles_.size() << '\n';
    for (const auto& [k, entry] : profiles_) {
        const GateProfile& p = *entry.profile;
        os << k.size() << '\n' << k << '\n';
        os << p.type_name.size() << '\n' << p.type_name << '\n';
        os << p.engine.size() << '\n' << p.engine << '\n';
        os << static_cast<int>(p.family) << '\n';
        writeMatrix(os, p.unitary);
        os << p.fits.size() << '\n';
        for (const auto& fit : p.fits) {
            os << fit.layers << ' ' << fit.fd << ' '
               << fit.params.size();
            for (double v : fit.params)
                os << ' ' << v;
            os << '\n';
        }
    }
    return static_cast<bool>(os);
}

namespace {

/** Read a length-prefixed string ("N\n<N bytes>\n"). */
bool
readLenString(std::istream& is, std::string& out)
{
    size_t len = 0;
    if (!(is >> len))
        return false;
    if (len > (1u << 20))
        return false;
    is.ignore(); // the newline after the length
    out.resize(len);
    is.read(out.empty() ? nullptr : &out[0],
            static_cast<std::streamsize>(len));
    return static_cast<bool>(is);
}

} // namespace

bool
ProfileCache::load(const std::string& path, const NuOpOptions& nuop,
                   const DecompositionStrategy& strategy)
{
    std::ifstream is(path);
    if (!is)
        return false;

    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != kMagic ||
        version != kVersion)
        return false;

    // Reject profiles keyed or computed by a different decomposition
    // strategy: raw and canonicalized keys are not interchangeable,
    // and neither are analytic and BFGS fit contents.
    std::string strategy_stamp, strategy_name;
    int canonical = -1;
    if (!(is >> strategy_stamp >> strategy_name >> canonical) ||
        strategy_stamp != "strategy")
        return false;
    if (strategy_name != strategy.name() ||
        canonical != (strategy.canonicalizesTargets() ? 1 : 0))
        return false;

    // Reject profiles computed under different optimizer settings:
    // they would silently stand in for results the current settings
    // might improve on (or never reach). %.17g round-trips doubles
    // exactly, so equality is the right comparison.
    std::string stamp;
    int max_layers = 0, multistarts = 0;
    double exact_threshold = 0.0;
    uint64_t seed = 0;
    if (!(is >> stamp >> max_layers >> multistarts >> exact_threshold >>
          seed) ||
        stamp != "nuop")
        return false;
    if (max_layers != nuop.max_layers ||
        multistarts != nuop.multistarts ||
        exact_threshold != nuop.exact_threshold || seed != nuop.seed)
        return false;

    size_t count = 0;
    if (!(is >> count) || count > (1u << 20))
        return false; // reject absurd entry counts from corrupt files.

    // Parse the whole file before touching the cache: a truncated or
    // corrupt file must not leave a half-merged state behind a false
    // return.
    std::vector<
        std::pair<std::string, std::shared_ptr<GateProfile>>>
        parsed;
    parsed.reserve(count);
    for (size_t e = 0; e < count; ++e) {
        std::string k, type_name, engine;
        if (!readLenString(is, k) || !readLenString(is, type_name) ||
            !readLenString(is, engine))
            return false;
        int family = 0;
        if (!(is >> family))
            return false;
        auto profile = std::make_shared<GateProfile>();
        profile->type_name = std::move(type_name);
        profile->engine = std::move(engine);
        profile->family = static_cast<TemplateFamily>(family);
        if (!readMatrix(is, profile->unitary))
            return false;
        size_t num_fits = 0;
        if (!(is >> num_fits) || num_fits > 1024)
            return false;
        profile->fits.resize(num_fits);
        for (auto& fit : profile->fits) {
            size_t num_params = 0;
            if (!(is >> fit.layers >> fit.fd >> num_params) ||
                num_params > 4096)
                return false;
            fit.params.resize(num_params);
            for (double& v : fit.params)
                if (!(is >> v))
                    return false;
        }
        parsed.emplace_back(std::move(k), std::move(profile));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [k, profile] : parsed) {
        if (profiles_.count(k) == 0) {
            insertLocked(k, std::move(profile));
            ++loaded_;
        }
    }
    return true;
}

} // namespace qiset
