#include "compiler/profile_cache.h"

#include <cstdio>
#include <fstream>
#include <iomanip>

#include "common/error.h"
#include "nuop/decomposer.h"

namespace qiset {

ProfileCache::ProfileCache(size_t max_entries) : max_entries_(max_entries)
{
}

std::string
ProfileCache::key(const Matrix& target, const GateSpec& spec)
{
    // quantizedForm is shared with the NuOp multistart seeding, so
    // key-equal targets always draw identical seeds.
    return spec.type_name + '|' + quantizedForm(target);
}

void
ProfileCache::touchLocked(Entry& entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

std::shared_ptr<const GateProfile>
ProfileCache::insertLocked(const std::string& k,
                           std::shared_ptr<const GateProfile> profile)
{
    auto it = profiles_.find(k);
    if (it != profiles_.end()) {
        touchLocked(it->second);
        return it->second.profile;
    }
    lru_.push_front(k);
    Entry entry;
    entry.profile = std::move(profile);
    entry.lru_it = lru_.begin();
    auto inserted = profiles_.emplace(k, std::move(entry)).first;
    // Evict from the cold end; the new entry sits at the front and is
    // never the victim while anything else remains.
    while (max_entries_ > 0 && profiles_.size() > max_entries_ &&
           profiles_.size() > 1) {
        profiles_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
    return inserted->second.profile;
}

std::shared_ptr<const GateProfile>
ProfileCache::get(const Matrix& target, const GateSpec& spec,
                  const NuOpDecomposer& decomposer,
                  LocalCacheCounters* local, bool tally_hit)
{
    std::string k = key(target, spec);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = profiles_.find(k);
        if (it != profiles_.end()) {
            touchLocked(it->second);
            if (tally_hit) {
                ++hits_;
                if (local)
                    local->hits.fetch_add(1,
                                          std::memory_order_relaxed);
            }
            return it->second.profile;
        }
        ++misses_;
        if (local)
            local->misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Compute outside the lock (the expensive part); duplicated work
    // between racing threads is harmless and rare — the first insert
    // wins and both count as misses, since both ran BFGS.
    auto profile = std::make_shared<GateProfile>();
    profile->type_name = spec.type_name;
    profile->family = spec.family;
    profile->unitary = spec.unitary;

    HardwareGate gate;
    gate.name = spec.type_name;
    gate.family = spec.family;
    gate.unitary = spec.unitary;

    double threshold = decomposer.options().exact_threshold;
    for (int layers = 0; layers <= decomposer.options().max_layers;
         ++layers) {
        LayerFit fit;
        fit.layers = layers;
        fit.fd = decomposer.bestFidelityForLayers(target, gate, layers,
                                                  &fit.params);
        profile->fits.push_back(std::move(fit));
        if (profile->fits.back().fd >= threshold)
            break;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(k, std::move(profile));
}

size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return profiles_.size();
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ProfileCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.loaded = loaded_;
    s.entries = profiles_.size();
    return s;
}

void
ProfileCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    hits_ = misses_ = evictions_ = loaded_ = 0;
}

void
ProfileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    profiles_.clear();
    lru_.clear();
}

namespace {

constexpr const char* kMagic = "qiset-profile-cache";
// v2: header carries the NuOp options stamp; v1 files (no stamp)
// cannot prove their profiles match the current settings and are
// rejected.
constexpr int kVersion = 2;

void
writeMatrix(std::ostream& os, const Matrix& m)
{
    os << m.rows() << ' ' << m.cols();
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            os << ' ' << m(i, j).real() << ' ' << m(i, j).imag();
    os << '\n';
}

bool
readMatrix(std::istream& is, Matrix& m)
{
    size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols))
        return false;
    if (rows > 16 || cols > 16)
        return false; // gates are at most 4x4; reject corrupt sizes.
    m = Matrix(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j) {
            double re = 0.0, im = 0.0;
            if (!(is >> re >> im))
                return false;
            m(i, j) = cplx(re, im);
        }
    return true;
}

} // namespace

bool
ProfileCache::save(const std::string& path,
                   const NuOpOptions& nuop) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << std::setprecision(17);

    std::lock_guard<std::mutex> lock(mutex_);
    os << kMagic << ' ' << kVersion << '\n';
    // Everything that changes what the BFGS multistarts can find:
    // layer bound, start count, exact tolerance, and the seed.
    os << "nuop " << nuop.max_layers << ' ' << nuop.multistarts << ' '
       << nuop.exact_threshold << ' ' << nuop.seed << '\n';
    os << profiles_.size() << '\n';
    for (const auto& [k, entry] : profiles_) {
        const GateProfile& p = *entry.profile;
        os << k.size() << '\n' << k << '\n';
        os << p.type_name.size() << '\n' << p.type_name << '\n';
        os << static_cast<int>(p.family) << '\n';
        writeMatrix(os, p.unitary);
        os << p.fits.size() << '\n';
        for (const auto& fit : p.fits) {
            os << fit.layers << ' ' << fit.fd << ' '
               << fit.params.size();
            for (double v : fit.params)
                os << ' ' << v;
            os << '\n';
        }
    }
    return static_cast<bool>(os);
}

namespace {

/** Read a length-prefixed string ("N\n<N bytes>\n"). */
bool
readLenString(std::istream& is, std::string& out)
{
    size_t len = 0;
    if (!(is >> len))
        return false;
    if (len > (1u << 20))
        return false;
    is.ignore(); // the newline after the length
    out.resize(len);
    is.read(out.empty() ? nullptr : &out[0],
            static_cast<std::streamsize>(len));
    return static_cast<bool>(is);
}

} // namespace

bool
ProfileCache::load(const std::string& path, const NuOpOptions& nuop)
{
    std::ifstream is(path);
    if (!is)
        return false;

    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != kMagic ||
        version != kVersion)
        return false;

    // Reject profiles computed under different optimizer settings:
    // they would silently stand in for results the current settings
    // might improve on (or never reach). %.17g round-trips doubles
    // exactly, so equality is the right comparison.
    std::string stamp;
    int max_layers = 0, multistarts = 0;
    double exact_threshold = 0.0;
    uint64_t seed = 0;
    if (!(is >> stamp >> max_layers >> multistarts >> exact_threshold >>
          seed) ||
        stamp != "nuop")
        return false;
    if (max_layers != nuop.max_layers ||
        multistarts != nuop.multistarts ||
        exact_threshold != nuop.exact_threshold || seed != nuop.seed)
        return false;

    size_t count = 0;
    if (!(is >> count) || count > (1u << 20))
        return false; // reject absurd entry counts from corrupt files.

    // Parse the whole file before touching the cache: a truncated or
    // corrupt file must not leave a half-merged state behind a false
    // return.
    std::vector<
        std::pair<std::string, std::shared_ptr<GateProfile>>>
        parsed;
    parsed.reserve(count);
    for (size_t e = 0; e < count; ++e) {
        std::string k, type_name;
        if (!readLenString(is, k) || !readLenString(is, type_name))
            return false;
        int family = 0;
        if (!(is >> family))
            return false;
        auto profile = std::make_shared<GateProfile>();
        profile->type_name = std::move(type_name);
        profile->family = static_cast<TemplateFamily>(family);
        if (!readMatrix(is, profile->unitary))
            return false;
        size_t num_fits = 0;
        if (!(is >> num_fits) || num_fits > 1024)
            return false;
        profile->fits.resize(num_fits);
        for (auto& fit : profile->fits) {
            size_t num_params = 0;
            if (!(is >> fit.layers >> fit.fd >> num_params) ||
                num_params > 4096)
                return false;
            fit.params.resize(num_params);
            for (double& v : fit.params)
                if (!(is >> v))
                    return false;
        }
        parsed.emplace_back(std::move(k), std::move(profile));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [k, profile] : parsed) {
        if (profiles_.count(k) == 0) {
            insertLocked(k, std::move(profile));
            ++loaded_;
        }
    }
    return true;
}

} // namespace qiset
