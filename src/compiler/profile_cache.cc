#include "compiler/profile_cache.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <shared_mutex>

#include "common/error.h"
#include "nuop/decomposer.h"

namespace qiset {

ProfileCache::ProfileCache(size_t max_entries)
    : max_entries_(max_entries),
      stripes_(max_entries == 0 ? kUnboundedStripes : 1)
{
}

std::string
ProfileCache::key(const Matrix& target, const GateSpec& spec)
{
    return profileKeyCore(target, spec);
}

ProfileCache::Stripe&
ProfileCache::stripeFor(const std::string& k)
{
    // FNV-1a over the key, independent of the map's std::hash so the
    // per-stripe buckets stay well distributed.
    uint64_t h = 1469598103934665603ull;
    for (char c : k) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return stripes_[h % stripes_.size()];
}

const ProfileCache::Stripe&
ProfileCache::stripeFor(const std::string& k) const
{
    return const_cast<ProfileCache*>(this)->stripeFor(k);
}

std::shared_ptr<const GateProfile>
ProfileCache::insertLocked(Stripe& stripe, const std::string& k,
                           std::shared_ptr<const GateProfile> profile)
{
    auto [it, inserted] = stripe.profiles.try_emplace(k);
    it->second.last_used.store(
        stripe.clock.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    if (!inserted) {
        // Another thread computed the same profile first: its insert
        // wins, this call just refreshed the recency tick.
        return it->second.profile;
    }
    it->second.profile = std::move(profile);
    // Evict from the cold end (lowest tick); the new entry holds the
    // freshest tick and is never the victim while anything else
    // remains.
    while (max_entries_ > 0 && stripe.profiles.size() > max_entries_ &&
           stripe.profiles.size() > 1) {
        auto victim = stripe.profiles.end();
        uint64_t min_tick = 0;
        for (auto iter = stripe.profiles.begin();
             iter != stripe.profiles.end(); ++iter) {
            if (iter == it)
                continue;
            uint64_t tick =
                iter->second.last_used.load(std::memory_order_relaxed);
            if (victim == stripe.profiles.end() || tick < min_tick) {
                victim = iter;
                min_tick = tick;
            }
        }
        if (victim == stripe.profiles.end())
            break;
        stripe.profiles.erase(victim);
        stripe.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second.profile;
}

std::shared_ptr<const GateProfile>
ProfileCache::get(const Matrix& target, const GateSpec& spec,
                  const NuOpDecomposer& decomposer,
                  const DecompositionStrategy& strategy,
                  LocalCacheCounters* local, bool tally_hit)
{
    // Warm lookups are the pass-sweep hot path: build the key in a
    // reused per-thread buffer so a cache hit performs zero heap
    // allocations. The map copies the buffer only on insert (misses).
    thread_local std::string k;
    k.clear();
    strategy.cacheKeyInto(k, target, spec);
    Stripe& stripe = stripeFor(k);
    {
        // Hits touch only this stripe, and only with a shared lock:
        // concurrent readers proceed in parallel, against each other
        // and against writers of other stripes. Recency and counters
        // update atomically under the shared lock, so stats and LRU
        // order stay exact.
        std::shared_lock<std::shared_mutex> lock(stripe.mutex);
        auto it = stripe.profiles.find(k);
        if (it != stripe.profiles.end()) {
            it->second.last_used.store(
                stripe.clock.fetch_add(1, std::memory_order_relaxed) +
                    1,
                std::memory_order_relaxed);
            if (tally_hit) {
                stripe.hits.fetch_add(1, std::memory_order_relaxed);
                if (local)
                    local->hits.fetch_add(1,
                                          std::memory_order_relaxed);
            }
            return it->second.profile;
        }
        stripe.misses.fetch_add(1, std::memory_order_relaxed);
        if (local)
            local->misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Compute outside any lock (the expensive part); duplicated work
    // between racing threads is harmless and rare — the first insert
    // wins and both count as misses, since both paid the computation.
    // Snapshot the key first: computeProfile may call back into code
    // that reuses this thread's key buffer.
    std::string key_copy = k;
    auto profile = std::make_shared<GateProfile>(
        strategy.computeProfile(target, spec, decomposer));

    std::unique_lock<std::shared_mutex> lock(stripe.mutex);
    return insertLocked(stripe, key_copy, std::move(profile));
}

std::shared_ptr<const GateProfile>
ProfileCache::get(const Matrix& target, const GateSpec& spec,
                  const NuOpDecomposer& decomposer,
                  LocalCacheCounters* local, bool tally_hit)
{
    return get(target, spec, decomposer, nuopDecompositionStrategy(),
               local, tally_hit);
}

size_t
ProfileCache::size() const
{
    size_t total = 0;
    for (const Stripe& stripe : stripes_) {
        std::shared_lock<std::shared_mutex> lock(stripe.mutex);
        total += stripe.profiles.size();
    }
    return total;
}

ProfileCacheStats
ProfileCache::stats() const
{
    // Exact aggregation: each stripe's counters are updated atomically
    // at the moment of the event, so the sums account for every hit,
    // miss, eviction and load that completed before this call.
    ProfileCacheStats s;
    for (const Stripe& stripe : stripes_) {
        std::shared_lock<std::shared_mutex> lock(stripe.mutex);
        s.hits += stripe.hits.load(std::memory_order_relaxed);
        s.misses += stripe.misses.load(std::memory_order_relaxed);
        s.evictions +=
            stripe.evictions.load(std::memory_order_relaxed);
        s.loaded += stripe.loaded.load(std::memory_order_relaxed);
        s.entries += stripe.profiles.size();
    }
    return s;
}

void
ProfileCache::resetStats()
{
    for (Stripe& stripe : stripes_) {
        std::unique_lock<std::shared_mutex> lock(stripe.mutex);
        stripe.hits.store(0, std::memory_order_relaxed);
        stripe.misses.store(0, std::memory_order_relaxed);
        stripe.evictions.store(0, std::memory_order_relaxed);
        stripe.loaded.store(0, std::memory_order_relaxed);
    }
}

void
ProfileCache::clear()
{
    for (Stripe& stripe : stripes_) {
        std::unique_lock<std::shared_mutex> lock(stripe.mutex);
        stripe.profiles.clear();
    }
}

namespace {

constexpr const char* kMagic = "qiset-profile-cache";
// v3: the header carries the NuOp options stamp *and* the
// decomposition strategy stamp (name + canonicalization), and every
// entry records the engine that computed it. v1 files (no stamp) and
// v2 files (no strategy stamp, raw-keyed only) cannot prove their
// profiles match the current configuration and are rejected.
constexpr int kVersion = 3;

void
writeMatrix(std::ostream& os, const Matrix& m)
{
    os << m.rows() << ' ' << m.cols();
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            os << ' ' << m(i, j).real() << ' ' << m(i, j).imag();
    os << '\n';
}

bool
readMatrix(std::istream& is, Matrix& m)
{
    size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols))
        return false;
    if (rows > 16 || cols > 16)
        return false; // gates are at most 4x4; reject corrupt sizes.
    m = Matrix(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j) {
            double re = 0.0, im = 0.0;
            if (!(is >> re >> im))
                return false;
            m(i, j) = cplx(re, im);
        }
    return true;
}

} // namespace

bool
ProfileCache::save(const std::string& path, const NuOpOptions& nuop,
                   const DecompositionStrategy& strategy) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << std::setprecision(17);

    // Hold every stripe (shared) for a consistent snapshot. Stripes
    // are always acquired in index order (this is the only multi-
    // stripe acquisition), so writers cannot deadlock against save().
    std::vector<std::shared_lock<std::shared_mutex>> locks;
    locks.reserve(stripes_.size());
    for (const Stripe& stripe : stripes_)
        locks.emplace_back(stripe.mutex);

    os << kMagic << ' ' << kVersion << '\n';
    // The strategy shapes both the keys (canonicalized or raw) and
    // the fit contents, so it is part of the compatibility contract.
    os << "strategy " << strategy.name() << ' '
       << (strategy.canonicalizesTargets() ? 1 : 0) << '\n';
    // Everything that changes what the BFGS multistarts can find:
    // layer bound, start count, exact tolerance, and the seed.
    os << "nuop " << nuop.max_layers << ' ' << nuop.multistarts << ' '
       << nuop.exact_threshold << ' ' << nuop.seed << '\n';
    size_t total = 0;
    for (const Stripe& stripe : stripes_)
        total += stripe.profiles.size();
    os << total << '\n';
    // Entry order follows stripe + bucket order; it was never part of
    // the v3 contract (the historical single map hashed arbitrarily)
    // and load() merges entries one by one.
    for (const Stripe& stripe : stripes_) {
        for (const auto& [k, entry] : stripe.profiles) {
            const GateProfile& p = *entry.profile;
            os << k.size() << '\n' << k << '\n';
            os << p.type_name.size() << '\n' << p.type_name << '\n';
            os << p.engine.size() << '\n' << p.engine << '\n';
            os << static_cast<int>(p.family) << '\n';
            writeMatrix(os, p.unitary);
            os << p.fits.size() << '\n';
            for (const auto& fit : p.fits) {
                os << fit.layers << ' ' << fit.fd << ' '
                   << fit.params.size();
                for (double v : fit.params)
                    os << ' ' << v;
                os << '\n';
            }
        }
    }
    return static_cast<bool>(os);
}

namespace {

/** Read a length-prefixed string ("N\n<N bytes>\n"). */
bool
readLenString(std::istream& is, std::string& out)
{
    size_t len = 0;
    if (!(is >> len))
        return false;
    if (len > (1u << 20))
        return false;
    is.ignore(); // the newline after the length
    out.resize(len);
    is.read(out.empty() ? nullptr : &out[0],
            static_cast<std::streamsize>(len));
    return static_cast<bool>(is);
}

} // namespace

bool
ProfileCache::load(const std::string& path, const NuOpOptions& nuop,
                   const DecompositionStrategy& strategy)
{
    std::ifstream is(path);
    if (!is)
        return false;

    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != kMagic ||
        version != kVersion)
        return false;

    // Reject profiles keyed or computed by a different decomposition
    // strategy: raw and canonicalized keys are not interchangeable,
    // and neither are analytic and BFGS fit contents.
    std::string strategy_stamp, strategy_name;
    int canonical = -1;
    if (!(is >> strategy_stamp >> strategy_name >> canonical) ||
        strategy_stamp != "strategy")
        return false;
    if (strategy_name != strategy.name() ||
        canonical != (strategy.canonicalizesTargets() ? 1 : 0))
        return false;

    // Reject profiles computed under different optimizer settings:
    // they would silently stand in for results the current settings
    // might improve on (or never reach). %.17g round-trips doubles
    // exactly, so equality is the right comparison.
    std::string stamp;
    int max_layers = 0, multistarts = 0;
    double exact_threshold = 0.0;
    uint64_t seed = 0;
    if (!(is >> stamp >> max_layers >> multistarts >> exact_threshold >>
          seed) ||
        stamp != "nuop")
        return false;
    if (max_layers != nuop.max_layers ||
        multistarts != nuop.multistarts ||
        exact_threshold != nuop.exact_threshold || seed != nuop.seed)
        return false;

    size_t count = 0;
    if (!(is >> count) || count > (1u << 20))
        return false; // reject absurd entry counts from corrupt files.

    // Parse the whole file before touching the cache: a truncated or
    // corrupt file must not leave a half-merged state behind a false
    // return.
    std::vector<
        std::pair<std::string, std::shared_ptr<GateProfile>>>
        parsed;
    parsed.reserve(count);
    for (size_t e = 0; e < count; ++e) {
        std::string k, type_name, engine;
        if (!readLenString(is, k) || !readLenString(is, type_name) ||
            !readLenString(is, engine))
            return false;
        int family = 0;
        if (!(is >> family))
            return false;
        auto profile = std::make_shared<GateProfile>();
        profile->type_name = std::move(type_name);
        profile->engine = std::move(engine);
        profile->family = static_cast<TemplateFamily>(family);
        if (!readMatrix(is, profile->unitary))
            return false;
        size_t num_fits = 0;
        if (!(is >> num_fits) || num_fits > 1024)
            return false;
        profile->fits.resize(num_fits);
        for (auto& fit : profile->fits) {
            size_t num_params = 0;
            if (!(is >> fit.layers >> fit.fd >> num_params) ||
                num_params > 4096)
                return false;
            fit.params.resize(num_params);
            for (double& v : fit.params)
                if (!(is >> v))
                    return false;
        }
        parsed.emplace_back(std::move(k), std::move(profile));
    }

    for (auto& [k, profile] : parsed) {
        Stripe& stripe = stripeFor(k);
        std::unique_lock<std::shared_mutex> lock(stripe.mutex);
        if (stripe.profiles.count(k) == 0) {
            insertLocked(stripe, k, std::move(profile));
            stripe.loaded.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return true;
}

} // namespace qiset
