#ifndef QISET_COMPILER_PROFILE_CACHE_H
#define QISET_COMPILER_PROFILE_CACHE_H

/**
 * @file
 * The decomposition profile cache shared across compilations.
 *
 * Decomposition fidelity Fd for a (target unitary, gate type, layer
 * count) triple is independent of which edge the gate runs on, so the
 * translation pass computes a *fidelity profile* per (unitary, type)
 * once and reuses it across edges, circuits, instruction sets — and,
 * via save()/load(), across process runs. Profiles are the output of
 * NuOp's BFGS multistarts, by far the most expensive part of
 * compilation, which makes this cache the compiler's main
 * amortization lever.
 *
 * The cache is thread-safe and built for contended service traffic:
 * entries live in lock stripes (16 when unbounded, 1 when bounded so
 * the capacity bound keeps exact global LRU semantics), each guarded
 * by a shared_mutex. Warm lookups — the overwhelming majority of
 * traffic once a workload's profiles exist — take only a *shared*
 * lock on one stripe, so concurrent service workers hitting the cache
 * never serialize against each other; recency and the hit/miss/
 * eviction/loaded statistics are maintained exactly via per-stripe
 * atomic counters aggregated on read. The expensive profile
 * computation runs outside any lock. Entries are handed out as
 * shared_ptr so a bounded cache can evict without invalidating
 * profiles still in use by a translation in flight.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nuop/decomposition_strategy.h"
#include "nuop/template_circuit.h"
#include "qc/matrix.h"

namespace qiset {

class NuOpDecomposer;
struct NuOpOptions;

/** Counters describing cache effectiveness (monotonic since reset). */
struct ProfileCacheStats
{
    /** get() calls answered from the map (no BFGS run). */
    uint64_t hits = 0;
    /** get() calls that computed a new profile (BFGS runs). */
    uint64_t misses = 0;
    /** Entries dropped to respect the capacity bound. */
    uint64_t evictions = 0;
    /** Entries deserialized by load(). */
    uint64_t loaded = 0;
    /** Current entry count. */
    size_t entries = 0;
};

/**
 * Per-caller hit/miss tally. A translation pass passes one of these
 * to get() so a circuit's own cache traffic can be reported even when
 * the cache is shared with concurrently-compiling circuits (whose
 * activity would pollute a before/after delta of the global stats).
 */
struct LocalCacheCounters
{
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
};

/** Thread-safe, optionally bounded, persistable profile memoization. */
class ProfileCache
{
  public:
    /**
     * @param max_entries Capacity bound; 0 (default) means unbounded.
     *        When bounded, inserting past capacity evicts the least
     *        recently used entries (eviction counter incremented).
     */
    explicit ProfileCache(size_t max_entries = 0);

    /**
     * Profile of decomposing `target` with `spec` under the given
     * decomposition strategy, computing it on first use. The key, the
     * stored representative and the fit contents are all the
     * strategy's choice (strategies embed their tag in the key, so one
     * cache safely serves mixed engines). The returned profile stays
     * valid even if the entry is later evicted. When `local` is given,
     * the call is additionally tallied there (hit or miss).
     *
     * `tally_hit=false` suppresses hit counting (global and local) —
     * used by the translator when re-fetching profiles it warmed
     * moments earlier, so "hits" measures genuine reuse rather than
     * the pipeline's own bookkeeping. Misses (profile computations)
     * are always counted.
     */
    std::shared_ptr<const GateProfile>
    get(const Matrix& target, const GateSpec& spec,
        const NuOpDecomposer& decomposer,
        const DecompositionStrategy& strategy,
        LocalCacheCounters* local = nullptr, bool tally_hit = true);

    /** Baseline overload: the "nuop" engine (pre-registry behavior). */
    std::shared_ptr<const GateProfile>
    get(const Matrix& target, const GateSpec& spec,
        const NuOpDecomposer& decomposer,
        LocalCacheCounters* local = nullptr, bool tally_hit = true);

    size_t size() const;

    /** Snapshot of the hit/miss/eviction counters. */
    ProfileCacheStats stats() const;

    /** Zero the hit/miss/eviction/loaded counters (entries stay). */
    void resetStats();

    /** Drop every entry (counters keep their values). */
    void clear();

    /**
     * Serialize every entry to `path` (plain-text format, versioned).
     * The v3 header stamps the NuOp settings the profiles were
     * computed under (layer bound, multistarts, exact-threshold
     * tolerance, seed) *and* the decomposition strategy (name +
     * whether it canonicalizes targets), so a later load() can tell
     * stale or incompatible profiles from reusable ones.
     * @return false when the file cannot be written.
     */
    bool save(const std::string& path, const NuOpOptions& nuop,
              const DecompositionStrategy& strategy =
                  nuopDecompositionStrategy()) const;

    /**
     * Merge entries from a file produced by save(). Existing keys are
     * kept (the in-memory profile wins). Loaded entries count toward
     * the capacity bound.
     *
     * The header's stamps must match: profiles computed under
     * different optimizer settings are not comparable, and profiles
     * keyed or computed by a different decomposition strategy (or
     * with different canonicalization) would silently stand in for
     * the wrong circuits. Mismatched files — including every pre-v3
     * file — are rejected wholesale and the cache is left untouched.
     * @return false when the file is missing, malformed, from an
     *         older format version, or stamped with different NuOp
     *         settings or strategy.
     */
    bool load(const std::string& path, const NuOpOptions& nuop,
              const DecompositionStrategy& strategy =
                  nuopDecompositionStrategy());

    /**
     * Raw strategy-agnostic key core of a (target, spec) pair
     * (exposed for tests; strategies prefix it with their tag).
     */
    static std::string key(const Matrix& target, const GateSpec& spec);

  private:
    struct Entry
    {
        std::shared_ptr<const GateProfile> profile;
        /**
         * Recency tick drawn from the owning stripe's clock (higher =
         * more recently used). Atomic so hits can refresh it under a
         * shared lock.
         */
        std::atomic<uint64_t> last_used{0};
    };

    /**
     * One lock stripe: a shard of the key space with its own reader/
     * writer lock, recency clock and exact statistics counters. The
     * map is node-based, so concurrent shared-lock readers can copy
     * entry shared_ptrs while other stripes mutate freely.
     */
    struct Stripe
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<std::string, Entry> profiles;
        /** Monotonic recency clock; ticks order entries for LRU. */
        std::atomic<uint64_t> clock{0};
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        std::atomic<uint64_t> evictions{0};
        std::atomic<uint64_t> loaded{0};
    };

    /** Stripe count when unbounded; bounded caches use one stripe so
     *  the capacity bound evicts in exact global-LRU order. */
    static constexpr size_t kUnboundedStripes = 16;

    Stripe& stripeFor(const std::string& k);
    const Stripe& stripeFor(const std::string& k) const;

    /**
     * Insert under an exclusive lock on `stripe`, evicting least-
     * recently-used entries past capacity (lowest recency tick first;
     * the entry just inserted holds the freshest tick and is never
     * the victim).
     */
    std::shared_ptr<const GateProfile>
    insertLocked(Stripe& stripe, const std::string& k,
                 std::shared_ptr<const GateProfile> profile);

    size_t max_entries_ = 0;
    /** Fixed at construction; never resized (stripes cannot move). */
    std::vector<Stripe> stripes_;
};

} // namespace qiset

#endif // QISET_COMPILER_PROFILE_CACHE_H
