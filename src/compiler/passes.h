#ifndef QISET_COMPILER_PASSES_H
#define QISET_COMPILER_PASSES_H

/**
 * @file
 * The built-in compiler passes (the boxes of the paper's Fig. 1),
 * exposed as factories so pipelines can be assembled, reordered and
 * ablated without depending on the concrete classes.
 *
 * Pass names (stable identifiers for PassManager lookup):
 *   "mapping", "routing", "consolidation", "translation",
 *   "crosstalk", "noise-annotation".
 */

#include <memory>

#include "compiler/pass.h"

namespace qiset {

/** Noise-aware placement: fills context.physical. */
std::unique_ptr<Pass> makeMappingPass();

/** SWAP routing on the induced coupling subgraph. */
std::unique_ptr<Pass> makeRoutingPass();

/** Fuse same-pair runs into SU(4) blocks before NuOp. */
std::unique_ptr<Pass> makeConsolidationPass();

/** NuOp translation with per-edge noise adaptivity (Eq. 2). */
std::unique_ptr<Pass> makeTranslationPass();

/** Inflate error rates of simultaneous adjacent 2Q gates. */
std::unique_ptr<Pass> makeCrosstalkPass(double inflation);

/** Stamp the compressed-register noise model. */
std::unique_ptr<Pass> makeNoiseAnnotationPass();

} // namespace qiset

#endif // QISET_COMPILER_PASSES_H
