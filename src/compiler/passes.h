#ifndef QISET_COMPILER_PASSES_H
#define QISET_COMPILER_PASSES_H

/**
 * @file
 * The built-in compiler passes (the boxes of the paper's Fig. 1),
 * exposed as factories so pipelines can be assembled, reordered and
 * ablated without depending on the concrete classes.
 *
 * Pass names (stable identifiers for PassManager lookup):
 *   "mapping", "routing", "consolidation", "translation",
 *   "scheduling", "crosstalk", "noise-annotation".
 */

#include <memory>
#include <string>

#include "compiler/pass.h"

namespace qiset {

/** Noise-aware placement: fills context.physical. */
std::unique_ptr<Pass> makeMappingPass();

/**
 * SWAP routing on the induced coupling subgraph, delegating to the
 * named RoutingStrategy (routing_strategy.h); invalidates the shared
 * schedule, since SWAP insertion rewrites the circuit.
 */
std::unique_ptr<Pass> makeRoutingPass(const std::string& strategy = "greedy");

/** Fuse same-pair runs into SU(4) blocks before NuOp. */
std::unique_ptr<Pass> makeConsolidationPass();

/** NuOp translation with per-edge noise adaptivity (Eq. 2). */
std::unique_ptr<Pass> makeTranslationPass();

/**
 * Build the Schedule IR of the working circuit onto the context
 * (ASAP/ALAP moments, 2Q frontier, critical-path duration) for the
 * downstream passes to share.
 */
std::unique_ptr<Pass> makeSchedulingPass();

/** Inflate error rates of simultaneous adjacent 2Q gates, pairing
 *  them up through the context's shared schedule. */
std::unique_ptr<Pass> makeCrosstalkPass(double inflation);

/** Stamp the compressed-register noise model. */
std::unique_ptr<Pass> makeNoiseAnnotationPass();

} // namespace qiset

#endif // QISET_COMPILER_PASSES_H
