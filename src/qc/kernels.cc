#include "qc/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qiset {
namespace kernels {

// ------------------------------------------------------ scalar tier
//
// The reference semantics every SIMD tier must reproduce bit for bit.
// These loops are verbatim ports of the historical Matrix methods;
// this translation unit builds with -ffp-contract=off so no FMA
// contraction can sneak in on targets where the compiler would
// otherwise fuse (the SIMD tiers use explicit mul/add intrinsics for
// the same reason).

namespace {

template <size_t N>
void
scalarMul(cplx* out, const cplx* a, const cplx* b)
{
    for (size_t i = 0; i < N * N; ++i)
        out[i] = cplx(0.0, 0.0);
    for (size_t i = 0; i < N; ++i) {
        for (size_t k = 0; k < N; ++k) {
            cplx aik = a[i * N + k];
            if (aik == cplx(0.0, 0.0))
                continue;
            for (size_t j = 0; j < N; ++j)
                out[i * N + j] += aik * b[k * N + j];
        }
    }
}

void
scalarMul4x4(cplx* out, const cplx* a, const cplx* b)
{
    scalarMul<4>(out, a, b);
}

void
scalarMul2x2(cplx* out, const cplx* a, const cplx* b)
{
    scalarMul<2>(out, a, b);
}

void
scalarDagger(cplx* out, const cplx* in, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            out[j * n + i] = std::conj(in[i * n + j]);
}

void
scalarKron2x2(cplx* out, const cplx* a, const cplx* b)
{
    for (size_t i = 0; i < 16; ++i)
        out[i] = cplx(0.0, 0.0);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j) {
            cplx aij = a[i * 2 + j];
            if (aij == cplx(0.0, 0.0))
                continue;
            for (size_t k = 0; k < 2; ++k)
                for (size_t l = 0; l < 2; ++l)
                    out[(i * 2 + k) * 4 + (j * 2 + l)] =
                        aij * b[k * 2 + l];
        }
}

cplx
scalarHsDot(const cplx* a, const cplx* b, size_t count)
{
    cplx sum(0.0, 0.0);
    for (size_t i = 0; i < count; ++i)
        sum += std::conj(a[i]) * b[i];
    return sum;
}

const KernelOps kScalarOps = {
    "scalar",      scalarMul4x4, scalarMul2x2,
    scalarDagger, scalarKron2x2, scalarHsDot,
};

} // namespace

// ------------------------------------------------------- dispatch
//
// The SIMD tiers live in their own translation units (compiled with
// the ISA flags they need); each exports a factory that returns its
// table when the host can run it, nullptr otherwise.

namespace detail {
const KernelOps* avx2Ops(); // kernels_avx2.cc
const KernelOps* neonOps(); // kernels_neon.cc
} // namespace detail

namespace {

/** Table of a named tier if runnable on this host, else nullptr. */
const KernelOps*
runnableOps(const char* name)
{
    if (!name)
        return nullptr;
    if (std::strcmp(name, "scalar") == 0)
        return &kScalarOps;
    if (std::strcmp(name, "avx2") == 0)
        return detail::avx2Ops();
    if (std::strcmp(name, "neon") == 0)
        return detail::neonOps();
    return nullptr;
}

const KernelOps*
bestNativeOps()
{
    if (const KernelOps* ops = detail::avx2Ops())
        return ops;
    if (const KernelOps* ops = detail::neonOps())
        return ops;
    return &kScalarOps;
}

std::atomic<const KernelOps*> g_active{nullptr};

} // namespace

const char*
resolveTier(const char* tier_env, const char* force_scalar_env)
{
    if (force_scalar_env && force_scalar_env[0] != '\0' &&
        std::strcmp(force_scalar_env, "0") != 0)
        return "scalar";
    if (const KernelOps* ops = runnableOps(tier_env))
        return ops->tier;
    return bestNativeOps()->tier;
}

const KernelOps&
active()
{
    const KernelOps* ops = g_active.load(std::memory_order_acquire);
    if (!ops) {
        // Benign race: concurrent first calls resolve to the same
        // table (the environment is fixed for the process lifetime).
        ops = runnableOps(resolveTier(
            std::getenv("QISET_KERNEL_TIER"),
            std::getenv("QISET_FORCE_SCALAR")));
        g_active.store(ops, std::memory_order_release);
    }
    return *ops;
}

const char*
tierName()
{
    return active().tier;
}

bool
setTier(const char* name)
{
    const KernelOps* ops = runnableOps(name);
    if (!ops)
        return false;
    active(); // ensure env resolution happened first
    g_active.store(ops, std::memory_order_release);
    return true;
}

const KernelOps*
opsForTier(const char* name)
{
    return runnableOps(name);
}

std::vector<const char*>
runnableTiers()
{
    std::vector<const char*> tiers;
    tiers.push_back("scalar");
    if (detail::avx2Ops())
        tiers.push_back("avx2");
    if (detail::neonOps())
        tiers.push_back("neon");
    return tiers;
}

} // namespace kernels
} // namespace qiset
