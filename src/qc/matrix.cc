#include "qc/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "qc/kernels.h"

namespace qiset {

namespace {

/** Dense multiply shared by operator* and multiplyInto: dispatches the
 *  2x2/4x4 hot shapes to the kernel layer (which zero-fills and
 *  reproduces this exact loop bit for bit) and keeps the generic loop
 *  for everything else. `out` must not alias `a` or `b` and must
 *  already have shape ar x bc. */
void
denseMultiply(cplx* out, const cplx* a, const cplx* b, size_t ar,
              size_t ac, size_t bc)
{
    if (ar == 4 && ac == 4 && bc == 4) {
        kernels::active().mul4x4(out, a, b);
        return;
    }
    if (ar == 2 && ac == 2 && bc == 2) {
        kernels::active().mul2x2(out, a, b);
        return;
    }
    std::fill(out, out + ar * bc, cplx(0.0, 0.0));
    for (size_t i = 0; i < ar; ++i) {
        for (size_t k = 0; k < ac; ++k) {
            cplx aik = a[i * ac + k];
            if (aik == cplx(0.0, 0.0))
                continue;
            for (size_t j = 0; j < bc; ++j)
                out[i * bc + j] += aik * b[k * bc + j];
        }
    }
}

} // namespace

void
Matrix::resizeStorage(size_t rows, size_t cols)
{
    size_t count = rows * cols;
    if (ptr_ != inline_)
        delete[] ptr_;
    ptr_ = count <= kInlineElems ? inline_ : new cplx[count];
    rows_ = rows;
    cols_ = cols;
}

Matrix::Matrix(size_t rows, size_t cols)
{
    resizeStorage(rows, cols);
    std::fill(ptr_, ptr_ + size(), cplx(0.0, 0.0));
}

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> rows)
{
    size_t r = rows.size();
    size_t c = r ? rows.begin()->size() : 0;
    resizeStorage(r, c);
    cplx* out = ptr_;
    for (const auto& row : rows) {
        QISET_REQUIRE(row.size() == c, "ragged initializer list");
        for (const auto& value : row)
            *out++ = value;
    }
}

Matrix::Matrix(const Matrix& other)
{
    resizeStorage(other.rows_, other.cols_);
    std::copy(other.ptr_, other.ptr_ + size(), ptr_);
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_)
{
    if (other.ptr_ == other.inline_) {
        // Inline storage cannot move; copy the handful of elements.
        ptr_ = inline_;
        std::copy(other.ptr_, other.ptr_ + size(), ptr_);
    } else {
        ptr_ = other.ptr_;
        other.ptr_ = other.inline_;
    }
    other.rows_ = 0;
    other.cols_ = 0;
}

Matrix&
Matrix::operator=(const Matrix& other)
{
    if (this == &other)
        return *this;
    if (size() != other.size())
        resizeStorage(other.rows_, other.cols_);
    rows_ = other.rows_;
    cols_ = other.cols_;
    std::copy(other.ptr_, other.ptr_ + size(), ptr_);
    return *this;
}

Matrix&
Matrix::operator=(Matrix&& other) noexcept
{
    if (this == &other)
        return *this;
    if (other.ptr_ == other.inline_) {
        rows_ = other.rows_;
        cols_ = other.cols_;
        if (ptr_ != inline_) {
            delete[] ptr_;
            ptr_ = inline_;
        }
        std::copy(other.ptr_, other.ptr_ + size(), ptr_);
    } else {
        if (ptr_ != inline_)
            delete[] ptr_;
        ptr_ = other.ptr_;
        rows_ = other.rows_;
        cols_ = other.cols_;
        other.ptr_ = other.inline_;
    }
    other.rows_ = 0;
    other.cols_ = 0;
    return *this;
}

Matrix::~Matrix()
{
    if (ptr_ != inline_)
        delete[] ptr_;
}

void
Matrix::multiplyInto(Matrix& out, const Matrix& a, const Matrix& b)
{
    QISET_REQUIRE(a.cols_ == b.rows_, "shape mismatch in multiplyInto: ",
                  a.rows_, "x", a.cols_, " times ", b.rows_, "x",
                  b.cols_);
    QISET_REQUIRE(&out != &a && &out != &b,
                  "multiplyInto output must not alias an input");
    if (out.rows_ != a.rows_ || out.cols_ != b.cols_)
        out.resizeStorage(a.rows_, b.cols_);
    denseMultiply(out.ptr_, a.ptr_, b.ptr_, a.rows_, a.cols_, b.cols_);
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::operator+(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in +");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < size(); ++i)
        out.ptr_[i] = ptr_[i] + other.ptr_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in -");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < size(); ++i)
        out.ptr_[i] = ptr_[i] - other.ptr_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix& other) const
{
    QISET_REQUIRE(cols_ == other.rows_, "shape mismatch in *: ",
                  rows_, "x", cols_, " times ", other.rows_, "x",
                  other.cols_);
    Matrix out;
    out.resizeStorage(rows_, other.cols_);
    denseMultiply(out.ptr_, ptr_, other.ptr_, rows_, cols_,
                  other.cols_);
    return out;
}

Matrix
Matrix::operator*(cplx scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix&
Matrix::operator+=(const Matrix& other)
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in +=");
    for (size_t i = 0; i < size(); ++i)
        ptr_[i] += other.ptr_[i];
    return *this;
}

Matrix&
Matrix::operator*=(cplx scalar)
{
    for (size_t i = 0; i < size(); ++i)
        ptr_[i] *= scalar;
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix out;
    out.resizeStorage(cols_, rows_);
    if (rows_ == cols_ && (rows_ == 2 || rows_ == 4)) {
        kernels::active().dagger(out.ptr_, ptr_, rows_);
        return out;
    }
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < size(); ++i)
        out.ptr_[i] = std::conj(ptr_[i]);
    return out;
}

cplx
Matrix::trace() const
{
    QISET_REQUIRE(rows_ == cols_, "trace of non-square matrix");
    cplx sum(0.0, 0.0);
    for (size_t i = 0; i < rows_; ++i)
        sum += (*this)(i, i);
    return sum;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (size_t i = 0; i < size(); ++i)
        sum += std::norm(ptr_[i]);
    return std::sqrt(sum);
}

double
Matrix::maxAbsDiff(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in maxAbsDiff");
    double max_diff = 0.0;
    for (size_t i = 0; i < size(); ++i)
        max_diff = std::max(max_diff, std::abs(ptr_[i] - other.ptr_[i]));
    return max_diff;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    Matrix product = (*this) * dagger();
    return product.maxAbsDiff(identity(rows_)) < tol;
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return maxAbsDiff(dagger()) < tol;
}

Matrix
Matrix::kron(const Matrix& other) const
{
    Matrix out;
    kronInto(out, *this, other);
    return out;
}

void
Matrix::kronInto(Matrix& out, const Matrix& a, const Matrix& b)
{
    QISET_REQUIRE(&out != &a && &out != &b,
                  "kronInto output must not alias an input");
    size_t out_rows = a.rows_ * b.rows_;
    size_t out_cols = a.cols_ * b.cols_;
    if (out.rows_ != out_rows || out.cols_ != out_cols)
        out.resizeStorage(out_rows, out_cols);
    if (a.rows_ == 2 && a.cols_ == 2 && b.rows_ == 2 && b.cols_ == 2) {
        kernels::active().kron2x2(out.ptr_, a.ptr_, b.ptr_);
        return;
    }
    std::fill(out.ptr_, out.ptr_ + out.size(), cplx(0.0, 0.0));
    for (size_t i = 0; i < a.rows_; ++i)
        for (size_t j = 0; j < a.cols_; ++j) {
            cplx aij = a(i, j);
            if (aij == cplx(0.0, 0.0))
                continue;
            for (size_t k = 0; k < b.rows_; ++k)
                for (size_t l = 0; l < b.cols_; ++l)
                    out(i * b.rows_ + k, j * b.cols_ + l) =
                        aij * b(k, l);
        }
}

std::string
Matrix::toString(int precision) const
{
    std::string out;
    char buf[96];
    for (size_t i = 0; i < rows_; ++i) {
        out += "[ ";
        for (size_t j = 0; j < cols_; ++j) {
            const cplx& v = (*this)(i, j);
            std::snprintf(buf, sizeof(buf), "%+.*f%+.*fi  ", precision,
                          v.real(), precision, v.imag());
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

std::string
quantizedForm(const Matrix& m, int decimals)
{
    std::string out;
    out.reserve(m.rows() * m.cols() * 24);
    appendQuantizedForm(out, m, decimals);
    return out;
}

void
appendQuantizedForm(std::string& out, const Matrix& m, int decimals)
{
    char buf[64];
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j) {
            const cplx& v = m(i, j);
            int len = std::snprintf(buf, sizeof(buf), "%.*f,%.*f;",
                                    decimals, v.real(), decimals,
                                    v.imag());
            out.append(buf, static_cast<size_t>(len));
        }
}

cplx
hilbertSchmidt(const Matrix& a, const Matrix& b)
{
    QISET_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in hilbertSchmidt");
    // Row-major linear order == the historical (i, j) double loop, so
    // the kernel's strictly-serial reduction matches it bit for bit.
    return kernels::active().hsDot(a.data(), b.data(),
                                   a.rows() * a.cols());
}

double
traceFidelity(const Matrix& a, const Matrix& b)
{
    return std::abs(hilbertSchmidt(a, b)) / static_cast<double>(a.rows());
}

} // namespace qiset
