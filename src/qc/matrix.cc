#include "qc/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace qiset {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx(0.0, 0.0))
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        QISET_REQUIRE(row.size() == cols_, "ragged initializer list");
        for (const auto& value : row)
            data_.push_back(value);
    }
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::operator+(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in +");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in -");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix& other) const
{
    QISET_REQUIRE(cols_ == other.rows_, "shape mismatch in *: ",
                  rows_, "x", cols_, " times ", other.rows_, "x",
                  other.cols_);
    Matrix out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            cplx aik = (*this)(i, k);
            if (aik == cplx(0.0, 0.0))
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out(i, j) += aik * other(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator*(cplx scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix&
Matrix::operator+=(const Matrix& other)
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in +=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix&
Matrix::operator*=(cplx scalar)
{
    for (auto& value : data_)
        value *= scalar;
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = std::conj(data_[i]);
    return out;
}

cplx
Matrix::trace() const
{
    QISET_REQUIRE(rows_ == cols_, "trace of non-square matrix");
    cplx sum(0.0, 0.0);
    for (size_t i = 0; i < rows_; ++i)
        sum += (*this)(i, i);
    return sum;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const auto& value : data_)
        sum += std::norm(value);
    return std::sqrt(sum);
}

double
Matrix::maxAbsDiff(const Matrix& other) const
{
    QISET_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch in maxAbsDiff");
    double max_diff = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
    return max_diff;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    Matrix product = (*this) * dagger();
    return product.maxAbsDiff(identity(rows_)) < tol;
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return maxAbsDiff(dagger()) < tol;
}

Matrix
Matrix::kron(const Matrix& other) const
{
    Matrix out(rows_ * other.rows_, cols_ * other.cols_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j) {
            cplx aij = (*this)(i, j);
            if (aij == cplx(0.0, 0.0))
                continue;
            for (size_t k = 0; k < other.rows_; ++k)
                for (size_t l = 0; l < other.cols_; ++l)
                    out(i * other.rows_ + k, j * other.cols_ + l) =
                        aij * other(k, l);
        }
    return out;
}

std::string
Matrix::toString(int precision) const
{
    std::string out;
    char buf[96];
    for (size_t i = 0; i < rows_; ++i) {
        out += "[ ";
        for (size_t j = 0; j < cols_; ++j) {
            const cplx& v = (*this)(i, j);
            std::snprintf(buf, sizeof(buf), "%+.*f%+.*fi  ", precision,
                          v.real(), precision, v.imag());
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

std::string
quantizedForm(const Matrix& m, int decimals)
{
    std::string out;
    out.reserve(m.rows() * m.cols() * 24);
    char buf[64];
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j) {
            const cplx& v = m(i, j);
            int len = std::snprintf(buf, sizeof(buf), "%.*f,%.*f;",
                                    decimals, v.real(), decimals,
                                    v.imag());
            out.append(buf, static_cast<size_t>(len));
        }
    return out;
}

cplx
hilbertSchmidt(const Matrix& a, const Matrix& b)
{
    QISET_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in hilbertSchmidt");
    cplx sum(0.0, 0.0);
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            sum += std::conj(a(i, j)) * b(i, j);
    return sum;
}

double
traceFidelity(const Matrix& a, const Matrix& b)
{
    return std::abs(hilbertSchmidt(a, b)) / static_cast<double>(a.rows());
}

} // namespace qiset
