#ifndef QISET_QC_GATES_H
#define QISET_QC_GATES_H

/**
 * @file
 * The gate library: unitaries for the single-qubit rotations and the
 * two-qubit gate families studied in the paper (Table I).
 *
 * Conventions follow the paper exactly:
 *  - U3(alpha, beta, lambda) is the general single-qubit rotation of
 *    the paper's footnote 1.
 *  - fSim(theta, phi) is Google's gate family (Table I):
 *        diag-block [[cos t, -i sin t], [-i sin t, cos t]] on {01, 10}
 *        and e^{-i phi} on {11}.
 *  - XY(theta) is Rigetti's family; XY(theta) == fSim(theta/2, 0) up to
 *    single-qubit rotations.
 * Qubit ordering: basis {|00>, |01>, |10>, |11>} with the first qubit
 * as the most significant bit.
 */

#include <vector>

#include "qc/matrix.h"

namespace qiset {
namespace gates {

/** Global constant pi. */
inline constexpr double kPi = 3.14159265358979323846;

// ---------------------------------------------------------------------
// Single-qubit gates.
// ---------------------------------------------------------------------

/** Arbitrary single-qubit rotation (paper footnote 1). */
Matrix u3(double alpha, double beta, double lambda);

/**
 * u3 into a caller-owned matrix (reshaped to 2x2 when needed) with the
 * exact arithmetic of u3() — the allocation-free building block of the
 * NuOp template's objective evaluation.
 */
void u3Into(Matrix& out, double alpha, double beta, double lambda);

Matrix identity1q();
Matrix pauliX();
Matrix pauliY();
Matrix pauliZ();
Matrix hadamard();
Matrix sGate();
Matrix tGate();

/** Rotation exp(-i theta X / 2). */
Matrix rx(double theta);
/** Rotation exp(-i theta Y / 2). */
Matrix ry(double theta);
/** Rotation exp(-i theta Z / 2). */
Matrix rz(double theta);

// ---------------------------------------------------------------------
// Two-qubit gate families (Table I).
// ---------------------------------------------------------------------

/** Google's fSim(theta, phi) family. */
Matrix fsim(double theta, double phi);

/** Rigetti's XY(theta) family (XY(pi) == iSWAP up to 1Q rotations). */
Matrix xy(double theta);

/** Controlled-phase family CZ(phi) == fSim(0, phi). */
Matrix cphase(double phi);

/** Fixed Controlled-Z gate (== fSim(0, pi)). */
Matrix cz();

/** CNOT with the first qubit as control. */
Matrix cnot();

/** iSWAP == fSim(pi/2, 0). */
Matrix iswap();

/** sqrt(iSWAP) == fSim(pi/4, 0). */
Matrix sqrtIswap();

/** Google Sycamore gate SYC == fSim(pi/2, pi/6). */
Matrix sycamore();

/** The SWAP gate. */
Matrix swap();

// ---------------------------------------------------------------------
// Application interaction unitaries (Section VI workloads).
// ---------------------------------------------------------------------

/** Two-qubit Pauli interaction exp(-i beta Z (x) Z), used by QAOA/FH. */
Matrix zz(double beta);

/**
 * Hopping interaction exp(-i theta (XX + YY) / 2), used by the
 * Fermi-Hubbard workload. Numerically equals fsim(theta, 0).
 */
Matrix xxPlusYy(double theta);

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

/** Tensor product of two single-qubit gates: a on qubit 0, b on qubit 1. */
Matrix kron2(const Matrix& a, const Matrix& b);

/**
 * U3 angles of an arbitrary 2x2 unitary: returns {alpha, beta, lambda}
 * with u3(alpha, beta, lambda) == u up to a global phase. Inverse of
 * u3() modulo phase; the analytic KAK engine uses it to emit its local
 * factors in the same parameter encoding NuOp templates use.
 */
std::vector<double> u3Angles(const Matrix& u);

} // namespace gates
} // namespace qiset

#endif // QISET_QC_GATES_H
