#ifndef QISET_QC_LINALG_H
#define QISET_QC_LINALG_H

/**
 * @file
 * Numerical linear algebra used by the gate decomposition machinery:
 * Haar-random unitaries (QV workload), QR factorization, a Jacobi
 * eigensolver for real symmetric matrices, and simultaneous
 * diagonalization of commuting symmetric pairs (KAK decomposition).
 */

#include <vector>

#include "common/rng.h"
#include "qc/matrix.h"

namespace qiset {

/**
 * QR factorization via modified Gram-Schmidt.
 * @param a Input matrix (square, full rank assumed).
 * @param q Output orthonormal matrix.
 * @param r Output upper-triangular matrix with a == q * r.
 */
void qrDecompose(const Matrix& a, Matrix& q, Matrix& r);

/**
 * Haar-distributed random unitary of dimension n.
 *
 * Samples a complex Ginibre matrix, QR-factorizes it and fixes the
 * phases of R's diagonal — the standard construction for Haar measure.
 * Quantum Volume circuits draw their SU(4) blocks from this.
 */
Matrix haarRandomUnitary(size_t n, Rng& rng);

/** Result of a real-symmetric eigendecomposition A = V diag(w) V^T. */
struct SymmetricEigen
{
    /** Eigenvalues, in the order matching the columns of vectors. */
    std::vector<double> values;
    /** Orthogonal matrix whose columns are eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a real symmetric matrix (stored in a complex
 * Matrix with zero imaginary parts) via cyclic Jacobi rotations.
 */
SymmetricEigen jacobiEigenSymmetric(const Matrix& a, double tol = 1e-13,
                                    int max_sweeps = 100);

/**
 * Simultaneously diagonalize two commuting real symmetric matrices.
 *
 * Diagonalizes a first, then re-diagonalizes b inside each (near-)
 * degenerate eigenspace of a. This is the workhorse for decomposing
 * the complex symmetric matrix M = A + iB that appears in the
 * magic-basis (KAK) construction.
 *
 * @return Orthogonal V with V^T a V and V^T b V both diagonal.
 */
Matrix simultaneousDiagonalize(const Matrix& a, const Matrix& b,
                               double degeneracy_tol = 1e-9);

/** Determinant of a small complex matrix via LU with partial pivoting. */
cplx determinant(const Matrix& a);

} // namespace qiset

#endif // QISET_QC_LINALG_H
