#ifndef QISET_QC_MATRIX_H
#define QISET_QC_MATRIX_H

/**
 * @file
 * Dense complex matrices.
 *
 * QISET works almost exclusively with 2x2 and 4x4 unitaries (quantum
 * gates) plus 2^n state vectors, so a simple row-major dense matrix
 * with value semantics is the right tool; no sparse machinery needed.
 *
 * Storage uses a small-buffer optimization: matrices of up to 16
 * elements (every 1Q/2Q gate, every KAK local factor — the compile hot
 * path's entire matrix traffic) live inline in the Matrix object and
 * never touch the heap; larger matrices (full register unitaries,
 * density matrices) fall back to a heap allocation. Consequence for
 * code holding data(): the pointer aims into the object itself for
 * small matrices, so moving or copying the Matrix does NOT transfer
 * pointer validity the way a moved std::vector buffer would — re-fetch
 * data() after any move/copy/resize.
 */

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace qiset {

/** Complex scalar type used throughout QISET. */
using cplx = std::complex<double>;

/** Dense row-major complex matrix with value semantics (SBO <= 16). */
class Matrix
{
  public:
    /** Elements held inline without a heap allocation (covers 4x4). */
    static constexpr size_t kInlineElems = 16;

    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols);

    /** Build from nested initializer lists (row major). */
    Matrix(std::initializer_list<std::initializer_list<cplx>> rows);

    Matrix(const Matrix& other);
    Matrix(Matrix&& other) noexcept;
    Matrix& operator=(const Matrix& other);
    Matrix& operator=(Matrix&& other) noexcept;
    ~Matrix();

    /** The n x n identity. */
    static Matrix identity(size_t n);

    /** n x n matrix of zeros. */
    static Matrix zeros(size_t n) { return Matrix(n, n); }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Element count rows() * cols(). */
    size_t size() const { return rows_ * cols_; }

    /** True when the elements live inline (no heap allocation). */
    bool isInline() const { return ptr_ == inline_; }

    /** Element access (row, col), bounds unchecked in release builds. */
    cplx& operator()(size_t r, size_t c) { return ptr_[r * cols_ + c]; }
    const cplx&
    operator()(size_t r, size_t c) const
    {
        return ptr_[r * cols_ + c];
    }

    /**
     * Raw row-major storage. For matrices of <= kInlineElems elements
     * this points into the Matrix object itself (see the SBO caveat in
     * the file comment); never retain it across a move/copy/resize.
     */
    const cplx* data() const { return ptr_; }

    Matrix operator+(const Matrix& other) const;
    Matrix operator-(const Matrix& other) const;
    Matrix operator*(const Matrix& other) const;
    Matrix operator*(cplx scalar) const;
    Matrix& operator+=(const Matrix& other);
    Matrix& operator*=(cplx scalar);

    /**
     * out = a * b without materializing a temporary: out's storage is
     * reshaped (reusing its buffer when the shape already matches) and
     * overwritten. `out` must not alias `a` or `b`. The hot-loop
     * companion of operator* for consolidation/template products.
     */
    static void multiplyInto(Matrix& out, const Matrix& a,
                             const Matrix& b);

    /**
     * out = a ⊗ b without materializing a temporary (same reshape and
     * aliasing rules as multiplyInto). 2x2 ⊗ 2x2 — the template
     * circuit's u3-pair construction — takes the kernel fast path.
     */
    static void kronInto(Matrix& out, const Matrix& a, const Matrix& b);

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Transpose (no conjugation). */
    Matrix transpose() const;

    /** Elementwise complex conjugate. */
    Matrix conjugate() const;

    /** Sum of diagonal elements. */
    cplx trace() const;

    /** Frobenius norm sqrt(sum |a_ij|^2). */
    double frobeniusNorm() const;

    /** Max elementwise |a_ij - b_ij| between two matrices. */
    double maxAbsDiff(const Matrix& other) const;

    /** True if U * U^dagger == I within tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** True if A == A^dagger within tol. */
    bool isHermitian(double tol = 1e-9) const;

    /** Kronecker product (this ⊗ other). */
    Matrix kron(const Matrix& other) const;

    /** Multi-line human-readable rendering (for examples/debugging). */
    std::string toString(int precision = 3) const;

  private:
    /**
     * Point ptr_ at storage for rows*cols elements — the inline buffer
     * when it fits, a fresh heap block otherwise. Frees any previous
     * heap block; elements are left uninitialized.
     */
    void resizeStorage(size_t rows, size_t cols);

    size_t rows_ = 0;
    size_t cols_ = 0;
    /** Aims at inline_ (SBO) or a heap block of size() elements. */
    cplx* ptr_ = inline_;
    cplx inline_[kInlineElems];
};

/**
 * Entry-wise fixed-point rendering "re,im;re,im;..." with the given
 * decimal precision. This is the canonical quantized form of a
 * matrix: the decomposition profile cache keys on it and the NuOp
 * multistart seeding hashes it, so "equal up to rounding" means the
 * same thing in both places (a prerequisite for bit-identical
 * parallel and serial compilation).
 */
std::string quantizedForm(const Matrix& m, int decimals = 9);

/**
 * Append quantizedForm(m, decimals) to `out` without constructing a
 * temporary string — the allocation-free building block the profile
 * cache uses to assemble lookup keys in a reused buffer.
 */
void appendQuantizedForm(std::string& out, const Matrix& m,
                         int decimals = 9);

/** Hilbert-Schmidt inner product Tr(A^dagger B). */
cplx hilbertSchmidt(const Matrix& a, const Matrix& b);

/**
 * Phase-invariant unitary overlap |Tr(A^dagger B)| / dim.
 * Equals 1 iff A == B up to a global phase; this is the decomposition
 * fidelity F_d of Eq. (1) in the paper.
 */
double traceFidelity(const Matrix& a, const Matrix& b);

} // namespace qiset

#endif // QISET_QC_MATRIX_H
