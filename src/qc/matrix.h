#ifndef QISET_QC_MATRIX_H
#define QISET_QC_MATRIX_H

/**
 * @file
 * Dense complex matrices.
 *
 * QISET works almost exclusively with 2x2 and 4x4 unitaries (quantum
 * gates) plus 2^n state vectors, so a simple row-major dense matrix
 * with value semantics is the right tool; no sparse machinery needed.
 */

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qiset {

/** Complex scalar type used throughout QISET. */
using cplx = std::complex<double>;

/** Dense row-major complex matrix with value semantics. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols);

    /** Build from nested initializer lists (row major). */
    Matrix(std::initializer_list<std::initializer_list<cplx>> rows);

    /** The n x n identity. */
    static Matrix identity(size_t n);

    /** n x n matrix of zeros. */
    static Matrix zeros(size_t n) { return Matrix(n, n); }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Element access (row, col), bounds unchecked in release builds. */
    cplx& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const cplx&
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw row-major storage. */
    const std::vector<cplx>& data() const { return data_; }

    Matrix operator+(const Matrix& other) const;
    Matrix operator-(const Matrix& other) const;
    Matrix operator*(const Matrix& other) const;
    Matrix operator*(cplx scalar) const;
    Matrix& operator+=(const Matrix& other);
    Matrix& operator*=(cplx scalar);

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Transpose (no conjugation). */
    Matrix transpose() const;

    /** Elementwise complex conjugate. */
    Matrix conjugate() const;

    /** Sum of diagonal elements. */
    cplx trace() const;

    /** Frobenius norm sqrt(sum |a_ij|^2). */
    double frobeniusNorm() const;

    /** Max elementwise |a_ij - b_ij| between two matrices. */
    double maxAbsDiff(const Matrix& other) const;

    /** True if U * U^dagger == I within tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** True if A == A^dagger within tol. */
    bool isHermitian(double tol = 1e-9) const;

    /** Kronecker product (this ⊗ other). */
    Matrix kron(const Matrix& other) const;

    /** Multi-line human-readable rendering (for examples/debugging). */
    std::string toString(int precision = 3) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<cplx> data_;
};

/**
 * Entry-wise fixed-point rendering "re,im;re,im;..." with the given
 * decimal precision. This is the canonical quantized form of a
 * matrix: the decomposition profile cache keys on it and the NuOp
 * multistart seeding hashes it, so "equal up to rounding" means the
 * same thing in both places (a prerequisite for bit-identical
 * parallel and serial compilation).
 */
std::string quantizedForm(const Matrix& m, int decimals = 9);

/** Hilbert-Schmidt inner product Tr(A^dagger B). */
cplx hilbertSchmidt(const Matrix& a, const Matrix& b);

/**
 * Phase-invariant unitary overlap |Tr(A^dagger B)| / dim.
 * Equals 1 iff A == B up to a global phase; this is the decomposition
 * fidelity F_d of Eq. (1) in the paper.
 */
double traceFidelity(const Matrix& a, const Matrix& b);

} // namespace qiset

#endif // QISET_QC_MATRIX_H
