#ifndef QISET_QC_KERNELS_H
#define QISET_QC_KERNELS_H

/**
 * @file
 * Runtime-dispatched SIMD microkernels for the compile hot path.
 *
 * The NuOp BFGS multistarts, KAK magic-basis transforms, consolidation
 * ping-pong and Circuit::unitary all reduce to a handful of dense
 * complex-matrix primitives on 2x2/4x4 operands. This layer provides
 * those primitives as raw row-major kernels behind one dispatch table,
 * selected once at startup:
 *
 *   - AVX2 on x86-64 when the CPU supports it,
 *   - NEON on aarch64,
 *   - an always-correct scalar fallback everywhere else.
 *
 * BIT-IDENTITY CONTRACT: every tier performs exactly the same IEEE-754
 * operations in exactly the same order as the scalar reference — plain
 * mul/add/sub (no FMA contraction; the kernel sources build with
 * -ffp-contract=off), identical per-element accumulation order, and
 * the same structural-zero skips as the historical Matrix loops. A
 * matrix product, Kronecker product or trace overlap therefore yields
 * the same bits on every tier, which is what keeps the profile cache
 * keys, NuOp multistart seeds and golden IR hashes invariant across
 * hosts and lets the regression gate compare the tiers directly. The
 * SIMD speedup comes from width (4 doubles per instruction) and from
 * eliminating branches and temporaries, never from reassociation.
 *
 * Dispatch can be pinned for benchmarking and tests:
 *   - env QISET_KERNEL_TIER=scalar|avx2|neon (read at first use), or
 *     QISET_FORCE_SCALAR=1 as a shorthand for the scalar tier;
 *   - kernels::setTier("scalar") at runtime (the kernel-equivalence
 *     suite and bench_hotpath's scalar-baseline leg use this).
 */

#include <cstddef>
#include <vector>

#include "qc/matrix.h"

namespace qiset {
namespace kernels {

/**
 * One dispatch tier's kernel table. All pointers are row-major complex
 * arrays; output arrays must not alias inputs. Every function owns its
 * full output (zero-fills where the reference semantics start from
 * zeros), so callers never pre-clear.
 */
struct KernelOps
{
    /** Tier name: "scalar", "avx2" or "neon". */
    const char* tier;

    /**
     * out = a * b for 4x4 complex matrices, reproducing the historical
     * Matrix::operator* loop bit for bit: i-major, k-middle, j-inner
     * accumulation with the (i,k) structural-zero skip.
     */
    void (*mul4x4)(cplx* out, const cplx* a, const cplx* b);

    /** out = a * b for 2x2 complex matrices (same contract). */
    void (*mul2x2)(cplx* out, const cplx* a, const cplx* b);

    /** out = conj(transpose(in)) for an n x n matrix, n in {2, 4}. */
    void (*dagger)(cplx* out, const cplx* in, size_t n);

    /**
     * out(4x4) = a(2x2) (x) b(2x2), preserving the structural-zero
     * skip of Matrix::kron (zero a_ij entries leave +0.0 blocks).
     */
    void (*kron2x2)(cplx* out, const cplx* a, const cplx* b);

    /**
     * Hilbert-Schmidt dot sum_i conj(a[i]) * b[i] over `count`
     * elements, accumulated strictly in index order (the decomposition
     * fidelity of Eq. 2 is |hsDot| / dim — its bits feed the BFGS
     * line search, so the reduction order is part of the contract).
     */
    cplx (*hsDot)(const cplx* a, const cplx* b, size_t count);
};

/**
 * The active dispatch table. Resolved once on first use (honoring
 * QISET_KERNEL_TIER / QISET_FORCE_SCALAR); later setTier() calls
 * switch it process-wide.
 */
const KernelOps& active();

/** Name of the active tier ("scalar", "avx2", "neon"). */
const char* tierName();

/**
 * Pin dispatch to a named tier.
 * @return false (no change) when the tier is unknown or the host
 *         cannot run it.
 */
bool setTier(const char* name);

/**
 * Kernel table of a named tier, or nullptr when this host cannot run
 * it. The equivalence test suite iterates every runnable tier through
 * this without disturbing the active dispatch.
 */
const KernelOps* opsForTier(const char* name);

/** Names of the tiers this host can run ("scalar" always included). */
std::vector<const char*> runnableTiers();

/**
 * Tier name an environment setting resolves to, given the values of
 * QISET_KERNEL_TIER and QISET_FORCE_SCALAR (either may be nullptr).
 * Unknown or unrunnable requests fall back to the best native tier.
 * Pure function, exposed for tests.
 */
const char* resolveTier(const char* tier_env, const char* force_scalar_env);

} // namespace kernels
} // namespace qiset

#endif // QISET_QC_KERNELS_H
