#include "qc/gates.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace qiset {
namespace gates {

namespace {
const cplx kI(0.0, 1.0);
} // namespace

Matrix
u3(double alpha, double beta, double lambda)
{
    double c = std::cos(alpha / 2.0);
    double s = std::sin(alpha / 2.0);
    return Matrix{
        {c, -std::exp(kI * lambda) * s},
        {std::exp(kI * beta) * s, std::exp(kI * (beta + lambda)) * c},
    };
}

void
u3Into(Matrix& out, double alpha, double beta, double lambda)
{
    if (out.rows() != 2 || out.cols() != 2)
        out = Matrix(2, 2);
    double c = std::cos(alpha / 2.0);
    double s = std::sin(alpha / 2.0);
    out(0, 0) = c;
    out(0, 1) = -std::exp(kI * lambda) * s;
    out(1, 0) = std::exp(kI * beta) * s;
    out(1, 1) = std::exp(kI * (beta + lambda)) * c;
}

Matrix
identity1q()
{
    return Matrix::identity(2);
}

Matrix
pauliX()
{
    return Matrix{{0.0, 1.0}, {1.0, 0.0}};
}

Matrix
pauliY()
{
    return Matrix{{0.0, -kI}, {kI, 0.0}};
}

Matrix
pauliZ()
{
    return Matrix{{1.0, 0.0}, {0.0, -1.0}};
}

Matrix
hadamard()
{
    double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    return Matrix{{inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2}};
}

Matrix
sGate()
{
    return Matrix{{1.0, 0.0}, {0.0, kI}};
}

Matrix
tGate()
{
    return Matrix{{1.0, 0.0}, {0.0, std::exp(kI * (kPi / 4.0))}};
}

Matrix
rx(double theta)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix
ry(double theta)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return Matrix{{c, -s}, {s, c}};
}

Matrix
rz(double theta)
{
    return Matrix{
        {std::exp(-kI * (theta / 2.0)), 0.0},
        {0.0, std::exp(kI * (theta / 2.0))},
    };
}

Matrix
fsim(double theta, double phi)
{
    double c = std::cos(theta);
    double s = std::sin(theta);
    Matrix m = Matrix::identity(4);
    m(1, 1) = c;
    m(1, 2) = -kI * s;
    m(2, 1) = -kI * s;
    m(2, 2) = c;
    m(3, 3) = std::exp(-kI * phi);
    return m;
}

Matrix
xy(double theta)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    Matrix m = Matrix::identity(4);
    m(1, 1) = c;
    m(1, 2) = kI * s;
    m(2, 1) = kI * s;
    m(2, 2) = c;
    return m;
}

Matrix
cphase(double phi)
{
    return fsim(0.0, phi);
}

Matrix
cz()
{
    return fsim(0.0, kPi);
}

Matrix
cnot()
{
    Matrix m(4, 4);
    m(0, 0) = 1.0;
    m(1, 1) = 1.0;
    m(2, 3) = 1.0;
    m(3, 2) = 1.0;
    return m;
}

Matrix
iswap()
{
    return fsim(kPi / 2.0, 0.0);
}

Matrix
sqrtIswap()
{
    return fsim(kPi / 4.0, 0.0);
}

Matrix
sycamore()
{
    return fsim(kPi / 2.0, kPi / 6.0);
}

Matrix
swap()
{
    Matrix m(4, 4);
    m(0, 0) = 1.0;
    m(1, 2) = 1.0;
    m(2, 1) = 1.0;
    m(3, 3) = 1.0;
    return m;
}

Matrix
zz(double beta)
{
    Matrix m(4, 4);
    m(0, 0) = std::exp(-kI * beta);
    m(1, 1) = std::exp(kI * beta);
    m(2, 2) = std::exp(kI * beta);
    m(3, 3) = std::exp(-kI * beta);
    return m;
}

Matrix
xxPlusYy(double theta)
{
    // exp(-i theta (XX + YY)/2) acts as an fSim rotation in the
    // single-excitation subspace and is identity on {00, 11}.
    return fsim(theta, 0.0);
}

Matrix
kron2(const Matrix& a, const Matrix& b)
{
    return a.kron(b);
}

std::vector<double>
u3Angles(const Matrix& u)
{
    QISET_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "u3Angles expects a 2x2 unitary");
    // alpha comes from the actual entry magnitudes (atan2, not acos):
    // |u00| alone is numerically blind to off-diagonals far below the
    // roundoff of the diagonal, and a wrong branch there poisons the
    // beta/lambda args with full weight.
    const double tol = 1e-9;
    double c = std::abs(u(0, 0));
    double s = std::abs(u(1, 0));
    double alpha = 2.0 * std::atan2(s, c);
    double beta = 0.0, lambda = 0.0;
    if (s <= tol * c) {
        // (Near-)diagonal: only beta + lambda matters; put it in beta.
        cplx phase = u(0, 0) / c;
        beta = std::arg(u(1, 1) / phase);
    } else if (c <= tol * s) {
        // (Near-)anti-diagonal: pin the phase to the lower-left entry
        // (beta stays zero; only beta + lambda would be observable).
        cplx phase = u(1, 0) / s;
        lambda = std::arg(-u(0, 1) / phase);
    } else {
        cplx phase = u(0, 0) / c;
        beta = std::arg(u(1, 0) / phase);
        lambda = std::arg(-u(0, 1) / phase);
    }
    return {alpha, beta, lambda};
}

} // namespace gates
} // namespace qiset
