#include "qc/kernels.h"

// NEON kernel tier for aarch64, where NEON is architecturally
// guaranteed. Compiled with -ffp-contract=off; complex multiplies are
// built from vmulq/vaddq plus an exact sign-bit flip so every lane
// performs the same mul and add/sub the scalar reference performs
// (fl(x + (-y)) == fl(x - y) exactly in IEEE-754). See kernels.h for
// the full bit-identity contract.

#if defined(__aarch64__)

#include <arm_neon.h>

namespace qiset {
namespace kernels {
namespace {

// Flip the sign bit of lane 0 (used to turn a lane-wise add into the
// scalar formula's subtraction without changing any result bits).
inline float64x2_t
negateLane0(float64x2_t v)
{
    const uint64x2_t mask = {0x8000000000000000ull, 0ull};
    return vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(v), mask));
}

// Flip the sign bit of lane 1 (conjugate of a packed complex).
inline float64x2_t
negateLane1(float64x2_t v)
{
    const uint64x2_t mask = {0ull, 0x8000000000000000ull};
    return vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(v), mask));
}

// (ar + i*ai) * (br + i*bi) with b packed as [br, bi]:
//   lane0 = ar*br - ai*bi, lane1 = ar*bi + ai*br
// via p1 = [ar*br, ar*bi], p2 = [ai*bi, ai*br], term = p1 + (-p2.0, p2.1).
inline float64x2_t
cmulBroadcast(float64x2_t arv, float64x2_t aiv, float64x2_t b)
{
    float64x2_t bswap = vextq_f64(b, b, 1); // [bi, br]
    float64x2_t p1 = vmulq_f64(arv, b);
    float64x2_t p2 = vmulq_f64(aiv, bswap);
    return vaddq_f64(p1, negateLane0(p2));
}

template <int N>
void
neonMul(cplx* out, const cplx* a, const cplx* b)
{
    const double* ad = reinterpret_cast<const double*>(a);
    const double* bd = reinterpret_cast<const double*>(b);
    double* od = reinterpret_cast<double*>(out);
    for (int i = 0; i < N; ++i) {
        float64x2_t acc[N];
        for (int j = 0; j < N; ++j)
            acc[j] = vdupq_n_f64(0.0);
        for (int k = 0; k < N; ++k) {
            double ar = ad[(i * N + k) * 2];
            double ai = ad[(i * N + k) * 2 + 1];
            if (ar == 0.0 && ai == 0.0)
                continue;
            float64x2_t arv = vdupq_n_f64(ar);
            float64x2_t aiv = vdupq_n_f64(ai);
            for (int j = 0; j < N; ++j)
                acc[j] = vaddq_f64(
                    acc[j], cmulBroadcast(arv, aiv,
                                          vld1q_f64(bd + (k * N + j) * 2)));
        }
        for (int j = 0; j < N; ++j)
            vst1q_f64(od + (i * N + j) * 2, acc[j]);
    }
}

void
neonMul4x4(cplx* out, const cplx* a, const cplx* b)
{
    neonMul<4>(out, a, b);
}

void
neonMul2x2(cplx* out, const cplx* a, const cplx* b)
{
    neonMul<2>(out, a, b);
}

void
neonDagger(cplx* out, const cplx* in, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j) {
            float64x2_t v = vld1q_f64(
                reinterpret_cast<const double*>(in + i * n + j));
            vst1q_f64(reinterpret_cast<double*>(out + j * n + i),
                      negateLane1(v));
        }
}

void
neonKron2x2(cplx* out, const cplx* a, const cplx* b)
{
    const double* ad = reinterpret_cast<const double*>(a);
    const double* bd = reinterpret_cast<const double*>(b);
    double* od = reinterpret_cast<double*>(out);
    float64x2_t zero = vdupq_n_f64(0.0);
    for (int i = 0; i < 16; ++i)
        vst1q_f64(od + i * 2, zero);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
            double ar = ad[(i * 2 + j) * 2];
            double ai = ad[(i * 2 + j) * 2 + 1];
            if (ar == 0.0 && ai == 0.0)
                continue;
            float64x2_t arv = vdupq_n_f64(ar);
            float64x2_t aiv = vdupq_n_f64(ai);
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l) {
                    float64x2_t term = cmulBroadcast(
                        arv, aiv, vld1q_f64(bd + (k * 2 + l) * 2));
                    vst1q_f64(od + ((i * 2 + k) * 4 + (j * 2 + l)) * 2,
                              term);
                }
        }
}

cplx
neonHsDot(const cplx* a, const cplx* b, size_t count)
{
    // Per element conj(a)*b:
    //   re = fl(fl(ar*br) + fl(ai*bi)), im = fl(fl(ar*bi) - fl(ai*br))
    // accumulated strictly in index order (see kernels.h).
    float64x2_t sum = vdupq_n_f64(0.0);
    for (size_t i = 0; i < count; ++i) {
        float64x2_t va =
            vld1q_f64(reinterpret_cast<const double*>(a + i));
        float64x2_t vb =
            vld1q_f64(reinterpret_cast<const double*>(b + i));
        float64x2_t p1 = vmulq_f64(va, vb); // ar*br | ai*bi
        float64x2_t p2 =
            vmulq_f64(va, vextq_f64(vb, vb, 1)); // ar*bi | ai*br
        float64x2_t term = vpaddq_f64(p1, negateLane1(p2));
        sum = vaddq_f64(sum, term);
    }
    double buf[2];
    vst1q_f64(buf, sum);
    return cplx(buf[0], buf[1]);
}

const KernelOps kNeonOps = {
    "neon",     neonMul4x4, neonMul2x2,
    neonDagger, neonKron2x2, neonHsDot,
};

} // namespace

namespace detail {

const KernelOps*
neonOps()
{
    return &kNeonOps;
}

} // namespace detail
} // namespace kernels
} // namespace qiset

#else // not aarch64

namespace qiset {
namespace kernels {
namespace detail {

const KernelOps*
neonOps()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace qiset

#endif
