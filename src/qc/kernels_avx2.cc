#include "qc/kernels.h"

// AVX2 kernel tier. Compiled with -mavx2 -ffp-contract=off on x86-64
// (see CMakeLists.txt); the dispatcher only hands out this table after
// a runtime __builtin_cpu_supports("avx2") check, and nothing in this
// translation unit executes before that check.
//
// Bit-identity notes (see kernels.h for the contract):
//   - complex multiply uses mul + addsub, i.e. the exact mul/sub and
//     mul/add pairs of the scalar formula — no FMA, no reassociation;
//   - fl(x - (-y)) == fl(x + y) and fl((-a)*b) == -fl(a*b) hold
//     exactly in IEEE-754, so hadd/hsub and sign-flip tricks below
//     reproduce the scalar conjugate arithmetic bit for bit;
//   - structural-zero skips test the same `re == 0 && im == 0`
//     predicate the scalar tier evaluates.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace qiset {
namespace kernels {
namespace {

// c = (ar + i*ai) * b for two packed complex doubles in b.
// Even lanes: ar*br - ai*bi; odd lanes: ar*bi + ai*br — the naive
// std::complex formula, one mul and one add/sub per component.
inline __m256d
cmulBroadcast(__m256d arv, __m256d aiv, __m256d b)
{
    __m256d bswap = _mm256_shuffle_pd(b, b, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(arv, b),
                            _mm256_mul_pd(aiv, bswap));
}

void
avx2Mul4x4(cplx* out, const cplx* a, const cplx* b)
{
    const double* ad = reinterpret_cast<const double*>(a);
    const double* bd = reinterpret_cast<const double*>(b);
    double* od = reinterpret_cast<double*>(out);
    for (int i = 0; i < 4; ++i) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int k = 0; k < 4; ++k) {
            double ar = ad[(i * 4 + k) * 2];
            double ai = ad[(i * 4 + k) * 2 + 1];
            if (ar == 0.0 && ai == 0.0)
                continue;
            __m256d arv = _mm256_set1_pd(ar);
            __m256d aiv = _mm256_set1_pd(ai);
            acc0 = _mm256_add_pd(
                acc0, cmulBroadcast(arv, aiv, _mm256_loadu_pd(bd + k * 8)));
            acc1 = _mm256_add_pd(
                acc1,
                cmulBroadcast(arv, aiv, _mm256_loadu_pd(bd + k * 8 + 4)));
        }
        _mm256_storeu_pd(od + i * 8, acc0);
        _mm256_storeu_pd(od + i * 8 + 4, acc1);
    }
}

void
avx2Mul2x2(cplx* out, const cplx* a, const cplx* b)
{
    const double* ad = reinterpret_cast<const double*>(a);
    const double* bd = reinterpret_cast<const double*>(b);
    double* od = reinterpret_cast<double*>(out);
    for (int i = 0; i < 2; ++i) {
        __m256d acc = _mm256_setzero_pd();
        for (int k = 0; k < 2; ++k) {
            double ar = ad[(i * 2 + k) * 2];
            double ai = ad[(i * 2 + k) * 2 + 1];
            if (ar == 0.0 && ai == 0.0)
                continue;
            acc = _mm256_add_pd(
                acc, cmulBroadcast(_mm256_set1_pd(ar), _mm256_set1_pd(ai),
                                   _mm256_loadu_pd(bd + k * 4)));
        }
        _mm256_storeu_pd(od + i * 4, acc);
    }
}

void
avx2Dagger(cplx* out, const cplx* in, size_t n)
{
    // conj = flip the sign bit of the imaginary lane; identical bits to
    // the scalar unary negation (+0.0 -> -0.0 and vice versa).
    const __m128d flip = _mm_set_pd(-0.0, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j) {
            __m128d v = _mm_loadu_pd(
                reinterpret_cast<const double*>(in + i * n + j));
            _mm_storeu_pd(reinterpret_cast<double*>(out + j * n + i),
                          _mm_xor_pd(v, flip));
        }
}

void
avx2Kron2x2(cplx* out, const cplx* a, const cplx* b)
{
    const double* ad = reinterpret_cast<const double*>(a);
    const double* bd = reinterpret_cast<const double*>(b);
    double* od = reinterpret_cast<double*>(out);
    __m256d zero = _mm256_setzero_pd();
    for (int i = 0; i < 8; ++i)
        _mm256_storeu_pd(od + i * 4, zero);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
            double ar = ad[(i * 2 + j) * 2];
            double ai = ad[(i * 2 + j) * 2 + 1];
            if (ar == 0.0 && ai == 0.0)
                continue;
            __m256d arv = _mm256_set1_pd(ar);
            __m256d aiv = _mm256_set1_pd(ai);
            for (int k = 0; k < 2; ++k) {
                __m256d term =
                    cmulBroadcast(arv, aiv, _mm256_loadu_pd(bd + k * 4));
                _mm256_storeu_pd(od + ((i * 2 + k) * 4 + j * 2) * 2, term);
            }
        }
}

cplx
avx2HsDot(const cplx* a, const cplx* b, size_t count)
{
    // Scalar reference per element: conj(a)*b with
    //   re = fl(ar*br - (-fl(ai*bi))) == fl(fl(ar*br) + fl(ai*bi))
    //   im = fl(ar*bi + (-fl(ai*br))) == fl(fl(ar*bi) - fl(ai*br))
    // which hadd/hsub compute directly. The running sum stays strictly
    // in index order — part of the contract.
    __m128d sum = _mm_setzero_pd();
    for (size_t i = 0; i < count; ++i) {
        __m128d va = _mm_loadu_pd(reinterpret_cast<const double*>(a + i));
        __m128d vb = _mm_loadu_pd(reinterpret_cast<const double*>(b + i));
        __m128d p1 = _mm_mul_pd(va, vb);                 // ar*br | ai*bi
        __m128d p2 = _mm_mul_pd(va, _mm_shuffle_pd(vb, vb, 0x1));
                                                         // ar*bi | ai*br
        __m128d re = _mm_hadd_pd(p1, p1);
        __m128d im = _mm_hsub_pd(p2, p2);
        sum = _mm_add_pd(sum, _mm_blend_pd(re, im, 0x2));
    }
    double buf[2];
    _mm_storeu_pd(buf, sum);
    return cplx(buf[0], buf[1]);
}

const KernelOps kAvx2Ops = {
    "avx2",     avx2Mul4x4, avx2Mul2x2,
    avx2Dagger, avx2Kron2x2, avx2HsDot,
};

} // namespace

namespace detail {

const KernelOps*
avx2Ops()
{
    return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace qiset

#else // not x86-64

namespace qiset {
namespace kernels {
namespace detail {

const KernelOps*
avx2Ops()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace qiset

#endif
