#include "qc/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace qiset {

void
qrDecompose(const Matrix& a, Matrix& q, Matrix& r)
{
    QISET_REQUIRE(a.rows() == a.cols(), "qrDecompose expects square input");
    size_t n = a.rows();
    q = a;
    r = Matrix(n, n);

    // Modified Gram-Schmidt on the columns of a.
    for (size_t j = 0; j < n; ++j) {
        for (size_t k = 0; k < j; ++k) {
            cplx dot(0.0, 0.0);
            for (size_t i = 0; i < n; ++i)
                dot += std::conj(q(i, k)) * q(i, j);
            r(k, j) = dot;
            for (size_t i = 0; i < n; ++i)
                q(i, j) -= dot * q(i, k);
        }
        double norm = 0.0;
        for (size_t i = 0; i < n; ++i)
            norm += std::norm(q(i, j));
        norm = std::sqrt(norm);
        QISET_REQUIRE(norm > 1e-12, "rank-deficient input to qrDecompose");
        r(j, j) = norm;
        for (size_t i = 0; i < n; ++i)
            q(i, j) /= norm;
    }
}

Matrix
haarRandomUnitary(size_t n, Rng& rng)
{
    Matrix ginibre(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            ginibre(i, j) = rng.normalComplex();

    Matrix q, r;
    qrDecompose(ginibre, q, r);

    // Multiply each column by the phase of the matching R diagonal so
    // the distribution is exactly Haar (Mezzadri, arXiv:math-ph/0609050).
    for (size_t j = 0; j < n; ++j) {
        cplx d = r(j, j);
        cplx phase = d / std::abs(d);
        for (size_t i = 0; i < n; ++i)
            q(i, j) *= phase;
    }
    return q;
}

namespace {

/** Largest |off-diagonal| element location of a real symmetric matrix. */
double
maxOffDiagonal(const Matrix& a, size_t& p, size_t& q)
{
    size_t n = a.rows();
    double best = 0.0;
    p = 0;
    q = 1;
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j) {
            double mag = std::abs(a(i, j).real());
            if (mag > best) {
                best = mag;
                p = i;
                q = j;
            }
        }
    return best;
}

} // namespace

SymmetricEigen
jacobiEigenSymmetric(const Matrix& a_in, double tol, int max_sweeps)
{
    QISET_REQUIRE(a_in.rows() == a_in.cols(), "eigensolver expects square");
    size_t n = a_in.rows();
    Matrix a = a_in;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps * static_cast<int>(n * n);
         ++sweep) {
        size_t p, q;
        double off = maxOffDiagonal(a, p, q);
        if (off < tol)
            break;

        double app = a(p, p).real();
        double aqq = a(q, q).real();
        double apq = a(p, q).real();

        // Classic Jacobi rotation annihilating a(p, q).
        double theta = 0.5 * std::atan2(2.0 * apq, aqq - app);
        double c = std::cos(theta);
        double s = std::sin(theta);

        for (size_t k = 0; k < n; ++k) {
            double akp = a(k, p).real();
            double akq = a(k, q).real();
            a(k, p) = c * akp - s * akq;
            a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
            double apk = a(p, k).real();
            double aqk = a(q, k).real();
            a(p, k) = c * apk - s * aqk;
            a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
            double vkp = v(k, p).real();
            double vkq = v(k, q).real();
            v(k, p) = c * vkp - s * vkq;
            v(k, q) = s * vkp + c * vkq;
        }
    }

    SymmetricEigen out;
    out.values.resize(n);
    for (size_t i = 0; i < n; ++i)
        out.values[i] = a(i, i).real();
    out.vectors = v;
    return out;
}

Matrix
simultaneousDiagonalize(const Matrix& a, const Matrix& b,
                        double degeneracy_tol)
{
    QISET_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols() &&
                      a.rows() == b.rows(),
                  "shape mismatch in simultaneousDiagonalize");
    size_t n = a.rows();

    SymmetricEigen eig_a = jacobiEigenSymmetric(a);
    Matrix v = eig_a.vectors;

    // Sort columns by eigenvalue of a so degenerate clusters are
    // contiguous.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return eig_a.values[x] < eig_a.values[y];
    });
    Matrix v_sorted(n, n);
    std::vector<double> w_sorted(n);
    for (size_t j = 0; j < n; ++j) {
        w_sorted[j] = eig_a.values[order[j]];
        for (size_t i = 0; i < n; ++i)
            v_sorted(i, j) = v(i, order[j]);
    }
    v = v_sorted;

    // Within each degenerate eigenspace of a, b restricted to the
    // space is symmetric (since [a, b] = 0); diagonalize it there.
    size_t start = 0;
    while (start < n) {
        size_t end = start + 1;
        while (end < n &&
               std::abs(w_sorted[end] - w_sorted[start]) < degeneracy_tol)
            ++end;
        size_t block = end - start;
        if (block > 1) {
            // Projected block B' = V_block^T b V_block.
            Matrix vb(n, block);
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < block; ++j)
                    vb(i, j) = v(i, start + j);
            Matrix b_proj = vb.transpose() * b * vb;
            SymmetricEigen eig_b = jacobiEigenSymmetric(b_proj);
            Matrix vb_new = vb * eig_b.vectors;
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < block; ++j)
                    v(i, start + j) = vb_new(i, j);
        }
        start = end;
    }
    return v;
}

cplx
determinant(const Matrix& a_in)
{
    QISET_REQUIRE(a_in.rows() == a_in.cols(), "determinant of non-square");
    Matrix a = a_in;
    size_t n = a.rows();
    cplx det(1.0, 0.0);

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        double best = std::abs(a(col, col));
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a(row, col)) > best) {
                best = std::abs(a(row, col));
                pivot = row;
            }
        }
        if (best < 1e-300)
            return cplx(0.0, 0.0);
        if (pivot != col) {
            for (size_t j = 0; j < n; ++j)
                std::swap(a(col, j), a(pivot, j));
            det = -det;
        }
        det *= a(col, col);
        for (size_t row = col + 1; row < n; ++row) {
            cplx factor = a(row, col) / a(col, col);
            for (size_t j = col; j < n; ++j)
                a(row, j) -= factor * a(col, j);
        }
    }
    return det;
}

} // namespace qiset
