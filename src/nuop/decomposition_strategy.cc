#include "nuop/decomposition_strategy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"
#include "qc/linalg.h"

namespace qiset {

namespace {

const cplx kI(0.0, 1.0);

/** Normalize a 4x4 unitary into SU(4) (branch of the principal root). */
Matrix
toSu4(const Matrix& u)
{
    Matrix su = u;
    cplx det = determinant(su);
    su *= (cplx(1.0, 0.0) / std::pow(det, 0.25));
    return su;
}

/** exp(i t X) as a 2x2 matrix. */
Matrix
expIx(double t)
{
    Matrix m(2, 2);
    m(0, 0) = std::cos(t);
    m(0, 1) = kI * std::sin(t);
    m(1, 0) = kI * std::sin(t);
    m(1, 1) = std::cos(t);
    return m;
}

/** exp(i t Z) as a 2x2 matrix. */
Matrix
expIz(double t)
{
    Matrix m(2, 2);
    m(0, 0) = std::exp(kI * t);
    m(1, 1) = std::exp(-kI * t);
    return m;
}

/**
 * Two-CNOT reference circuit CX (e^{ixX} (x) e^{iyZ}) CX
 * == exp(i (x XX + y ZZ)): one representative of every trace-real
 * (Weyl z == 0) local-equivalence class.
 */
Matrix
twoCnotReference(double x, double y)
{
    return gates::cnot() * expIx(x).kron(expIz(y)) * gates::cnot();
}

/** The canonical CZ-class interaction exp(i pi/4 ZZ). */
Matrix
czInteraction()
{
    WeylCoordinates c{0.0, 0.0, gates::kPi / 4.0};
    return canonicalGate(c);
}

/** Append the U3 angle blocks of a 4x4 tensor-product local. */
bool
appendLocalBlock(std::vector<double>& params, const Matrix& local)
{
    auto [a, b] = decomposeLocalUnitary(local);
    // Reject splits that lost weight (non-tensor input slipping
    // through): the factors must reproduce the local up to phase.
    if (1.0 - traceFidelity(a.kron(b), local) > 1e-7)
        return false;
    for (double angle : gates::u3Angles(a))
        params.push_back(angle);
    for (double angle : gates::u3Angles(b))
        params.push_back(angle);
    return true;
}

AnalyticTier
resolveTier(const GateSpec& spec)
{
    if (spec.family != TemplateFamily::Fixed)
        return AnalyticTier::None;
    if (spec.analytic != AnalyticTier::Unspecified)
        return spec.analytic;
    return analyticTier(spec.unitary);
}

} // namespace

std::string
profileKeyCore(const Matrix& target, const GateSpec& spec)
{
    std::string out;
    appendProfileKeyCore(out, target, spec);
    return out;
}

void
appendProfileKeyCore(std::string& out, const Matrix& target,
                     const GateSpec& spec)
{
    // quantizedForm is shared with the NuOp multistart seeding, so
    // key-equal targets always draw identical seeds.
    out += spec.type_name;
    out += '|';
    appendQuantizedForm(out, target);
}

WeylCoordinates
canonicalWeylCoordinates(const Matrix& target)
{
    WeylCoordinates c = weylCoordinates(target);
    auto quantize = [](double v) {
        double r = std::round(v * 1e9) / 1e9;
        return r == 0.0 ? 0.0 : r; // normalize -0
    };
    c.cx = quantize(c.cx);
    c.cy = quantize(c.cy);
    c.cz = quantize(c.cz);
    return c;
}

AnalyticSynthesis
kakSynthesize(const Matrix& target, const GateSpec& spec)
{
    AnalyticSynthesis out;
    if (target.rows() != 4 || target.cols() != 4)
        return out;
    Matrix su = toSu4(target);

    // Depth 0: local targets split exactly, for every gate family.
    int minimal = minimalCzCount(su);
    if (minimal == 0) {
        std::vector<double> params;
        if (!appendLocalBlock(params, su))
            return out;
        out.ok = true;
        out.layers = 0;
        out.params = std::move(params);
        return out;
    }

    AnalyticTier tier = resolveTier(spec);
    if (tier == AnalyticTier::None)
        return out;

    // Depth 1: any fixed gate implements its own local-equivalence
    // class with one application.
    if (tier == AnalyticTier::LocalEquivalence || minimal == 1) {
        LocalEquivalence eq = localFactorsBetween(spec.unitary, su);
        if (!eq.ok)
            return out; // not this gate's class (or not reachable).
        std::vector<double> params;
        if (!appendLocalBlock(params, eq.right) ||
            !appendLocalBlock(params, eq.left))
            return out;
        out.ok = true;
        out.layers = 1;
        out.params = std::move(params);
        return out;
    }

    // CZ-class gates: express the reference CNOTs of the two- and
    // three-layer constructions in terms of the actual hardware gate.
    LocalEquivalence gate_eq =
        localFactorsBetween(spec.unitary, gates::cnot());
    if (!gate_eq.ok)
        return out;

    if (minimal == 2) {
        // Trace-real class: target ~ exp(i (x XX + y ZZ)).
        WeylCoordinates c = weylCoordinates(su);
        if (std::abs(c.cz) > 1e-6)
            return out;
        Matrix reference = twoCnotReference(c.cx, c.cy);
        LocalEquivalence eq = localFactorsBetween(reference, su);
        if (!eq.ok)
            return out;
        Matrix mid = expIx(c.cx).kron(expIz(c.cy));
        std::vector<double> params;
        if (!appendLocalBlock(params, gate_eq.right * eq.right) ||
            !appendLocalBlock(params,
                              gate_eq.right * mid * gate_eq.left) ||
            !appendLocalBlock(params, eq.left * gate_eq.left))
            return out;
        out.ok = true;
        out.layers = 2;
        out.params = std::move(params);
        return out;
    }

    // Generic class, three applications. Align one CZ interaction so
    // the remainder becomes trace-real: with W = P diag(e^{2i th}) P^T
    // the magic-basis Gram matrix of the target and B = O D O^T
    // (D = diag(1,-1,-1,1), the Gram matrix of exp(i pi/4 ZZ) up to i),
    // Im tr gamma(target * L * CZ) = Re tr(B W) =
    // cos(2t) (v_p - v_q) + v_r - v_s over v_j = cos(2 th_j) — a
    // closed-form Givens angle t zeroes it (|v_s - v_r| <= |v_p - v_q|
    // once p/q take the extreme values).
    KakDecomposition kak = kakDecompose(su);
    double v[4];
    for (int j = 0; j < 4; ++j)
        v[j] = std::cos(2.0 * kak.thetas[j]);
    int order[4] = {0, 1, 2, 3};
    std::sort(order, order + 4, [&](int a, int b) { return v[a] > v[b]; });
    int p = order[0], q = order[3], r = order[1], s = order[2];
    double denom = v[p] - v[q];
    double cos2t =
        std::abs(denom) < 1e-12 ? 1.0 : (v[s] - v[r]) / denom;
    cos2t = std::max(-1.0, std::min(1.0, cos2t));
    double t = 0.5 * std::acos(cos2t);

    // O's columns follow D's sign pattern (+,-,-,+): the Givens-mixed
    // +1/-1 pair on slots (p, q), then the pure -1 and +1 slots.
    Matrix o_frame(4, 4);
    o_frame(p, 0) = std::cos(t);
    o_frame(q, 0) = std::sin(t);
    o_frame(p, 1) = -std::sin(t);
    o_frame(q, 1) = std::cos(t);
    o_frame(s, 2) = 1.0;
    o_frame(r, 3) = 1.0;
    if (determinant(o_frame).real() < 0.0)
        for (int i = 0; i < 4; ++i)
            o_frame(i, 3) = -o_frame(i, 3);
    Matrix mb = magicBasis();
    Matrix align = mb * (kak.magic_p * o_frame) * mb.dagger();

    Matrix cz_rep = czInteraction();
    Matrix reduced = su * align * cz_rep;
    WeylCoordinates c = weylCoordinates(reduced);
    if (std::abs(c.cz) > 1e-6)
        return out; // alignment failed numerically; let NuOp handle it.
    Matrix reference = twoCnotReference(c.cx, c.cy);
    LocalEquivalence eq = localFactorsBetween(reference, reduced);
    if (!eq.ok)
        return out;
    LocalEquivalence cz_eq =
        localFactorsBetween(spec.unitary, cz_rep.dagger());
    if (!cz_eq.ok)
        return out;

    // su = eq.left * CX * mid * CX * eq.right * cz_rep^dag * align^dag
    // with CX = gate_eq.left * G * gate_eq.right (up to phases).
    Matrix mid = expIx(c.cx).kron(expIz(c.cy));
    std::vector<double> params;
    if (!appendLocalBlock(params, cz_eq.right * align.dagger()) ||
        !appendLocalBlock(params,
                          gate_eq.right * eq.right * cz_eq.left) ||
        !appendLocalBlock(params, gate_eq.right * mid * gate_eq.left) ||
        !appendLocalBlock(params, eq.left * gate_eq.left))
        return out;
    out.ok = true;
    out.layers = 3;
    out.params = std::move(params);
    return out;
}

// ---------------------------------------------------------------- engines

namespace {

/** Canonical-class cache-key fragment of a target. */
void
appendWeylKey(std::string& out, const Matrix& target)
{
    WeylCoordinates c = canonicalWeylCoordinates(target);
    char buffer[96];
    int len = std::snprintf(buffer, sizeof(buffer), "w|%.9f|%.9f|%.9f",
                            c.cx, c.cy, c.cz);
    out.append(buffer, static_cast<size_t>(len));
}

std::string
weylKey(const Matrix& target)
{
    std::string out;
    appendWeylKey(out, target);
    return out;
}

/**
 * The historical BFGS profile ladder: fits for layer counts 0..max
 * until the exact threshold is reached. The "nuop" engine (and the
 * tiered fallback) must keep this loop bit-identical — seeds are a
 * pure function of (target, gate, layers, start index).
 */
GateProfile
nuopLadder(const Matrix& target, const GateSpec& spec,
           const NuOpDecomposer& decomposer)
{
    GateProfile profile;
    profile.type_name = spec.type_name;
    profile.family = spec.family;
    profile.unitary = spec.unitary;
    profile.engine = "nuop";

    HardwareGate gate;
    gate.name = spec.type_name;
    gate.family = spec.family;
    gate.unitary = spec.unitary;

    double threshold = decomposer.options().exact_threshold;
    for (int layers = 0; layers <= decomposer.options().max_layers;
         ++layers) {
        LayerFit fit;
        fit.layers = layers;
        fit.fd = decomposer.bestFidelityForLayers(target, gate, layers,
                                                  &fit.params);
        profile.fits.push_back(std::move(fit));
        if (profile.fits.back().fd >= threshold)
            break;
    }
    return profile;
}

/** Fd of a parameter vector against a target under the spec's gate. */
double
fitFidelity(const GateSpec& spec, int layers,
            const std::vector<double>& params, const Matrix& target)
{
    TwoQubitTemplate templ =
        spec.family == TemplateFamily::Fixed
            ? TwoQubitTemplate(layers, spec.unitary)
            : TwoQubitTemplate(layers, spec.family);
    return 1.0 - templ.infidelity(params, target);
}

/** Verified exact analytic fit of a representative, or false. */
bool
analyticFit(const Matrix& representative, const GateSpec& spec,
            LayerFit& fit)
{
    AnalyticSynthesis synthesis = kakSynthesize(representative, spec);
    if (!synthesis.ok)
        return false;
    double fd = fitFidelity(spec, synthesis.layers, synthesis.params,
                            representative);
    // Sanity floor: a construction that silently degraded is worse
    // than an honest NuOp fallback.
    if (fd < 1.0 - 1e-6)
        return false;
    fit.layers = synthesis.layers;
    fit.fd = fd;
    fit.params = std::move(synthesis.params);
    return true;
}

/**
 * Best analytic *approximation* of the representative at `depth`
 * applications: synthesize the projection of its Weyl coordinates
 * onto the depth-reachable set exactly, and measure the honest Fd.
 * For CZ-class gates the projections ((0,0,0) -> (pi/4,0,0) ->
 * (x,y,0)) are the fidelity-optimal depth-m classes, so these fits
 * dominate what the BFGS ladder can find at the same depth.
 */
bool
analyticApproxFit(const Matrix& representative,
                  const WeylCoordinates& coords, const GateSpec& spec,
                  AnalyticTier tier, int depth, LayerFit& fit)
{
    if (depth == 0) {
        // Best local (gate-free) approximation of a canonical gate.
        fit.layers = 0;
        fit.params.assign(6, 0.0);
        fit.fd = fitFidelity(spec, 0, fit.params, representative);
        return true;
    }
    std::vector<WeylCoordinates> projections;
    if (depth == 1) {
        if (tier == AnalyticTier::Universal) {
            projections.push_back({gates::kPi / 4.0, 0.0, 0.0});
        } else if (spec.family == TemplateFamily::Fixed) {
            // Non-CZ gate: its own class, both chiralities.
            WeylCoordinates own = canonicalWeylCoordinates(spec.unitary);
            projections.push_back(own);
            if (own.cz != 0.0)
                projections.push_back({own.cx, own.cy, -own.cz});
        }
    } else if (depth == 2 && tier == AnalyticTier::Universal) {
        projections.push_back({coords.cx, coords.cy, 0.0});
    }
    bool found = false;
    for (const WeylCoordinates& projection : projections) {
        AnalyticSynthesis synthesis =
            kakSynthesize(canonicalGate(projection), spec);
        if (!synthesis.ok)
            continue;
        double fd = fitFidelity(spec, synthesis.layers, synthesis.params,
                                representative);
        if (!found || fd > fit.fd) {
            fit.layers = synthesis.layers;
            fit.fd = fd;
            fit.params = std::move(synthesis.params);
            found = true;
        }
    }
    return found;
}

/**
 * The analytic counterpart of nuopLadder: fits for increasing depths
 * — optimal approximations below the SBM-minimal exact depth, the
 * exact construction at it — stopping at the exact threshold, so
 * loose thresholds legally pick shallower circuits exactly as the
 * BFGS ladder would (the Eq. 2 trade is decided at selection time).
 */
GateProfile
kakLadder(const Matrix& representative, const GateSpec& spec,
          const NuOpDecomposer& decomposer)
{
    GateProfile profile;
    profile.type_name = spec.type_name;
    profile.family = spec.family;
    profile.unitary = spec.unitary;
    profile.engine = "kak";

    double threshold = decomposer.options().exact_threshold;
    AnalyticTier tier = resolveTier(spec);
    WeylCoordinates coords = weylCoordinates(representative);

    int exact_depth = -1;
    if (minimalCzCount(representative) == 0)
        exact_depth = 0;
    else if (tier == AnalyticTier::Universal)
        exact_depth = minimalCzCount(representative);
    else if (tier == AnalyticTier::LocalEquivalence &&
             localFactorsBetween(spec.unitary, representative).ok)
        exact_depth = 1;

    int max_depth = tier == AnalyticTier::Universal ? 3 : 1;
    if (tier == AnalyticTier::None)
        max_depth = 0;
    max_depth = std::min(max_depth, decomposer.options().max_layers);

    for (int depth = 0; depth <= max_depth; ++depth) {
        LayerFit fit;
        bool ok = depth == exact_depth
                      ? analyticFit(representative, spec, fit)
                      : analyticApproxFit(representative, coords, spec,
                                          tier, depth, fit);
        if (!ok)
            break;
        profile.fits.push_back(std::move(fit));
        if (profile.fits.back().fd >= threshold)
            break;
        if (depth == exact_depth)
            break; // deeper fits cannot improve on exact.
    }
    return profile;
}

class NuOpStrategy : public DecompositionStrategy
{
  public:
    std::string name() const override { return "nuop"; }

    std::string cacheKey(const Matrix& target,
                         const GateSpec& spec) const override
    {
        return "nuop|" + profileKeyCore(target, spec);
    }

    void cacheKeyInto(std::string& out, const Matrix& target,
                      const GateSpec& spec) const override
    {
        out += "nuop|";
        appendProfileKeyCore(out, target, spec);
    }

    GateProfile computeProfile(const Matrix& target, const GateSpec& spec,
                               const NuOpDecomposer& decomposer)
        const override
    {
        return nuopLadder(target, spec, decomposer);
    }
};

class KakStrategy : public DecompositionStrategy
{
  public:
    std::string name() const override { return "kak"; }

    bool canonicalizesTargets() const override { return true; }

    Matrix profileTarget(const Matrix& target) const override
    {
        return canonicalGate(canonicalWeylCoordinates(target));
    }

    std::string cacheKey(const Matrix& target,
                         const GateSpec& spec) const override
    {
        return "kak|" + spec.type_name + '|' + weylKey(target);
    }

    void cacheKeyInto(std::string& out, const Matrix& target,
                      const GateSpec& spec) const override
    {
        out += "kak|";
        out += spec.type_name;
        out += '|';
        appendWeylKey(out, target);
    }

    GateProfile computeProfile(const Matrix& target, const GateSpec& spec,
                               const NuOpDecomposer& decomposer)
        const override
    {
        // Purely analytic — the decomposer only supplies the layer
        // bound and exact threshold, never the optimizer. An empty
        // fit list means "this engine cannot implement the class with
        // this gate type" — selection skips the profile, and the
        // translator reports a clear error when no type can serve.
        return kakLadder(profileTarget(target), spec, decomposer);
    }
};

class AutoStrategy : public DecompositionStrategy
{
  public:
    std::string name() const override { return "auto"; }

    bool canonicalizesTargets() const override { return true; }

    Matrix profileTarget(const Matrix& target) const override
    {
        return canonicalGate(canonicalWeylCoordinates(target));
    }

    std::string cacheKey(const Matrix& target,
                         const GateSpec& spec) const override
    {
        return "auto|" + spec.type_name + '|' + weylKey(target);
    }

    void cacheKeyInto(std::string& out, const Matrix& target,
                      const GateSpec& spec) const override
    {
        out += "auto|";
        out += spec.type_name;
        out += '|';
        appendWeylKey(out, target);
    }

    GateProfile computeProfile(const Matrix& target, const GateSpec& spec,
                               const NuOpDecomposer& decomposer)
        const override
    {
        Matrix representative = profileTarget(target);
        GateProfile analytic = kakLadder(representative, spec, decomposer);
        if (!analytic.fits.empty() &&
            analytic.fits.back().fd >=
                decomposer.options().exact_threshold) {
            // Analytic tier hit at the exact threshold: bypass the
            // BFGS hot path entirely. The ladder's per-depth optimal
            // approximations keep Eq. 2 free to prefer a shallower
            // circuit at selection time, just as it could with NuOp.
            return analytic;
        }
        // Numerical fallback (still canonical-keyed, so locally
        // equivalent targets keep sharing the BFGS result).
        return nuopLadder(representative, spec, decomposer);
    }
};

using Registry = std::map<std::string, DecompositionStrategyFactory>;

std::mutex&
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Lazily-built registry pre-seeded with the built-in engines. */
Registry&
registryMap()
{
    static Registry registry = [] {
        Registry builtins;
        builtins["nuop"] = [] {
            return std::unique_ptr<DecompositionStrategy>(
                new NuOpStrategy());
        };
        builtins["kak"] = [] {
            return std::unique_ptr<DecompositionStrategy>(
                new KakStrategy());
        };
        builtins["auto"] = [] {
            return std::unique_ptr<DecompositionStrategy>(
                new AutoStrategy());
        };
        return builtins;
    }();
    return registry;
}

} // namespace

bool
registerDecompositionStrategy(const std::string& name,
                              DecompositionStrategyFactory factory)
{
    QISET_REQUIRE(factory != nullptr,
                  "cannot register a null decomposition strategy factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    return registryMap().emplace(name, std::move(factory)).second;
}

std::unique_ptr<DecompositionStrategy>
makeDecompositionStrategy(const std::string& name)
{
    DecompositionStrategyFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registryMap().find(name);
        if (it != registryMap().end())
            factory = it->second;
    }
    if (!factory) {
        std::ostringstream known;
        for (const auto& existing : decompositionStrategyNames())
            known << ' ' << existing;
        fatal("unknown decomposition strategy \"", name,
              "\"; registered:", known.str());
    }
    auto strategy = factory();
    QISET_REQUIRE(strategy != nullptr,
                  "decomposition strategy factory for \"", name,
                  "\" returned null");
    return strategy;
}

std::vector<std::string>
decompositionStrategyNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registryMap().size());
    for (const auto& [name, factory] : registryMap())
        names.push_back(name);
    return names;
}

const DecompositionStrategy&
nuopDecompositionStrategy()
{
    static const NuOpStrategy strategy;
    return strategy;
}

} // namespace qiset
