#ifndef QISET_NUOP_DECOMPOSER_H
#define QISET_NUOP_DECOMPOSER_H

/**
 * @file
 * NuOp: numerical-optimization gate decomposition (Section V).
 *
 * Given an application two-qubit unitary and one or more hardware gate
 * types, NuOp grows template circuits layer by layer, optimizes the
 * single-qubit angles with BFGS and selects the decomposition that
 * maximizes either the decomposition fidelity Fd alone (exact mode,
 * Eq. 1) or the product Fd * Fh of decomposition and hardware fidelity
 * (approximate / noise-aware mode, Eq. 2).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "nuop/bfgs.h"
#include "nuop/template_circuit.h"
#include "qc/matrix.h"

namespace qiset {

/** One hardware gate type available on a target qubit pair. */
struct HardwareGate
{
    /** Display name, e.g. "SYC", "CZ", "fSim(0.52,3.14)". */
    std::string name;
    /** Template family (Fixed for a concrete gate type). */
    TemplateFamily family = TemplateFamily::Fixed;
    /** Gate unitary (Fixed family only). */
    Matrix unitary;
    /** Calibrated hardware fidelity of this gate on this pair. */
    double fidelity = 1.0;
};

/** Convenience builder for a fixed hardware gate. */
HardwareGate makeFixedGate(const std::string& name, const Matrix& unitary,
                           double fidelity = 1.0);

/** Tuning parameters for NuOp. */
struct NuOpOptions
{
    /** Maximum template layers (paper: 10; <4 suffice in practice). */
    int max_layers = 8;
    /** Random multistarts per (target, gate, layers) optimization. */
    int multistarts = 4;
    /** Decomposition fidelity defining an "exact" decomposition. */
    double exact_threshold = 1.0 - 1e-9;
    /** Hardware fidelity assumed for every single-qubit gate in Fh. */
    double one_qubit_fidelity = 1.0;
    /**
     * Base seed for the multistart generator. Each start's initial
     * point is seeded per (target, gate, layers, start index), so
     * decompositions are pure functions of their inputs — identical
     * across serial and parallel compilation orders.
     */
    uint64_t seed = 17;
    /** Inner optimizer settings. */
    BfgsOptions bfgs;
};

/** Result of decomposing one application unitary into one gate type. */
struct Decomposition
{
    /** Name of the hardware gate chosen. */
    std::string gate_name;
    /** Template family of the chosen gate. */
    TemplateFamily family = TemplateFamily::Fixed;
    /** Unitary of the chosen gate (Fixed family). */
    Matrix gate_unitary;
    /** Number of two-qubit gate applications. */
    int layers = 0;
    /** Decomposition fidelity Fd (Eq. 1). */
    double decomposition_fidelity = 0.0;
    /** Hardware fidelity Fh of the decomposed circuit. */
    double hardware_fidelity = 1.0;
    /** Optimized template parameters (see TwoQubitTemplate layout). */
    std::vector<double> params;
    /** True when Fd met the exact threshold. */
    bool meets_threshold = false;

    /** Overall implementation fidelity Fu = Fd * Fh (Eq. 2). */
    double overallFidelity() const
    {
        return decomposition_fidelity * hardware_fidelity;
    }
};

/**
 * Preallocated scratch for one decomposition sweep: the BFGS workspace,
 * the template's matrix ping-pong buffers, the block of multistart
 * starting points, and the incumbent parameter vector. One instance
 * serves a whole decomposeExact/decomposeApproximate layer sweep (its
 * buffers are resized per problem), so the optimizer's inner loops run
 * allocation-free after the first multistart block.
 */
struct NuOpScratch
{
    BfgsWorkspace bfgs;
    TwoQubitTemplate::BuildScratch build;
    /** Starting points of the current multistart block. */
    std::vector<std::vector<double>> block_x0;
    /** Best parameters seen so far in the current layer sweep. */
    std::vector<double> best_params;
};

/** The NuOp compilation pass core. */
class NuOpDecomposer
{
  public:
    explicit NuOpDecomposer(NuOpOptions options = {});

    const NuOpOptions& options() const { return options_; }

    /**
     * Best decomposition fidelity achievable with exactly `layers`
     * applications of the gate. Optionally returns the optimized
     * parameters.
     */
    double bestFidelityForLayers(const Matrix& target,
                                 const HardwareGate& gate, int layers,
                                 std::vector<double>* params_out =
                                     nullptr) const;

    /**
     * Exact decomposition: smallest layer count whose Fd reaches the
     * exact threshold (grows 0..max_layers; returns the best attempt
     * with meets_threshold=false if the threshold was never reached).
     */
    Decomposition decomposeExact(const Matrix& target,
                                 const HardwareGate& gate) const;

    /**
     * Approximate / noise-aware decomposition: maximize Fd * Fh over
     * layer counts (Eq. 2), pruning once deeper circuits cannot win.
     */
    Decomposition decomposeApproximate(const Matrix& target,
                                       const HardwareGate& gate) const;

    /**
     * Noise-adaptive selection across gate types: decompose with every
     * candidate and return the one with the best overall fidelity Fu.
     * @param approximate Use Eq. 2 (true) or exact mode (false).
     */
    Decomposition decomposeBest(const Matrix& target,
                                const std::vector<HardwareGate>& gates,
                                bool approximate = true) const;

    /** Fh for a gate repeated `layers` times with 1Q interleavings. */
    double hardwareFidelity(const HardwareGate& gate, int layers) const;

  private:
    /**
     * bestFidelityForLayers over caller-provided scratch — the engine
     * behind the public entry points, which share one scratch across a
     * layer sweep. Bit-identical to the scratch-free wrapper.
     */
    double bestFidelityForLayersScratch(const Matrix& target,
                                        const HardwareGate& gate,
                                        int layers,
                                        std::vector<double>* params_out,
                                        NuOpScratch& scratch) const;

    NuOpOptions options_;
};

} // namespace qiset

#endif // QISET_NUOP_DECOMPOSER_H
