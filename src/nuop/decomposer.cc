#include "nuop/decomposer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "qc/gates.h"

namespace qiset {

namespace {

/** FNV-1a over raw bytes, used to derive multistart seeds. */
uint64_t
fnvMix(uint64_t hash, const void* bytes, size_t size)
{
    const unsigned char* p = static_cast<const unsigned char*>(bytes);
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

uint64_t
fnvMix(uint64_t hash, uint64_t value)
{
    return fnvMix(hash, &value, sizeof(value));
}

/**
 * Hash a matrix through its canonical quantized form — the same
 * rendering the decomposition profile cache keys on, so targets the
 * cache treats as equal always draw the same multistart seeds
 * (bit-different but key-equal unitaries must not race to fill one
 * cache slot with differently-seeded profiles).
 */
uint64_t
hashMatrix(uint64_t hash, const Matrix& m)
{
    hash = fnvMix(hash, m.rows());
    hash = fnvMix(hash, m.cols());
    std::string form = quantizedForm(m);
    return fnvMix(hash, form.data(), form.size());
}

} // namespace

HardwareGate
makeFixedGate(const std::string& name, const Matrix& unitary,
              double fidelity)
{
    HardwareGate gate;
    gate.name = name;
    gate.family = TemplateFamily::Fixed;
    gate.unitary = unitary;
    gate.fidelity = fidelity;
    return gate;
}

NuOpDecomposer::NuOpDecomposer(NuOpOptions options)
    : options_(std::move(options))
{
    QISET_REQUIRE(options_.max_layers >= 1, "max_layers must be >= 1");
    QISET_REQUIRE(options_.multistarts >= 1, "multistarts must be >= 1");
}

double
NuOpDecomposer::hardwareFidelity(const HardwareGate& gate, int layers) const
{
    double f2q = std::pow(gate.fidelity, layers);
    double f1q =
        std::pow(options_.one_qubit_fidelity, 2.0 * (layers + 1));
    return f2q * f1q;
}

double
NuOpDecomposer::bestFidelityForLayers(const Matrix& target,
                                      const HardwareGate& gate, int layers,
                                      std::vector<double>* params_out) const
{
    NuOpScratch scratch;
    return bestFidelityForLayersScratch(target, gate, layers, params_out,
                                        scratch);
}

double
NuOpDecomposer::bestFidelityForLayersScratch(
    const Matrix& target, const HardwareGate& gate, int layers,
    std::vector<double>* params_out, NuOpScratch& scratch) const
{
    QISET_REQUIRE(target.rows() == 4 && target.cols() == 4,
                  "NuOp targets are two-qubit unitaries");
    TwoQubitTemplate templ =
        gate.family == TemplateFamily::Fixed
            ? TwoQubitTemplate(layers, gate.unitary)
            : TwoQubitTemplate(layers, gate.family);

    auto objective = [&](const std::vector<double>& x) {
        return templ.infidelityWithScratch(x, target, scratch.build);
    };

    BfgsOptions bfgs = options_.bfgs;
    bfgs.stop_below =
        std::max(bfgs.stop_below, 0.1 * (1.0 - options_.exact_threshold));

    // Seed deterministically per (target, gate, layers, start index):
    // each multistart draws from its own Rng, so the x0 of start k
    // never depends on how many earlier starts ran, which thread
    // computes the profile, or what was optimized before. Parallel and
    // serial compiles therefore produce bit-identical decompositions.
    uint64_t base_seed = fnvMix(options_.seed, gate.name.data(),
                                gate.name.size());
    base_seed = fnvMix(base_seed, static_cast<uint64_t>(layers));
    base_seed = hashMatrix(base_seed, target);

    double best = 1.0; // infidelity
    scratch.best_params.clear();
    int n = templ.numParams();

    // Starts run in blocks: each block's starting points are drawn up
    // front (per-start RNGs make the draws independent of evaluation
    // order — see the seeding comment above), then the starts run
    // back-to-back over the same BFGS workspace and template scratch,
    // keeping the working set cache-resident across starts. Selection
    // and the exact-threshold early exit replay after every start, so
    // results and the amount of optimization work both match the
    // historical one-start-at-a-time loop exactly.
    constexpr int kStartBlock = 4;
    if (scratch.block_x0.size() < static_cast<size_t>(kStartBlock))
        scratch.block_x0.resize(kStartBlock);
    bool done = false;
    for (int block = 0; block < options_.multistarts && !done;
         block += kStartBlock) {
        int count = std::min(kStartBlock, options_.multistarts - block);
        for (int i = 0; i < count; ++i) {
            // All starts random: the all-zero point is a symmetric
            // saddle of the trace-fidelity landscape and traps
            // gradient descent.
            Rng rng(fnvMix(base_seed,
                           static_cast<uint64_t>(block + i)));
            auto& x0 = scratch.block_x0[i];
            x0.resize(n);
            for (auto& value : x0)
                value = rng.uniform(0.0, 2.0 * gates::kPi);
        }
        for (int i = 0; i < count; ++i) {
            BfgsResult result =
                minimizeBfgs(objective, std::move(scratch.block_x0[i]),
                             bfgs, &scratch.bfgs);
            if (result.value < best) {
                best = result.value;
                scratch.best_params = std::move(result.x);
            }
            if (best < 1.0 - options_.exact_threshold) {
                done = true;
                break;
            }
        }
    }
    if (params_out)
        *params_out = std::move(scratch.best_params);
    return 1.0 - best;
}

namespace {

Decomposition
makeDecomposition(const HardwareGate& gate, int layers, double fd,
                  double fh, std::vector<double> params, double threshold)
{
    Decomposition d;
    d.gate_name = gate.name;
    d.family = gate.family;
    d.gate_unitary = gate.unitary;
    d.layers = layers;
    d.decomposition_fidelity = fd;
    d.hardware_fidelity = fh;
    d.params = std::move(params);
    d.meets_threshold = fd >= threshold;
    return d;
}

} // namespace

Decomposition
NuOpDecomposer::decomposeExact(const Matrix& target,
                               const HardwareGate& gate) const
{
    Decomposition best;
    best.decomposition_fidelity = -1.0;
    NuOpScratch scratch;
    for (int layers = 0; layers <= options_.max_layers; ++layers) {
        std::vector<double> params;
        double fd = bestFidelityForLayersScratch(target, gate, layers,
                                                 &params, scratch);
        if (fd > best.decomposition_fidelity) {
            best = makeDecomposition(gate, layers, fd,
                                     hardwareFidelity(gate, layers),
                                     std::move(params),
                                     options_.exact_threshold);
        }
        if (best.meets_threshold)
            break;
    }
    return best;
}

Decomposition
NuOpDecomposer::decomposeApproximate(const Matrix& target,
                                     const HardwareGate& gate) const
{
    Decomposition best;
    best.decomposition_fidelity = 0.0;
    best.hardware_fidelity = 0.0;
    NuOpScratch scratch;
    for (int layers = 0; layers <= options_.max_layers; ++layers) {
        double fh = hardwareFidelity(gate, layers);
        // Even a perfect Fd cannot beat the incumbent at this depth:
        // deeper templates only lose more hardware fidelity, so stop.
        if (fh <= best.overallFidelity())
            break;
        std::vector<double> params;
        double fd = bestFidelityForLayersScratch(target, gate, layers,
                                                 &params, scratch);
        // Paper templates use >= 1 hardware gate: a zero-layer
        // (local-only) realization is only admissible when it is an
        // exact implementation, not a lossy approximation.
        if (layers == 0 && fd < options_.exact_threshold)
            continue;
        if (fd * fh > best.overallFidelity()) {
            best = makeDecomposition(gate, layers, fd, fh,
                                     std::move(params),
                                     options_.exact_threshold);
        }
        if (best.meets_threshold)
            break; // exact found; deeper circuits only add error.
    }
    return best;
}

Decomposition
NuOpDecomposer::decomposeBest(const Matrix& target,
                              const std::vector<HardwareGate>& gates,
                              bool approximate) const
{
    QISET_REQUIRE(!gates.empty(), "need at least one hardware gate type");
    Decomposition best;
    bool have = false;
    for (const auto& gate : gates) {
        if (gate.fidelity <= 0.0)
            continue; // gate type not calibrated on this pair.
        Decomposition d = approximate ? decomposeApproximate(target, gate)
                                      : decomposeExact(target, gate);
        bool better = !have ||
                      d.overallFidelity() > best.overallFidelity() ||
                      (d.overallFidelity() == best.overallFidelity() &&
                       d.layers < best.layers);
        if (better) {
            best = std::move(d);
            have = true;
        }
    }
    QISET_REQUIRE(have, "no calibrated gate type among the candidates");
    return best;
}

} // namespace qiset
