#ifndef QISET_NUOP_KAK_H
#define QISET_NUOP_KAK_H

/**
 * @file
 * KAK (Cartan) decomposition of two-qubit unitaries and local-
 * equivalence invariants.
 *
 * This provides the linear-algebra baseline the paper compares NuOp
 * against (Google Cirq's KAK-based decomposition routines, Section
 * VII.A):
 *  - magic-basis Cartan factorization U = K1 . exp(i sum c_k P_k) . K2
 *  - Makhlin local invariants,
 *  - Weyl-chamber coordinates,
 *  - minimal CZ/CNOT counts from the Shende-Bullock-Markov criteria.
 */

#include <utility>

#include "qc/matrix.h"

namespace qiset {

/** The magic (Bell) basis change matrix. */
Matrix magicBasis();

/** Makhlin local invariants (g1 complex, g2 real). */
struct MakhlinInvariants
{
    cplx g1;
    double g2;
};

/**
 * Compute the Makhlin invariants of a two-qubit unitary. Two unitaries
 * are equivalent up to single-qubit rotations iff their invariants
 * match.
 */
MakhlinInvariants makhlinInvariants(const Matrix& u);

/**
 * Minimal number of CZ (equivalently CNOT) gates required to implement
 * u exactly, by the Shende-Bullock-Markov trace criteria on
 * gamma(u) = m m^T in the magic basis: 0 if u is local, 1 if
 * tr(gamma) == 0, 2 if tr(gamma) is real, else 3.
 */
int minimalCzCount(const Matrix& u, double tol = 1e-8);

/** Interaction coordinates of the canonical gate class. */
struct WeylCoordinates
{
    double cx = 0.0;
    double cy = 0.0;
    double cz = 0.0;
};

/** Canonical interaction exp(i (cx XX + cy YY + cz ZZ)). */
Matrix canonicalGate(const WeylCoordinates& coords);

/**
 * Weyl-chamber coordinates of u with pi/4 >= cx >= cy >= |cz|,
 * found by matching Makhlin invariants (grid seed + BFGS refinement).
 */
WeylCoordinates weylCoordinates(const Matrix& u);

/** Full Cartan factorization of a two-qubit unitary. */
struct KakDecomposition
{
    /** Global phase so that u == phase * k1 * canonical * k2. */
    cplx global_phase;
    /** Left local factor (4x4, equals k1a (x) k1b up to phase). */
    Matrix k1;
    /** Canonical interaction factor. */
    Matrix canonical;
    /** Right local factor. */
    Matrix k2;
    /** Raw interaction angles (one per magic-basis vector). */
    double thetas[4];
    /**
     * Orthogonal frame diagonalizing m^T m in the magic basis:
     * P^T (m^T m) P = diag(e^{2i thetas}). The analytic synthesis
     * engine reuses it to build aligned local rotations.
     */
    Matrix magic_p;
};

/**
 * Compute the Cartan factorization via simultaneous diagonalization of
 * the real and imaginary parts of m^T m in the magic basis.
 * Postcondition: u ~= global_phase * k1 * canonical * k2 and k1, k2
 * are tensor products of single-qubit unitaries.
 */
KakDecomposition kakDecompose(const Matrix& u);

/**
 * Factor a 4x4 tensor-product unitary into its single-qubit parts:
 * l == phase * (a (x) b). Returns {a, b}.
 */
std::pair<Matrix, Matrix> decomposeLocalUnitary(const Matrix& l);

/**
 * Locals relating two locally-equivalent two-qubit unitaries:
 * v == phase * left * u * right with left/right tensor products of
 * single-qubit unitaries. `ok` is false when u and v are not locally
 * equivalent (their magic-basis spectra differ beyond `tol`).
 */
struct LocalEquivalence
{
    bool ok = false;
    cplx phase{1.0, 0.0};
    Matrix left;
    Matrix right;
};

/**
 * Solve the local-equivalence realization problem: find locals with
 * v == phase * left * u * right. Constructive (magic-basis spectrum
 * matching over both SU(4) branches), deterministic, and exact to
 * machine precision for genuinely equivalent inputs. This is the
 * primitive behind the analytic decomposition engine and the
 * Weyl-canonicalized profile-cache dressing.
 */
LocalEquivalence localFactorsBetween(const Matrix& u, const Matrix& v,
                                     double tol = 1e-6);

/** What the analytic KAK engine can do with a hardware gate type. */
enum class AnalyticTier
{
    /** Tier not yet classified (resolved from the unitary on use). */
    Unspecified,
    /** Continuous family / no analytic route beyond local targets. */
    None,
    /** Only targets locally equivalent to the gate (single layer). */
    LocalEquivalence,
    /**
     * CZ-class gate: every SU(4) target synthesizes exactly in the
     * Shende-Bullock-Markov minimal number of applications.
     */
    Universal,
};

/**
 * Classify a fixed two-qubit gate for the analytic engine: Universal
 * when the gate is CZ/CNOT-class (Makhlin invariants of CZ), else
 * LocalEquivalence.
 */
AnalyticTier analyticTier(const Matrix& gate_unitary);

/**
 * Modeled Cirq decomposition gate counts for the Fig. 6 baseline.
 * CZ uses the exact minimal count; SYC / iSWAP / sqrt(iSWAP) use the
 * fixed template sizes Cirq's published routines emit for generic
 * SU(4) inputs (6, 4 and 3 respectively), clamped below by the
 * analytic minimum. Returns -1 for unsupported combinations
 * (Cirq had no sqrt(iSWAP) path for generic QV unitaries).
 */
int cirqBaselineGateCount(const Matrix& target, const char* gate_name);

} // namespace qiset

#endif // QISET_NUOP_KAK_H
