#ifndef QISET_NUOP_TEMPLATE_CIRCUIT_H
#define QISET_NUOP_TEMPLATE_CIRCUIT_H

/**
 * @file
 * NuOp template circuits (Fig. 4 of the paper).
 *
 * A template with i layers alternates arbitrary single-qubit rotations
 * and a two-qubit hardware gate:
 *
 *     (U3 (x) U3) . G . (U3 (x) U3) . G . ... . (U3 (x) U3)
 *
 * For a fixed hardware gate type, the optimization variables are the
 * 6(i+1) single-qubit angles. For the Full-XY / Full-fSim continuous
 * families, the two-qubit gate angles join the variable set (1 or 2
 * extra per layer).
 */

#include <vector>

#include "qc/matrix.h"

namespace qiset {

/** What the two-qubit slots of a template contain. */
enum class TemplateFamily
{
    /** A fixed 4x4 gate unitary repeated in every layer. */
    Fixed,
    /** XY(theta) with theta a free variable per layer. */
    FullXy,
    /** fSim(theta, phi) with both angles free per layer. */
    FullFsim,
    /**
     * CZ(phi) with phi a free variable per layer — the continuous
     * Controlled-Phase family of Lacroix et al. (paper ref. [13]).
     */
    FullCphase,
};

/** Parameterized two-qubit decomposition template. */
class TwoQubitTemplate
{
  public:
    /** Template whose layers all use the given fixed hardware gate. */
    TwoQubitTemplate(int layers, Matrix fixed_gate);

    /** Template over a continuous gate family. */
    TwoQubitTemplate(int layers, TemplateFamily family);

    int layers() const { return layers_; }
    TemplateFamily family() const { return family_; }

    /** Total number of optimization variables. */
    int numParams() const;

    /** Build the 4x4 unitary realized by the given parameter vector. */
    Matrix build(const std::vector<double>& params) const;

    /**
     * Reusable matrix scratch for buildInto/infidelityWithScratch. All
     * matrices are SBO-inline (<= 4x4), so a default-constructed
     * scratch never allocates; reusing one across the ~10^5 objective
     * evaluations of a BFGS multistart sweep removes every Matrix
     * temporary from the optimizer's inner loop.
     */
    struct BuildScratch
    {
        Matrix u3a, u3b; ///< single-qubit factors of the current pair
        Matrix pair;     ///< u3a (x) u3b
        Matrix gate;     ///< materialized continuous-family layer gate
        Matrix acc, tmp; ///< multiply ping-pong buffers
    };

    /**
     * build() into a caller-owned matrix using preallocated scratch.
     * Performs the identical sequence of kernel operations as build(),
     * so the result is bit-identical.
     */
    void buildInto(Matrix& out, const std::vector<double>& params,
                   BuildScratch& scratch) const;

    /**
     * Decomposition infidelity 1 - Fd against a target unitary, where
     * Fd = |Tr(Ud^dagger Ut)| / 4 (Eq. 1, phase-invariant).
     */
    double infidelity(const std::vector<double>& params,
                      const Matrix& target) const;

    /**
     * infidelity() over preallocated scratch — the allocation-free BFGS
     * objective. Bit-identical to infidelity().
     */
    double infidelityWithScratch(const std::vector<double>& params,
                                 const Matrix& target,
                                 BuildScratch& scratch) const;

    /**
     * Angles of the two-qubit gate in a given layer for a parameter
     * vector (continuous families only): {theta} or {theta, phi}.
     */
    std::vector<double> layerGateAngles(const std::vector<double>& params,
                                        int layer) const;

    /**
     * The 2(layers+1) single-qubit U3 matrices of the template in
     * execution order [a0, b0, a1, b1, ...] (a acts on the first
     * qubit). Used when emitting the optimized decomposition as a
     * circuit.
     */
    std::vector<Matrix> u3Matrices(const std::vector<double>& params) const;

    /**
     * u3Matrices into a caller-owned vector. The translator emits one
     * block per two-qubit op; reusing the vector (and the inline
     * storage of the matrices already in it) keeps that loop
     * allocation-free after the first block.
     */
    void u3MatricesInto(const std::vector<double>& params,
                        std::vector<Matrix>& out) const;

    /** The two-qubit gate applied in a layer for a parameter vector. */
    Matrix layerGate(const std::vector<double>& params, int layer) const;

  private:
    /** Number of parameters consumed by each two-qubit slot. */
    int gateParamsPerLayer() const;

    /**
     * Shared engine of buildInto/infidelityWithScratch: runs the
     * template product over the scratch and returns a reference to the
     * ping-pong buffer holding the result (valid until the scratch is
     * next used).
     */
    const Matrix& buildWithScratch(const std::vector<double>& params,
                                   BuildScratch& scratch) const;

    int layers_;
    TemplateFamily family_;
    Matrix fixed_gate_;
};

} // namespace qiset

#endif // QISET_NUOP_TEMPLATE_CIRCUIT_H
