#include "nuop/kak.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "nuop/bfgs.h"
#include "qc/gates.h"
#include "qc/linalg.h"

namespace qiset {

namespace {

const cplx kI(0.0, 1.0);

/** Normalize a 4x4 unitary into SU(4); returns the removed phase. */
cplx
normalizeToSu4(Matrix& u)
{
    cplx det = determinant(u);
    // Any branch of the 4th root works: every consumer below is
    // invariant under the residual 4th-root-of-unity ambiguity.
    cplx phase = std::pow(det, 0.25);
    u *= (cplx(1.0, 0.0) / phase);
    return phase;
}

/** gamma(U) = m m^T with m the magic-basis image of the SU(4) rep. */
Matrix
gammaMatrix(const Matrix& u_su4)
{
    Matrix mb = magicBasis();
    Matrix m = mb.dagger() * u_su4 * mb;
    return m * m.transpose();
}

} // namespace

Matrix
magicBasis()
{
    double s = 1.0 / std::sqrt(2.0);
    return Matrix{
        {s, 0.0, 0.0, s * kI},
        {0.0, s * kI, s, 0.0},
        {0.0, s * kI, -s, 0.0},
        {s, 0.0, 0.0, -s * kI},
    };
}

MakhlinInvariants
makhlinInvariants(const Matrix& u)
{
    QISET_REQUIRE(u.rows() == 4 && u.cols() == 4, "expected 4x4 unitary");
    Matrix su = u;
    normalizeToSu4(su);
    Matrix gamma = gammaMatrix(su);
    cplx tr = gamma.trace();
    cplx tr_sq = (gamma * gamma).trace();
    MakhlinInvariants inv;
    inv.g1 = tr * tr / 16.0;
    inv.g2 = ((tr * tr - tr_sq) / 4.0).real();
    return inv;
}

int
minimalCzCount(const Matrix& u, double tol)
{
    Matrix su = u;
    normalizeToSu4(su);
    Matrix gamma = gammaMatrix(su);
    cplx tr = gamma.trace();
    cplx tr_sq = (gamma * gamma).trace();

    // Shende-Bullock-Markov trace criteria (invariant under the
    // SU(4)-branch sign flip of gamma).
    if (std::abs(std::abs(tr.real()) - 4.0) < tol &&
        std::abs(tr.imag()) < tol) {
        return 0; // gamma == +/- I: local unitary.
    }
    if (std::abs(tr) < tol && std::abs(tr_sq - cplx(-4.0, 0.0)) < tol)
        return 1; // spectrum {i, i, -i, -i}: one CZ.
    if (std::abs(tr.imag()) < tol)
        return 2; // trace real: two CZs.
    return 3;
}

Matrix
canonicalGate(const WeylCoordinates& coords)
{
    // XX, YY, ZZ commute, so the exponential factorizes into a block
    // rotation on {|00>, |11>} (angle cx - cy), a block rotation on
    // {|01>, |10>} (angle cx + cy) and the ZZ phase.
    double a = coords.cx - coords.cy;
    double b = coords.cx + coords.cy;
    cplx ez = std::exp(kI * coords.cz);
    cplx ezc = std::exp(-kI * coords.cz);
    Matrix m(4, 4);
    m(0, 0) = ez * std::cos(a);
    m(0, 3) = kI * ez * std::sin(a);
    m(3, 0) = kI * ez * std::sin(a);
    m(3, 3) = ez * std::cos(a);
    m(1, 1) = ezc * std::cos(b);
    m(1, 2) = kI * ezc * std::sin(b);
    m(2, 1) = kI * ezc * std::sin(b);
    m(2, 2) = ezc * std::cos(b);
    return m;
}

WeylCoordinates
weylCoordinates(const Matrix& u)
{
    // Exact eigenphase route: in the magic basis the class phases of
    // u are {cx-cy+cz, cx+cy-cz, -cx+cy+cz, -(cx+cy+cz)} up to the
    // Weyl group (permutations, pairwise sign flips, pi/2 shifts).
    // We extract the phases, enumerate the finite move set and keep
    // the in-chamber candidate whose Makhlin invariants match.
    Matrix su = u;
    normalizeToSu4(su);
    Matrix mb = magicBasis();
    Matrix m = mb.dagger() * su * mb;
    Matrix w = m.transpose() * m;

    Matrix w_re(4, 4), w_im(4, 4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j) {
            w_re(i, j) = w(i, j).real();
            w_im(i, j) = w(i, j).imag();
        }
    Matrix p = simultaneousDiagonalize(w_re, w_im);
    Matrix d = p.transpose() * w * p;
    double theta[4];
    for (int j = 0; j < 4; ++j)
        theta[j] = 0.5 * std::arg(d(j, j));

    MakhlinInvariants target = makhlinInvariants(u);
    auto invariant_distance = [&](const WeylCoordinates& c) {
        MakhlinInvariants inv = makhlinInvariants(canonicalGate(c));
        return std::abs(inv.g1 - target.g1) +
               std::abs(inv.g2 - target.g2);
    };

    const double half = gates::kPi / 2.0;
    const double quarter = gates::kPi / 4.0;
    // Fold into the symmetric interval (-pi/4, pi/4] (the pi/2 shift
    // is a local X(x)X move).
    auto fold = [&](double v) {
        v = std::fmod(v, half);
        if (v < 0.0)
            v += half;
        if (v > quarter + 1e-12)
            v -= half;
        return v;
    };
    // Chamber test: pi/4 >= cx >= cy >= |cz|, cx, cy >= 0; negative
    // cz encodes chirality and identifies with +cz only at cx = pi/4.
    auto in_chamber = [&](const double c[3]) {
        return c[0] <= quarter + 1e-9 && c[0] >= -1e-12 &&
               c[1] >= -1e-12 && c[0] >= c[1] - 1e-12 &&
               c[1] >= std::abs(c[2]) - 1e-12;
    };

    WeylCoordinates best{0.0, 0.0, 0.0};
    double best_dist = invariant_distance(best);

    // Pair-flip move set: flipping the signs of two coordinates is a
    // local conjugation.
    const int flips[4][3] = {
        {1, 1, 1}, {-1, -1, 1}, {-1, 1, -1}, {1, -1, -1}};
    const int orders[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                              {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};

    int perm[4] = {0, 1, 2, 3};
    std::sort(perm, perm + 4);
    do {
        double l1 = theta[perm[0]];
        double l2 = theta[perm[1]];
        double l3 = theta[perm[2]];
        double raw[3] = {fold((l1 + l2) / 2.0), fold((l2 + l3) / 2.0),
                         fold((l1 + l3) / 2.0)};
        for (const auto& flip : flips) {
            double flipped[3];
            for (int k = 0; k < 3; ++k)
                flipped[k] = fold(flip[k] * raw[k]);
            for (const auto& order : orders) {
                double c[3] = {flipped[order[0]], flipped[order[1]],
                               flipped[order[2]]};
                if (!in_chamber(c))
                    continue;
                WeylCoordinates cand{std::max(c[0], 0.0),
                                     std::max(c[1], 0.0), c[2]};
                double dist = invariant_distance(cand);
                // Prefer the cz >= 0 representative on exact ties.
                if (dist < best_dist - 1e-12 ||
                    (dist < best_dist + 1e-12 && cand.cz >= 0.0 &&
                     best.cz < 0.0)) {
                    best_dist = dist;
                    best = cand;
                }
                if (best_dist < 1e-10 && best.cz >= 0.0)
                    return best;
            }
        }
    } while (std::next_permutation(perm, perm + 4));

    QISET_ASSERT(best_dist < 1e-5,
                 "Weyl coordinate extraction failed to verify "
                 "(residual ", best_dist, ")");
    return best;
}

std::pair<Matrix, Matrix>
decomposeLocalUnitary(const Matrix& l)
{
    QISET_REQUIRE(l.rows() == 4 && l.cols() == 4, "expected 4x4 unitary");
    // View l as 2x2 blocks B_ij = a_ij * b; recover b from the largest
    // block, then read off a via tr(b^dagger B_ij) / 2.
    double best_norm = -1.0;
    size_t br = 0, bc = 0;
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j) {
            double norm = 0.0;
            for (size_t r = 0; r < 2; ++r)
                for (size_t c = 0; c < 2; ++c)
                    norm += std::norm(l(2 * i + r, 2 * j + c));
            if (norm > best_norm) {
                best_norm = norm;
                br = i;
                bc = j;
            }
        }
    Matrix b(2, 2);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 2; ++c)
            b(r, c) = l(2 * br + r, 2 * bc + c);
    cplx det_b = determinant(b);
    QISET_REQUIRE(std::abs(det_b) > 1e-12,
                  "input is not a tensor-product unitary");
    b *= (cplx(1.0, 0.0) / std::sqrt(det_b));

    Matrix a(2, 2);
    Matrix b_dag = b.dagger();
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j) {
            Matrix block(2, 2);
            for (size_t r = 0; r < 2; ++r)
                for (size_t c = 0; c < 2; ++c)
                    block(r, c) = l(2 * i + r, 2 * j + c);
            a(i, j) = (b_dag * block).trace() / 2.0;
        }
    return {a, b};
}

KakDecomposition
kakDecompose(const Matrix& u)
{
    QISET_REQUIRE(u.rows() == 4 && u.cols() == 4, "expected 4x4 unitary");
    QISET_REQUIRE(u.isUnitary(1e-8), "kakDecompose needs a unitary input");

    Matrix su = u;
    cplx phase = normalizeToSu4(su);

    Matrix mb = magicBasis();
    Matrix m = mb.dagger() * su * mb;
    Matrix w = m.transpose() * m;

    // W is unitary complex symmetric: its real and imaginary parts are
    // commuting real symmetric matrices.
    Matrix w_re(4, 4), w_im(4, 4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j) {
            w_re(i, j) = w(i, j).real();
            w_im(i, j) = w(i, j).imag();
        }
    Matrix p = simultaneousDiagonalize(w_re, w_im);

    // Ensure P in SO(4).
    if (determinant(p).real() < 0.0)
        for (size_t i = 0; i < 4; ++i)
            p(i, 0) = -p(i, 0);

    Matrix d = p.transpose() * w * p;
    double thetas[4];
    for (int j = 0; j < 4; ++j)
        thetas[j] = 0.5 * std::arg(d(j, j));

    auto build_exp = [&](double sign) {
        Matrix e(4, 4);
        for (int j = 0; j < 4; ++j)
            e(j, j) = std::exp(sign * kI * thetas[j]);
        return e;
    };

    Matrix a = m * p * build_exp(-1.0);
    // A must land in SO(4); a theta branch shift fixes det = -1.
    if (determinant(a).real() < 0.0) {
        thetas[0] += gates::kPi;
        a = m * p * build_exp(-1.0);
    }

    KakDecomposition out;
    out.global_phase = phase;
    out.k1 = mb * a * mb.dagger();
    out.canonical = mb * build_exp(1.0) * mb.dagger();
    out.k2 = mb * p.transpose() * mb.dagger();
    std::memcpy(out.thetas, thetas, sizeof(thetas));
    out.magic_p = std::move(p);
    return out;
}

LocalEquivalence
localFactorsBetween(const Matrix& u, const Matrix& v, double tol)
{
    QISET_REQUIRE(u.rows() == 4 && u.cols() == 4 && v.rows() == 4 &&
                      v.cols() == 4,
                  "localFactorsBetween expects 4x4 unitaries");
    LocalEquivalence out;
    Matrix mb = magicBasis();

    KakDecomposition ku = kakDecompose(u);
    cplx du[4];
    for (int j = 0; j < 4; ++j)
        du[j] = std::exp(2.0 * kI * ku.thetas[j]);

    // The SU(4) normalization branch of v is determined only up to a
    // factor of i, which flips the sign of the magic-basis spectrum
    // {e^{2i theta}}: try both branches and keep the better match.
    KakDecomposition kv;
    int best[4] = {0, 1, 2, 3};
    double best_residual = 1e9;
    cplx branch(1.0, 0.0);
    for (int b = 0; b < 2; ++b) {
        cplx g = b == 0 ? cplx(1.0, 0.0) : cplx(0.0, 1.0);
        KakDecomposition kb = kakDecompose(v * g);
        cplx dv[4];
        for (int j = 0; j < 4; ++j)
            dv[j] = std::exp(2.0 * kI * kb.thetas[j]);
        int perm[4] = {0, 1, 2, 3};
        std::sort(perm, perm + 4);
        do {
            double residual = 0.0;
            for (int j = 0; j < 4; ++j)
                residual += std::abs(dv[j] - du[perm[j]]);
            if (residual < best_residual) {
                best_residual = residual;
                std::copy(perm, perm + 4, best);
                kv = kb;
                branch = g;
            }
        } while (std::next_permutation(perm, perm + 4));
    }
    if (best_residual > tol)
        return out; // not locally equivalent.

    // Permutation Q aligning v's interaction phases with u's:
    // (Q E(theta_u) Q^T)_jj = e^{i theta_u[best[j]]}. Conjugation by a
    // diagonal sign matrix leaves the result unchanged, so flipping a
    // row restores det +1 (SO(4) maps to locals under the magic
    // basis).
    Matrix q(4, 4);
    for (int j = 0; j < 4; ++j)
        q(j, best[j]) = 1.0;
    if (determinant(q).real() < 0.0)
        for (int j = 0; j < 4; ++j)
            q(0, j) = -q(0, j);

    // Per-phase branch signs e^{i theta_v} / e^{i theta_u}; an odd
    // sign count is a global -1 in the local picture, folded into the
    // phase to keep S in SO(4).
    Matrix s(4, 4);
    double sign_product = 1.0;
    for (int j = 0; j < 4; ++j) {
        cplx ratio = std::exp(kI * kv.thetas[j]) /
                     std::exp(kI * ku.thetas[best[j]]);
        double sign = ratio.real() >= 0.0 ? 1.0 : -1.0;
        s(j, j) = sign;
        sign_product *= sign;
    }
    cplx parity_phase(1.0, 0.0);
    if (sign_product < 0.0) {
        for (int j = 0; j < 4; ++j)
            s(j, j) = -s(j, j);
        parity_phase = cplx(-1.0, 0.0);
    }

    Matrix lq = mb * q * mb.dagger();
    Matrix lqs = mb * (q.transpose() * s) * mb.dagger();
    out.left = kv.k1 * lq * ku.k1.dagger();
    out.right = ku.k2.dagger() * lqs * kv.k2;
    out.phase = kv.global_phase / ku.global_phase * parity_phase / branch;
    out.ok = true;
    return out;
}

AnalyticTier
analyticTier(const Matrix& gate_unitary)
{
    if (gate_unitary.rows() != 4 || gate_unitary.cols() != 4)
        return AnalyticTier::None;
    // CZ-class gates (exactly one CZ by the SBM criteria) admit the
    // universal minimal-count synthesis; anything else is served only
    // when the target is locally equivalent to the gate itself.
    return minimalCzCount(gate_unitary) == 1
               ? AnalyticTier::Universal
               : AnalyticTier::LocalEquivalence;
}

int
cirqBaselineGateCount(const Matrix& target, const char* gate_name)
{
    std::string name(gate_name);
    int cz_min = minimalCzCount(target);
    if (cz_min == 0)
        return 0;

    if (name == "CZ" || name == "CNOT")
        return cz_min; // Cirq's CZ path is KAK-optimal.

    // Class tests via Weyl coordinates.
    WeylCoordinates c = weylCoordinates(target);
    const double quarter = gates::kPi / 4.0;
    const double tol = 1e-4;
    bool cphase_class = c.cy < tol && std::abs(c.cz) < tol;
    bool swap_class = std::abs(c.cx - quarter) < tol &&
                      std::abs(c.cy - quarter) < tol &&
                      std::abs(std::abs(c.cz) - quarter) < tol;
    bool xy_class = std::abs(c.cx - c.cy) < tol && std::abs(c.cz) < tol;

    if (name == "SYC") {
        // cirq.google optimized paths: controlled-phase -> 2 SYC,
        // SWAP-like -> 3, everything else via the generic 6-SYC
        // template (the paper quotes 6 per QV unitary).
        if (cphase_class)
            return 2;
        if (swap_class)
            return 3;
        return 6;
    }
    if (name == "iSWAP") {
        // iSWAP-class is native; CPhase needs 2; generic inputs go
        // through Cirq's 4-iSWAP template (paper: 4 per QV unitary).
        if (xy_class && std::abs(c.cx - quarter) < tol)
            return 1;
        if (cphase_class || xy_class)
            return 2;
        return 4;
    }
    if (name == "sqrt_iSWAP") {
        // Cirq v0.8 had no generic-SU(4)-to-sqrt(iSWAP) route
        // ("Cirq does not support decompositions for QV with
        // sqrt(iSWAP)"); only special classes were handled.
        if (cphase_class || xy_class)
            return 2;
        return -1;
    }
    return -1;
}

} // namespace qiset
