#include "nuop/template_circuit.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

TwoQubitTemplate::TwoQubitTemplate(int layers, Matrix fixed_gate)
    : layers_(layers), family_(TemplateFamily::Fixed),
      fixed_gate_(std::move(fixed_gate))
{
    QISET_REQUIRE(layers >= 0, "layer count must be non-negative");
    QISET_REQUIRE(fixed_gate_.rows() == 4 && fixed_gate_.cols() == 4,
                  "fixed gate must be 4x4");
}

TwoQubitTemplate::TwoQubitTemplate(int layers, TemplateFamily family)
    : layers_(layers), family_(family)
{
    QISET_REQUIRE(layers >= 0, "layer count must be non-negative");
    QISET_REQUIRE(family != TemplateFamily::Fixed,
                  "use the fixed-gate constructor for Fixed templates");
}

int
TwoQubitTemplate::gateParamsPerLayer() const
{
    switch (family_) {
      case TemplateFamily::Fixed:
        return 0;
      case TemplateFamily::FullXy:
        return 1;
      case TemplateFamily::FullFsim:
        return 2;
      case TemplateFamily::FullCphase:
        return 1;
    }
    return 0;
}

int
TwoQubitTemplate::numParams() const
{
    return 6 * (layers_ + 1) + gateParamsPerLayer() * layers_;
}

Matrix
TwoQubitTemplate::build(const std::vector<double>& params) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "expected ", numParams(), " params, got ",
                  params.size());

    size_t p = 0;
    auto next_u3_pair = [&]() {
        Matrix a = gates::u3(params[p], params[p + 1], params[p + 2]);
        Matrix b = gates::u3(params[p + 3], params[p + 4], params[p + 5]);
        p += 6;
        return a.kron(b);
    };

    Matrix unitary = next_u3_pair();
    for (int layer = 0; layer < layers_; ++layer) {
        Matrix gate;
        switch (family_) {
          case TemplateFamily::Fixed:
            gate = fixed_gate_;
            break;
          case TemplateFamily::FullXy:
            gate = gates::xy(params[p]);
            p += 1;
            break;
          case TemplateFamily::FullFsim:
            gate = gates::fsim(params[p], params[p + 1]);
            p += 2;
            break;
          case TemplateFamily::FullCphase:
            gate = gates::cphase(params[p]);
            p += 1;
            break;
        }
        unitary = gate * unitary;
        unitary = next_u3_pair() * unitary;
    }
    return unitary;
}

double
TwoQubitTemplate::infidelity(const std::vector<double>& params,
                             const Matrix& target) const
{
    return 1.0 - traceFidelity(build(params), target);
}

std::vector<Matrix>
TwoQubitTemplate::u3Matrices(const std::vector<double>& params) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "parameter arity mismatch");
    std::vector<Matrix> out;
    u3MatricesInto(params, out);
    return out;
}

void
TwoQubitTemplate::u3MatricesInto(const std::vector<double>& params,
                                 std::vector<Matrix>& out) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "parameter arity mismatch");
    out.resize(2 * (layers_ + 1));
    int per_layer = gateParamsPerLayer();
    for (int block = 0; block <= layers_; ++block) {
        size_t base = block * (6 + per_layer);
        out[2 * block] =
            gates::u3(params[base], params[base + 1], params[base + 2]);
        out[2 * block + 1] = gates::u3(params[base + 3],
                                       params[base + 4],
                                       params[base + 5]);
    }
}

Matrix
TwoQubitTemplate::layerGate(const std::vector<double>& params,
                            int layer) const
{
    QISET_REQUIRE(layer >= 0 && layer < layers_, "layer out of range");
    switch (family_) {
      case TemplateFamily::Fixed:
        return fixed_gate_;
      case TemplateFamily::FullXy:
        return gates::xy(layerGateAngles(params, layer)[0]);
      case TemplateFamily::FullFsim: {
        auto angles = layerGateAngles(params, layer);
        return gates::fsim(angles[0], angles[1]);
      }
      case TemplateFamily::FullCphase:
        return gates::cphase(layerGateAngles(params, layer)[0]);
    }
    return fixed_gate_;
}

std::vector<double>
TwoQubitTemplate::layerGateAngles(const std::vector<double>& params,
                                  int layer) const
{
    QISET_REQUIRE(layer >= 0 && layer < layers_, "layer out of range");
    int per_layer = gateParamsPerLayer();
    QISET_REQUIRE(per_layer > 0,
                  "fixed-gate templates have no free gate angles");
    // Parameter layout: 6 U3 angles, then per-layer gate angles, then 6
    // more U3 angles, ... gate angles of layer L start after
    // 6(L+1) + per_layer*L entries.
    size_t base = 6 * (layer + 1) + per_layer * layer;
    std::vector<double> angles;
    for (int k = 0; k < per_layer; ++k)
        angles.push_back(params[base + k]);
    return angles;
}

} // namespace qiset
