#include "nuop/template_circuit.h"

#include <utility>

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

TwoQubitTemplate::TwoQubitTemplate(int layers, Matrix fixed_gate)
    : layers_(layers), family_(TemplateFamily::Fixed),
      fixed_gate_(std::move(fixed_gate))
{
    QISET_REQUIRE(layers >= 0, "layer count must be non-negative");
    QISET_REQUIRE(fixed_gate_.rows() == 4 && fixed_gate_.cols() == 4,
                  "fixed gate must be 4x4");
}

TwoQubitTemplate::TwoQubitTemplate(int layers, TemplateFamily family)
    : layers_(layers), family_(family)
{
    QISET_REQUIRE(layers >= 0, "layer count must be non-negative");
    QISET_REQUIRE(family != TemplateFamily::Fixed,
                  "use the fixed-gate constructor for Fixed templates");
}

int
TwoQubitTemplate::gateParamsPerLayer() const
{
    switch (family_) {
      case TemplateFamily::Fixed:
        return 0;
      case TemplateFamily::FullXy:
        return 1;
      case TemplateFamily::FullFsim:
        return 2;
      case TemplateFamily::FullCphase:
        return 1;
    }
    return 0;
}

int
TwoQubitTemplate::numParams() const
{
    return 6 * (layers_ + 1) + gateParamsPerLayer() * layers_;
}

Matrix
TwoQubitTemplate::build(const std::vector<double>& params) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "expected ", numParams(), " params, got ",
                  params.size());

    size_t p = 0;
    auto next_u3_pair = [&]() {
        Matrix a = gates::u3(params[p], params[p + 1], params[p + 2]);
        Matrix b = gates::u3(params[p + 3], params[p + 4], params[p + 5]);
        p += 6;
        return a.kron(b);
    };

    Matrix unitary = next_u3_pair();
    for (int layer = 0; layer < layers_; ++layer) {
        Matrix gate;
        switch (family_) {
          case TemplateFamily::Fixed:
            gate = fixed_gate_;
            break;
          case TemplateFamily::FullXy:
            gate = gates::xy(params[p]);
            p += 1;
            break;
          case TemplateFamily::FullFsim:
            gate = gates::fsim(params[p], params[p + 1]);
            p += 2;
            break;
          case TemplateFamily::FullCphase:
            gate = gates::cphase(params[p]);
            p += 1;
            break;
        }
        unitary = gate * unitary;
        unitary = next_u3_pair() * unitary;
    }
    return unitary;
}

const Matrix&
TwoQubitTemplate::buildWithScratch(const std::vector<double>& params,
                                   BuildScratch& s) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "expected ", numParams(), " params, got ",
                  params.size());

    // Same operation sequence as build(), with every temporary pinned
    // in the scratch: pair products via kronInto, layer products
    // ping-ponging between acc and tmp via multiplyInto (which matches
    // operator* bit for bit).
    size_t p = 0;
    auto next_u3_pair_into = [&](Matrix& dst) {
        gates::u3Into(s.u3a, params[p], params[p + 1], params[p + 2]);
        gates::u3Into(s.u3b, params[p + 3], params[p + 4], params[p + 5]);
        p += 6;
        Matrix::kronInto(dst, s.u3a, s.u3b);
    };

    Matrix* cur = &s.acc;
    Matrix* nxt = &s.tmp;
    next_u3_pair_into(*cur);
    for (int layer = 0; layer < layers_; ++layer) {
        const Matrix* gate = &fixed_gate_;
        switch (family_) {
          case TemplateFamily::Fixed:
            break;
          case TemplateFamily::FullXy:
            s.gate = gates::xy(params[p]);
            p += 1;
            gate = &s.gate;
            break;
          case TemplateFamily::FullFsim:
            s.gate = gates::fsim(params[p], params[p + 1]);
            p += 2;
            gate = &s.gate;
            break;
          case TemplateFamily::FullCphase:
            s.gate = gates::cphase(params[p]);
            p += 1;
            gate = &s.gate;
            break;
        }
        Matrix::multiplyInto(*nxt, *gate, *cur);
        std::swap(cur, nxt);
        next_u3_pair_into(s.pair);
        Matrix::multiplyInto(*nxt, s.pair, *cur);
        std::swap(cur, nxt);
    }
    return *cur;
}

void
TwoQubitTemplate::buildInto(Matrix& out, const std::vector<double>& params,
                            BuildScratch& scratch) const
{
    out = buildWithScratch(params, scratch);
}

double
TwoQubitTemplate::infidelity(const std::vector<double>& params,
                             const Matrix& target) const
{
    return 1.0 - traceFidelity(build(params), target);
}

double
TwoQubitTemplate::infidelityWithScratch(const std::vector<double>& params,
                                        const Matrix& target,
                                        BuildScratch& scratch) const
{
    return 1.0 - traceFidelity(buildWithScratch(params, scratch), target);
}

std::vector<Matrix>
TwoQubitTemplate::u3Matrices(const std::vector<double>& params) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "parameter arity mismatch");
    std::vector<Matrix> out;
    u3MatricesInto(params, out);
    return out;
}

void
TwoQubitTemplate::u3MatricesInto(const std::vector<double>& params,
                                 std::vector<Matrix>& out) const
{
    QISET_REQUIRE(static_cast<int>(params.size()) == numParams(),
                  "parameter arity mismatch");
    out.resize(2 * (layers_ + 1));
    int per_layer = gateParamsPerLayer();
    for (int block = 0; block <= layers_; ++block) {
        size_t base = block * (6 + per_layer);
        out[2 * block] =
            gates::u3(params[base], params[base + 1], params[base + 2]);
        out[2 * block + 1] = gates::u3(params[base + 3],
                                       params[base + 4],
                                       params[base + 5]);
    }
}

Matrix
TwoQubitTemplate::layerGate(const std::vector<double>& params,
                            int layer) const
{
    QISET_REQUIRE(layer >= 0 && layer < layers_, "layer out of range");
    switch (family_) {
      case TemplateFamily::Fixed:
        return fixed_gate_;
      case TemplateFamily::FullXy:
        return gates::xy(layerGateAngles(params, layer)[0]);
      case TemplateFamily::FullFsim: {
        auto angles = layerGateAngles(params, layer);
        return gates::fsim(angles[0], angles[1]);
      }
      case TemplateFamily::FullCphase:
        return gates::cphase(layerGateAngles(params, layer)[0]);
    }
    return fixed_gate_;
}

std::vector<double>
TwoQubitTemplate::layerGateAngles(const std::vector<double>& params,
                                  int layer) const
{
    QISET_REQUIRE(layer >= 0 && layer < layers_, "layer out of range");
    int per_layer = gateParamsPerLayer();
    QISET_REQUIRE(per_layer > 0,
                  "fixed-gate templates have no free gate angles");
    // Parameter layout: 6 U3 angles, then per-layer gate angles, then 6
    // more U3 angles, ... gate angles of layer L start after
    // 6(L+1) + per_layer*L entries.
    size_t base = 6 * (layer + 1) + per_layer * layer;
    std::vector<double> angles;
    for (int k = 0; k < per_layer; ++k)
        angles.push_back(params[base + k]);
    return angles;
}

} // namespace qiset
