#ifndef QISET_NUOP_BFGS_H
#define QISET_NUOP_BFGS_H

/**
 * @file
 * Dense BFGS quasi-Newton minimizer.
 *
 * The paper's NuOp pass optimizes template-circuit rotation angles with
 * scipy's BFGS; this is the equivalent C++ implementation: inverse-
 * Hessian BFGS updates, backtracking Armijo line search, and central-
 * difference numerical gradients. Problem sizes are tiny (6-50
 * variables), so dense O(n^2) updates are ideal.
 */

#include <functional>
#include <vector>

namespace qiset {

/** Objective callback: R^n -> R. */
using ObjectiveFn = std::function<double(const std::vector<double>&)>;

/** Tuning knobs for minimizeBfgs. */
struct BfgsOptions
{
    /** Maximum BFGS iterations. */
    int max_iterations = 200;
    /** Stop when the infinity norm of the gradient drops below this. */
    double gradient_tol = 1e-10;
    /** Stop when the objective improvement drops below this. */
    double value_tol = 1e-14;
    /** Central-difference step for numerical gradients. */
    double finite_diff_eps = 1e-7;
    /**
     * Early exit once the objective drops below this value (useful
     * when any point past a fidelity threshold is equally acceptable).
     */
    double stop_below = -1e300;
};

/** Outcome of a BFGS run. */
struct BfgsResult
{
    /** Minimizer found. */
    std::vector<double> x;
    /** Objective value at x. */
    double value = 0.0;
    /** Iterations consumed. */
    int iterations = 0;
    /** True when a tolerance (not the iteration cap) stopped the run. */
    bool converged = false;
};

/**
 * Minimize f starting from x0.
 *
 * @param f Objective function (evaluated many times; keep it cheap).
 * @param x0 Starting point.
 * @param options Tolerances and limits.
 */
BfgsResult minimizeBfgs(const ObjectiveFn& f, std::vector<double> x0,
                        const BfgsOptions& options = {});

/** Central-difference gradient of f at x (exposed for testing). */
std::vector<double> numericalGradient(const ObjectiveFn& f,
                                      const std::vector<double>& x,
                                      double eps = 1e-7);

} // namespace qiset

#endif // QISET_NUOP_BFGS_H
