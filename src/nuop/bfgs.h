#ifndef QISET_NUOP_BFGS_H
#define QISET_NUOP_BFGS_H

/**
 * @file
 * Dense BFGS quasi-Newton minimizer.
 *
 * The paper's NuOp pass optimizes template-circuit rotation angles with
 * scipy's BFGS; this is the equivalent C++ implementation: inverse-
 * Hessian BFGS updates, backtracking Armijo line search, and central-
 * difference numerical gradients. Problem sizes are tiny (6-50
 * variables), so dense O(n^2) updates are ideal.
 */

#include <functional>
#include <vector>

namespace qiset {

/** Objective callback: R^n -> R. */
using ObjectiveFn = std::function<double(const std::vector<double>&)>;

/** Tuning knobs for minimizeBfgs. */
struct BfgsOptions
{
    /** Maximum BFGS iterations. */
    int max_iterations = 200;
    /** Stop when the infinity norm of the gradient drops below this. */
    double gradient_tol = 1e-10;
    /** Stop when the objective improvement drops below this. */
    double value_tol = 1e-14;
    /** Central-difference step for numerical gradients. */
    double finite_diff_eps = 1e-7;
    /**
     * Early exit once the objective drops below this value (useful
     * when any point past a fidelity threshold is equally acceptable).
     */
    double stop_below = -1e300;
};

/** Outcome of a BFGS run. */
struct BfgsResult
{
    /** Minimizer found. */
    std::vector<double> x;
    /** Objective value at x. */
    double value = 0.0;
    /** Iterations consumed. */
    int iterations = 0;
    /** True when a tolerance (not the iteration cap) stopped the run. */
    bool converged = false;
};

/**
 * Reusable buffers for minimizeBfgs. A default-constructed workspace
 * is empty; the solver sizes every buffer on entry, so one workspace
 * can be reused across problems of different dimension. Reusing it
 * across the ~10^3 solves of a multistart sweep removes every
 * per-iteration heap allocation from the optimizer (the historical
 * loop allocated six vectors per BFGS iteration plus two per gradient
 * evaluation).
 */
struct BfgsWorkspace
{
    std::vector<double> h;         ///< inverse Hessian, n x n
    std::vector<double> grad;      ///< gradient at the incumbent
    std::vector<double> grad_new;  ///< gradient at the line-search point
    std::vector<double> direction; ///< search direction -H g
    std::vector<double> x_new;     ///< line-search trial point
    std::vector<double> s;         ///< x_new - x
    std::vector<double> y;         ///< grad_new - grad
    std::vector<double> hy;        ///< H y
    std::vector<double> probe;     ///< finite-difference probe point
};

/**
 * Minimize f starting from x0.
 *
 * The result is a pure function of (f, x0, options): runs with and
 * without a caller-provided workspace perform the identical sequence
 * of floating-point operations and return bit-identical results.
 *
 * @param f Objective function (evaluated many times; keep it cheap).
 * @param x0 Starting point.
 * @param options Tolerances and limits.
 * @param workspace Optional scratch reused across calls; pass nullptr
 *        (the default) to use per-call local buffers.
 */
BfgsResult minimizeBfgs(const ObjectiveFn& f, std::vector<double> x0,
                        const BfgsOptions& options = {},
                        BfgsWorkspace* workspace = nullptr);

/** Central-difference gradient of f at x (exposed for testing). */
std::vector<double> numericalGradient(const ObjectiveFn& f,
                                      const std::vector<double>& x,
                                      double eps = 1e-7);

/**
 * numericalGradient into caller-owned buffers: `grad` receives the
 * gradient, `probe` is overwritten scratch. Identical arithmetic to
 * numericalGradient.
 */
void numericalGradientInto(const ObjectiveFn& f,
                           const std::vector<double>& x, double eps,
                           std::vector<double>& grad,
                           std::vector<double>& probe);

} // namespace qiset

#endif // QISET_NUOP_BFGS_H
