#include "nuop/bfgs.h"

#include <cmath>
#include <cstddef>

#include "common/error.h"

namespace qiset {

void
numericalGradientInto(const ObjectiveFn& f, const std::vector<double>& x,
                      double eps, std::vector<double>& grad,
                      std::vector<double>& probe)
{
    grad.resize(x.size());
    probe.assign(x.begin(), x.end());
    for (size_t i = 0; i < x.size(); ++i) {
        probe[i] = x[i] + eps;
        double f_plus = f(probe);
        probe[i] = x[i] - eps;
        double f_minus = f(probe);
        probe[i] = x[i];
        grad[i] = (f_plus - f_minus) / (2.0 * eps);
    }
}

std::vector<double>
numericalGradient(const ObjectiveFn& f, const std::vector<double>& x,
                  double eps)
{
    std::vector<double> grad;
    std::vector<double> probe;
    numericalGradientInto(f, x, eps, grad, probe);
    return grad;
}

namespace {

double
infinityNorm(const std::vector<double>& v)
{
    double max_abs = 0.0;
    for (double value : v)
        max_abs = std::max(max_abs, std::abs(value));
    return max_abs;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace

BfgsResult
minimizeBfgs(const ObjectiveFn& f, std::vector<double> x0,
             const BfgsOptions& options, BfgsWorkspace* workspace)
{
    QISET_REQUIRE(!x0.empty(), "BFGS needs at least one variable");
    const size_t n = x0.size();

    // All scratch lives in the workspace (caller-provided so a
    // multistart sweep pays the allocations once, or a local one for
    // one-shot calls). Every buffer is (re)sized here, so a workspace
    // can hop between problems of different dimension.
    BfgsWorkspace local;
    BfgsWorkspace& ws = workspace ? *workspace : local;

    // Inverse Hessian approximation, initialized to identity.
    ws.h.assign(n * n, 0.0);
    for (size_t i = 0; i < n; ++i)
        ws.h[i * n + i] = 1.0;
    ws.direction.resize(n);
    ws.x_new.resize(n);
    ws.s.resize(n);
    ws.y.resize(n);

    BfgsResult result;
    result.x = std::move(x0);
    result.value = f(result.x);
    numericalGradientInto(f, result.x, options.finite_diff_eps, ws.grad,
                          ws.probe);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        result.iterations = iter + 1;
        if (result.value < options.stop_below) {
            result.converged = true;
            break;
        }
        if (infinityNorm(ws.grad) < options.gradient_tol) {
            result.converged = true;
            break;
        }

        // Search direction d = -H g.
        for (size_t i = 0; i < n; ++i) {
            double sum = 0.0;
            for (size_t j = 0; j < n; ++j)
                sum += ws.h[i * n + j] * ws.grad[j];
            ws.direction[i] = -sum;
        }

        double slope = dot(ws.grad, ws.direction);
        if (slope >= 0.0) {
            // H lost positive-definiteness (numerical gradients can do
            // that); reset to steepest descent.
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    ws.h[i * n + j] = (i == j) ? 1.0 : 0.0;
            for (size_t i = 0; i < n; ++i)
                ws.direction[i] = -ws.grad[i];
            slope = dot(ws.grad, ws.direction);
            if (slope >= 0.0) {
                result.converged = true;
                break;
            }
        }

        // Backtracking Armijo line search.
        const double c1 = 1e-4;
        double step = 1.0;
        double f_new = result.value;
        bool step_found = false;
        for (int ls = 0; ls < 40; ++ls) {
            for (size_t i = 0; i < n; ++i)
                ws.x_new[i] = result.x[i] + step * ws.direction[i];
            f_new = f(ws.x_new);
            if (f_new <= result.value + c1 * step * slope) {
                step_found = true;
                break;
            }
            step *= 0.5;
        }
        if (!step_found) {
            result.converged = true;
            break;
        }

        numericalGradientInto(f, ws.x_new, options.finite_diff_eps,
                              ws.grad_new, ws.probe);

        // BFGS inverse-Hessian update (Sherman-Morrison form).
        for (size_t i = 0; i < n; ++i) {
            ws.s[i] = ws.x_new[i] - result.x[i];
            ws.y[i] = ws.grad_new[i] - ws.grad[i];
        }
        double sy = dot(ws.s, ws.y);
        if (sy > 1e-12) {
            double rho = 1.0 / sy;
            // H <- (I - rho s y^T) H (I - rho y s^T) + rho s s^T
            ws.hy.assign(n, 0.0);
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    ws.hy[i] += ws.h[i * n + j] * ws.y[j];
            double yhy = dot(ws.y, ws.hy);
            for (size_t i = 0; i < n; ++i) {
                for (size_t j = 0; j < n; ++j) {
                    ws.h[i * n + j] +=
                        -rho * (ws.s[i] * ws.hy[j] + ws.hy[i] * ws.s[j]) +
                        rho * (1.0 + rho * yhy) * ws.s[i] * ws.s[j];
                }
            }
        }

        double improvement = result.value - f_new;
        result.x = ws.x_new;
        result.value = f_new;
        std::swap(ws.grad, ws.grad_new);

        if (improvement < options.value_tol &&
            infinityNorm(ws.grad) < 1e-6) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace qiset
