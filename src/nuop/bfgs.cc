#include "nuop/bfgs.h"

#include <cmath>
#include <cstddef>

#include "common/error.h"

namespace qiset {

std::vector<double>
numericalGradient(const ObjectiveFn& f, const std::vector<double>& x,
                  double eps)
{
    std::vector<double> grad(x.size());
    std::vector<double> probe = x;
    for (size_t i = 0; i < x.size(); ++i) {
        probe[i] = x[i] + eps;
        double f_plus = f(probe);
        probe[i] = x[i] - eps;
        double f_minus = f(probe);
        probe[i] = x[i];
        grad[i] = (f_plus - f_minus) / (2.0 * eps);
    }
    return grad;
}

namespace {

double
infinityNorm(const std::vector<double>& v)
{
    double max_abs = 0.0;
    for (double value : v)
        max_abs = std::max(max_abs, std::abs(value));
    return max_abs;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace

BfgsResult
minimizeBfgs(const ObjectiveFn& f, std::vector<double> x0,
             const BfgsOptions& options)
{
    QISET_REQUIRE(!x0.empty(), "BFGS needs at least one variable");
    const size_t n = x0.size();

    // Inverse Hessian approximation, initialized to identity.
    std::vector<double> h(n * n, 0.0);
    for (size_t i = 0; i < n; ++i)
        h[i * n + i] = 1.0;

    BfgsResult result;
    result.x = std::move(x0);
    result.value = f(result.x);
    std::vector<double> grad =
        numericalGradient(f, result.x, options.finite_diff_eps);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        result.iterations = iter + 1;
        if (result.value < options.stop_below) {
            result.converged = true;
            break;
        }
        if (infinityNorm(grad) < options.gradient_tol) {
            result.converged = true;
            break;
        }

        // Search direction d = -H g.
        std::vector<double> direction(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            double sum = 0.0;
            for (size_t j = 0; j < n; ++j)
                sum += h[i * n + j] * grad[j];
            direction[i] = -sum;
        }

        double slope = dot(grad, direction);
        if (slope >= 0.0) {
            // H lost positive-definiteness (numerical gradients can do
            // that); reset to steepest descent.
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    h[i * n + j] = (i == j) ? 1.0 : 0.0;
            for (size_t i = 0; i < n; ++i)
                direction[i] = -grad[i];
            slope = dot(grad, direction);
            if (slope >= 0.0) {
                result.converged = true;
                break;
            }
        }

        // Backtracking Armijo line search.
        const double c1 = 1e-4;
        double step = 1.0;
        std::vector<double> x_new(n);
        double f_new = result.value;
        bool step_found = false;
        for (int ls = 0; ls < 40; ++ls) {
            for (size_t i = 0; i < n; ++i)
                x_new[i] = result.x[i] + step * direction[i];
            f_new = f(x_new);
            if (f_new <= result.value + c1 * step * slope) {
                step_found = true;
                break;
            }
            step *= 0.5;
        }
        if (!step_found) {
            result.converged = true;
            break;
        }

        std::vector<double> grad_new =
            numericalGradient(f, x_new, options.finite_diff_eps);

        // BFGS inverse-Hessian update (Sherman-Morrison form).
        std::vector<double> s(n), y(n);
        for (size_t i = 0; i < n; ++i) {
            s[i] = x_new[i] - result.x[i];
            y[i] = grad_new[i] - grad[i];
        }
        double sy = dot(s, y);
        if (sy > 1e-12) {
            double rho = 1.0 / sy;
            // H <- (I - rho s y^T) H (I - rho y s^T) + rho s s^T
            std::vector<double> hy(n, 0.0);
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    hy[i] += h[i * n + j] * y[j];
            double yhy = dot(y, hy);
            for (size_t i = 0; i < n; ++i) {
                for (size_t j = 0; j < n; ++j) {
                    h[i * n + j] += -rho * (s[i] * hy[j] + hy[i] * s[j]) +
                                    rho * (1.0 + rho * yhy) * s[i] * s[j];
                }
            }
        }

        double improvement = result.value - f_new;
        result.x = x_new;
        result.value = f_new;
        grad = std::move(grad_new);

        if (improvement < options.value_tol &&
            infinityNorm(grad) < 1e-6) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace qiset
