#ifndef QISET_NUOP_DECOMPOSITION_STRATEGY_H
#define QISET_NUOP_DECOMPOSITION_STRATEGY_H

/**
 * @file
 * Pluggable two-qubit decomposition engines.
 *
 * Translation is a policy, not a fixed algorithm: how a (target
 * unitary, hardware gate type) pair turns into a fidelity profile is
 * delegated to a DecompositionStrategy resolved from a name registry
 * (mirroring RoutingStrategy for SWAP routing). Three engines ship
 * built in:
 *
 *  - "nuop": the paper's numerical engine — BFGS multistarts over
 *    layered templates (Section V). Bit-identical to the historical
 *    hard-wired path.
 *  - "kak":  analytic Cartan synthesis, the paper's Cirq-style
 *    baseline (Section VII.A). Local targets cost zero layers; any
 *    target locally equivalent to the gate costs one; CZ-class gates
 *    synthesize every SU(4) target in the Shende-Bullock-Markov
 *    minimal count (1/2/3) with closed-form locals — no optimizer.
 *  - "auto": tiered — take the analytic path whenever it reaches the
 *    exact threshold, fall back to NuOp otherwise. This bypasses the
 *    BFGS hot path (the dominant cold-cache compile cost) on every
 *    analytically reachable target.
 *
 * "kak" and "auto" additionally canonicalize cache keys by
 * Weyl-chamber coordinates: locally-equivalent targets (rampant across
 * the QFT/QAOA controlled-phase families once routing and
 * consolidation dress them with 1Q factors) share one profile entry,
 * and the translator re-dresses the cached circuit with the exact
 * local factors at emission time (localFactorsBetween).
 *
 * Extension point: implement DecompositionStrategy, then
 * registerDecompositionStrategy("name", factory) once at startup;
 * CompileOptions::decomposition = "name" selects it everywhere (see
 * src/compiler/README.md).
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nuop/kak.h"
#include "nuop/template_circuit.h"
#include "qc/matrix.h"

namespace qiset {

class NuOpDecomposer;

/** Best achievable Fd and parameters at one template depth. */
struct LayerFit
{
    int layers = 0;
    double fd = 0.0;
    std::vector<double> params;
};

/** All layer fits of one (target unitary, hardware gate type) pair. */
struct GateProfile
{
    /** Calibration key: "S1".."S7", "SWAP", "XY" or "fSim". */
    std::string type_name;
    TemplateFamily family = TemplateFamily::Fixed;
    Matrix unitary; // Fixed family only.
    std::vector<LayerFit> fits;
    /** Engine that computed the fits ("nuop" or "kak"). */
    std::string engine = "nuop";
};

/** Hardware gate specification a profile is computed against. */
struct GateSpec
{
    std::string type_name;
    TemplateFamily family = TemplateFamily::Fixed;
    Matrix unitary;
    /**
     * Analytic availability this spec advertises (filled by
     * gateSpecs() from the instruction set; Unspecified resolves from
     * the unitary on first use).
     */
    AnalyticTier analytic = AnalyticTier::Unspecified;
};

/** Raw, strategy-agnostic cache key core of a (target, spec) pair. */
std::string profileKeyCore(const Matrix& target, const GateSpec& spec);

/** Append profileKeyCore(target, spec) to `out` without a temporary. */
void appendProfileKeyCore(std::string& out, const Matrix& target,
                          const GateSpec& spec);

/**
 * One decomposition engine. Implementations must be deterministic:
 * key-equal targets must produce bit-identical profiles regardless of
 * thread or call order (the shared ProfileCache relies on it).
 */
class DecompositionStrategy
{
  public:
    virtual ~DecompositionStrategy() = default;

    /** Registry name ("nuop", "kak", "auto"). */
    virtual std::string name() const = 0;

    /**
     * True when profiles are stored against the Weyl-canonical
     * representative of the target's local-equivalence class and the
     * translator must re-dress emitted circuits per concrete target.
     */
    virtual bool canonicalizesTargets() const { return false; }

    /**
     * The representative unitary the profile is computed and stored
     * against: the target itself for raw-keyed engines, the rounded
     * Weyl-chamber canonical gate for canonicalizing ones. Key-equal
     * targets always share one representative bit for bit.
     */
    virtual Matrix profileTarget(const Matrix& target) const
    {
        return target;
    }

    /**
     * Cache key of (target, spec). Embeds the engine tag (and the
     * canonicalized class for canonicalizing engines) so different
     * strategies never collide inside one shared ProfileCache.
     */
    virtual std::string cacheKey(const Matrix& target,
                                 const GateSpec& spec) const = 0;

    /**
     * Append cacheKey(target, spec) to `out`. The profile cache calls
     * this with a reused buffer so warm lookups build their key
     * without touching the heap; the built-in engines override it
     * with append-only implementations, and the default simply
     * delegates to cacheKey() so external strategies stay correct
     * (just not allocation-free) without changes.
     */
    virtual void cacheKeyInto(std::string& out, const Matrix& target,
                              const GateSpec& spec) const
    {
        out += cacheKey(target, spec);
    }

    /**
     * Compute the full layer-fit profile of decomposing
     * profileTarget(target) with the gate type. The decomposer
     * supplies the NuOp settings (layer bound, exact threshold,
     * multistart seeds) every engine honors.
     */
    virtual GateProfile
    computeProfile(const Matrix& target, const GateSpec& spec,
                   const NuOpDecomposer& decomposer) const = 0;
};

using DecompositionStrategyFactory =
    std::function<std::unique_ptr<DecompositionStrategy>()>;

/**
 * Register an engine under `name`.
 * @return false when the name is already taken (registration ignored).
 */
bool registerDecompositionStrategy(const std::string& name,
                                   DecompositionStrategyFactory factory);

/**
 * Instantiate the engine registered under `name`.
 * Throws FatalError for unknown names (message lists what exists).
 */
std::unique_ptr<DecompositionStrategy>
makeDecompositionStrategy(const std::string& name);

/** Registered engine names, sorted. */
std::vector<std::string> decompositionStrategyNames();

/**
 * Shared immutable instance of the baseline "nuop" engine — the
 * default for legacy entry points that predate the registry.
 */
const DecompositionStrategy& nuopDecompositionStrategy();

/**
 * Weyl-chamber coordinates of `target` rounded to the canonical key
 * precision (exposed so tests and the translator agree with the
 * engines on class membership bit for bit).
 */
WeylCoordinates canonicalWeylCoordinates(const Matrix& target);

/**
 * Analytic synthesis of `target` into `layers` applications of the
 * fixed gate in `spec` with NuOp-encoded U3 parameters. Exposed for
 * tests; engines call it through computeProfile. Returns fits.params
 * empty (ok=false) when the analytic tier cannot reach the target.
 */
struct AnalyticSynthesis
{
    bool ok = false;
    int layers = 0;
    /** 6*(layers+1) U3 angles in TwoQubitTemplate encoding. */
    std::vector<double> params;
};
AnalyticSynthesis kakSynthesize(const Matrix& target,
                                const GateSpec& spec);

} // namespace qiset

#endif // QISET_NUOP_DECOMPOSITION_STRATEGY_H
