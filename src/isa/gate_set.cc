#include "isa/gate_set.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

Matrix
GateType::unitary() const
{
    if (is_swap)
        return gates::swap();
    return gates::fsim(theta, phi);
}

AnalyticTier
GateType::analyticTier() const
{
    return qiset::analyticTier(unitary());
}

int
GateSet::calibrationTypeCount() const
{
    if (isContinuous()) {
        // The Section VIII discretization: a 19x19 grid of (theta,
        // phi) combinations; 1D families discretize to 19 points.
        if (continuous == ContinuousFamily::FullCphase)
            return 19;
        return 19 * 19;
    }
    return static_cast<int>(types.size());
}

bool
GateSet::hasType(const std::string& type_name) const
{
    for (const auto& type : types)
        if (type.name == type_name)
            return true;
    return false;
}

namespace isa {

namespace {
const double kPi = gates::kPi;

GateType
makeType(const std::string& name, double theta, double phi)
{
    GateType type;
    type.name = name;
    type.theta = theta;
    type.phi = phi;
    return type;
}

} // namespace

GateType
s1()
{
    return makeType("S1", kPi / 2.0, kPi / 6.0);
}

GateType
s2()
{
    return makeType("S2", kPi / 4.0, 0.0);
}

GateType
s3()
{
    return makeType("S3", 0.0, kPi);
}

GateType
s4()
{
    return makeType("S4", kPi / 2.0, 0.0);
}

GateType
s5()
{
    return makeType("S5", kPi / 3.0, 0.0);
}

GateType
s6()
{
    return makeType("S6", 3.0 * kPi / 8.0, 0.0);
}

GateType
s7()
{
    return makeType("S7", kPi / 6.0, kPi);
}

GateType
swapType()
{
    GateType type;
    type.name = "SWAP";
    type.is_swap = true;
    // Closest fSim member (equivalent up to single-qubit rotations).
    type.theta = kPi / 2.0;
    type.phi = kPi;
    return type;
}

std::vector<GateType>
baselineTypes()
{
    return {s1(), s2(), s3(), s4(), s5(), s6(), s7(), swapType()};
}

GateSet
singleTypeSet(int index)
{
    QISET_REQUIRE(index >= 1 && index <= 7, "S-sets are S1..S7");
    GateSet set;
    set.name = "S" + std::to_string(index);
    set.types = {baselineTypes()[index - 1]};
    return set;
}

GateSet
googleSet(int index)
{
    QISET_REQUIRE(index >= 1 && index <= 7, "G-sets are G1..G7");
    GateSet set;
    set.name = "G" + std::to_string(index);
    // G1 = {S1, S2}; each Gi adds the next type; G7 adds SWAP.
    set.types = {s1(), s2()};
    const GateType extras[] = {s3(), s4(), s5(), s6(), s7(), swapType()};
    for (int i = 2; i <= index; ++i)
        set.types.push_back(extras[i - 2]);
    return set;
}

GateSet
rigettiSet(int index)
{
    QISET_REQUIRE(index >= 1 && index <= 5, "R-sets are R1..R5");
    GateSet set;
    set.name = "R" + std::to_string(index);
    switch (index) {
      case 1:
        set.types = {s3(), s4()};
        break;
      case 2:
        set.types = {s2(), s3(), s4()};
        break;
      case 3:
        set.types = {s2(), s3(), s4(), s5()};
        break;
      case 4:
        set.types = {s2(), s3(), s4(), s5(), s6()};
        break;
      case 5:
        set.types = {s2(), s3(), s4(), s5(), s6(), swapType()};
        break;
    }
    return set;
}

GateSet
fullXy()
{
    GateSet set;
    set.name = "FullXY";
    set.continuous = ContinuousFamily::FullXy;
    // The anticipated Rigetti ISA keeps CZ alongside the XY family.
    set.types = {s3()};
    return set;
}

GateSet
fullFsim()
{
    GateSet set;
    set.name = "FullfSim";
    set.continuous = ContinuousFamily::FullFsim;
    return set;
}

GateSet
fullCphase()
{
    GateSet set;
    set.name = "FullCZt";
    set.continuous = ContinuousFamily::FullCphase;
    // Lacroix et al. pair the CZ(phi) family with an iSWAP-type gate
    // for universality beyond the phase sector.
    set.types = {s4()};
    return set;
}

} // namespace isa
} // namespace qiset
