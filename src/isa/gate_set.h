#ifndef QISET_ISA_GATE_SET_H
#define QISET_ISA_GATE_SET_H

/**
 * @file
 * The instruction sets studied in the paper (Tables I and II).
 *
 * A GateType is a fixed point of the fSim(theta, phi) family (plus the
 * native SWAP); a GateSet is a collection of types, optionally a full
 * continuous family (Full XY / Full fSim). Single-qubit rotations are
 * implicit in every set (they make the sets universal).
 */

#include <string>
#include <vector>

#include "nuop/kak.h"
#include "qc/matrix.h"

namespace qiset {

/** One two-qubit hardware gate type. */
struct GateType
{
    /** Canonical name: "S1".."S7", "SYC", "CZ", "SWAP", ... */
    std::string name;
    /** fSim theta parameter. */
    double theta = 0.0;
    /** fSim phi parameter. */
    double phi = 0.0;
    /** True for the native SWAP gate (not an fSim member). */
    bool is_swap = false;

    /** The 4x4 unitary of this gate type. */
    Matrix unitary() const;

    /**
     * What the analytic KAK decomposition engine can do with this
     * type: Universal for CZ-class gates (every SU(4) target in the
     * SBM-minimal count), LocalEquivalence otherwise (only the type's
     * own interaction class). Gate specs carry this advertisement
     * into the translation layer (see gateSpecs()).
     */
    AnalyticTier analyticTier() const;
};

/** Continuous-family flag for a gate set. */
enum class ContinuousFamily
{
    None,
    /** Rigetti Full XY: {XY(theta), theta in [0, pi]} plus CZ. */
    FullXy,
    /** Google Full fSim: {fSim(theta, phi), theta, phi in [0, pi]}. */
    FullFsim,
    /**
     * Continuous Controlled-Phase family {CZ(phi), phi in [0, pi]}
     * (Lacroix et al., paper ref. [13]) — an extension set.
     */
    FullCphase,
};

/** An instruction set: a named collection of two-qubit gate types. */
struct GateSet
{
    std::string name;
    std::vector<GateType> types;
    ContinuousFamily continuous = ContinuousFamily::None;

    bool isContinuous() const
    {
        return continuous != ContinuousFamily::None;
    }

    /**
     * Number of discrete gate types for the calibration model; the
     * paper's continuous sets correspond to the 19x19 discretized
     * parameter grid (361 combinations) of Section VIII.
     */
    int calibrationTypeCount() const;

    /** True if the set contains a type with the given name. */
    bool hasType(const std::string& type_name) const;
};

namespace isa {

/** Baseline single gate types S1..S7 of Table II. */
GateType s1(); // SYC = fSim(pi/2, pi/6)
GateType s2(); // sqrt(iSWAP) = fSim(pi/4, 0)
GateType s3(); // CZ = fSim(0, pi)
GateType s4(); // iSWAP = fSim(pi/2, 0)
GateType s5(); // fSim(pi/3, 0)
GateType s6(); // fSim(3pi/8, 0)
GateType s7(); // fSim(pi/6, pi)
/** Native hardware SWAP type. */
GateType swapType();

/** All eight baseline types in order (S1..S7, SWAP). */
std::vector<GateType> baselineTypes();

/** Single-type instruction sets S1..S7 (index 1..7). */
GateSet singleTypeSet(int index);

/** Google multi-type sets G1..G7 (index 1..7). */
GateSet googleSet(int index);

/** Rigetti multi-type sets R1..R5 (index 1..5). */
GateSet rigettiSet(int index);

/** Full continuous XY family (Rigetti). */
GateSet fullXy();

/** Full continuous fSim family (Google). */
GateSet fullFsim();

/**
 * Continuous Controlled-Phase set CZ(phi) plus iSWAP, after Lacroix
 * et al.'s demonstration for deep QAOA circuits (extension study).
 */
GateSet fullCphase();

} // namespace isa
} // namespace qiset

#endif // QISET_ISA_GATE_SET_H
