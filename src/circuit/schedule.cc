#include "circuit/schedule.h"

#include <algorithm>
#include <cstring>

#include "circuit/circuit.h"
#include "common/arena.h"
#include "common/error.h"

namespace qiset {

namespace {

/** FNV-1a, the usual incremental byte hash. */
inline uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xffu;
        hash *= 1099511628211ull;
    }
    return hash;
}

inline uint64_t
fnv1aDouble(uint64_t hash, double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double is 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

} // namespace

uint64_t
Schedule::structureFingerprint(const Circuit& circuit)
{
    uint64_t hash = 14695981039346656037ull;
    hash = fnv1a(hash, static_cast<uint64_t>(circuit.numQubits()));
    hash = fnv1a(hash, circuit.size());
    const auto& qubits = circuit.opQubits();
    const auto& durations = circuit.opDurations();
    for (size_t i = 0; i < qubits.size(); ++i) {
        hash = fnv1a(hash, qubits[i].size());
        for (int q : qubits[i])
            hash = fnv1a(hash, static_cast<uint64_t>(q));
        hash = fnv1aDouble(hash, durations[i]);
    }
    return hash;
}

void
Schedule::build(const Circuit& circuit, MemArena* scratch)
{
    // The build touches only the qubit and duration columns — the
    // whole point of the SoA layout: no label/unitary cache traffic.
    const auto& op_qubits = circuit.opQubits();
    const auto& op_durations = circuit.opDurations();
    size_t count = op_qubits.size();
    int n = circuit.numQubits();

    asap_.assign(count, 0);
    alap_.assign(count, 0);
    start_ns_.assign(count, 0.0);
    moments_.ops_.clear();
    moments_.offsets_.clear();
    frontier_.ops_.clear();
    frontier_.offsets_.clear();

    // ASAP: each op starts at the first moment after every op already
    // scheduled on its qubits (this exact recurrence is the contract
    // the crosstalk model and Circuit::depth() rely on). The per-qubit
    // working arrays are pure scratch: bump them from the caller's
    // arena when one is available.
    int* level;
    double* busy_until;
    std::vector<int> level_heap;
    std::vector<double> busy_heap;
    if (scratch) {
        level = scratch->allocateArray<int>(n);
        busy_until = scratch->allocateArray<double>(n);
    } else {
        level_heap.assign(n, 0);
        busy_heap.assign(n, 0.0);
        level = level_heap.data();
        busy_until = busy_heap.data();
    }
    std::fill(level, level + n, 0);
    std::fill(busy_until, busy_until + n, 0.0);
    int depth = 0;
    double duration = 0.0;
    for (size_t i = 0; i < count; ++i) {
        int start = 0;
        double start_ns = 0.0;
        for (int q : op_qubits[i]) {
            start = std::max(start, level[q]);
            start_ns = std::max(start_ns, busy_until[q]);
        }
        asap_[i] = start;
        start_ns_[i] = start_ns;
        double end_ns = start_ns + op_durations[i];
        for (int q : op_qubits[i]) {
            level[q] = start + 1;
            busy_until[q] = end_ns;
        }
        depth = std::max(depth, start + 1);
        duration = std::max(duration, end_ns);
    }
    depth_ = depth;
    duration_ns_ = duration;

    // ALAP: schedule the reversed op order ASAP, then mirror the
    // moment axis. An op's ALAP moment is depth-1 minus its reversed
    // ASAP moment.
    std::fill(level, level + n, 0);
    for (size_t r = 0; r < count; ++r) {
        size_t i = count - 1 - r;
        int start = 0;
        for (int q : op_qubits[i])
            start = std::max(start, level[q]);
        alap_[i] = depth_ - 1 - start;
        for (int q : op_qubits[i])
            level[q] = start + 1;
    }

    // Build the CSR moment tables: count per moment, prefix-sum into
    // offsets, then scatter the op indices in circuit order. Two flat
    // vectors per table (reusing their capacity across rebuilds)
    // instead of one heap allocation per moment.
    size_t two_q = 0;
    moments_.offsets_.assign(static_cast<size_t>(depth_) + 1, 0);
    frontier_.offsets_.assign(static_cast<size_t>(depth_) + 1, 0);
    for (size_t i = 0; i < count; ++i) {
        ++moments_.offsets_[asap_[i] + 1];
        if (op_qubits[i].isTwoQubit()) {
            ++frontier_.offsets_[asap_[i] + 1];
            ++two_q;
        }
    }
    for (int m = 0; m < depth_; ++m) {
        moments_.offsets_[m + 1] += moments_.offsets_[m];
        frontier_.offsets_[m + 1] += frontier_.offsets_[m];
    }
    moments_.ops_.resize(count);
    frontier_.ops_.resize(two_q);
    // Scatter via a running cursor per moment (reusing the scratch
    // arena when one is available); ops stay in circuit order within
    // each moment because i is ascending.
    if (depth_ > 0) {
        size_t* cursor;
        std::vector<size_t> cursor_heap;
        if (scratch) {
            cursor = scratch->allocateArray<size_t>(2 * depth_);
        } else {
            cursor_heap.assign(2 * static_cast<size_t>(depth_), 0);
            cursor = cursor_heap.data();
        }
        size_t* frontier_cursor = cursor + depth_;
        std::copy(moments_.offsets_.begin(),
                  moments_.offsets_.end() - 1, cursor);
        std::copy(frontier_.offsets_.begin(),
                  frontier_.offsets_.end() - 1, frontier_cursor);
        for (size_t i = 0; i < count; ++i) {
            moments_.ops_[cursor[asap_[i]]++] = i;
            if (op_qubits[i].isTwoQubit())
                frontier_.ops_[frontier_cursor[asap_[i]]++] = i;
        }
    }

    fingerprint_ = structureFingerprint(circuit);
    valid_ = true;
}

bool
Schedule::consistentWith(const Circuit& circuit) const
{
    return valid_ && circuit.size() == asap_.size() &&
           fingerprint_ == structureFingerprint(circuit);
}

int
Schedule::asapMoment(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < asap_.size(), "op index ", op,
                  " out of range for ", asap_.size(), " scheduled ops");
    return asap_[op];
}

int
Schedule::alapMoment(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < alap_.size(), "op index ", op,
                  " out of range for ", alap_.size(), " scheduled ops");
    return alap_[op];
}

int
Schedule::slack(size_t op) const
{
    return alapMoment(op) - asapMoment(op);
}

size_t
Schedule::maxParallelTwoQubit() const
{
    size_t best = 0;
    for (const auto& moment : frontier_)
        best = std::max(best, moment.size());
    return best;
}

ScheduleSummary
Schedule::summary() const
{
    QISET_REQUIRE(valid_, "schedule not built");
    ScheduleSummary out;
    out.depth = depth_;
    out.duration_ns = duration_ns_;
    out.max_parallel_2q = maxParallelTwoQubit();
    out.num_ops = numOps();
    return out;
}

double
Schedule::startTimeNs(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < start_ns_.size(), "op index ", op,
                  " out of range for ", start_ns_.size(),
                  " scheduled ops");
    return start_ns_[op];
}

} // namespace qiset
