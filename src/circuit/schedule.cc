#include "circuit/schedule.h"

#include <algorithm>
#include <cstring>

#include "circuit/circuit.h"
#include "common/arena.h"
#include "common/error.h"

namespace qiset {

namespace {

/** FNV-1a, the usual incremental byte hash. */
inline uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xffu;
        hash *= 1099511628211ull;
    }
    return hash;
}

inline uint64_t
fnv1aDouble(uint64_t hash, double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double is 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

} // namespace

uint64_t
Schedule::structureFingerprint(const Circuit& circuit)
{
    uint64_t hash = 14695981039346656037ull;
    hash = fnv1a(hash, static_cast<uint64_t>(circuit.numQubits()));
    hash = fnv1a(hash, circuit.size());
    for (const auto& op : circuit.ops()) {
        hash = fnv1a(hash, op.qubits.size());
        for (int q : op.qubits)
            hash = fnv1a(hash, static_cast<uint64_t>(q));
        hash = fnv1aDouble(hash, op.duration_ns);
    }
    return hash;
}

void
Schedule::build(const Circuit& circuit, MemArena* scratch)
{
    const auto& ops = circuit.ops();
    size_t count = ops.size();
    int n = circuit.numQubits();

    asap_.assign(count, 0);
    alap_.assign(count, 0);
    start_ns_.assign(count, 0.0);
    moments_.clear();
    frontier_.clear();

    // ASAP: each op starts at the first moment after every op already
    // scheduled on its qubits (this exact recurrence is the contract
    // the crosstalk model and Circuit::depth() rely on). The per-qubit
    // working arrays are pure scratch: bump them from the caller's
    // arena when one is available.
    int* level;
    double* busy_until;
    std::vector<int> level_heap;
    std::vector<double> busy_heap;
    if (scratch) {
        level = scratch->allocateArray<int>(n);
        busy_until = scratch->allocateArray<double>(n);
    } else {
        level_heap.assign(n, 0);
        busy_heap.assign(n, 0.0);
        level = level_heap.data();
        busy_until = busy_heap.data();
    }
    std::fill(level, level + n, 0);
    std::fill(busy_until, busy_until + n, 0.0);
    int depth = 0;
    double duration = 0.0;
    for (size_t i = 0; i < count; ++i) {
        int start = 0;
        double start_ns = 0.0;
        for (int q : ops[i].qubits) {
            start = std::max(start, level[q]);
            start_ns = std::max(start_ns, busy_until[q]);
        }
        asap_[i] = start;
        start_ns_[i] = start_ns;
        double end_ns = start_ns + ops[i].duration_ns;
        for (int q : ops[i].qubits) {
            level[q] = start + 1;
            busy_until[q] = end_ns;
        }
        depth = std::max(depth, start + 1);
        duration = std::max(duration, end_ns);
    }
    depth_ = depth;
    duration_ns_ = duration;

    // ALAP: schedule the reversed op order ASAP, then mirror the
    // moment axis. An op's ALAP moment is depth-1 minus its reversed
    // ASAP moment.
    std::fill(level, level + n, 0);
    for (size_t r = 0; r < count; ++r) {
        size_t i = count - 1 - r;
        int start = 0;
        for (int q : ops[i].qubits)
            start = std::max(start, level[q]);
        alap_[i] = depth_ - 1 - start;
        for (int q : ops[i].qubits)
            level[q] = start + 1;
    }

    // Build the moment tables with exact per-moment capacities: count
    // first (cheap, reusing the scratch array), then reserve, so the
    // inner vectors never grow-and-copy during the fill.
    moments_.resize(depth_);
    frontier_.resize(depth_);
    if (depth_ > 0) {
        int* moment_ops = nullptr;
        std::vector<int> moment_heap;
        if (scratch) {
            moment_ops = scratch->allocateArray<int>(2 * depth_);
        } else {
            moment_heap.assign(2 * static_cast<size_t>(depth_), 0);
            moment_ops = moment_heap.data();
        }
        std::fill(moment_ops, moment_ops + 2 * depth_, 0);
        int* frontier_ops = moment_ops + depth_;
        for (size_t i = 0; i < count; ++i) {
            ++moment_ops[asap_[i]];
            if (ops[i].isTwoQubit())
                ++frontier_ops[asap_[i]];
        }
        for (int m = 0; m < depth_; ++m) {
            moments_[m].reserve(moment_ops[m]);
            frontier_[m].reserve(frontier_ops[m]);
        }
    }
    for (size_t i = 0; i < count; ++i) {
        moments_[asap_[i]].push_back(i);
        if (ops[i].isTwoQubit())
            frontier_[asap_[i]].push_back(i);
    }

    fingerprint_ = structureFingerprint(circuit);
    valid_ = true;
}

bool
Schedule::consistentWith(const Circuit& circuit) const
{
    return valid_ && circuit.size() == asap_.size() &&
           fingerprint_ == structureFingerprint(circuit);
}

int
Schedule::asapMoment(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < asap_.size(), "op index ", op,
                  " out of range for ", asap_.size(), " scheduled ops");
    return asap_[op];
}

int
Schedule::alapMoment(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < alap_.size(), "op index ", op,
                  " out of range for ", alap_.size(), " scheduled ops");
    return alap_[op];
}

int
Schedule::slack(size_t op) const
{
    return alapMoment(op) - asapMoment(op);
}

size_t
Schedule::maxParallelTwoQubit() const
{
    size_t best = 0;
    for (const auto& moment : frontier_)
        best = std::max(best, moment.size());
    return best;
}

ScheduleSummary
Schedule::summary() const
{
    QISET_REQUIRE(valid_, "schedule not built");
    ScheduleSummary out;
    out.depth = depth_;
    out.duration_ns = duration_ns_;
    out.max_parallel_2q = maxParallelTwoQubit();
    out.num_ops = numOps();
    return out;
}

double
Schedule::startTimeNs(size_t op) const
{
    QISET_REQUIRE(valid_, "schedule not built");
    QISET_REQUIRE(op < start_ns_.size(), "op index ", op,
                  " out of range for ", start_ns_.size(),
                  " scheduled ops");
    return start_ns_[op];
}

} // namespace qiset
