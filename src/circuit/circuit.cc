#include "circuit/circuit.h"

#include <utility>

#include "circuit/schedule.h"
#include "common/error.h"

namespace qiset {

Circuit::Circuit(int num_qubits)
    : num_qubits_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "circuit needs at least one qubit");
}

void
Circuit::validateQubit(int qubit) const
{
    QISET_REQUIRE(qubit >= 0 && qubit < num_qubits_, "qubit ", qubit,
                  " out of range for ", num_qubits_, "-qubit circuit");
}

void
Circuit::pushOp(Qubits qubits, const Matrix& unitary, LabelId label,
                double error_rate, double duration_ns)
{
    validateQubit(qubits[0]);
    if (qubits.isTwoQubit()) {
        validateQubit(qubits[1]);
        QISET_REQUIRE(qubits[0] != qubits[1], "2Q op on identical qubits");
        QISET_REQUIRE(unitary.rows() == 4 && unitary.cols() == 4,
                      "2Q op needs a 4x4 unitary");
        ++two_qubit_count_;
    } else {
        QISET_REQUIRE(unitary.rows() == 2 && unitary.cols() == 2,
                      "1Q op needs a 2x2 unitary");
    }
    qubits_.push_back(qubits);
    labels_.push_back(label);
    unitaries_.push_back(unitary);
    error_rates_.push_back(error_rate);
    durations_.push_back(duration_ns);
}

void
Circuit::add1q(int qubit, const Matrix& unitary, const std::string& label)
{
    pushOp(Qubits(qubit), unitary, internLabel(label), 0.0, 0.0);
}

void
Circuit::add1q(int qubit, const Matrix& unitary, LabelId label,
               double error_rate, double duration_ns)
{
    pushOp(Qubits(qubit), unitary, label, error_rate, duration_ns);
}

void
Circuit::add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               const std::string& label)
{
    pushOp(Qubits(qubit_a, qubit_b), unitary, internLabel(label), 0.0,
           0.0);
}

void
Circuit::add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               LabelId label, double error_rate, double duration_ns)
{
    pushOp(Qubits(qubit_a, qubit_b), unitary, label, error_rate,
           duration_ns);
}

void
Circuit::add(Operation op)
{
    pushOp(op.qubits, op.unitary, internLabel(op.label), op.error_rate,
           op.duration_ns);
}

void
Circuit::add(ConstOpRef op)
{
    pushOp(op.qubits(), op.unitary(), op.labelId(), op.errorRate(),
           op.durationNs());
}

void
Circuit::add(ConstOpRef op, Qubits remapped)
{
    QISET_REQUIRE(remapped.size() == op.qubits().size(),
                  "remapped operand count differs from source op");
    pushOp(remapped, op.unitary(), op.labelId(), op.errorRate(),
           op.durationNs());
}

void
Circuit::append(const Circuit& other)
{
    QISET_REQUIRE(other.num_qubits_ <= num_qubits_,
                  "appended circuit is wider than target");
    reserveOps(other.size());
    for (size_t i = 0; i < other.size(); ++i)
        pushOp(other.qubits_[i], other.unitaries_[i], other.labels_[i],
               other.error_rates_[i], other.durations_[i]);
}

void
Circuit::reserveOps(size_t additional)
{
    size_t total = qubits_.size() + additional;
    qubits_.reserve(total);
    labels_.reserve(total);
    unitaries_.reserve(total);
    error_rates_.reserve(total);
    durations_.reserve(total);
}

int
Circuit::countLabel(const std::string& label) const
{
    LabelId id = LabelTable::global().find(label);
    if (id == kInvalidLabel)
        return 0;
    int count = 0;
    for (LabelId l : labels_)
        count += (l == id);
    return count;
}

int
Circuit::depth() const
{
    return Schedule(*this).depth();
}

double
Circuit::scheduledDurationNs() const
{
    return Schedule(*this).durationNs();
}

Matrix
embedUnitary(const Matrix& gate, Qubits qubits, int num_qubits)
{
    size_t dim = size_t{1} << num_qubits;
    Matrix full(dim, dim);

    if (qubits.size() == 1) {
        int shift = num_qubits - 1 - qubits[0];
        size_t mask = size_t{1} << shift;
        for (size_t col = 0; col < dim; ++col) {
            size_t base = col & ~mask;
            size_t in_bit = (col & mask) ? 1 : 0;
            for (size_t out_bit = 0; out_bit < 2; ++out_bit) {
                cplx amp = gate(out_bit, in_bit);
                if (amp == cplx(0.0, 0.0))
                    continue;
                size_t row = base | (out_bit ? mask : 0);
                full(row, col) += amp;
            }
        }
        return full;
    }

    QISET_REQUIRE(qubits.size() == 2, "embedUnitary handles 1 or 2 qubits");
    int shift_a = num_qubits - 1 - qubits[0];
    int shift_b = num_qubits - 1 - qubits[1];
    size_t mask_a = size_t{1} << shift_a;
    size_t mask_b = size_t{1} << shift_b;
    for (size_t col = 0; col < dim; ++col) {
        size_t base = col & ~(mask_a | mask_b);
        size_t in_idx =
            (((col & mask_a) ? 1 : 0) << 1) | ((col & mask_b) ? 1 : 0);
        for (size_t out_idx = 0; out_idx < 4; ++out_idx) {
            cplx amp = gate(out_idx, in_idx);
            if (amp == cplx(0.0, 0.0))
                continue;
            size_t row = base | ((out_idx & 2) ? mask_a : 0) |
                         ((out_idx & 1) ? mask_b : 0);
            full(row, col) += amp;
        }
    }
    return full;
}

Matrix
Circuit::unitary() const
{
    QISET_REQUIRE(num_qubits_ <= 12,
                  "full unitary limited to 12 qubits (",
                  num_qubits_, " requested)");
    size_t dim = size_t{1} << num_qubits_;
    Matrix result = Matrix::identity(dim);
    // Ping-pong between result and a product buffer so the loop runs
    // allocation-free after the first op (multiplyInto reuses the
    // 2^n x 2^n buffers instead of materializing fresh temporaries).
    Matrix embedded, product;
    for (size_t i = 0; i < size(); ++i) {
        embedded = embedUnitary(unitaries_[i], qubits_[i], num_qubits_);
        Matrix::multiplyInto(product, embedded, result);
        std::swap(product, result);
    }
    return result;
}

std::string
Circuit::toString() const
{
    std::string out;
    for (size_t i = 0; i < size(); ++i) {
        out += labelName(labels_[i]);
        out += " q";
        out += std::to_string(qubits_[i][0]);
        if (qubits_[i].isTwoQubit()) {
            out += ", q";
            out += std::to_string(qubits_[i][1]);
        }
        out += '\n';
    }
    return out;
}

} // namespace qiset
