#include "circuit/circuit.h"

#include <algorithm>
#include <utility>

#include "circuit/schedule.h"
#include "common/error.h"

namespace qiset {

Circuit::Circuit(int num_qubits)
    : num_qubits_(num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "circuit needs at least one qubit");
}

void
Circuit::validateQubit(int qubit) const
{
    QISET_REQUIRE(qubit >= 0 && qubit < num_qubits_, "qubit ", qubit,
                  " out of range for ", num_qubits_, "-qubit circuit");
}

void
Circuit::add1q(int qubit, const Matrix& unitary, const std::string& label)
{
    validateQubit(qubit);
    QISET_REQUIRE(unitary.rows() == 2 && unitary.cols() == 2,
                  "1Q op needs a 2x2 unitary");
    Operation op;
    op.qubits = {qubit};
    op.unitary = unitary;
    op.label = label;
    ops_.push_back(std::move(op));
}

void
Circuit::add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               const std::string& label)
{
    validateQubit(qubit_a);
    validateQubit(qubit_b);
    QISET_REQUIRE(qubit_a != qubit_b, "2Q op on identical qubits");
    QISET_REQUIRE(unitary.rows() == 4 && unitary.cols() == 4,
                  "2Q op needs a 4x4 unitary");
    Operation op;
    op.qubits = {qubit_a, qubit_b};
    op.unitary = unitary;
    op.label = label;
    ops_.push_back(std::move(op));
}

void
Circuit::add(Operation op)
{
    QISET_REQUIRE(op.qubits.size() == 1 || op.qubits.size() == 2,
                  "operation must touch 1 or 2 qubits");
    for (int q : op.qubits)
        validateQubit(q);
    size_t dim = op.qubits.size() == 1 ? 2 : 4;
    QISET_REQUIRE(op.unitary.rows() == dim && op.unitary.cols() == dim,
                  "operation unitary has wrong shape");
    ops_.push_back(std::move(op));
}

void
Circuit::append(const Circuit& other)
{
    QISET_REQUIRE(other.num_qubits_ <= num_qubits_,
                  "appended circuit is wider than target");
    ops_.reserve(ops_.size() + other.ops_.size());
    for (const auto& op : other.ops_)
        ops_.push_back(op);
}

int
Circuit::twoQubitGateCount() const
{
    return static_cast<int>(std::count_if(
        ops_.begin(), ops_.end(),
        [](const Operation& op) { return op.isTwoQubit(); }));
}

int
Circuit::oneQubitGateCount() const
{
    return static_cast<int>(ops_.size()) - twoQubitGateCount();
}

int
Circuit::countLabel(const std::string& label) const
{
    return static_cast<int>(std::count_if(
        ops_.begin(), ops_.end(),
        [&](const Operation& op) { return op.label == label; }));
}

int
Circuit::depth() const
{
    return Schedule(*this).depth();
}

double
Circuit::scheduledDurationNs() const
{
    return Schedule(*this).durationNs();
}

Matrix
embedUnitary(const Matrix& gate, const std::vector<int>& qubits,
             int num_qubits)
{
    size_t dim = size_t{1} << num_qubits;
    Matrix full(dim, dim);

    if (qubits.size() == 1) {
        int shift = num_qubits - 1 - qubits[0];
        size_t mask = size_t{1} << shift;
        for (size_t col = 0; col < dim; ++col) {
            size_t base = col & ~mask;
            size_t in_bit = (col & mask) ? 1 : 0;
            for (size_t out_bit = 0; out_bit < 2; ++out_bit) {
                cplx amp = gate(out_bit, in_bit);
                if (amp == cplx(0.0, 0.0))
                    continue;
                size_t row = base | (out_bit ? mask : 0);
                full(row, col) += amp;
            }
        }
        return full;
    }

    QISET_REQUIRE(qubits.size() == 2, "embedUnitary handles 1 or 2 qubits");
    int shift_a = num_qubits - 1 - qubits[0];
    int shift_b = num_qubits - 1 - qubits[1];
    size_t mask_a = size_t{1} << shift_a;
    size_t mask_b = size_t{1} << shift_b;
    for (size_t col = 0; col < dim; ++col) {
        size_t base = col & ~(mask_a | mask_b);
        size_t in_idx =
            (((col & mask_a) ? 1 : 0) << 1) | ((col & mask_b) ? 1 : 0);
        for (size_t out_idx = 0; out_idx < 4; ++out_idx) {
            cplx amp = gate(out_idx, in_idx);
            if (amp == cplx(0.0, 0.0))
                continue;
            size_t row = base | ((out_idx & 2) ? mask_a : 0) |
                         ((out_idx & 1) ? mask_b : 0);
            full(row, col) += amp;
        }
    }
    return full;
}

Matrix
Circuit::unitary() const
{
    QISET_REQUIRE(num_qubits_ <= 12,
                  "full unitary limited to 12 qubits (",
                  num_qubits_, " requested)");
    size_t dim = size_t{1} << num_qubits_;
    Matrix result = Matrix::identity(dim);
    // Ping-pong between result and a product buffer so the loop runs
    // allocation-free after the first op (multiplyInto reuses the
    // 2^n x 2^n buffers instead of materializing fresh temporaries).
    Matrix embedded, product;
    for (const auto& op : ops_) {
        embedded = embedUnitary(op.unitary, op.qubits, num_qubits_);
        Matrix::multiplyInto(product, embedded, result);
        std::swap(product, result);
    }
    return result;
}

std::string
Circuit::toString() const
{
    std::string out;
    for (const auto& op : ops_) {
        out += op.label;
        out += " q";
        out += std::to_string(op.qubits[0]);
        if (op.isTwoQubit()) {
            out += ", q";
            out += std::to_string(op.qubits[1]);
        }
        out += '\n';
    }
    return out;
}

} // namespace qiset
