#include "circuit/label_table.h"

#include <mutex>

#include "common/error.h"

namespace qiset {

LabelTable&
LabelTable::global()
{
    // Leaked on purpose: interned label text must outlive every
    // static-storage Circuit and every LabelId cached in a static
    // local, so the table is never destroyed.
    static LabelTable* table = new LabelTable();
    return *table;
}

LabelId
LabelTable::intern(std::string_view name)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = index_.find(name);
        if (it != index_.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    // Re-check: another thread may have interned it between locks.
    auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(std::string_view(names_.back()), id);
    return id;
}

LabelId
LabelTable::find(std::string_view name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string&
LabelTable::name(LabelId id) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    QISET_REQUIRE(id >= 0 && static_cast<size_t>(id) < names_.size(),
                  "unknown label id ", id, " (", names_.size(),
                  " labels interned)");
    return names_[static_cast<size_t>(id)];
}

size_t
LabelTable::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return names_.size();
}

LabelId
internLabel(std::string_view name)
{
    return LabelTable::global().intern(name);
}

const std::string&
labelName(LabelId id)
{
    return LabelTable::global().name(id);
}

} // namespace qiset
