#ifndef QISET_CIRCUIT_CIRCUIT_H
#define QISET_CIRCUIT_CIRCUIT_H

/**
 * @file
 * Quantum circuit intermediate representation.
 *
 * A Circuit is an ordered list of 1Q/2Q unitary operations on a fixed
 * register. Application generators emit circuits of abstract unitaries
 * (SU(4) blocks, ZZ interactions, ...); the compiler rewrites them into
 * circuits of native hardware gates annotated with error rates and
 * durations that the noisy simulators consume.
 *
 * Storage is struct-of-arrays: operands are an inline fixed pair
 * (Qubits), labels are interned LabelIds, and unitary / error-rate /
 * duration live in parallel columns, so pass sweeps touch only the
 * columns they read and appending an op performs no per-op heap
 * allocation (2x2/4x4 unitaries sit in the Matrix small-buffer).
 * Operations are accessed through OpRef/ConstOpRef proxy views
 * (`for (const auto& op : circuit.ops())`) or — for the hottest
 * sweeps — through the raw column accessors (opQubits(), ...).
 *
 * Invalidation: like std::vector, any add or append call may
 * reallocate the columns; OpRefs, column references and iterators
 * obtained before a mutation must not be used after it.
 *
 * Basis convention: for an n-qubit register, qubit 0 is the most
 * significant bit of the computational basis index.
 */

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "circuit/label_table.h"
#include "qc/matrix.h"

namespace qiset {

/**
 * Inline operand list of one operation: one or two qubit indices, no
 * heap. The second slot is -1 for single-qubit ops. Iterable and
 * indexable like the std::vector<int> it replaced.
 */
class Qubits
{
  public:
    Qubits() = default;
    Qubits(int q0) : q_{static_cast<std::int32_t>(q0), -1} {}
    Qubits(int q0, int q1)
        : q_{static_cast<std::int32_t>(q0), static_cast<std::int32_t>(q1)}
    {
    }
    Qubits(std::initializer_list<int> qs)
    {
        size_t i = 0;
        for (int q : qs) {
            if (i < 2)
                q_[i] = static_cast<std::int32_t>(q);
            ++i;
        }
        // Over-long lists are rejected by Circuit::add's validation
        // (size() never exceeds 2 by construction here).
    }
    Qubits(const std::vector<int>& qs)
    {
        for (size_t i = 0; i < qs.size() && i < 2; ++i)
            q_[i] = static_cast<std::int32_t>(qs[i]);
    }

    size_t size() const { return q_[1] >= 0 ? 2 : 1; }
    bool isTwoQubit() const { return q_[1] >= 0; }
    int operator[](size_t i) const { return q_[i]; }

    const std::int32_t* begin() const { return q_; }
    const std::int32_t* end() const { return q_ + size(); }

    friend bool operator==(Qubits a, Qubits b)
    {
        return a.q_[0] == b.q_[0] && a.q_[1] == b.q_[1];
    }
    friend bool operator!=(Qubits a, Qubits b) { return !(a == b); }

  private:
    std::int32_t q_[2] = {-1, -1};
};

/**
 * A single gate application, as a standalone value. This is the
 * *builder* type for Circuit::add(Operation) — inside a Circuit the
 * fields live in separate columns and are read through OpRef views.
 */
struct Operation
{
    /** Qubits acted on; size 1 or 2. For 2Q ops order matters. */
    Qubits qubits;

    /** The gate unitary: 2x2 for 1Q ops, 4x4 for 2Q ops. */
    Matrix unitary;

    /** Human-readable tag, e.g. "U3", "fSim(1.571,0.524)", "ZZ". */
    std::string label;

    /**
     * Hardware error rate of this gate instance (depolarizing strength
     * used by the noise model). Zero for abstract/ideal operations.
     */
    double error_rate = 0.0;

    /** Gate duration in nanoseconds (drives T1/T2 decoherence). */
    double duration_ns = 0.0;

    bool isTwoQubit() const { return qubits.isTwoQubit(); }
};

class Circuit;

/** Read-only proxy for one operation inside a Circuit. */
class ConstOpRef
{
  public:
    ConstOpRef(const Circuit& circuit, size_t index)
        : circuit_(&circuit), index_(index)
    {
    }

    size_t index() const { return index_; }
    inline Qubits qubits() const;
    inline bool isTwoQubit() const;
    inline const Matrix& unitary() const;
    inline LabelId labelId() const;
    /** Label text, resolved through the global LabelTable. */
    inline const std::string& label() const;
    inline double errorRate() const;
    inline double durationNs() const;

  private:
    const Circuit* circuit_;
    size_t index_;
};

/** Mutable proxy for one operation inside a Circuit. */
class OpRef
{
  public:
    OpRef(Circuit& circuit, size_t index)
        : circuit_(&circuit), index_(index)
    {
    }

    size_t index() const { return index_; }
    inline Qubits qubits() const;
    inline bool isTwoQubit() const;
    inline const Matrix& unitary() const;
    inline LabelId labelId() const;
    inline const std::string& label() const;
    inline double errorRate() const;
    inline double durationNs() const;

    inline void setUnitary(const Matrix& unitary) const;
    inline void setLabel(LabelId label) const;
    inline void setLabel(std::string_view label) const;
    inline void setErrorRate(double error_rate) const;
    inline void setDurationNs(double duration_ns) const;

    inline operator ConstOpRef() const;

  private:
    Circuit* circuit_;
    size_t index_;
};

/** Range view over a Circuit's operations yielding Ref proxies. */
template <typename CircuitT, typename Ref>
class OpRange
{
  public:
    class iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Ref;
        using difference_type = std::ptrdiff_t;
        using pointer = const Ref*;
        using reference = Ref;

        iterator(CircuitT& circuit, size_t index)
            : circuit_(&circuit), index_(index)
        {
        }
        Ref operator*() const { return Ref(*circuit_, index_); }
        iterator& operator++()
        {
            ++index_;
            return *this;
        }
        bool operator==(const iterator& other) const
        {
            return index_ == other.index_;
        }
        bool operator!=(const iterator& other) const
        {
            return index_ != other.index_;
        }

      private:
        CircuitT* circuit_;
        size_t index_;
    };

    explicit OpRange(CircuitT& circuit) : circuit_(&circuit) {}
    inline iterator begin() const;
    inline iterator end() const;
    inline size_t size() const;
    bool empty() const { return size() == 0; }
    Ref operator[](size_t index) const { return Ref(*circuit_, index); }

  private:
    CircuitT* circuit_;
};

using ConstOpRange = OpRange<const Circuit, ConstOpRef>;
using MutableOpRange = OpRange<Circuit, OpRef>;

/** An ordered sequence of operations on a fixed-size qubit register. */
class Circuit
{
  public:
    /** Create an empty circuit on num_qubits qubits. */
    explicit Circuit(int num_qubits);

    int numQubits() const { return num_qubits_; }

    /** Append a single-qubit unitary. */
    void add1q(int qubit, const Matrix& unitary,
               const std::string& label = "U1q");

    /** Append a single-qubit unitary with a pre-interned label. */
    void add1q(int qubit, const Matrix& unitary, LabelId label,
               double error_rate = 0.0, double duration_ns = 0.0);

    /** Append a two-qubit unitary on (qubit_a, qubit_b). */
    void add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               const std::string& label = "U2q");

    /** Append a two-qubit unitary with a pre-interned label. */
    void add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               LabelId label, double error_rate = 0.0,
               double duration_ns = 0.0);

    /** Append a pre-built operation (validated). */
    void add(Operation op);

    /**
     * Append a copy of an op from another circuit (column-to-column;
     * no label re-intern, no unitary heap traffic).
     */
    void add(ConstOpRef op);

    /** Append a copy of `op` rewired onto `remapped` qubits. */
    void add(ConstOpRef op, Qubits remapped);

    /** Append every operation of another circuit (same register size). */
    void append(const Circuit& other);

    /**
     * Pre-size every column for `additional` more appends (on top of
     * the current size). Generators and rewrite passes that know their
     * output gate count call this so append loops never reallocate.
     */
    void reserveOps(size_t additional);

    ConstOpRange ops() const { return ConstOpRange(*this); }
    MutableOpRange mutableOps() { return MutableOpRange(*this); }

    size_t size() const { return qubits_.size(); }

    /** Number of two-qubit operations (the paper's instruction count). */
    int twoQubitGateCount() const { return two_qubit_count_; }

    /** Number of single-qubit operations. */
    int oneQubitGateCount() const
    {
        return static_cast<int>(size()) - two_qubit_count_;
    }

    /** Count of operations whose label matches exactly. */
    int countLabel(const std::string& label) const;

    /** ASAP-schedule depth (number of moments; see schedule.h). */
    int depth() const;

    /** Total ASAP-scheduled wall-clock duration in ns (schedule.h). */
    double scheduledDurationNs() const;

    /**
     * Full 2^n x 2^n unitary of the circuit (intended for small n;
     * guards against n > 12).
     */
    Matrix unitary() const;

    /** Multi-line textual listing of the circuit. */
    std::string toString() const;

    // ----------------------------------------------------- SoA columns
    //
    // Raw parallel arrays for allocation-free pass sweeps: routing and
    // scheduling read opQubits()/opDurations(), crosstalk reads
    // opQubits() and rewrites mutableErrorRates(), translation reads
    // opQubits()/opUnitaries(). References follow the std::vector
    // rule: invalidated by any add or append.

    const std::vector<Qubits>& opQubits() const { return qubits_; }
    const std::vector<LabelId>& opLabels() const { return labels_; }
    const std::vector<Matrix>& opUnitaries() const { return unitaries_; }
    const std::vector<double>& opErrorRates() const
    {
        return error_rates_;
    }
    const std::vector<double>& opDurations() const { return durations_; }

    /** Error-rate column, writable (crosstalk/noise re-annotation). */
    std::vector<double>& mutableErrorRates() { return error_rates_; }

  private:
    friend class ConstOpRef;
    friend class OpRef;

    void validateQubit(int qubit) const;
    /** Validated column append shared by every add path. */
    void pushOp(Qubits qubits, const Matrix& unitary, LabelId label,
                double error_rate, double duration_ns);

    int num_qubits_;
    int two_qubit_count_ = 0;
    std::vector<Qubits> qubits_;
    std::vector<LabelId> labels_;
    std::vector<Matrix> unitaries_;
    std::vector<double> error_rates_;
    std::vector<double> durations_;
};

// ------------------------------------------------- inline proxy bodies

inline Qubits
ConstOpRef::qubits() const
{
    return circuit_->qubits_[index_];
}
inline bool
ConstOpRef::isTwoQubit() const
{
    return circuit_->qubits_[index_].isTwoQubit();
}
inline const Matrix&
ConstOpRef::unitary() const
{
    return circuit_->unitaries_[index_];
}
inline LabelId
ConstOpRef::labelId() const
{
    return circuit_->labels_[index_];
}
inline const std::string&
ConstOpRef::label() const
{
    return labelName(circuit_->labels_[index_]);
}
inline double
ConstOpRef::errorRate() const
{
    return circuit_->error_rates_[index_];
}
inline double
ConstOpRef::durationNs() const
{
    return circuit_->durations_[index_];
}

inline Qubits
OpRef::qubits() const
{
    return circuit_->qubits_[index_];
}
inline bool
OpRef::isTwoQubit() const
{
    return circuit_->qubits_[index_].isTwoQubit();
}
inline const Matrix&
OpRef::unitary() const
{
    return circuit_->unitaries_[index_];
}
inline LabelId
OpRef::labelId() const
{
    return circuit_->labels_[index_];
}
inline const std::string&
OpRef::label() const
{
    return labelName(circuit_->labels_[index_]);
}
inline double
OpRef::errorRate() const
{
    return circuit_->error_rates_[index_];
}
inline double
OpRef::durationNs() const
{
    return circuit_->durations_[index_];
}
inline void
OpRef::setUnitary(const Matrix& unitary) const
{
    circuit_->unitaries_[index_] = unitary;
}
inline void
OpRef::setLabel(LabelId label) const
{
    circuit_->labels_[index_] = label;
}
inline void
OpRef::setLabel(std::string_view label) const
{
    circuit_->labels_[index_] = internLabel(label);
}
inline void
OpRef::setErrorRate(double error_rate) const
{
    circuit_->error_rates_[index_] = error_rate;
}
inline void
OpRef::setDurationNs(double duration_ns) const
{
    circuit_->durations_[index_] = duration_ns;
}
inline OpRef::operator ConstOpRef() const
{
    return ConstOpRef(*circuit_, index_);
}

template <typename CircuitT, typename Ref>
inline typename OpRange<CircuitT, Ref>::iterator
OpRange<CircuitT, Ref>::begin() const
{
    return iterator(*circuit_, 0);
}
template <typename CircuitT, typename Ref>
inline typename OpRange<CircuitT, Ref>::iterator
OpRange<CircuitT, Ref>::end() const
{
    return iterator(*circuit_, circuit_->size());
}
template <typename CircuitT, typename Ref>
inline size_t
OpRange<CircuitT, Ref>::size() const
{
    return circuit_->size();
}

/**
 * Embed a 1Q or 2Q gate into the full 2^n register unitary.
 * Exposed for tests and for the ideal-simulation path.
 */
Matrix embedUnitary(const Matrix& gate, Qubits qubits, int num_qubits);

} // namespace qiset

#endif // QISET_CIRCUIT_CIRCUIT_H
