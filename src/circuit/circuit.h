#ifndef QISET_CIRCUIT_CIRCUIT_H
#define QISET_CIRCUIT_CIRCUIT_H

/**
 * @file
 * Quantum circuit intermediate representation.
 *
 * A Circuit is an ordered list of 1Q/2Q unitary operations on a fixed
 * register. Application generators emit circuits of abstract unitaries
 * (SU(4) blocks, ZZ interactions, ...); the compiler rewrites them into
 * circuits of native hardware gates annotated with error rates and
 * durations that the noisy simulators consume.
 *
 * Basis convention: for an n-qubit register, qubit 0 is the most
 * significant bit of the computational basis index.
 */

#include <string>
#include <vector>

#include "qc/matrix.h"

namespace qiset {

/** A single gate application within a circuit. */
struct Operation
{
    /** Qubits acted on; size 1 or 2. For 2Q ops order matters. */
    std::vector<int> qubits;

    /** The gate unitary: 2x2 for 1Q ops, 4x4 for 2Q ops. */
    Matrix unitary;

    /** Human-readable tag, e.g. "U3", "fSim(1.571,0.524)", "ZZ". */
    std::string label;

    /**
     * Hardware error rate of this gate instance (depolarizing strength
     * used by the noise model). Zero for abstract/ideal operations.
     */
    double error_rate = 0.0;

    /** Gate duration in nanoseconds (drives T1/T2 decoherence). */
    double duration_ns = 0.0;

    bool isTwoQubit() const { return qubits.size() == 2; }
};

/** An ordered sequence of operations on a fixed-size qubit register. */
class Circuit
{
  public:
    /** Create an empty circuit on num_qubits qubits. */
    explicit Circuit(int num_qubits);

    int numQubits() const { return num_qubits_; }

    /** Append a single-qubit unitary. */
    void add1q(int qubit, const Matrix& unitary,
               const std::string& label = "U1q");

    /** Append a two-qubit unitary on (qubit_a, qubit_b). */
    void add2q(int qubit_a, int qubit_b, const Matrix& unitary,
               const std::string& label = "U2q");

    /** Append a pre-built operation (validated). */
    void add(Operation op);

    /** Append every operation of another circuit (same register size). */
    void append(const Circuit& other);

    /**
     * Pre-size the op list for `additional` more appends (on top of
     * the current size). Generators and rewrite passes that know their
     * output gate count call this so append loops never reallocate.
     */
    void reserveOps(size_t additional)
    {
        ops_.reserve(ops_.size() + additional);
    }

    const std::vector<Operation>& ops() const { return ops_; }
    std::vector<Operation>& mutableOps() { return ops_; }

    size_t size() const { return ops_.size(); }

    /** Number of two-qubit operations (the paper's instruction count). */
    int twoQubitGateCount() const;

    /** Number of single-qubit operations. */
    int oneQubitGateCount() const;

    /** Count of 2Q operations whose label matches exactly. */
    int countLabel(const std::string& label) const;

    /** ASAP-schedule depth (number of moments; see schedule.h). */
    int depth() const;

    /** Total ASAP-scheduled wall-clock duration in ns (schedule.h). */
    double scheduledDurationNs() const;

    /**
     * Full 2^n x 2^n unitary of the circuit (intended for small n;
     * guards against n > 12).
     */
    Matrix unitary() const;

    /** Multi-line textual listing of the circuit. */
    std::string toString() const;

  private:
    void validateQubit(int qubit) const;

    int num_qubits_;
    std::vector<Operation> ops_;
};

/**
 * Embed a 1Q or 2Q gate into the full 2^n register unitary.
 * Exposed for tests and for the ideal-simulation path.
 */
Matrix embedUnitary(const Matrix& gate, const std::vector<int>& qubits,
                    int num_qubits);

} // namespace qiset

#endif // QISET_CIRCUIT_CIRCUIT_H
