#ifndef QISET_CIRCUIT_DRAW_H
#define QISET_CIRCUIT_DRAW_H

/**
 * @file
 * ASCII circuit rendering for examples, debugging and documentation.
 *
 * Operations are packed into ASAP moments; each moment becomes one
 * column. Two-qubit gates draw a vertical connector between their
 * endpoints:
 *
 *     q0: ─H────●──────
 *               │
 *     q1: ──────CZ──X──
 */

#include <string>

#include "circuit/circuit.h"

namespace qiset {

/**
 * Render the circuit as a multi-line ASCII diagram.
 * @param max_columns Truncate (with an ellipsis) after this many
 *        moments; 0 means no limit.
 */
std::string drawCircuit(const Circuit& circuit, int max_columns = 0);

} // namespace qiset

#endif // QISET_CIRCUIT_DRAW_H
