#include "circuit/draw.h"

#include <algorithm>
#include <vector>

namespace qiset {

namespace {

/** Assign each operation (by op index) to an ASAP moment. */
std::vector<std::vector<size_t>>
buildMoments(const Circuit& circuit)
{
    std::vector<int> level(circuit.numQubits(), 0);
    std::vector<std::vector<size_t>> moments;
    const auto& op_qubits = circuit.opQubits();
    for (size_t i = 0; i < op_qubits.size(); ++i) {
        int start = 0;
        for (int q : op_qubits[i])
            start = std::max(start, level[q]);
        if (static_cast<size_t>(start) >= moments.size())
            moments.resize(start + 1);
        moments[start].push_back(i);
        for (int q : op_qubits[i])
            level[q] = start + 1;
    }
    return moments;
}

} // namespace

std::string
drawCircuit(const Circuit& circuit, int max_columns)
{
    auto moments = buildMoments(circuit);
    size_t shown = moments.size();
    bool truncated = false;
    if (max_columns > 0 &&
        moments.size() > static_cast<size_t>(max_columns)) {
        shown = max_columns;
        truncated = true;
    }

    int n = circuit.numQubits();
    // Two text rows per qubit: the wire row and a connector row.
    std::vector<std::string> wire(n), link(n);

    for (size_t m = 0; m < shown; ++m) {
        // Column width: widest label in this moment (min 1).
        size_t width = 1;
        for (size_t i : moments[m])
            width = std::max(width, circuit.ops()[i].label().size());

        std::vector<std::string> cell(n, std::string(width, '-'));
        std::vector<bool> connect(n, false);
        for (size_t i : moments[m]) {
            ConstOpRef op = circuit.ops()[i];
            Qubits qs = op.qubits();
            if (op.isTwoQubit()) {
                int hi = std::min(qs[0], qs[1]);
                int lo = std::max(qs[0], qs[1]);
                std::string label = op.label();
                label.resize(width, '-');
                cell[hi] = label;
                std::string bullet(width, '-');
                bullet[0] = '*';
                cell[lo] = bullet;
                for (int q = hi; q < lo; ++q)
                    connect[q] = true;
            } else {
                std::string label = op.label();
                label.resize(width, '-');
                cell[qs[0]] = label;
            }
        }
        for (int q = 0; q < n; ++q) {
            wire[q] += "-" + cell[q] + "-";
            std::string below(width + 2, ' ');
            if (connect[q])
                below[1] = '|';
            link[q] += below;
        }
    }

    std::string out;
    for (int q = 0; q < n; ++q) {
        out += "q" + std::to_string(q) + ": " + wire[q];
        if (truncated)
            out += "...";
        out += '\n';
        if (q + 1 < n) {
            out += std::string(4 + std::to_string(q).size() - 1, ' ') +
                   link[q] + '\n';
        }
    }
    return out;
}

} // namespace qiset
