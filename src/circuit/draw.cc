#include "circuit/draw.h"

#include <algorithm>
#include <vector>

namespace qiset {

namespace {

/** Assign each operation to an ASAP moment. */
std::vector<std::vector<const Operation*>>
buildMoments(const Circuit& circuit)
{
    std::vector<int> level(circuit.numQubits(), 0);
    std::vector<std::vector<const Operation*>> moments;
    for (const auto& op : circuit.ops()) {
        int start = 0;
        for (int q : op.qubits)
            start = std::max(start, level[q]);
        if (static_cast<size_t>(start) >= moments.size())
            moments.resize(start + 1);
        moments[start].push_back(&op);
        for (int q : op.qubits)
            level[q] = start + 1;
    }
    return moments;
}

} // namespace

std::string
drawCircuit(const Circuit& circuit, int max_columns)
{
    auto moments = buildMoments(circuit);
    size_t shown = moments.size();
    bool truncated = false;
    if (max_columns > 0 &&
        moments.size() > static_cast<size_t>(max_columns)) {
        shown = max_columns;
        truncated = true;
    }

    int n = circuit.numQubits();
    // Two text rows per qubit: the wire row and a connector row.
    std::vector<std::string> wire(n), link(n);

    for (size_t m = 0; m < shown; ++m) {
        // Column width: widest label in this moment (min 1).
        size_t width = 1;
        for (const Operation* op : moments[m])
            width = std::max(width, op->label.size());

        std::vector<std::string> cell(n, std::string(width, '-'));
        std::vector<bool> connect(n, false);
        for (const Operation* op : moments[m]) {
            if (op->isTwoQubit()) {
                int hi = std::min(op->qubits[0], op->qubits[1]);
                int lo = std::max(op->qubits[0], op->qubits[1]);
                std::string label = op->label;
                label.resize(width, '-');
                cell[hi] = label;
                std::string bullet(width, '-');
                bullet[0] = '*';
                cell[lo] = bullet;
                for (int q = hi; q < lo; ++q)
                    connect[q] = true;
            } else {
                std::string label = op->label;
                label.resize(width, '-');
                cell[op->qubits[0]] = label;
            }
        }
        for (int q = 0; q < n; ++q) {
            wire[q] += "-" + cell[q] + "-";
            std::string below(width + 2, ' ');
            if (connect[q])
                below[1] = '|';
            link[q] += below;
        }
    }

    std::string out;
    for (int q = 0; q < n; ++q) {
        out += "q" + std::to_string(q) + ": " + wire[q];
        if (truncated)
            out += "...";
        out += '\n';
        if (q + 1 < n) {
            out += std::string(4 + std::to_string(q).size() - 1, ' ') +
                   link[q] + '\n';
        }
    }
    return out;
}

} // namespace qiset
