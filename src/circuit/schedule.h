#ifndef QISET_CIRCUIT_SCHEDULE_H
#define QISET_CIRCUIT_SCHEDULE_H

/**
 * @file
 * Moment-level schedule IR.
 *
 * A Schedule assigns every operation of a Circuit to a discrete
 * *moment* (gates in the same moment execute simultaneously) under
 * both ASAP (as-soon-as-possible) and ALAP (as-late-as-possible)
 * dependency orderings, plus wall-clock start times driven by the
 * per-op durations. It is the shared scheduling state of the
 * compiler: the scheduling pass builds one on the CompilationContext,
 * the crosstalk pass reads its per-moment two-qubit frontier to find
 * simultaneously-executing couplers (the paper's Section IX model),
 * the noise-annotation pass reads its critical-path duration, and the
 * SABRE router drives its lookahead from the ASAP moment order.
 *
 * Invalidation: moments depend only on the circuit's *qubit
 * structure* (which qubits each op touches) and durations — not on
 * unitaries, labels or error rates. A structural fingerprint captures
 * exactly that, so consistentWith() stays true across error-rate
 * rewrites (crosstalk inflation) but turns false when ops are
 * inserted, removed or re-wired (SWAP insertion, consolidation,
 * translation). Passes that rewrite the circuit call invalidate();
 * consumers rebuild lazily via CompilationContext::ensureSchedule().
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qiset {

class Circuit;
class MemArena;

/**
 * Cheap cost summary of one schedule — the per-candidate signal the
 * shard planner ranks (circuit, shard) placements by: dependency
 * depth and critical-path duration bound queue time, max 2Q
 * parallelism bounds crosstalk exposure.
 */
struct ScheduleSummary
{
    int depth = 0;
    double duration_ns = 0.0;
    size_t max_parallel_2q = 0;
    size_t num_ops = 0;
};

/**
 * The op indices of one moment — a borrowed slice of the schedule's
 * flat moment table (valid until the schedule is rebuilt).
 */
class MomentView
{
  public:
    MomentView() = default;
    MomentView(const size_t* begin, const size_t* end)
        : begin_(begin), end_(end)
    {
    }

    const size_t* begin() const { return begin_; }
    const size_t* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    size_t operator[](size_t i) const { return begin_[i]; }

  private:
    const size_t* begin_ = nullptr;
    const size_t* end_ = nullptr;
};

/**
 * All moments of a schedule, stored CSR-style: one flat op-index
 * array plus per-moment offsets, so building a schedule costs two
 * vectors instead of one allocation per moment. Iteration yields
 * MomentView slices.
 */
class MomentTable
{
  public:
    class Iterator
    {
      public:
        Iterator(const MomentTable* table, size_t m)
            : table_(table), m_(m)
        {
        }
        MomentView operator*() const { return (*table_)[m_]; }
        Iterator& operator++()
        {
            ++m_;
            return *this;
        }
        bool operator!=(const Iterator& o) const { return m_ != o.m_; }

      private:
        const MomentTable* table_;
        size_t m_;
    };

    /** Number of moments. */
    size_t size() const
    {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    bool empty() const { return size() == 0; }

    MomentView operator[](size_t m) const
    {
        return MomentView(ops_.data() + offsets_[m],
                          ops_.data() + offsets_[m + 1]);
    }

    Iterator begin() const { return Iterator(this, 0); }
    Iterator end() const { return Iterator(this, size()); }

  private:
    friend class Schedule;
    std::vector<size_t> ops_;
    /** size()+1 offsets into ops_ (offsets_[m] .. offsets_[m+1]). */
    std::vector<size_t> offsets_;
};

/** ASAP/ALAP moment assignment of one circuit. */
class Schedule
{
  public:
    /** An empty, invalid schedule (build() before use). */
    Schedule() = default;

    explicit Schedule(const Circuit& circuit) { build(circuit); }

    /**
     * (Re)compute all moment state from the circuit. When `scratch`
     * is given, per-qubit working arrays bump-allocate from it (and
     * are dead once build returns — the arena owner may reset);
     * the schedule's own state always lives on the regular heap, so a
     * built Schedule never holds arena pointers.
     */
    void build(const Circuit& circuit, MemArena* scratch = nullptr);

    /** False until built, or after invalidate(). */
    bool valid() const { return valid_; }

    /** Mark stale (cheap; consumers rebuild lazily). */
    void invalidate() { valid_ = false; }

    /**
     * True when this schedule was built from a circuit with the same
     * qubit structure and durations as `circuit` (error-rate, label
     * and unitary edits keep a schedule consistent).
     */
    bool consistentWith(const Circuit& circuit) const;

    /** Number of scheduled operations. */
    size_t numOps() const { return asap_.size(); }

    /** Number of moments (the circuit's dependency depth). */
    int depth() const { return depth_; }

    /** ASAP moment of op `op` (index into the circuit's op list). */
    int asapMoment(size_t op) const;

    /** ALAP moment of op `op`. */
    int alapMoment(size_t op) const;

    /** alapMoment - asapMoment; zero for critical-path ops. */
    int slack(size_t op) const;

    /** Op indices of each ASAP moment, in circuit order. */
    const MomentTable& moments() const { return moments_; }

    /**
     * Two-qubit op indices of each ASAP moment — the simultaneity
     * frontier the crosstalk model pairs up.
     */
    const MomentTable& twoQubitFrontier() const { return frontier_; }

    /** Largest two-qubit frontier across all moments. */
    size_t maxParallelTwoQubit() const;

    /** ASAP start time of op `op` in ns (durations drive packing). */
    double startTimeNs(size_t op) const;

    /** Critical-path wall-clock duration of the circuit in ns. */
    double durationNs() const { return duration_ns_; }

    /** Snapshot of the ranking signals (depth, duration, 2Q width). */
    ScheduleSummary summary() const;

    /**
     * The structural fingerprint this schedule was built from — a hash
     * of (num_qubits, per-op qubit lists, per-op durations). Stable
     * across error-rate/label/unitary edits; golden tests pin it to
     * detect structural drift in the IR or generators.
     */
    uint64_t fingerprint() const { return fingerprint_; }

  private:
    /** Hash of (num_qubits, per-op qubit lists, per-op durations). */
    static uint64_t structureFingerprint(const Circuit& circuit);

    bool valid_ = false;
    uint64_t fingerprint_ = 0;
    int depth_ = 0;
    double duration_ns_ = 0.0;
    std::vector<int> asap_;
    std::vector<int> alap_;
    std::vector<double> start_ns_;
    MomentTable moments_;
    MomentTable frontier_;
};

} // namespace qiset

#endif // QISET_CIRCUIT_SCHEDULE_H
