#ifndef QISET_CIRCUIT_LABEL_TABLE_H
#define QISET_CIRCUIT_LABEL_TABLE_H

/**
 * @file
 * Interned operation labels.
 *
 * Circuits store a 4-byte LabelId per operation instead of an owning
 * std::string; the id resolves through the process-wide LabelTable.
 * Formatted names like "fSim(1.571,0.524)" are interned once and
 * shared by every op (and every circuit) that uses them, so the
 * compiler's emit loops never heap-copy label text.
 *
 * The table is append-only and thread-safe: interning takes a shared
 * lock on the hit path and upgrades to an exclusive lock only for a
 * genuinely new name, so parallel translation workers interning the
 * same handful of native gate names do not serialize. Ids are dense,
 * never invalidated, and comparable across circuits — two ops carry
 * the same label text iff their LabelIds are equal.
 */

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace qiset {

/** Index of an interned label in the global LabelTable. */
using LabelId = std::int32_t;

/** Sentinel returned by LabelTable::find for unknown names. */
inline constexpr LabelId kInvalidLabel = -1;

/** Process-wide, append-only, thread-safe label intern pool. */
class LabelTable
{
  public:
    /** The table every Circuit resolves labels through. */
    static LabelTable& global();

    /** Id of `name`, interning it on first sight. */
    LabelId intern(std::string_view name);

    /** Id of `name` if already interned, else kInvalidLabel. */
    LabelId find(std::string_view name) const;

    /**
     * Text of an interned id. The reference is stable for the life of
     * the process (entries live in a deque and are never removed).
     */
    const std::string& name(LabelId id) const;

    /** Number of distinct labels interned so far. */
    size_t size() const;

    LabelTable(const LabelTable&) = delete;
    LabelTable& operator=(const LabelTable&) = delete;

  private:
    LabelTable() = default;

    mutable std::shared_mutex mutex_;
    std::deque<std::string> names_; // stable storage; index == LabelId
    // Keys are views into names_ entries (stable in a deque).
    std::unordered_map<std::string_view, LabelId> index_;
};

/** Shorthand for LabelTable::global().intern(name). */
LabelId internLabel(std::string_view name);

/** Shorthand for LabelTable::global().name(id). */
const std::string& labelName(LabelId id);

} // namespace qiset

#endif // QISET_CIRCUIT_LABEL_TABLE_H
