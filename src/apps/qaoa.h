#ifndef QISET_APPS_QAOA_H
#define QISET_APPS_QAOA_H

/**
 * @file
 * QAOA MaxCut ansatz circuits (Farhi et al.). One layer: Hadamards,
 * ZZ(gamma) cost interactions on the problem-graph edges, then RX(beta)
 * mixers. Following Section VI, each n-qubit instance carries ~3n/4
 * random two-qubit ZZ interactions.
 */

#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"

namespace qiset {

/** Random MaxCut problem graph with ceil(3n/4) distinct edges. */
std::vector<std::pair<int, int>> randomMaxcutGraph(int num_qubits,
                                                   Rng& rng);

/**
 * One-layer QAOA MaxCut circuit on the given graph with random
 * (gamma, beta) angles (2Q ops labeled "ZZ").
 */
Circuit makeQaoaCircuit(int num_qubits,
                        const std::vector<std::pair<int, int>>& edges,
                        Rng& rng);

/** Convenience: random graph + random angles. */
Circuit makeRandomQaoaCircuit(int num_qubits, Rng& rng);

} // namespace qiset

#endif // QISET_APPS_QAOA_H
