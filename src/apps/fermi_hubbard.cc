#include "apps/fermi_hubbard.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

Circuit
makeFermiHubbardCircuit(int num_qubits, double hopping_theta,
                        double interaction_beta)
{
    QISET_REQUIRE(num_qubits >= 2, "FH circuits need >= 2 qubits");
    Circuit circuit(num_qubits);

    // Initial product state: alternate X to half-fill the chain.
    for (int q = 0; q < num_qubits; q += 2)
        circuit.add1q(q, gates::pauliX(), "X");

    // Two half-steps of hopping (even bonds then odd bonds) per
    // Trotter round, two rounds: ~4n hopping terms total, interleaved
    // with two rounds of ZZ interactions: ~2n ZZ terms (Section VI).
    for (int round = 0; round < 2; ++round) {
        for (int parity = 0; parity < 2; ++parity) {
            for (int q = parity; q + 1 < num_qubits; q += 2) {
                circuit.add2q(q, q + 1,
                              gates::xxPlusYy(hopping_theta), "XXYY");
            }
        }
        for (int q = 0; q + 1 < num_qubits; ++q)
            circuit.add2q(q, q + 1, gates::zz(interaction_beta), "ZZ");
        // Second pass of hopping inside the round to reach ~4n/round
        // pacing (matches the 2:1 hopping-to-ZZ ratio of the paper).
        for (int parity = 0; parity < 2; ++parity) {
            for (int q = parity; q + 1 < num_qubits; q += 2) {
                circuit.add2q(q, q + 1,
                              gates::xxPlusYy(hopping_theta), "XXYY");
            }
        }
    }
    return circuit;
}

Circuit
makeRandomFermiHubbardCircuit(int num_qubits, Rng& rng)
{
    double theta = rng.uniform(0.1, gates::kPi / 2.0);
    double beta = rng.uniform(0.05, gates::kPi / 4.0);
    return makeFermiHubbardCircuit(num_qubits, theta, beta);
}

} // namespace qiset
