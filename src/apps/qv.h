#ifndef QISET_APPS_QV_H
#define QISET_APPS_QV_H

/**
 * @file
 * Quantum Volume benchmark circuits (Cross et al., Phys. Rev. A 100,
 * 032328). Each n-qubit QV circuit has n layers; every layer applies
 * Haar-random SU(4) unitaries to a random pairing of the qubits.
 */

#include "circuit/circuit.h"
#include "common/rng.h"

namespace qiset {

/** One random n-qubit QV model circuit (2Q ops labeled "SU4"). */
Circuit makeQuantumVolumeCircuit(int num_qubits, Rng& rng);

/** A single Haar-random SU(4) two-qubit unitary (QV building block). */
Matrix randomSu4(Rng& rng);

} // namespace qiset

#endif // QISET_APPS_QV_H
