#include "apps/qaoa.h"

#include <set>

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

std::vector<std::pair<int, int>>
randomMaxcutGraph(int num_qubits, Rng& rng)
{
    QISET_REQUIRE(num_qubits >= 2, "QAOA needs >= 2 qubits");
    int target_edges = (3 * num_qubits + 3) / 4; // ceil(3n/4)
    int max_edges = num_qubits * (num_qubits - 1) / 2;
    target_edges = std::min(target_edges, max_edges);

    std::set<std::pair<int, int>> edges;
    while (static_cast<int>(edges.size()) < target_edges) {
        int a = rng.uniformInt(0, num_qubits - 1);
        int b = rng.uniformInt(0, num_qubits - 1);
        if (a == b)
            continue;
        if (a > b)
            std::swap(a, b);
        edges.insert({a, b});
    }
    return {edges.begin(), edges.end()};
}

Circuit
makeQaoaCircuit(int num_qubits,
                const std::vector<std::pair<int, int>>& edges, Rng& rng)
{
    Circuit circuit(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        circuit.add1q(q, gates::hadamard(), "H");

    double gamma = rng.uniform(0.0, gates::kPi);
    for (const auto& [a, b] : edges)
        circuit.add2q(a, b, gates::zz(gamma), "ZZ");

    double beta = rng.uniform(0.0, gates::kPi);
    for (int q = 0; q < num_qubits; ++q)
        circuit.add1q(q, gates::rx(2.0 * beta), "RX");
    return circuit;
}

Circuit
makeRandomQaoaCircuit(int num_qubits, Rng& rng)
{
    auto edges = randomMaxcutGraph(num_qubits, rng);
    return makeQaoaCircuit(num_qubits, edges, rng);
}

} // namespace qiset
