#include "apps/qft.h"

#include "common/error.h"
#include "qc/gates.h"

namespace qiset {

Circuit
makeQftCircuit(int num_qubits)
{
    QISET_REQUIRE(num_qubits >= 1, "QFT needs >= 1 qubit");
    Circuit circuit(num_qubits);
    for (int i = 0; i < num_qubits; ++i) {
        circuit.add1q(i, gates::hadamard(), "H");
        for (int j = i + 1; j < num_qubits; ++j) {
            // gates::cphase(phi) carries e^{-i phi} on |11> (fSim
            // convention); the QFT needs +pi/2^t, hence the sign.
            double angle = gates::kPi / (1 << (j - i));
            circuit.add2q(j, i, gates::cphase(-angle), "CPhase");
        }
    }
    return circuit;
}

Circuit
makeQftCircuitOnInput(int num_qubits, size_t input)
{
    QISET_REQUIRE(input < (size_t{1} << num_qubits),
                  "input state out of range");
    Circuit circuit(num_qubits);
    // Prepare |input> with X gates, then run the QFT.
    for (int q = 0; q < num_qubits; ++q) {
        size_t mask = size_t{1} << (num_qubits - 1 - q);
        if (input & mask)
            circuit.add1q(q, gates::pauliX(), "X");
    }
    circuit.append(makeQftCircuit(num_qubits));
    return circuit;
}

} // namespace qiset
