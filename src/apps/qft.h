#ifndef QISET_APPS_QFT_H
#define QISET_APPS_QFT_H

/**
 * @file
 * Quantum Fourier Transform circuits: n Hadamards and n(n-1)/2
 * controlled-phase gates CZ(pi/2^t) (Section VI; Nielsen & Chuang).
 */

#include "circuit/circuit.h"

namespace qiset {

/**
 * The n-qubit QFT (without the final bit-reversal SWAPs; the
 * compiler's router handles qubit placement). 2Q ops are labeled
 * "CPhase".
 */
Circuit makeQftCircuit(int num_qubits);

/**
 * QFT applied to the computational basis state |input>; the paper's
 * success-rate metric compares the noisy output against the ideal
 * Fourier state of this input.
 */
Circuit makeQftCircuitOnInput(int num_qubits, size_t input);

} // namespace qiset

#endif // QISET_APPS_QFT_H
