#include "apps/qv.h"

#include "common/error.h"
#include "qc/linalg.h"

namespace qiset {

Matrix
randomSu4(Rng& rng)
{
    Matrix u = haarRandomUnitary(4, rng);
    // Remove the global phase so det == 1 (cosmetic; all consumers are
    // phase-invariant).
    cplx det = determinant(u);
    u *= std::pow(det, -0.25);
    return u;
}

Circuit
makeQuantumVolumeCircuit(int num_qubits, Rng& rng)
{
    QISET_REQUIRE(num_qubits >= 2, "QV circuits need >= 2 qubits");
    Circuit circuit(num_qubits);
    for (int layer = 0; layer < num_qubits; ++layer) {
        std::vector<int> perm = rng.permutation(num_qubits);
        for (int pair = 0; pair + 1 < num_qubits; pair += 2) {
            circuit.add2q(perm[pair], perm[pair + 1], randomSu4(rng),
                          "SU4");
        }
    }
    return circuit;
}

} // namespace qiset
