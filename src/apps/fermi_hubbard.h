#ifndef QISET_APPS_FERMI_HUBBARD_H
#define QISET_APPS_FERMI_HUBBARD_H

/**
 * @file
 * One-dimensional Fermi-Hubbard Trotter-step circuits (Section VI):
 * each n-qubit circuit carries 2n ZZ interactions (on-site/density
 * terms after Jordan-Wigner) and ~4n hopping interactions
 * exp(-i theta (XX + YY)/2) on nearest-neighbour bonds.
 */

#include "circuit/circuit.h"
#include "common/rng.h"

namespace qiset {

/**
 * One Trotter step of the 1D Fermi-Hubbard model on a chain of
 * num_qubits sites (2Q ops labeled "ZZ" and "XXYY").
 *
 * @param hopping_theta Hopping angle (t * dt).
 * @param interaction_beta Interaction angle (U * dt / 4).
 */
Circuit makeFermiHubbardCircuit(int num_qubits, double hopping_theta,
                                double interaction_beta);

/** Trotter step with randomized angles (used for unitary sampling). */
Circuit makeRandomFermiHubbardCircuit(int num_qubits, Rng& rng);

} // namespace qiset

#endif // QISET_APPS_FERMI_HUBBARD_H
