#include "metrics/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qiset {

OnlineLinearModel::OnlineLinearModel(size_t features, double ridge)
    : k_(features), ridge_(ridge), xtx_(features * features, 0.0),
      xty_(features, 0.0)
{
}

void
OnlineLinearModel::observe(const double* x, double y)
{
    for (size_t i = 0; i < k_; ++i) {
        for (size_t j = 0; j < k_; ++j)
            xtx_[i * k_ + j] += x[i] * x[j];
        xty_[i] += x[i] * y;
    }
    ++samples_;
    dirty_ = true;
}

bool
OnlineLinearModel::solve() const
{
    if (samples_ < k_)
        return false;
    if (!dirty_)
        return !weights_.empty();

    // (X^T X + ridge I) w = X^T y, by Gaussian elimination with
    // partial pivoting — k is 4, this is nanoseconds.
    std::vector<double> a(xtx_);
    std::vector<double> b(xty_);
    for (size_t i = 0; i < k_; ++i)
        a[i * k_ + i] += ridge_;

    for (size_t col = 0; col < k_; ++col) {
        size_t pivot = col;
        for (size_t row = col + 1; row < k_; ++row)
            if (std::fabs(a[row * k_ + col]) >
                std::fabs(a[pivot * k_ + col]))
                pivot = row;
        if (std::fabs(a[pivot * k_ + col]) < 1e-30)
            return false;
        if (pivot != col) {
            for (size_t j = 0; j < k_; ++j)
                std::swap(a[col * k_ + j], a[pivot * k_ + j]);
            std::swap(b[col], b[pivot]);
        }
        double inv = 1.0 / a[col * k_ + col];
        for (size_t row = col + 1; row < k_; ++row) {
            double f = a[row * k_ + col] * inv;
            if (f == 0.0)
                continue;
            for (size_t j = col; j < k_; ++j)
                a[row * k_ + j] -= f * a[col * k_ + j];
            b[row] -= f * b[col];
        }
    }
    weights_.assign(k_, 0.0);
    for (size_t i = k_; i-- > 0;) {
        double sum = b[i];
        for (size_t j = i + 1; j < k_; ++j)
            sum -= a[i * k_ + j] * weights_[j];
        weights_[i] = sum / a[i * k_ + i];
    }
    dirty_ = false;
    return true;
}

bool
OnlineLinearModel::predict(const double* x, double* prediction) const
{
    if (!solve())
        return false;
    double y = 0.0;
    for (size_t i = 0; i < k_; ++i)
        y += weights_[i] * x[i];
    *prediction = y;
    return true;
}

std::vector<double>
OnlineLinearModel::weights() const
{
    if (!solve())
        return {};
    return weights_;
}

// ------------------------------------------------------ CompileCostModel

void
CompileCostModel::fill(const Features& features, double* x)
{
    x[0] = 1.0;
    x[1] = features.ops;
    x[2] = features.two_q;
    x[3] = features.depth;
}

void
CompileCostModel::observeCompile(const Features& features,
                                 double wall_ms, uint64_t cache_hits,
                                 uint64_t cache_misses)
{
    double x[kFeatures];
    fill(features, x);
    std::lock_guard<std::mutex> lock(m_);
    ++compiles_;
    total_.observe(x, wall_ms);
    uint64_t lookups = cache_hits + cache_misses;
    if (lookups > 0)
        hit_ratio_.observe(x, static_cast<double>(cache_hits) /
                                  static_cast<double>(lookups));
}

void
CompileCostModel::observePass(const std::string& pass,
                              const Features& features, double wall_ms)
{
    double x[kFeatures];
    fill(features, x);
    std::lock_guard<std::mutex> lock(m_);
    auto it = per_pass_.find(pass);
    if (it == per_pass_.end())
        it = per_pass_.emplace(pass, OnlineLinearModel(kFeatures))
                 .first;
    it->second.observe(x, wall_ms);
}

uint64_t
CompileCostModel::samples() const
{
    std::lock_guard<std::mutex> lock(m_);
    return compiles_;
}

bool
CompileCostModel::predictCompileMs(const Features& features, double* ms,
                                   uint64_t min_samples) const
{
    double x[kFeatures];
    fill(features, x);
    std::lock_guard<std::mutex> lock(m_);
    if (compiles_ < std::max<uint64_t>(min_samples, kFeatures))
        return false;
    double prediction = 0.0;
    if (!total_.predict(x, &prediction))
        return false;
    // A fit extrapolated to a tiny circuit can dip below zero; a cost
    // is never negative.
    *ms = std::max(0.0, prediction);
    return true;
}

bool
CompileCostModel::predictPassMs(const std::string& pass,
                                const Features& features, double* ms,
                                uint64_t min_samples) const
{
    double x[kFeatures];
    fill(features, x);
    std::lock_guard<std::mutex> lock(m_);
    auto it = per_pass_.find(pass);
    if (it == per_pass_.end())
        return false;
    if (it->second.samples() < std::max<uint64_t>(min_samples, kFeatures))
        return false;
    double prediction = 0.0;
    if (!it->second.predict(x, &prediction))
        return false;
    *ms = std::max(0.0, prediction);
    return true;
}

bool
CompileCostModel::predictHitRatio(const Features& features,
                                  double* ratio,
                                  uint64_t min_samples) const
{
    double x[kFeatures];
    fill(features, x);
    std::lock_guard<std::mutex> lock(m_);
    if (hit_ratio_.samples() < std::max<uint64_t>(min_samples, kFeatures))
        return false;
    double prediction = 0.0;
    if (!hit_ratio_.predict(x, &prediction))
        return false;
    *ratio = std::min(1.0, std::max(0.0, prediction));
    return true;
}

std::vector<std::string>
CompileCostModel::passNames() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<std::string> names;
    names.reserve(per_pass_.size());
    for (const auto& [name, model] : per_pass_) {
        (void)model;
        names.push_back(name);
    }
    return names;
}

} // namespace qiset
