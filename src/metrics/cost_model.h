#ifndef QISET_METRICS_COST_MODEL_H
#define QISET_METRICS_COST_MODEL_H

/**
 * @file
 * Online compile-cost models fit from service telemetry (the VPMU
 * idea of pluggable timing models, closed-loop): every finished
 * compile contributes one observation, and the shard planner can ask
 * the fitted model for a predicted compile time instead of relying on
 * its static depth/critical-path proxy alone.
 *
 * The fit is streaming ridge-regularized least squares over the
 * normal equations: observe() accumulates X^T X and X^T y in O(k^2)
 * (k = 4 features: [1, ops, two_q, depth]) with no sample storage, so
 * a service can run for days without the model growing. Solutions are
 * computed lazily (Gaussian elimination on the k x k system) and
 * cached until the next observation.
 *
 * Three model families (see docs/telemetry.md for the equations):
 *  - per-pass wall-clock:  wall_ms(pass) ~ w . x
 *  - whole-compile wall-clock:  wall_ms ~ w . x  (what the planner
 *    consumes, converted to ns)
 *  - cache hit ratio:  hits/(hits+misses) ~ w . x  (workload mix ->
 *    expected warm fraction; reported, and usable to derate the
 *    translation term)
 *
 * All methods are thread-safe (one internal mutex; observation and
 * prediction are microseconds-scale). Determinism: predictions are
 * pure functions of the observation history, so a planner fed the
 * same history plans identically — and with the planner knob off the
 * model is never consulted at all.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qiset {

/**
 * Streaming least-squares y ~ w . x with ridge regularization.
 * Not thread-safe by itself; CompileCostModel serializes access.
 */
class OnlineLinearModel
{
  public:
    /**
     * @param features Length of x (including any constant term).
     * @param ridge Tikhonov weight keeping the normal matrix
     *        invertible under collinear workloads.
     */
    explicit OnlineLinearModel(size_t features, double ridge = 1e-3);

    size_t features() const { return k_; }
    uint64_t samples() const { return samples_; }

    /** Accumulate one (x, y) observation. */
    void observe(const double* x, double y);

    /**
     * Predict y for x. Returns false (prediction untouched) until at
     * least `features` observations have accumulated.
     */
    bool predict(const double* x, double* prediction) const;

    /** Fitted weights (empty until predict() is possible). */
    std::vector<double> weights() const;

  private:
    bool solve() const;

    size_t k_;
    double ridge_;
    uint64_t samples_ = 0;
    std::vector<double> xtx_; // row-major k x k
    std::vector<double> xty_;
    mutable std::vector<double> weights_;
    mutable bool dirty_ = true;
};

/**
 * The service's closed-loop cost model: per-pass, whole-compile and
 * cache-hit-ratio fits over simple workload features.
 */
class CompileCostModel
{
  public:
    /** Workload features of one circuit (the planner can compute all
     *  three from a Schedule summary without compiling). */
    struct Features
    {
        /** Total op count. */
        double ops = 0.0;
        /** Two-qubit op count. */
        double two_q = 0.0;
        /** Logical schedule depth. */
        double depth = 0.0;
    };

    /** Feature-vector length including the constant term. */
    static constexpr size_t kFeatures = 4;

    CompileCostModel() = default;

    /**
     * Record one finished compile: total wall clock, the per-pass
     * breakdown, and the shared-cache traffic of its translations.
     */
    void observeCompile(const Features& features, double wall_ms,
                        uint64_t cache_hits, uint64_t cache_misses);

    /** Record one pass execution (the service calls this for every
     *  pass-metric row of a finished compile; exposed for tests and
     *  offline fitting). */
    void observePass(const std::string& pass, const Features& features,
                     double wall_ms);

    /** Compiles observed so far. */
    uint64_t samples() const;

    /**
     * Predicted whole-compile wall clock in ms. False until the model
     * has at least `min_samples` observations (and never before
     * kFeatures of them).
     */
    bool predictCompileMs(const Features& features, double* ms,
                          uint64_t min_samples = kFeatures) const;

    /** Predicted wall clock of one named pass, same contract. */
    bool predictPassMs(const std::string& pass, const Features& features,
                       double* ms,
                       uint64_t min_samples = kFeatures) const;

    /**
     * Predicted cache hit ratio for a workload, clamped to [0, 1].
     * False until enough lookups have been observed.
     */
    bool predictHitRatio(const Features& features, double* ratio,
                         uint64_t min_samples = kFeatures) const;

    /** Names of passes with a fitted model (diagnostics). */
    std::vector<std::string> passNames() const;

  private:
    static void fill(const Features& features, double* x);

    mutable std::mutex m_;
    uint64_t compiles_ = 0;
    OnlineLinearModel total_{kFeatures};
    OnlineLinearModel hit_ratio_{kFeatures};
    std::map<std::string, OnlineLinearModel> per_pass_;
};

} // namespace qiset

#endif // QISET_METRICS_COST_MODEL_H
