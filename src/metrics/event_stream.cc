#include "metrics/event_stream.h"

#include <algorithm>

namespace qiset {

const char*
toString(ServiceEventType type)
{
    switch (type) {
    case ServiceEventType::Submit: return "submit";
    case ServiceEventType::Admit: return "admit";
    case ServiceEventType::Reject: return "reject";
    case ServiceEventType::Dispatch: return "dispatch";
    case ServiceEventType::PassBegin: return "pass-begin";
    case ServiceEventType::PassComplete: return "pass-complete";
    case ServiceEventType::CacheStats: return "cache-stats";
    case ServiceEventType::Complete: return "complete";
    case ServiceEventType::Cancel: return "cancel";
    case ServiceEventType::Teleport: return "teleport";
    }
    return "unknown";
}

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 8;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

EventStream::EventStream(size_t capacity)
    : slots_(roundUpPow2(capacity)),
      mask_(slots_.size() - 1),
      epoch_(std::chrono::steady_clock::now())
{
    for (size_t i = 0; i < slots_.size(); ++i)
        slots_[i].seq.store(i, std::memory_order_relaxed);
}

bool
EventStream::publish(const ServiceEvent& event)
{
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
        Slot& slot = slots_[pos & mask_];
        uint64_t seq = slot.seq.load(std::memory_order_acquire);
        int64_t dif =
            static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
        if (dif == 0) {
            if (enqueue_pos_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed)) {
                slot.event = event;
                slot.seq.store(pos + 1, std::memory_order_release);
                published_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            // CAS refreshed pos; retry against the new slot.
        } else if (dif < 0) {
            // The slot one lap back has not been drained: ring full.
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        } else {
            pos = enqueue_pos_.load(std::memory_order_relaxed);
        }
    }
}

size_t
EventStream::drain(std::vector<ServiceEvent>& out, size_t max)
{
    size_t drained = 0;
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    while (drained < max) {
        Slot& slot = slots_[pos & mask_];
        uint64_t seq = slot.seq.load(std::memory_order_acquire);
        int64_t dif =
            static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
        if (dif == 0) {
            if (dequeue_pos_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed)) {
                out.push_back(slot.event);
                // Free the slot for the producer one lap ahead.
                slot.seq.store(pos + slots_.size(),
                               std::memory_order_release);
                ++drained;
                ++pos;
            }
        } else if (dif < 0) {
            break; // empty
        } else {
            pos = dequeue_pos_.load(std::memory_order_relaxed);
        }
    }
    return drained;
}

uint64_t
EventStream::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

int32_t
EventStream::passId(const std::string& name)
{
    {
        std::shared_lock<std::shared_mutex> lock(pass_names_m_);
        for (size_t i = 0; i < pass_names_.size(); ++i)
            if (pass_names_[i] == name)
                return static_cast<int32_t>(i);
    }
    std::unique_lock<std::shared_mutex> lock(pass_names_m_);
    for (size_t i = 0; i < pass_names_.size(); ++i)
        if (pass_names_[i] == name)
            return static_cast<int32_t>(i);
    pass_names_.push_back(name);
    return static_cast<int32_t>(pass_names_.size() - 1);
}

std::vector<std::string>
EventStream::passNames() const
{
    std::shared_lock<std::shared_mutex> lock(pass_names_m_);
    return pass_names_;
}

uint32_t
EventStream::currentWorker()
{
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

// ---------------------------------------------------------- recorder

EventRecorder::EventRecorder(EventStream& stream, double interval_ms)
    : stream_(stream)
{
    thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
}

EventRecorder::~EventRecorder()
{
    stop();
}

void
EventRecorder::stop()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        if (stopped_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(m_);
    stopped_ = true;
}

void
EventRecorder::loop(double interval_ms)
{
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(interval_ms, 0.1));
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        bool stopping =
            cv_.wait_for(lock, interval, [this] { return stopping_; });
        // Drain outside the recorder lock so stop() is never starved
        // by a slow sweep. events_ is only touched from this thread
        // until stop() has joined it, so unlocked appends are safe.
        lock.unlock();
        stream_.drain(events_);
        lock.lock();
        if (stopping)
            return; // final sweep already ran above
    }
}

} // namespace qiset
