#ifndef QISET_METRICS_TRACE_EXPORT_H
#define QISET_METRICS_TRACE_EXPORT_H

/**
 * @file
 * Chrome-trace (Trace Event Format) export of a ServiceEvent log, so
 * a service run can be flame-inspected in chrome://tracing or
 * Perfetto (Open trace file -> trace.json).
 *
 * Layout (see docs/telemetry.md for the full spec):
 *  - pid 0 is the synthetic "service" process: submit/admit/reject/
 *    cancel instants and per-shard backlog context live here.
 *  - pid (shard + 1) is one process per fleet shard, named
 *    "shard:<name>"; tid is the publishing worker's small id, so each
 *    worker of a shard gets its own track.
 *  - Every Dispatch..Complete pair becomes a "job <id>[<circuit>]"
 *    duration span (ph B/E) on its worker track; PassBegin/
 *    PassComplete pairs nest inside it as pass spans.
 *  - Timestamps are microseconds ("ts") from the stream epoch;
 *    "M"-phase metadata names processes and threads.
 *
 * The exporter is pure: it sorts a copy of the log by timestamp
 * (stable, so same-tick packets keep publish order) and never touches
 * the stream. scripts/trace_lint.py validates the output against the
 * documented schema (balanced B/E per track, monotone ts).
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/event_stream.h"

namespace qiset {

/** Naming context for the exporter (both optional). */
struct TraceExportOptions
{
    /** Fleet shard names, indexed by shard id ("shard:<k>" absent). */
    std::vector<std::string> shard_names;
    /** Interned pass names (EventStream::passNames()); a pass id
     *  outside the table renders as "pass:<id>". */
    std::vector<std::string> pass_names;
};

/**
 * Render an event log as a Chrome-trace JSON object
 * ({"traceEvents": [...]}). Events whose spans never closed (e.g. a
 * truncated log) are closed at the last seen timestamp so the trace
 * always validates.
 */
std::string chromeTraceJson(const std::vector<ServiceEvent>& events,
                            const TraceExportOptions& options =
                                TraceExportOptions());

/** chromeTraceJson straight into a stream. */
void writeChromeTrace(std::ostream& out,
                      const std::vector<ServiceEvent>& events,
                      const TraceExportOptions& options =
                          TraceExportOptions());

/**
 * chromeTraceJson into a file. Returns false (without throwing) when
 * the file cannot be opened/written.
 */
bool writeChromeTraceFile(const std::string& path,
                          const std::vector<ServiceEvent>& events,
                          const TraceExportOptions& options =
                              TraceExportOptions());

} // namespace qiset

#endif // QISET_METRICS_TRACE_EXPORT_H
