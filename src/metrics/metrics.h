#ifndef QISET_METRICS_METRICS_H
#define QISET_METRICS_METRICS_H

/**
 * @file
 * Application-reliability metrics of Section VI:
 *  - heavy output probability (HOP) for Quantum Volume,
 *  - cross-entropy difference (XED) for QAOA,
 *  - linear cross-entropy benchmarking fidelity for Fermi-Hubbard,
 *  - success rate (state fidelity) for QFT.
 * All operate on full measurement probability distributions (our
 * density-matrix simulator produces exact ones).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qiset {

/**
 * Wall-clock and counter record of one compiler pass execution,
 * populated by the PassManager and reported alongside the compiled
 * circuit so stage costs are observable (timing, ablation, regression
 * tracking).
 */
struct PassMetric
{
    /** Pass name as registered with the PassManager. */
    std::string pass;
    /** Wall-clock time the pass consumed, in milliseconds. */
    double wall_ms = 0.0;
    /** Counters the pass reported (swaps inserted, cache misses, ...). */
    std::map<std::string, double> counters;
};

/** Total wall-clock across a pass-metric list, in milliseconds. */
double totalWallMs(const std::vector<PassMetric>& passes);

/**
 * Fold one compile's pass metrics into a running roll-up: passes are
 * matched by name (appended in first-appearance order), wall_ms and
 * every counter are summed, and a "runs" counter tracks how many
 * executions each row aggregates. Sharded batch compilation uses this
 * to report per-shard totals across all circuits in a shard's queue.
 */
void accumulatePassMetrics(std::vector<PassMetric>& total,
                           const std::vector<PassMetric>& run);

/**
 * Render a per-pass timing/counter table (one row per pass plus a
 * total row) for command-line reporting.
 */
std::string formatPassReport(const std::vector<PassMetric>& passes);

/** One-line rendering of decomposition-cache effectiveness counters. */
std::string formatCacheStats(uint64_t hits, uint64_t misses,
                             uint64_t evictions, size_t entries);

/**
 * Nearest-rank quantile of a sample (q in [0, 1]; q=0.5 is the
 * median, q=0.95 the p95). Used by the service bench for
 * submit-to-complete latency percentiles. Returns 0 on an empty
 * sample; throws FatalError when q is outside [0, 1].
 */
double quantile(std::vector<double> values, double q);

/**
 * Heavy output probability: the total noisy probability mass on basis
 * states whose ideal probability exceeds the median ideal probability.
 * HOP > 2/3 passes the QV threshold.
 */
double heavyOutputProbability(const std::vector<double>& ideal,
                              const std::vector<double>& noisy);

/**
 * Cross-entropy difference (Boixo et al.): 1 for a perfect execution,
 * 0 for a fully-depolarized (uniform) output.
 */
double crossEntropyDifference(const std::vector<double>& ideal,
                              const std::vector<double>& noisy);

/**
 * Linear cross-entropy benchmarking fidelity,
 * (N <p_ideal, p_noisy> - 1) / (N <p_ideal, p_ideal> - 1).
 */
double linearXebFidelity(const std::vector<double>& ideal,
                         const std::vector<double>& noisy);

/** Total-variation distance between two distributions (diagnostics). */
double totalVariationDistance(const std::vector<double>& p,
                              const std::vector<double>& q);

/**
 * Reorder a physical-register distribution back to logical qubit
 * order. mapping[l] = physical position (0-based, within the
 * compressed register) that holds logical qubit l at measurement time.
 */
std::vector<double>
permuteProbabilities(const std::vector<double>& physical_probs,
                     const std::vector<int>& mapping);

} // namespace qiset

#endif // QISET_METRICS_METRICS_H
