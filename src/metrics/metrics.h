#ifndef QISET_METRICS_METRICS_H
#define QISET_METRICS_METRICS_H

/**
 * @file
 * Application-reliability metrics of Section VI:
 *  - heavy output probability (HOP) for Quantum Volume,
 *  - cross-entropy difference (XED) for QAOA,
 *  - linear cross-entropy benchmarking fidelity for Fermi-Hubbard,
 *  - success rate (state fidelity) for QFT.
 * All operate on full measurement probability distributions (our
 * density-matrix simulator produces exact ones).
 */

#include <vector>

namespace qiset {

/**
 * Heavy output probability: the total noisy probability mass on basis
 * states whose ideal probability exceeds the median ideal probability.
 * HOP > 2/3 passes the QV threshold.
 */
double heavyOutputProbability(const std::vector<double>& ideal,
                              const std::vector<double>& noisy);

/**
 * Cross-entropy difference (Boixo et al.): 1 for a perfect execution,
 * 0 for a fully-depolarized (uniform) output.
 */
double crossEntropyDifference(const std::vector<double>& ideal,
                              const std::vector<double>& noisy);

/**
 * Linear cross-entropy benchmarking fidelity,
 * (N <p_ideal, p_noisy> - 1) / (N <p_ideal, p_ideal> - 1).
 */
double linearXebFidelity(const std::vector<double>& ideal,
                         const std::vector<double>& noisy);

/** Total-variation distance between two distributions (diagnostics). */
double totalVariationDistance(const std::vector<double>& p,
                              const std::vector<double>& q);

/**
 * Reorder a physical-register distribution back to logical qubit
 * order. mapping[l] = physical position (0-based, within the
 * compressed register) that holds logical qubit l at measurement time.
 */
std::vector<double>
permuteProbabilities(const std::vector<double>& physical_probs,
                     const std::vector<int>& mapping);

} // namespace qiset

#endif // QISET_METRICS_METRICS_H
