#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace qiset {

double
totalWallMs(const std::vector<PassMetric>& passes)
{
    double total = 0.0;
    for (const auto& metric : passes)
        total += metric.wall_ms;
    return total;
}

void
accumulatePassMetrics(std::vector<PassMetric>& total,
                      const std::vector<PassMetric>& run)
{
    for (const PassMetric& metric : run) {
        PassMetric* slot = nullptr;
        for (PassMetric& existing : total)
            if (existing.pass == metric.pass) {
                slot = &existing;
                break;
            }
        if (!slot) {
            total.push_back(PassMetric{metric.pass, 0.0, {}});
            slot = &total.back();
        }
        slot->wall_ms += metric.wall_ms;
        for (const auto& [name, value] : metric.counters)
            slot->counters[name] += value;
        slot->counters["runs"] += 1.0;
    }
}

double
quantile(std::vector<double> values, double q)
{
    QISET_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1], got ",
                  q);
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    // Nearest rank: ceil(q * n), clamped to a valid 1-based rank.
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

std::string
formatPassReport(const std::vector<PassMetric>& passes)
{
    Table table({"pass", "wall ms", "counters"});
    for (const auto& metric : passes) {
        std::ostringstream counters;
        bool first = true;
        for (const auto& [name, value] : metric.counters) {
            if (!first)
                counters << "  ";
            first = false;
            counters << name << "=";
            if (value == static_cast<double>(
                             static_cast<long long>(value)))
                counters << static_cast<long long>(value);
            else
                counters << fmtDouble(value, 4);
        }
        table.addRow({metric.pass, fmtDouble(metric.wall_ms, 3),
                      counters.str()});
    }
    table.addRow({"total", fmtDouble(totalWallMs(passes), 3), ""});
    std::ostringstream os;
    table.print(os);
    return os.str();
}

std::string
formatCacheStats(uint64_t hits, uint64_t misses, uint64_t evictions,
                 size_t entries)
{
    uint64_t lookups = hits + misses;
    double rate = lookups == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
    std::ostringstream os;
    os << "profile cache: " << entries << " entries, " << hits
       << " hits / " << misses << " misses (hit rate "
       << fmtDouble(100.0 * rate, 1) << "%), " << evictions
       << " evictions";
    return os.str();
}

namespace {

void
checkSameSize(const std::vector<double>& a, const std::vector<double>& b)
{
    QISET_REQUIRE(!a.empty() && a.size() == b.size(),
                  "distributions must be non-empty and equal-sized");
}

} // namespace

double
heavyOutputProbability(const std::vector<double>& ideal,
                       const std::vector<double>& noisy)
{
    checkSameSize(ideal, noisy);
    std::vector<double> sorted = ideal;
    std::sort(sorted.begin(), sorted.end());
    size_t n = sorted.size();
    double median = (n % 2 == 0)
                        ? 0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
                        : sorted[n / 2];
    double hop = 0.0;
    for (size_t i = 0; i < n; ++i)
        if (ideal[i] > median)
            hop += noisy[i];
    return hop;
}

double
crossEntropyDifference(const std::vector<double>& ideal,
                       const std::vector<double>& noisy)
{
    checkSameSize(ideal, noisy);
    const double floor = 1e-18;
    size_t n = ideal.size();

    auto cross_entropy = [&](const std::vector<double>& p) {
        double h = 0.0;
        for (size_t i = 0; i < n; ++i)
            h -= p[i] * std::log(std::max(ideal[i], floor));
        return h;
    };

    std::vector<double> uniform(n, 1.0 / n);
    double h_uniform = cross_entropy(uniform);
    double h_ideal = cross_entropy(ideal);
    double h_noisy = cross_entropy(noisy);
    double denom = h_uniform - h_ideal;
    if (std::abs(denom) < 1e-15)
        return 0.0; // the ideal distribution is uniform: XED undefined.
    return (h_uniform - h_noisy) / denom;
}

double
linearXebFidelity(const std::vector<double>& ideal,
                  const std::vector<double>& noisy)
{
    checkSameSize(ideal, noisy);
    double n = static_cast<double>(ideal.size());
    double dot_in = 0.0, dot_ii = 0.0;
    for (size_t i = 0; i < ideal.size(); ++i) {
        dot_in += ideal[i] * noisy[i];
        dot_ii += ideal[i] * ideal[i];
    }
    double denom = n * dot_ii - 1.0;
    if (std::abs(denom) < 1e-15)
        return 0.0;
    return (n * dot_in - 1.0) / denom;
}

double
totalVariationDistance(const std::vector<double>& p,
                       const std::vector<double>& q)
{
    checkSameSize(p, q);
    double sum = 0.0;
    for (size_t i = 0; i < p.size(); ++i)
        sum += std::abs(p[i] - q[i]);
    return 0.5 * sum;
}

std::vector<double>
permuteProbabilities(const std::vector<double>& physical_probs,
                     const std::vector<int>& mapping)
{
    int n = static_cast<int>(mapping.size());
    QISET_REQUIRE(physical_probs.size() == (size_t{1} << n),
                  "distribution size does not match mapping width");
    std::vector<double> logical(physical_probs.size(), 0.0);
    for (size_t phys = 0; phys < physical_probs.size(); ++phys) {
        size_t log_idx = 0;
        for (int l = 0; l < n; ++l) {
            size_t phys_mask = size_t{1} << (n - 1 - mapping[l]);
            if (phys & phys_mask)
                log_idx |= size_t{1} << (n - 1 - l);
        }
        logical[log_idx] += physical_probs[phys];
    }
    return logical;
}

} // namespace qiset
