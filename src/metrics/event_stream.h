#ifndef QISET_METRICS_EVENT_STREAM_H
#define QISET_METRICS_EVENT_STREAM_H

/**
 * @file
 * Lock-light streaming telemetry for the compile service (the VPMU
 * pattern: async trace streams of fixed-size event packets).
 *
 * An EventStream is a bounded ring buffer of POD ServiceEvent packets.
 * Service workers publish() events without blocking the compile hot
 * path — the ring is a lock-free bounded MPMC queue (Vyukov scheme:
 * per-slot sequence numbers, one CAS per publish, no mutex anywhere on
 * the writer side) — and a consumer drains them out of band. A full
 * ring never stalls a writer: the packet is counted as dropped and the
 * compile proceeds, so telemetry degrades before throughput does.
 *
 * Timestamps are steady-clock nanoseconds relative to the stream's
 * construction (one shared epoch, so packets from different workers
 * order meaningfully). Pass names are interned to small ids
 * (passId/passName) so packets stay fixed-size; worker ids are small
 * per-thread integers (currentWorker) suitable for trace "tracks".
 *
 * EventRecorder is the standard consumer: a background thread that
 * drains the stream on a fixed cadence into an in-memory log (plus a
 * final sweep on stop), which the Chrome-trace exporter
 * (trace_export.h) turns into a flame-inspectable trace.json.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace qiset {

/** What happened; the service lifecycle plus per-pass spans. */
enum class ServiceEventType : uint8_t
{
    /** A request arrived (one per job; payload a = circuit count). */
    Submit,
    /** One circuit was admitted onto a shard (payload a = the
     *  planner's predicted duration ns, b = predicted fidelity). */
    Admit,
    /** Admission control refused the whole request (one per job). */
    Reject,
    /** A worker picked one circuit up (queue exit). */
    Dispatch,
    /** One compiler pass started (pass = interned pass id). */
    PassBegin,
    /** The matching pass finished (payload a = wall ms). */
    PassComplete,
    /** Shared-cache traffic of one finished compile
     *  (payload a = hits, b = misses). */
    CacheStats,
    /** One circuit finished compiling (payload a = wall ms,
     *  b = 1 on success / 0 when the compile threw). */
    Complete,
    /** One still-queued circuit was dropped by cancel(). */
    Cancel,
    /** Inter-core traffic of one finished compile on a chiplet shard
     *  (payload a = teleport ops, b = expected EPR attempts). */
    Teleport,
};

/** Human-readable type name ("submit", "pass-begin", ...). */
const char* toString(ServiceEventType type);

/**
 * One fixed-size telemetry packet. POD: no owned memory, safe to copy
 * through the ring byte-for-byte. Writers fill only the fields their
 * event type defines; the rest stay at the defaults below.
 */
struct ServiceEvent
{
    /** Steady-clock ns since the stream's epoch. */
    uint64_t ns = 0;
    /** Service-wide job id (CompileJob::id; 0 = none). */
    uint64_t job = 0;
    /** Payload slots; meaning depends on `type` (see the enum). */
    double a = 0.0;
    double b = 0.0;
    /** Circuit index within the job (-1 = whole-job event). */
    int32_t circuit = -1;
    /** Fleet shard index (-1 = not shard-specific). */
    int32_t shard = -1;
    /** Interned pass id (EventStream::passId; -1 = none). */
    int32_t pass = -1;
    /** Publishing thread's small id (EventStream::currentWorker). */
    uint32_t worker = 0;
    ServiceEventType type = ServiceEventType::Submit;
};

/**
 * Bounded lock-free MPMC ring of ServiceEvent packets.
 *
 * publish() is wait-free on the fast path (one CAS), never blocks,
 * never allocates; when the ring is full the event is dropped and
 * counted. drain() may run concurrently with publishers (and with
 * other drainers). All counters are monotonic.
 */
class EventStream
{
  public:
    /**
     * @param capacity Ring slots; rounded up to a power of two
     *        (minimum 8). Size for the burst between two drains, not
     *        for the whole run.
     */
    explicit EventStream(size_t capacity = size_t{1} << 16);
    ~EventStream() = default;

    EventStream(const EventStream&) = delete;
    EventStream& operator=(const EventStream&) = delete;

    /** Ring capacity in slots (power of two). */
    size_t capacity() const { return slots_.size(); }

    /**
     * Append one packet. Returns false (and counts the packet as
     * dropped) when the ring is full; never blocks or allocates.
     */
    bool publish(const ServiceEvent& event);

    /** Timestamp `event` with nowNs() and publish it. */
    bool publishNow(ServiceEvent event)
    {
        event.ns = nowNs();
        return publish(event);
    }

    /**
     * Pop up to `max` packets, in publish order, appending to `out`.
     * @return the number of packets appended.
     */
    size_t drain(std::vector<ServiceEvent>& out,
                 size_t max = static_cast<size_t>(-1));

    /** Packets successfully published so far. */
    uint64_t published() const
    {
        return published_.load(std::memory_order_relaxed);
    }

    /** Packets refused because the ring was full. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Steady-clock ns since this stream's construction. */
    uint64_t nowNs() const;

    /**
     * Intern a pass name to a small id (stable for the stream's
     * lifetime; repeat lookups take only a shared lock). Use for
     * ServiceEvent::pass.
     */
    int32_t passId(const std::string& name);

    /** All interned pass names, indexed by id (snapshot copy). */
    std::vector<std::string> passNames() const;

    /**
     * Small id of the calling thread, assigned on first use
     * (process-wide, so one thread keeps its id across streams). Use
     * for ServiceEvent::worker — trace tracks key off it.
     */
    static uint32_t currentWorker();

  private:
    struct Slot
    {
        std::atomic<uint64_t> seq;
        ServiceEvent event;
    };

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    // Head/tail on separate cache lines so producers and the consumer
    // do not false-share.
    alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
    alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
    alignas(64) std::atomic<uint64_t> published_{0};
    std::atomic<uint64_t> dropped_{0};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::shared_mutex pass_names_m_;
    std::vector<std::string> pass_names_;
};

/**
 * Background consumer: drains a stream every `interval_ms` into an
 * in-memory log, with a final sweep on stop() (or destruction). The
 * stream must outlive the recorder. events() is valid after stop().
 */
class EventRecorder
{
  public:
    explicit EventRecorder(EventStream& stream,
                           double interval_ms = 5.0);
    ~EventRecorder();

    EventRecorder(const EventRecorder&) = delete;
    EventRecorder& operator=(const EventRecorder&) = delete;

    /** Stop the drain thread after one final sweep. Idempotent. */
    void stop();

    /** Everything drained so far (call after stop() for a full log). */
    const std::vector<ServiceEvent>& events() const { return events_; }

    /** Move the log out (call after stop()). */
    std::vector<ServiceEvent> takeEvents() { return std::move(events_); }

  private:
    void loop(double interval_ms);

    EventStream& stream_;
    std::vector<ServiceEvent> events_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool stopped_ = false;
    std::thread thread_;
};

} // namespace qiset

#endif // QISET_METRICS_EVENT_STREAM_H
