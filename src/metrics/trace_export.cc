#include "metrics/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace qiset {

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtTs(uint64_t ns)
{
    // Microseconds with ns resolution; Chrome's ts unit is us.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ns) / 1000.0);
    return buf;
}

std::string
fmtDoubleArg(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** One emitted trace line (already-rendered JSON object). */
class TraceBuilder
{
  public:
    explicit TraceBuilder(const TraceExportOptions& options)
        : options_(options)
    {
    }

    std::string shardProcess(int32_t shard) const
    {
        if (shard < 0)
            return "service";
        size_t s = static_cast<size_t>(shard);
        if (s < options_.shard_names.size())
            return "shard:" + options_.shard_names[s];
        return "shard:" + std::to_string(shard);
    }

    std::string passName(int32_t pass) const
    {
        if (pass >= 0 &&
            static_cast<size_t>(pass) < options_.pass_names.size())
            return options_.pass_names[static_cast<size_t>(pass)];
        return "pass:" + std::to_string(pass);
    }

    void event(const std::string& name, const char* ph, uint64_t ns,
               int64_t pid, int64_t tid, const std::string& args = "")
    {
        std::ostringstream line;
        line << "{\"name\":\"" << jsonEscape(name) << "\",\"ph\":\""
             << ph << "\",\"ts\":" << fmtTs(ns) << ",\"pid\":" << pid
             << ",\"tid\":" << tid;
        if (ph[0] == 'i')
            line << ",\"s\":\"t\"";
        if (!args.empty())
            line << ",\"args\":{" << args << "}";
        line << "}";
        lines_.push_back(line.str());
        touchTrack(pid, tid);
    }

    void metadata(const std::string& kind, int64_t pid, int64_t tid,
                  const std::string& name)
    {
        std::ostringstream line;
        line << "{\"name\":\"" << kind
             << "\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
             << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
             << jsonEscape(name) << "\"}}";
        meta_.push_back(line.str());
    }

    /** Open-span bookkeeping so truncated logs still balance. */
    void open(int64_t pid, int64_t tid, const std::string& name)
    {
        stacks_[{pid, tid}].push_back(name);
    }

    /** Close the innermost open span (no-op on a bare E). */
    bool close(int64_t pid, int64_t tid)
    {
        auto it = stacks_.find({pid, tid});
        if (it == stacks_.end() || it->second.empty())
            return false;
        it->second.pop_back();
        return true;
    }

    const std::string* innermost(int64_t pid, int64_t tid) const
    {
        auto it = stacks_.find({pid, tid});
        if (it == stacks_.end() || it->second.empty())
            return nullptr;
        return &it->second.back();
    }

    void closeDangling(uint64_t last_ns)
    {
        for (auto& [track, stack] : stacks_)
            while (!stack.empty()) {
                event(stack.back(), "E", last_ns, track.first,
                      track.second);
                stack.pop_back();
            }
    }

    std::string render() const
    {
        std::string out = "{\"displayTimeUnit\":\"ms\","
                          "\"traceEvents\":[\n";
        bool first = true;
        for (const std::string& line : meta_) {
            if (!first)
                out += ",\n";
            out += line;
            first = false;
        }
        for (const std::string& line : lines_) {
            if (!first)
                out += ",\n";
            out += line;
            first = false;
        }
        out += "\n]}\n";
        return out;
    }

    const std::map<std::pair<int64_t, int64_t>, bool>& tracks() const
    {
        return tracks_;
    }

  private:
    void touchTrack(int64_t pid, int64_t tid)
    {
        tracks_.emplace(std::make_pair(pid, tid), true);
    }

    const TraceExportOptions& options_;
    std::vector<std::string> lines_;
    std::vector<std::string> meta_;
    std::map<std::pair<int64_t, int64_t>, std::vector<std::string>>
        stacks_;
    std::map<std::pair<int64_t, int64_t>, bool> tracks_;
};

std::string
jobSpanName(const ServiceEvent& e)
{
    std::string name = "job " + std::to_string(e.job);
    if (e.circuit >= 0)
        name += "[" + std::to_string(e.circuit) + "]";
    return name;
}

} // namespace

std::string
chromeTraceJson(const std::vector<ServiceEvent>& events,
                const TraceExportOptions& options)
{
    // Stable by timestamp: packets from one worker keep publish order
    // (their timestamps are monotone), and cross-worker ties keep the
    // global publish order the ring preserved.
    std::vector<ServiceEvent> sorted = events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ServiceEvent& a, const ServiceEvent& b) {
                         return a.ns < b.ns;
                     });

    TraceBuilder trace(options);
    uint64_t last_ns = 0;
    for (const ServiceEvent& e : sorted) {
        last_ns = std::max(last_ns, e.ns);
        int64_t pid = e.shard + 1; // shard -1 -> service pid 0
        int64_t tid = e.worker;
        switch (e.type) {
        case ServiceEventType::Submit:
            trace.event("submit job " + std::to_string(e.job), "i",
                        e.ns, 0, tid,
                        "\"circuits\":" + fmtDoubleArg(e.a));
            break;
        case ServiceEventType::Admit:
            trace.event("admit " + jobSpanName(e) + " -> shard " +
                            std::to_string(e.shard),
                        "i", e.ns, 0, tid,
                        "\"predicted_duration_ns\":" + fmtDoubleArg(e.a) +
                            ",\"predicted_fidelity\":" +
                            fmtDoubleArg(e.b));
            break;
        case ServiceEventType::Reject:
            trace.event("reject job " + std::to_string(e.job), "i",
                        e.ns, 0, tid);
            break;
        case ServiceEventType::Cancel:
            trace.event("cancel " + jobSpanName(e), "i", e.ns, 0, tid);
            break;
        case ServiceEventType::Dispatch: {
            std::string name = jobSpanName(e);
            trace.event(name, "B", e.ns, pid, tid);
            trace.open(pid, tid, name);
            break;
        }
        case ServiceEventType::PassBegin: {
            std::string name = trace.passName(e.pass);
            trace.event(name, "B", e.ns, pid, tid);
            trace.open(pid, tid, name);
            break;
        }
        case ServiceEventType::PassComplete:
            if (trace.close(pid, tid))
                trace.event(trace.passName(e.pass), "E", e.ns, pid,
                            tid,
                            "\"wall_ms\":" + fmtDoubleArg(e.a));
            break;
        case ServiceEventType::CacheStats:
            trace.event("cache", "i", e.ns, pid, tid,
                        "\"hits\":" + fmtDoubleArg(e.a) +
                            ",\"misses\":" + fmtDoubleArg(e.b));
            break;
        case ServiceEventType::Teleport:
            // Shard-track instant like cache stats: inter-core traffic
            // belongs to the chiplet shard that routed it.
            trace.event("teleport", "i", e.ns, pid, tid,
                        "\"teleports\":" + fmtDoubleArg(e.a) +
                            ",\"epr_attempts\":" + fmtDoubleArg(e.b));
            break;
        case ServiceEventType::Complete: {
            // Close any pass spans a throwing compile left open, then
            // the job span itself.
            while (trace.innermost(pid, tid) &&
                   *trace.innermost(pid, tid) != jobSpanName(e)) {
                std::string name = *trace.innermost(pid, tid);
                trace.close(pid, tid);
                trace.event(name, "E", e.ns, pid, tid);
            }
            if (trace.close(pid, tid))
                trace.event(jobSpanName(e), "E", e.ns, pid, tid,
                            "\"wall_ms\":" + fmtDoubleArg(e.a) +
                                ",\"ok\":" + fmtDoubleArg(e.b));
            break;
        }
        }
    }
    trace.closeDangling(last_ns);

    // Name every track we touched.
    TraceBuilder* builder = &trace;
    for (const auto& [track, used] : builder->tracks()) {
        (void)used;
        builder->metadata("process_name", track.first, 0,
                          trace.shardProcess(
                              static_cast<int32_t>(track.first - 1)));
        builder->metadata("thread_name", track.first, track.second,
                          "worker " + std::to_string(track.second));
    }
    return trace.render();
}

void
writeChromeTrace(std::ostream& out,
                 const std::vector<ServiceEvent>& events,
                 const TraceExportOptions& options)
{
    out << chromeTraceJson(events, options);
}

bool
writeChromeTraceFile(const std::string& path,
                     const std::vector<ServiceEvent>& events,
                     const TraceExportOptions& options)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << chromeTraceJson(events, options);
    return static_cast<bool>(out);
}

} // namespace qiset
