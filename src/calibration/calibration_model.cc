#include "calibration/calibration_model.h"

#include <cmath>

#include "common/error.h"

namespace qiset {

long long
CalibrationCostModel::circuitsPerPairPerType() const
{
    return static_cast<long long>(cphase_step_circuits) +
           iswap_step_circuits + tomography_circuits +
           static_cast<long long>(xeb_rounds) * xeb_circuits_per_round;
}

long long
CalibrationCostModel::totalCircuits(int num_pairs,
                                    int num_gate_types) const
{
    QISET_REQUIRE(num_pairs >= 1 && num_gate_types >= 1,
                  "need at least one pair and one gate type");
    return static_cast<long long>(num_pairs) *
               (static_cast<long long>(num_gate_types) *
                circuitsPerPairPerType()) +
           static_cast<long long>(num_pairs) * per_pair_base_circuits;
}

double
CalibrationCostModel::wallClockHours(int num_gate_types) const
{
    QISET_REQUIRE(num_gate_types >= 1, "need at least one gate type");
    return base_hours + hours_per_gate_type * num_gate_types;
}

int
gridPairCount(int num_qubits)
{
    QISET_REQUIRE(num_qubits >= 2, "need at least two qubits");
    if (num_qubits == 2)
        return 1;
    // Nearest-square grid: rows x cols with rows = floor(sqrt(n)).
    int rows = static_cast<int>(std::sqrt(static_cast<double>(num_qubits)));
    int cols = (num_qubits + rows - 1) / rows;
    // Horizontal edges + vertical edges of an (approximately full) grid.
    return rows * (cols - 1) + (rows - 1) * cols;
}

} // namespace qiset
