#ifndef QISET_CALIBRATION_CALIBRATION_MODEL_H
#define QISET_CALIBRATION_CALIBRATION_MODEL_H

/**
 * @file
 * Calibration-overhead model (Section IX), following Foxen et al.'s
 * fSim tune-up procedure: per (qubit pair, gate type) one calibrates
 * the CPHASE axis, the iSWAP-like axis, constructs and tomographs the
 * target pulse, and characterizes fidelity with ~1000 rounds of
 * cross-entropy benchmarking.
 */

namespace qiset {

/** Tunable constants of the calibration cost model. */
struct CalibrationCostModel
{
    /** Circuits to calibrate the CPHASE angle of one pair. */
    int cphase_step_circuits = 200;
    /** Circuits to calibrate the iSWAP-like angle of one pair. */
    int iswap_step_circuits = 200;
    /** Unitary-tomography circuits for the composed fSim pulse. */
    int tomography_circuits = 1000;
    /** XEB characterization: rounds x circuit instances. */
    int xeb_rounds = 1000;
    int xeb_circuits_per_round = 10;

    /** Per-pair one-time overhead (electronics, 1Q tune-up). */
    int per_pair_base_circuits = 2000;

    /** Wall-clock anchors (Sycamore: ~4 h/day for one gate type). */
    double base_hours = 1.5;
    double hours_per_gate_type = 2.2;

    /** Circuits needed for one gate type on one qubit pair. */
    long long circuitsPerPairPerType() const;

    /** Total calibration circuits for a device. */
    long long totalCircuits(int num_pairs, int num_gate_types) const;

    /**
     * Wall-clock calibration time in hours for a device where pairs
     * are calibrated in parallel (gate types are sequential, as pulse
     * bleed-through forbids concurrent tune-up of distinct types).
     */
    double wallClockHours(int num_gate_types) const;
};

/** Coupled-pair count of an n-qubit square-grid device (~2n edges). */
int gridPairCount(int num_qubits);

} // namespace qiset

#endif // QISET_CALIBRATION_CALIBRATION_MODEL_H
