#include "common/arena.h"

#include <cstdlib>

#include "common/error.h"

namespace qiset {

namespace {

inline size_t
alignUp(size_t value, size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

MemArena::MemArena(size_t block_bytes) : block_bytes_(block_bytes)
{
    QISET_REQUIRE(block_bytes_ > 0, "arena block size must be positive");
}

MemArena::~MemArena()
{
    for (Block& block : blocks_)
        ::operator delete(block.data);
    for (Block& block : oversized_)
        ::operator delete(block.data);
}

void*
MemArena::allocate(size_t bytes, size_t align)
{
    QISET_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two (got ", align,
                  ")");
    if (bytes == 0)
        bytes = 1; // distinct non-null pointers, like operator new.

    // Outlier requests get a dedicated block: they would waste most of
    // a regular block and defeat reset-reuse.
    if (bytes + align > block_bytes_) {
        Block block;
        block.capacity = bytes + align;
        block.data =
            static_cast<char*>(::operator new(block.capacity));
        ++blocks_ever_;
        bytes_reserved_ += block.capacity;
        oversized_.push_back(block);
        bytes_allocated_ += bytes;
        return reinterpret_cast<void*>(
            alignUp(reinterpret_cast<uintptr_t>(block.data), align));
    }

    if (blocks_.empty())
        nextBlock(bytes + align);
    for (;;) {
        Block& block = blocks_[current_];
        size_t base = alignUp(
            reinterpret_cast<uintptr_t>(block.data) + offset_, align) -
            reinterpret_cast<uintptr_t>(block.data);
        if (base + bytes <= block.capacity) {
            offset_ = base + bytes;
            bytes_allocated_ += bytes;
            return block.data + base;
        }
        nextBlock(bytes + align);
    }
}

void
MemArena::nextBlock(size_t min_bytes)
{
    // Reuse an already-chained block when rewound; otherwise grow.
    if (!blocks_.empty() && current_ + 1 < blocks_.size()) {
        ++current_;
        offset_ = 0;
        return;
    }
    Block block;
    block.capacity = block_bytes_ < min_bytes ? min_bytes : block_bytes_;
    block.data = static_cast<char*>(::operator new(block.capacity));
    ++blocks_ever_;
    bytes_reserved_ += block.capacity;
    blocks_.push_back(block);
    current_ = blocks_.size() - 1;
    offset_ = 0;
}

void
MemArena::reset()
{
    for (Block& block : oversized_) {
        bytes_reserved_ -= block.capacity;
        ::operator delete(block.data);
    }
    oversized_.clear();
    current_ = 0;
    offset_ = 0;
    bytes_allocated_ = 0;
}

} // namespace qiset
