#include "common/rng.h"

#include <numeric>

#include "common/error.h"

namespace qiset {

Rng::Rng(uint64_t seed)
    : engine_(seed)
{
}

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    QISET_REQUIRE(lo <= hi, "empty integer range [", lo, ", ", hi, "]");
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::truncatedNormal(double mean, double stddev, double lo, double hi)
{
    QISET_REQUIRE(lo < hi, "empty truncation range");
    // Resampling is fine here: callers keep [lo, hi] within a few sigma.
    for (int attempt = 0; attempt < 1000; ++attempt) {
        double x = normal(mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    // Pathological parameters; fall back to the clamped mean.
    return std::min(std::max(mean, lo), hi);
}

std::complex<double>
Rng::normalComplex()
{
    return {normal(), normal()};
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(std::min(std::max(p, 0.0), 1.0));
    return dist(engine_);
}

size_t
Rng::discrete(const std::vector<double>& weights)
{
    QISET_REQUIRE(!weights.empty(), "discrete() needs at least one weight");
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    QISET_REQUIRE(total > 0.0, "discrete() needs positive total weight");
    double r = uniform(0.0, total);
    double cum = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        cum += weights[i];
        if (r < cum)
            return i;
    }
    return weights.size() - 1;
}

std::vector<int>
Rng::permutation(int n)
{
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = n - 1; i > 0; --i) {
        int j = uniformInt(0, i);
        std::swap(perm[i], perm[j]);
    }
    return perm;
}

} // namespace qiset
