#ifndef QISET_COMMON_THREAD_POOL_H
#define QISET_COMMON_THREAD_POOL_H

/**
 * @file
 * A small fixed-size thread pool.
 *
 * The figure benches (notably the Fig. 8 heatmap sweep, 361 grid points
 * x dozens of unitaries) parallelize across independent NuOp
 * decompositions, mirroring the paper's 32-thread compilation setup.
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qiset {

/** Fixed-size worker pool executing queued std::function jobs. */
class ThreadPool
{
  public:
    /**
     * Start the pool.
     * @param num_threads Worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a job for asynchronous execution. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has completed. */
    void wait();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable job_available_;
    std::condition_variable all_done_;
    size_t in_flight_ = 0;
    bool stopping_ = false;
};

/**
 * Run fn(i) for every i in [0, count) and block until all iterations
 * finish. fn must be safe to call concurrently for distinct indices.
 *
 * Cooperative: the calling thread claims indices itself while up to
 * `max_parallelism - 1` pool workers help (0 means "as many as the
 * pool has"). Indices are dispensed from a shared atomic counter and
 * completion is tracked by the loop's own counter — no pool.wait() —
 * so it is safe to call from inside a worker of the same pool: helpers
 * that never get scheduled simply find no indices left, and the caller
 * makes progress on its own thread regardless. This is what lets the
 * async CompileService fan a single circuit's decompositions across
 * otherwise-idle workers.
 *
 * If fn throws, remaining indices are skipped (best effort) and the
 * first exception is rethrown on the calling thread after every
 * claimed index has been accounted for.
 */
void parallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn,
                 size_t max_parallelism = 0);

} // namespace qiset

#endif // QISET_COMMON_THREAD_POOL_H
