#ifndef QISET_COMMON_RNG_H
#define QISET_COMMON_RNG_H

/**
 * @file
 * Deterministic random number generation used throughout QISET.
 *
 * All stochastic components (workload generators, synthetic calibration
 * data, noise sampling, optimizer multistarts) draw from an explicitly
 * seeded Rng so every experiment in the paper reproduction is exactly
 * repeatable.
 */

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace qiset {

/** Seeded pseudo-random generator with the distributions QISET needs. */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for repeatability). */
    explicit Rng(uint64_t seed = 0x5151'5151'5151'5151ull);

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Gaussian sample with the given mean and standard deviation. */
    double normal(double mean = 0.0, double stddev = 1.0);

    /**
     * Gaussian sample truncated to [lo, hi] by resampling.
     * Used for synthetic error-rate generation, which must stay positive.
     */
    double truncatedNormal(double mean, double stddev, double lo, double hi);

    /** Standard complex Gaussian (real and imaginary parts ~ N(0,1)). */
    std::complex<double> normalComplex();

    /** Bernoulli trial returning true with probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @return index in [0, weights.size()).
     */
    size_t discrete(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of the index range [0, n). */
    std::vector<int> permutation(int n);

    /** Access the underlying engine (for std:: distribution interop). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace qiset

#endif // QISET_COMMON_RNG_H
