#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace qiset {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 4;
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    job_available_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    job_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_available_.wait(
                lock, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

namespace {

/**
 * Shared state of one cooperative parallelFor. Heap-held via
 * shared_ptr so a helper job that dequeues after the loop has already
 * finished (it will find no indices left) still touches live memory.
 * The user fn is referenced through a raw pointer: it is only ever
 * invoked for a claimed index i < count, and the caller cannot return
 * before every claimed index is done, so the referent is alive for
 * every invocation.
 */
struct ParallelForState
{
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr first_error;
};

/** Claim-and-run loop shared by the caller and every helper. */
void
parallelForDrain(const std::shared_ptr<ParallelForState>& state,
                 size_t count, const std::function<void(size_t)>* fn)
{
    for (;;) {
        size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        if (!state->failed.load(std::memory_order_relaxed)) {
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->first_error)
                    state->first_error = std::current_exception();
                state->failed.store(true, std::memory_order_relaxed);
            }
        }
        // Every index is claimed exactly once and accounted exactly
        // once (even when skipped after a failure), so done == count
        // is the loop's sole completion condition.
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            count) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->all_done.notify_all();
        }
    }
}

} // namespace

void
parallelFor(ThreadPool& pool, size_t count,
            const std::function<void(size_t)>& fn,
            size_t max_parallelism)
{
    if (count == 0)
        return;
    auto state = std::make_shared<ParallelForState>();
    // The caller participates, so only count - 1 helpers can ever find
    // work; cap further by the pool size and the requested parallelism.
    size_t helpers = std::min(count - 1, pool.size());
    if (max_parallelism != 0)
        helpers = std::min(helpers, max_parallelism - 1);
    const std::function<void(size_t)>* fn_ptr = &fn;
    for (size_t h = 0; h < helpers; ++h)
        pool.submit([state, count, fn_ptr] {
            parallelForDrain(state, count, fn_ptr);
        });
    parallelForDrain(state, count, fn_ptr);
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->all_done.wait(lock, [&] {
            return state->done.load(std::memory_order_acquire) == count;
        });
    }
    if (state->first_error)
        std::rethrow_exception(state->first_error);
}

} // namespace qiset
