#include "common/thread_pool.h"

#include <atomic>

namespace qiset {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 4;
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    job_available_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    job_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_available_.wait(
                lock, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool& pool, size_t count,
            const std::function<void(size_t)>& fn)
{
    // Chunk the index space so tiny iterations don't drown in queue
    // overhead; NuOp decompositions are coarse enough that a handful of
    // chunks per worker balances well.
    size_t chunks = std::max<size_t>(pool.size() * 4, 1);
    size_t chunk_size = (count + chunks - 1) / chunks;
    if (chunk_size == 0)
        chunk_size = 1;
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::atomic<bool> failed{false};
    for (size_t begin = 0; begin < count; begin += chunk_size) {
        size_t end = std::min(begin + chunk_size, count);
        pool.submit([begin, end, &fn, &error_mutex, &first_error,
                     &failed] {
            if (failed.load(std::memory_order_relaxed))
                return; // a sibling chunk already failed; bail early.
            try {
                for (size_t i = begin; i < end; ++i)
                    fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        });
    }
    pool.wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace qiset
