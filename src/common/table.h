#ifndef QISET_COMMON_TABLE_H
#define QISET_COMMON_TABLE_H

/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary reproduces one paper table/figure by printing
 * aligned rows; this helper keeps that formatting in one place.
 */

#include <ostream>
#include <string>
#include <vector>

namespace qiset {

/** Column-aligned text table accumulated row by row. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with a separator under the header. */
    void print(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string fmtDouble(double value, int precision = 3);

/** Format a double in scientific notation. */
std::string fmtSci(double value, int precision = 2);

} // namespace qiset

#endif // QISET_COMMON_TABLE_H
