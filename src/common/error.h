#ifndef QISET_COMMON_ERROR_H
#define QISET_COMMON_ERROR_H

/**
 * @file
 * Error-reporting helpers, following the gem5 fatal/panic split:
 * fatal() is for user errors (bad arguments, impossible configuration),
 * panic() is for internal invariant violations (library bugs).
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace qiset {

/** Thrown when a caller-supplied argument or configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error("fatal: " + msg) {}
};

/** Thrown when an internal invariant is violated (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error("panic: " + msg) {}
};

namespace detail {

inline void
streamInto(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream& os, const T& value, const Rest&... rest)
{
    os << value;
    streamInto(os, rest...);
}

} // namespace detail

/** Raise a FatalError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    std::ostringstream os;
    detail::streamInto(os, args...);
    throw FatalError(os.str());
}

/** Raise a PanicError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    std::ostringstream os;
    detail::streamInto(os, args...);
    throw PanicError(os.str());
}

} // namespace qiset

/** Check a user-facing precondition; raises FatalError on failure. */
#define QISET_REQUIRE(cond, ...)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ::qiset::fatal("requirement failed (" #cond "): ",             \
                           __VA_ARGS__);                                    \
    } while (0)

/** Check an internal invariant; raises PanicError on failure. */
#define QISET_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::qiset::panic("assertion failed (" #cond "): ",               \
                           __VA_ARGS__);                                    \
    } while (0)

#endif // QISET_COMMON_ERROR_H
