#ifndef QISET_COMMON_ARENA_H
#define QISET_COMMON_ARENA_H

/**
 * @file
 * Bump-pointer memory arena for per-compile scratch.
 *
 * The compile hot path rebuilds the same transient structures on every
 * pass sweep — routing frontier sets, all-pairs distance rows, moment
 * tables, consolidation block lists — and paid a malloc/free round
 * trip for each. A MemArena turns that into JIT-style region
 * allocation (the rvdbt MemArena-per-translation pattern): grab a
 * region at compile start, bump-allocate scratch into it, rewind the
 * whole region when the pass (or the compile) is done. Deallocation
 * of individual objects is a no-op; only trivially-destructible
 * payloads (or containers whose destructors run before the rewind)
 * belong in an arena.
 *
 * ArenaAllocator adapts a MemArena to the standard allocator
 * interface so `std::vector<T, ArenaAllocator<T>>` (aliased as
 * ArenaVector<T>) gets bump-allocated growth. Vectors still run their
 * destructors normally — the arena simply never returns the memory to
 * the heap until reset()/destruction.
 *
 * Thread safety: none. One arena belongs to one compilation (the
 * CompilationContext owns one); concurrent passes must use distinct
 * arenas or scoped sub-arenas.
 */

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace qiset {

/** Region bump allocator with block chaining and reset-reuse. */
class MemArena
{
  public:
    /**
     * @param block_bytes Size of each internal block. Requests larger
     *        than a block get a dedicated oversized block.
     */
    explicit MemArena(size_t block_bytes = kDefaultBlockBytes);
    ~MemArena();

    MemArena(const MemArena&) = delete;
    MemArena& operator=(const MemArena&) = delete;

    /**
     * Bump-allocate `bytes` with the given alignment (a power of two).
     * Never returns null: exhausting the current block chains a new
     * one. Zero-byte requests return a valid, unique pointer.
     */
    void* allocate(size_t bytes, size_t align = alignof(std::max_align_t));

    /** Typed helper: uninitialized storage for `count` T. */
    template <typename T>
    T* allocateArray(size_t count)
    {
        return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Rewind to empty, retaining every already-chained regular block
     * for reuse (the steady-state compile loop allocates from warm
     * blocks without touching malloc). Oversized one-off blocks are
     * released — they were sized for a single outlier request.
     * Everything previously allocated becomes invalid.
     */
    void reset();

    /** Bytes handed out since construction/reset (live scratch). */
    size_t bytesAllocated() const { return bytes_allocated_; }

    /** Bytes of block capacity currently owned (reserved heap). */
    size_t bytesReserved() const { return bytes_reserved_; }

    /** Number of blocks currently owned (regular + oversized). */
    size_t blockCount() const
    {
        return blocks_.size() + oversized_.size();
    }

    /** Total blocks ever chained (monotonic; reuse keeps it flat). */
    uint64_t blocksEverAllocated() const { return blocks_ever_; }

    static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  private:
    struct Block
    {
        char* data = nullptr;
        size_t capacity = 0;
    };

    /** Chain (or reuse) the next regular block. */
    void nextBlock(size_t min_bytes);

    std::vector<Block> blocks_;
    /** Dedicated blocks for requests larger than block_bytes_. */
    std::vector<Block> oversized_;
    size_t block_bytes_;
    /** Index into blocks_ of the block being bumped. */
    size_t current_ = 0;
    /** Bump offset within the current block. */
    size_t offset_ = 0;
    size_t bytes_allocated_ = 0;
    size_t bytes_reserved_ = 0;
    uint64_t blocks_ever_ = 0;
};

/**
 * RAII pass-scope guard: resets the arena when the scope exits, so
 * the next pass starts bumping from warm blocks. Use one per pass (or
 * per compile phase) — MemArena::reset() is a full rewind, so scopes
 * must not nest.
 */
class ArenaResetGuard
{
  public:
    explicit ArenaResetGuard(MemArena& arena) : arena_(arena) {}
    ~ArenaResetGuard() { arena_.reset(); }

    ArenaResetGuard(const ArenaResetGuard&) = delete;
    ArenaResetGuard& operator=(const ArenaResetGuard&) = delete;

  private:
    MemArena& arena_;
};

/**
 * Standard-allocator adapter over a MemArena. deallocate() is a no-op
 * (the arena reclaims everything at reset()); rebinding copies the
 * arena reference. Compares equal iff both sides use the same arena,
 * so container moves between same-arena allocators stay cheap.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using is_always_equal = std::false_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    explicit ArenaAllocator(MemArena& arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other)
        : arena_(other.arena())
    {
    }

    T* allocate(size_t count)
    {
        return arena_->allocateArray<T>(count);
    }

    void deallocate(T*, size_t) {}

    MemArena* arena() const { return arena_; }

  private:
    MemArena* arena_;
};

template <typename T, typename U>
bool
operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b)
{
    return a.arena() == b.arena();
}

template <typename T, typename U>
bool
operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b)
{
    return !(a == b);
}

/** std::vector growing inside an arena. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/** Build an ArenaVector of `count` default-initialized T. */
template <typename T>
ArenaVector<T>
makeArenaVector(MemArena& arena, size_t count = 0)
{
    ArenaVector<T> v{ArenaAllocator<T>(arena)};
    if (count)
        v.resize(count);
    return v;
}

/** Build an ArenaVector of `count` copies of `fill`. */
template <typename T>
ArenaVector<T>
makeArenaVector(MemArena& arena, size_t count, const T& fill)
{
    ArenaVector<T> v{ArenaAllocator<T>(arena)};
    v.assign(count, fill);
    return v;
}

} // namespace qiset

#endif // QISET_COMMON_ARENA_H
