#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace qiset {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    QISET_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    QISET_REQUIRE(cells.size() == headers_.size(),
                  "row arity ", cells.size(), " != header arity ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        print_row(row);
}

std::string
fmtDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtSci(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    return buf;
}

} // namespace qiset
