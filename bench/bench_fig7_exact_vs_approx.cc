/**
 * @file
 * Fig. 7 reproduction: exact vs approximate decomposition across a
 * sweep of SYC hardware error rates (0.5x to 4x of the 0.62% Sycamore
 * mean). Metrics: HOP of 5-qubit QV and XED of 4-qubit QAOA.
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_qv = scale.circuits(6, 100);
    const int num_qaoa = scale.circuits(6, 100);

    Rng rng(7);
    Device base = makeSycamore(rng);
    GateSet syc_only = isa::singleTypeSet(1);

    std::vector<Circuit> qv_circuits, qaoa_circuits;
    for (int i = 0; i < num_qv; ++i)
        qv_circuits.push_back(makeQuantumVolumeCircuit(5, rng));
    for (int i = 0; i < num_qaoa; ++i)
        qaoa_circuits.push_back(makeRandomQaoaCircuit(4, rng));

    std::cout << "=== Fig. 7: exact vs approximate decomposition under "
                 "error-rate scaling ===\n"
              << "(SYC-only instruction set; scale 1.0 == Sycamore's "
                 "0.62% mean 2Q error)\n\n";

    Table table({"error scale", "QV HOP (approx)", "QV HOP (exact)",
                 "QAOA XED (approx)", "QAOA XED (exact)"});

    // Shared caches: profiles depend only on (unitary, gate type).
    ProfileCache cache;
    for (double factor : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
        Device device = base.withScaledTwoQubitErrors(factor);

        CompileOptions approx = bench::benchCompileOptions();
        CompileOptions exact = approx;
        exact.approximate = false;

        auto qv_approx = bench::scoreGateSet(
            device, syc_only, qv_circuits, cache, approx,
            heavyOutputProbability);
        auto qv_exact = bench::scoreGateSet(
            device, syc_only, qv_circuits, cache, exact,
            heavyOutputProbability);
        auto qaoa_approx = bench::scoreGateSet(
            device, syc_only, qaoa_circuits, cache, approx,
            crossEntropyDifference);
        auto qaoa_exact = bench::scoreGateSet(
            device, syc_only, qaoa_circuits, cache, exact,
            crossEntropyDifference);

        table.addRow({fmtDouble(factor, 1),
                      fmtDouble(qv_approx.metric, 3),
                      fmtDouble(qv_exact.metric, 3),
                      fmtDouble(qaoa_approx.metric, 3),
                      fmtDouble(qaoa_exact.metric, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: the two columns coincide at low "
                 "error rates; the approximate\napproach pulls ahead "
                 "once errors reach/exceed the Sycamore operating "
                 "point (1.0x).\n";
    return 0;
}
