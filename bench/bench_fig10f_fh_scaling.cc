/**
 * @file
 * Fig. 10f reproduction: Fermi-Hubbard fidelity for 10- and 20-qubit
 * chains as the mean two-qubit error rate improves from 0.36% to
 * 0.0225%, comparing the single-type set S2 against the multi-type
 * set G7. The 20-qubit runs use the trajectory simulator.
 */

#include <iostream>
#include <vector>

#include "apps/fermi_hubbard.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "sim/trajectory.h"

using namespace qiset;

namespace {

double
fhFidelity(const Circuit& fh, const Device& device, const GateSet& set,
           ProfileCache& cache, const CompileOptions& options,
           int trajectories, Rng& rng, int* two_q_out)
{
    CompileResult result =
        compileCircuit(fh, device, set, cache, options);
    *two_q_out = result.two_qubit_count;

    // Ideal distribution of the logical circuit.
    auto ideal = idealProbabilities(fh);

    if (fh.numQubits() <= 10) {
        auto noisy = simulateCompiled(result);
        return linearXebFidelity(ideal, noisy);
    }

    // Trajectory path for wide registers: estimate
    // sum_x p_ideal(x) p_noisy(x) from per-trajectory overlaps.
    TrajectorySimulator sim(result.noise);
    const auto& map = result.final_positions;
    int n = fh.numQubits();
    double dot = sim.averageObservable(
        result.circuit, trajectories, rng,
        [&](const StateVector& state) {
            const auto& amps = state.amplitudes();
            double sum = 0.0;
            for (size_t phys = 0; phys < amps.size(); ++phys) {
                double p = std::norm(amps[phys]);
                if (p == 0.0)
                    continue;
                size_t logical = 0;
                for (int l = 0; l < n; ++l) {
                    if (phys & (size_t{1} << (n - 1 - map[l])))
                        logical |= size_t{1} << (n - 1 - l);
                }
                sum += p * ideal[logical];
            }
            return sum;
        });
    double dim = static_cast<double>(size_t{1} << n);
    double dot_ii = 0.0;
    for (double p : ideal)
        dot_ii += p * p;
    return (dim * dot - 1.0) / (dim * dot_ii - 1.0);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int trajectories = scale.full ? 50 : 4;
    const std::vector<double> error_targets =
        scale.full ? std::vector<double>{0.0036, 0.0018, 0.0009,
                                         0.00045, 0.000225}
                   : std::vector<double>{0.0036, 0.0009, 0.000225};

    Rng rng(11);
    Device base = makeSycamore(rng);
    double base_error = 1.0 - base.meanEdgeFidelity("S1");

    Circuit fh10 = makeFermiHubbardCircuit(10, 0.5, 0.25);
    Circuit fh20 = makeFermiHubbardCircuit(20, 0.5, 0.25);

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;

    std::cout << "=== Fig. 10f: FH fidelity vs mean 2Q error rate ===\n"
              << "(" << trajectories
              << " trajectories per 20-qubit point)\n\n";

    Table table({"mean 2Q error %", "S2 10Q", "G7 10Q", "S2 20Q",
                 "G7 20Q"});
    for (double target : error_targets) {
        // Scale every noise source together (2Q/1Q errors, T1/T2,
        // readout) so the x-axis genuinely tracks hardware quality.
        double factor = target / base_error;
        Device device = base.withScaledNoise(factor);

        int twoq = 0;
        double s2_10 = fhFidelity(fh10, device, isa::singleTypeSet(2),
                                  cache, options, trajectories, rng,
                                  &twoq);
        double g7_10 = fhFidelity(fh10, device, isa::googleSet(7),
                                  cache, options, trajectories, rng,
                                  &twoq);
        double s2_20 = fhFidelity(fh20, device, isa::singleTypeSet(2),
                                  cache, options, trajectories, rng,
                                  &twoq);
        double g7_20 = fhFidelity(fh20, device, isa::googleSet(7),
                                  cache, options, trajectories, rng,
                                  &twoq);

        table.addRow({fmtDouble(100.0 * target, 4), fmtDouble(s2_10, 3),
                      fmtDouble(g7_10, 3), fmtDouble(s2_20, 3),
                      fmtDouble(g7_20, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: G7 >= S2 at every size and noise "
                 "level; the multi-type\nadvantage is largest at "
                 "current (high) error rates and shrinks as hardware\n"
                 "improves.\n";
    return 0;
}
