/**
 * @file
 * Routing-strategy comparison bench: SWAP counts, routed depth and
 * routing wall-clock for every registered RoutingStrategy across
 * representative workloads (long-range QFT, random QV, QAOA), at the
 * Topology level so routing cost is isolated from NuOp translation.
 *
 * Emits a single JSON object on stdout so the perf trajectory is
 * machine-readable (scripts/bench_smoke.sh captures it as
 * BENCH_routing.json).
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "circuit/schedule.h"
#include "common/rng.h"
#include "compiler/routing_strategy.h"
#include "device/topology.h"

namespace {

using namespace qiset;

struct Workload
{
    std::string name;
    Circuit circuit;
    Topology coupling;
};

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> workloads;
    workloads.push_back(
        {"qft8_line8", makeQftCircuit(8), Topology::line(8)});
    workloads.push_back(
        {"qft16_grid4x4", makeQftCircuit(16), Topology::grid(4, 4)});
    Rng qv_rng(1234);
    workloads.push_back({"qv16_grid4x4",
                         makeQuantumVolumeCircuit(16, qv_rng),
                         Topology::grid(4, 4)});
    Rng qaoa_rng(5678);
    workloads.push_back({"qaoa12_line12",
                         makeRandomQaoaCircuit(12, qaoa_rng),
                         Topology::line(12)});
    return workloads;
}

} // namespace

int
main()
{
    auto workloads = makeWorkloads();
    auto strategies = routingStrategyNames();

    std::cout << "{\n  \"bench\": \"routing\",\n  \"workloads\": [\n";
    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& workload = workloads[w];
        Schedule schedule(workload.circuit);
        std::cout << "    {\n      \"name\": \"" << workload.name
                  << "\",\n      \"qubits\": "
                  << workload.circuit.numQubits()
                  << ",\n      \"two_qubit_gates\": "
                  << workload.circuit.twoQubitGateCount()
                  << ",\n      \"strategies\": {\n";
        for (size_t s = 0; s < strategies.size(); ++s) {
            auto router = makeRoutingStrategy(strategies[s]);
            auto start = std::chrono::steady_clock::now();
            RoutedCircuit routed = router->route(
                workload.circuit, workload.coupling, schedule);
            auto end = std::chrono::steady_clock::now();
            double wall_ms =
                std::chrono::duration<double, std::milli>(end - start)
                    .count();
            std::cout << "        \"" << strategies[s]
                      << "\": {\"swaps\": " << routed.swaps_inserted
                      << ", \"routed_two_qubit\": "
                      << routed.circuit.twoQubitGateCount()
                      << ", \"routed_depth\": "
                      << routed.circuit.depth()
                      << ", \"wall_ms\": " << wall_ms << "}"
                      << (s + 1 < strategies.size() ? "," : "")
                      << '\n';
        }
        std::cout << "      }\n    }"
                  << (w + 1 < workloads.size() ? "," : "") << '\n';
    }
    std::cout << "  ]\n}\n";
    return 0;
}
