/**
 * @file
 * Extension study: calibration drift (Section IX motivates periodic
 * recalibration with gate-error fluctuations of up to 10x).
 *
 * We drift every (edge, gate type) error rate by a random log-uniform
 * factor, then compare compiling against *fresh* (drifted == true)
 * calibration data vs compiling against the *stale* pre-drift data
 * while the hardware has moved on. Multi-type sets lean on calibration
 * data for noise-adaptive selection, so stale data costs them more —
 * quantifying why the paper's recurring-calibration budget matters.
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_circuits = scale.circuits(8, 50);

    Rng rng(16);
    Device stale = makeSycamore(rng); // calibration snapshot
    Device truth = stale.withDriftedCalibration(rng, 3.0);

    std::vector<Circuit> circuits;
    for (int i = 0; i < num_circuits; ++i)
        circuits.push_back(makeRandomQaoaCircuit(6, rng));

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;

    std::cout << "=== Extension: compiling on drifted calibration "
                 "(QAOA-6, Sycamore, 3x drift) ===\n\n";
    Table table({"gate set", "XED (recalibrated)", "XED (stale data)",
                 "penalty"});
    for (const GateSet& set : {isa::singleTypeSet(2), isa::googleSet(3),
                               isa::googleSet(7)}) {
        double fresh_total = 0.0, stale_total = 0.0;
        for (const auto& app : circuits) {
            auto ideal = idealProbabilities(app);

            // Recalibrated: the compiler sees the true error rates.
            CompileResult recal =
                compileCircuit(app, truth, set, cache, options);
            fresh_total +=
                crossEntropyDifference(ideal, simulateCompiled(recal));

            // Stale: compiled against the old snapshot, executed on
            // the drifted hardware.
            CompileResult old =
                compileCircuit(app, stale, set, cache, options);
            reannotateErrorRates(old, truth);
            stale_total +=
                crossEntropyDifference(ideal, simulateCompiled(old));
        }
        double fresh_avg = fresh_total / circuits.size();
        double stale_avg = stale_total / circuits.size();
        table.addRow({set.name, fmtDouble(fresh_avg, 3),
                      fmtDouble(stale_avg, 3),
                      fmtDouble(100.0 * (fresh_avg - stale_avg) /
                                    std::max(fresh_avg, 1e-9),
                                1) +
                          "%"});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: recalibrated compilation beats stale-data "
           "compilation; the gap is the\nvalue of the recurring "
           "calibration the paper budgets for — and it is what makes\n"
           "the 4-8-type sweet spot (cheap to recalibrate often) "
           "practical.\n";
    return 0;
}
