/**
 * @file
 * Decomposition-engine comparison bench: cold-cache compile wall-clock
 * of the tiered "auto" engine against the "nuop" BFGS baseline, the
 * Weyl-canonicalized cache hit ratio against raw keying, and a
 * bit-identity self-check of the "nuop" strategy against the legacy
 * default path — on the paper's QFT-16 / QV-16 / QAOA workloads with
 * the CZ instruction set (S3, the analytic engine's universal tier).
 *
 * Exact-mode selection is used for the Fu comparison: Section VII.A's
 * NuOp-vs-Cirq study compares exact decompositions, and in exact mode
 * the analytic SBM-minimal fits provably meet or beat the BFGS
 * ladder's Fu per gate.
 *
 * Emits a single JSON object on stdout so the perf trajectory is
 * machine-readable (scripts/bench_smoke.sh captures it as
 * BENCH_translation.json; scripts/check_bench_regression.py gates the
 * speedup, hit-ratio win, Fu parity and bit-identity in CI).
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "compiler/pipeline.h"
#include "device/device.h"
#include "isa/gate_set.h"

namespace {

using namespace qiset;

struct Workload
{
    std::string name;
    Circuit circuit;
};

struct EngineRun
{
    double compile_ms = 0.0;
    double translation_ms = 0.0;
    int two_qubit = 0;
    int analytic_ops = 0;
    double estimated_fidelity = 0.0;
    double cache_hit_ratio = 0.0;
    CompileResult result;
};

EngineRun
runEngine(const Circuit& app, const Device& device, const GateSet& set,
          const CompileOptions& base, const std::string& engine,
          ProfileCache& cache)
{
    CompileOptions options = base;
    options.decomposition = engine;
    EngineRun run;
    auto start = std::chrono::steady_clock::now();
    run.result = compileCircuit(app, device, set, cache, options);
    auto end = std::chrono::steady_clock::now();
    run.compile_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    run.two_qubit = run.result.two_qubit_count;
    run.estimated_fidelity = run.result.estimated_fidelity;
    for (const auto& metric : run.result.pass_metrics) {
        if (metric.pass != "translation")
            continue;
        run.translation_ms = metric.wall_ms;
        auto analytic = metric.counters.find("analytic_ops");
        if (analytic != metric.counters.end())
            run.analytic_ops = static_cast<int>(analytic->second);
        double hits = metric.counters.at("cache_hits");
        double misses = metric.counters.at("cache_misses");
        if (hits + misses > 0.0)
            run.cache_hit_ratio = hits / (hits + misses);
    }
    return run;
}

} // namespace

int
main()
{
    // Fixed-scale workloads (the acceptance trio); no --full knob, and
    // no banner — stdout must stay pure JSON for the smoke capture.
    Rng rng(4242);
    Device device = makeSycamore(rng);
    GateSet set = isa::singleTypeSet(3); // CZ: the universal tier.

    CompileOptions options = bench::benchCompileOptions();
    options.approximate = false; // exact mode (the Eq. 1 comparison)

    std::vector<Workload> workloads;
    workloads.push_back({"qft16", makeQftCircuit(16)});
    Rng qv_rng(77);
    workloads.push_back({"qv16", makeQuantumVolumeCircuit(16, qv_rng)});
    Rng qaoa_rng(78);
    workloads.push_back({"qaoa12", makeRandomQaoaCircuit(12, qaoa_rng)});

    double nuop_total_ms = 0.0;
    double auto_total_ms = 0.0;
    bool fu_parity = true;
    double qft_hit_nuop = 0.0;
    double qft_hit_auto = 0.0;

    std::cout << "{\n  \"bench\": \"translation\",\n"
              << "  \"gate_set\": \"" << set.name
              << "\",\n  \"workloads\": [\n";
    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& workload = workloads[w];
        // Cold caches: every engine pays its own profile computations.
        ProfileCache nuop_cache;
        EngineRun nuop = runEngine(workload.circuit, device, set,
                                   options, "nuop", nuop_cache);
        ProfileCache auto_cache;
        EngineRun tiered = runEngine(workload.circuit, device, set,
                                     options, "auto", auto_cache);
        nuop_total_ms += nuop.compile_ms;
        auto_total_ms += tiered.compile_ms;
        // Exact mode: the analytic minimal-depth fits must meet or
        // beat the BFGS ladder's overall fidelity (1e-9 float slack).
        bool parity = tiered.estimated_fidelity + 1e-9 >=
                      nuop.estimated_fidelity;
        fu_parity = fu_parity && parity;
        if (workload.name == "qft16") {
            qft_hit_nuop = nuop.cache_hit_ratio;
            qft_hit_auto = tiered.cache_hit_ratio;
        }

        auto emit = [](const char* name, const EngineRun& run,
                       bool last) {
            std::cout << "      \"" << name
                      << "\": {\"compile_ms\": " << run.compile_ms
                      << ", \"translation_ms\": " << run.translation_ms
                      << ", \"two_qubit\": " << run.two_qubit
                      << ", \"analytic_ops\": " << run.analytic_ops
                      << ", \"estimated_fidelity\": "
                      << run.estimated_fidelity
                      << ", \"cache_hit_ratio\": "
                      << run.cache_hit_ratio << "}"
                      << (last ? "" : ",") << '\n';
        };
        std::cout << "    {\n      \"name\": \"" << workload.name
                  << "\",\n";
        emit("nuop", nuop, false);
        emit("auto", tiered, false);
        std::cout << "      \"speedup\": "
                  << (tiered.compile_ms > 0.0
                          ? nuop.compile_ms / tiered.compile_ms
                          : 0.0)
                  << ",\n      \"fu_parity\": "
                  << (parity ? "true" : "false") << "\n    }"
                  << (w + 1 < workloads.size() ? "," : "") << '\n';
    }
    std::cout << "  ],\n";

    // Bit-identity self-check: the explicit "nuop" strategy must be
    // bit-identical to the legacy default path (pre-registry output).
    bool bit_identical = true;
    {
        ProfileCache default_cache;
        CompileOptions default_options = options;
        CompileResult legacy = compileCircuit(
            workloads[0].circuit, device, set, default_cache,
            default_options);
        ProfileCache explicit_cache;
        CompileOptions explicit_options = options;
        explicit_options.decomposition = "nuop";
        CompileResult explicit_nuop = compileCircuit(
            workloads[0].circuit, device, set, explicit_cache,
            explicit_options);
        bit_identical =
            bench::resultsBitIdentical(legacy, explicit_nuop);
    }

    double speedup =
        auto_total_ms > 0.0 ? nuop_total_ms / auto_total_ms : 0.0;
    std::cout << "  \"cold\": {\"nuop_ms\": " << nuop_total_ms
              << ", \"auto_ms\": " << auto_total_ms
              << ", \"speedup\": " << speedup << "},\n"
              << "  \"qft16_hit_ratio\": {\"nuop\": " << qft_hit_nuop
              << ", \"auto\": " << qft_hit_auto << "},\n"
              << "  \"fu_parity\": " << (fu_parity ? "true" : "false")
              << ",\n  \"bit_identical\": "
              << (bit_identical ? "true" : "false") << "\n}\n";
    return 0;
}
