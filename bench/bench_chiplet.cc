/**
 * @file
 * Chiplet routing bench: full pipeline compiles on multi-core devices
 * (device_grid_of_grids topologies built by makeChipletDevice),
 * comparing teleport-aware routing against the SWAP-only link
 * baseline (options.teleport.use_teleport = false). Both variants
 * route identically — the same link crossings in the same order — so
 * estimated fidelity and routed duration isolate exactly what
 * exchange teleportation buys: one EPR pair per crossing instead of
 * the three a SWAP chain over the link consumes.
 *
 * Emits a single JSON object on stdout (captured by
 * scripts/bench_smoke.sh as BENCH_chiplet.json) and SELF-CHECKS: the
 * process exits nonzero unless every inter-core-heavy workload
 * actually crossed cores (teleports > 0) and the teleport-aware
 * compile beats the SWAP-only baseline on predicted fidelity or
 * routed depth. scripts/check_bench_regression.py additionally gates
 * the worst-case teleport-aware fidelity against a committed floor
 * (the compiles are seeded and serial, hence deterministic).
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "circuit/schedule.h"
#include "common/rng.h"
#include "compiler/pipeline.h"
#include "device/device.h"
#include "isa/gate_set.h"

namespace {

using namespace qiset;

struct Workload
{
    std::string name;
    Circuit circuit;
    const Device* device;
};

/** One compile variant's numbers. */
struct Variant
{
    int teleports = 0;
    double epr_attempts = 0.0;
    int swaps = 0;
    int routed_depth = 0;
    double duration_ns = 0.0;
    double estimated_fidelity = 0.0;
    double wall_ms = 0.0;
};

Variant
compileVariant(const Workload& workload, const GateSet& set,
               ProfileCache& cache, bool use_teleport)
{
    CompileOptions options = bench::benchCompileOptions();
    options.routing = "telesabre";
    options.teleport.use_teleport = use_teleport;
    auto start = std::chrono::steady_clock::now();
    CompileResult result = compileCircuit(
        workload.circuit, *workload.device, set, cache, options);
    auto end = std::chrono::steady_clock::now();

    Variant out;
    out.teleports = result.teleports_inserted;
    out.epr_attempts = result.epr_attempts;
    out.swaps = result.swaps_inserted;
    out.routed_depth = result.circuit.depth();
    out.duration_ns = Schedule(result.circuit).summary().duration_ns;
    out.estimated_fidelity = result.estimated_fidelity;
    out.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    return out;
}

void
printVariant(const char* key, const Variant& v, bool trailing_comma)
{
    std::cout << "      \"" << key << "\": {\"teleports\": "
              << v.teleports << ", \"epr_attempts\": " << v.epr_attempts
              << ", \"swaps\": " << v.swaps
              << ", \"routed_depth\": " << v.routed_depth
              << ", \"duration_ns\": " << v.duration_ns
              << ", \"estimated_fidelity\": " << v.estimated_fidelity
              << ", \"wall_ms\": " << v.wall_ms << "}"
              << (trailing_comma ? "," : "") << '\n';
}

} // namespace

int
main()
{
    // Seeded calibrations: the whole bench is deterministic.
    Rng rng(77);
    ChipletSpec small;
    small.core_rows = 2;
    small.core_cols = 2;
    small.rows = 2;
    small.cols = 3;
    Device chiplet2x2 = makeChipletDevice(small, rng);

    ChipletSpec large = small;
    large.core_rows = 3;
    large.core_cols = 3;
    Device chiplet3x3 = makeChipletDevice(large, rng);

    // Every workload is wider than one 6-qubit core, so the placement
    // must span cores and the router must cross links.
    Rng app_rng(4242);
    std::vector<Workload> workloads;
    workloads.push_back({"qft10_chiplet2x2", makeQftCircuit(10),
                         &chiplet2x2});
    workloads.push_back({"qv12_chiplet2x2",
                         makeQuantumVolumeCircuit(12, app_rng),
                         &chiplet2x2});
    workloads.push_back({"qft14_chiplet3x3", makeQftCircuit(14),
                         &chiplet3x3});
    workloads.push_back({"qaoa18_chiplet3x3",
                         makeRandomQaoaCircuit(18, app_rng),
                         &chiplet3x3});

    GateSet set = isa::singleTypeSet(3);
    ProfileCache cache;

    bool teleport_wins = true;
    double min_teleport_fidelity = 1.0;

    std::cout << "{\n  \"bench\": \"chiplet\",\n  \"workloads\": [\n";
    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& workload = workloads[w];
        Variant tele = compileVariant(workload, set, cache, true);
        Variant swap = compileVariant(workload, set, cache, false);

        // The self-check: inter-core traffic must exist, and paying
        // one EPR pair per crossing instead of three must show up in
        // the fidelity estimate (or, failing that, the routed depth).
        bool crossed = tele.teleports > 0;
        bool better =
            tele.estimated_fidelity > swap.estimated_fidelity ||
            tele.routed_depth < swap.routed_depth;
        if (!crossed || !better)
            teleport_wins = false;
        min_teleport_fidelity =
            std::min(min_teleport_fidelity, tele.estimated_fidelity);

        std::cout << "    {\n      \"name\": \"" << workload.name
                  << "\",\n      \"qubits\": "
                  << workload.circuit.numQubits()
                  << ",\n      \"cores\": "
                  << workload.device->topology().numCores()
                  << ",\n      \"two_qubit_gates\": "
                  << workload.circuit.twoQubitGateCount() << ",\n";
        printVariant("teleport", tele, true);
        printVariant("swap_only", swap, false);
        std::cout << "    }"
                  << (w + 1 < workloads.size() ? "," : "") << '\n';
    }
    std::cout << "  ],\n  \"teleport_wins\": "
              << (teleport_wins ? "true" : "false")
              << ",\n  \"min_teleport_fidelity\": "
              << min_teleport_fidelity << "\n}\n";

    if (!teleport_wins) {
        std::cerr << "bench_chiplet: SELF-CHECK FAILED: teleport-aware "
                     "routing did not beat the SWAP-only baseline on "
                     "every chiplet workload\n";
        return 1;
    }
    return 0;
}
