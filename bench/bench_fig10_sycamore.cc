/**
 * @file
 * Fig. 10(a-e) reproduction: noisy simulations on synthetic Google
 * Sycamore. Single-type sets S1-S7 vs multi-type sets G1-G7 vs Full
 * fSim on 6-qubit QV (HOP), 6-qubit QAOA (XED), 6-qubit QFT (success
 * rate) and 10-qubit Fermi-Hubbard (XEB fidelity); plus the
 * no-noise-variation ablation (e) and the Full-fSim error-inflation
 * sensitivity study.
 */

#include <iostream>
#include <vector>

#include "apps/fermi_hubbard.h"
#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_circuits = scale.circuits(4, 100);

    Rng rng(10);
    Device sycamore = makeSycamore(rng);

    std::vector<Circuit> qv_circuits, qaoa_circuits;
    for (int i = 0; i < num_circuits; ++i) {
        qv_circuits.push_back(makeQuantumVolumeCircuit(6, rng));
        qaoa_circuits.push_back(makeRandomQaoaCircuit(6, rng));
    }
    Circuit qft = makeQftCircuitOnInput(6, 38);
    Circuit fh = makeFermiHubbardCircuit(10, 0.5, 0.25);
    auto fh_ideal = idealProbabilities(fh);

    std::vector<GateSet> sets;
    for (int i = 1; i <= 7; ++i)
        sets.push_back(isa::singleTypeSet(i));
    for (int i = 1; i <= 7; ++i)
        sets.push_back(isa::googleSet(i));
    sets.push_back(isa::fullFsim());

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;

    std::cout << "=== Fig. 10(a-d): Sycamore instruction-set study "
                 "===\n\n";

    Table table({"gate set", "QV-6 HOP", "2Q#", "QAOA-6 XED", "2Q#",
                 "QFT-6 success", "2Q#", "FH-10 XEB", "2Q#"});
    for (const auto& set : sets) {
        auto qv = bench::scoreGateSet(sycamore, set, qv_circuits, cache,
                                      options, heavyOutputProbability);
        auto qaoa =
            bench::scoreGateSet(sycamore, set, qaoa_circuits, cache,
                                options, crossEntropyDifference);

        CompileResult qft_result =
            compileCircuit(qft, sycamore, set, cache, options);
        double qft_success = bench::successRate(qft_result, qft);

        CompileResult fh_result =
            compileCircuit(fh, sycamore, set, cache, options);
        auto fh_noisy = simulateCompiled(fh_result);
        double fh_xeb = linearXebFidelity(fh_ideal, fh_noisy);

        table.addRow(
            {set.name, fmtDouble(qv.metric, 3),
             fmtDouble(qv.avg_two_qubit, 0), fmtDouble(qaoa.metric, 3),
             fmtDouble(qaoa.avg_two_qubit, 0),
             fmtDouble(qft_success, 3),
             std::to_string(qft_result.two_qubit_count),
             fmtDouble(fh_xeb, 3),
             std::to_string(fh_result.two_qubit_count)});
    }
    table.print(std::cout);

    // (e) Ablation: no noise variation across gate types.
    std::cout << "\n--- Fig. 10e: QAOA-6 without cross-gate-type noise "
                 "variation ---\n";
    Device uniform = sycamore.withUniformGateTypes("S1");
    Table ablation({"gate set", "QAOA-6 XED", "2Q#"});
    for (const auto& set : sets) {
        auto qaoa =
            bench::scoreGateSet(uniform, set, qaoa_circuits, cache,
                                options, crossEntropyDifference);
        ablation.addRow({set.name, fmtDouble(qaoa.metric, 3),
                         fmtDouble(qaoa.avg_two_qubit, 0)});
    }
    ablation.print(std::cout);

    // Full-fSim error inflation (the light bars of Fig. 10a-c).
    std::cout << "\n--- Full fSim with inflated error rates (1x-3x) "
                 "---\n";
    Table inflation({"error scale", "QV-6 HOP", "QAOA-6 XED",
                     "QFT-6 success"});
    for (double factor : {1.0, 1.5, 2.0, 2.5, 3.0}) {
        Device inflated = sycamore.withScaledTwoQubitErrors(factor);
        GateSet full = isa::fullFsim();
        auto qv = bench::scoreGateSet(inflated, full, qv_circuits,
                                      cache, options,
                                      heavyOutputProbability);
        auto qaoa =
            bench::scoreGateSet(inflated, full, qaoa_circuits, cache,
                                options, crossEntropyDifference);
        CompileResult qft_result =
            compileCircuit(qft, inflated, full, cache, options);
        inflation.addRow({fmtDouble(factor, 1), fmtDouble(qv.metric, 3),
                          fmtDouble(qaoa.metric, 3),
                          fmtDouble(bench::successRate(qft_result, qft),
                                    3)});
    }
    inflation.print(std::cout);

    std::cout
        << "\nExpected shape: G1-G7 beat S1-S7; G7 (native SWAP) "
           "approaches Full fSim;\nthe ablation (e) shrinks the G1-G6 "
           "advantage; inflating Full fSim's error\nrates by ~2-3x "
           "erases its advantage over the discrete sets.\n";
    return 0;
}
