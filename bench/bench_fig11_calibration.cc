/**
 * @file
 * Fig. 11 reproduction. (a) number of calibration circuits vs number
 * of fSim gate types for 2-, 54- and 1000-qubit devices; (b) wall-
 * clock calibration time plus the application-reliability improvement
 * of multi-type sets relative to the best single-type set.
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "calibration/calibration_model.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    CalibrationCostModel model;

    std::cout << "=== Fig. 11a: calibration circuits vs gate types "
                 "===\n\n";
    Table fig_a({"#types", "2 qubits", "54 qubits", "1000 qubits"});
    for (int types : {1, 2, 4, 8, 16, 50, 100, 200, 300, 361}) {
        fig_a.addRow(
            {std::to_string(types),
             fmtSci(static_cast<double>(model.totalCircuits(1, types)),
                    1),
             fmtSci(static_cast<double>(
                        model.totalCircuits(gridPairCount(54), types)),
                    1),
             fmtSci(static_cast<double>(model.totalCircuits(
                        gridPairCount(1000), types)),
                    1)});
    }
    fig_a.print(std::cout);

    std::cout << "\n=== Fig. 11b: calibration hours vs reliability "
                 "improvement ===\n"
              << "(improvement = mean relative gain in QAOA XED and "
                 "QFT success over the best\n single-type set; quick "
                 "mode is statistically noisy, use --full)\n\n";

    Rng rng(12);
    Device sycamore = makeSycamore(rng);
    const int num_circuits = scale.circuits(8, 100);
    std::vector<Circuit> qaoa_circuits;
    for (int i = 0; i < num_circuits; ++i)
        qaoa_circuits.push_back(makeRandomQaoaCircuit(6, rng));
    Circuit qft = makeQftCircuitOnInput(6, 38);

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;

    auto evaluate = [&](const GateSet& set, double* qaoa_out,
                        double* qft_out) {
        auto qaoa =
            bench::scoreGateSet(sycamore, set, qaoa_circuits, cache,
                                options, crossEntropyDifference);
        CompileResult qft_result =
            compileCircuit(qft, sycamore, set, cache, options);
        *qaoa_out = qaoa.metric;
        *qft_out = bench::successRate(qft_result, qft);
    };

    // Reference: best single-type set among S1..S7, per benchmark.
    double best_single_qaoa = 0.0, best_single_qft = 0.0;
    for (int i = 1; i <= 7; ++i) {
        double qaoa, qft_success;
        evaluate(isa::singleTypeSet(i), &qaoa, &qft_success);
        best_single_qaoa = std::max(best_single_qaoa, qaoa);
        best_single_qft = std::max(best_single_qft, qft_success);
    }

    Table fig_b({"#types", "set", "calibration hours", "QAOA XED",
                 "QFT success", "improvement vs best single"});
    auto add_row = [&](const GateSet& set, const std::string& types_txt,
                       double hours) {
        double qaoa, qft_success;
        evaluate(set, &qaoa, &qft_success);
        double improvement =
            0.5 * ((qaoa - best_single_qaoa) / best_single_qaoa +
                   (qft_success - best_single_qft) / best_single_qft);
        fig_b.addRow({types_txt, set.name, fmtDouble(hours, 1),
                      fmtDouble(qaoa, 3), fmtDouble(qft_success, 3),
                      fmtDouble(100.0 * improvement, 1) + "%"});
    };
    for (int g = 1; g <= 7; ++g) {
        GateSet set = isa::googleSet(g);
        int types = set.calibrationTypeCount();
        add_row(set, std::to_string(types),
                model.wallClockHours(types));
    }
    add_row(isa::fullFsim(), "361 (Inf)", model.wallClockHours(361));
    fig_b.print(std::cout);

    std::cout
        << "\nExpected shape: circuits scale linearly in #types and "
           "#pairs (two orders of\nmagnitude between 4-8 types and "
           "the 361-point continuous grid); reliability\nimproves "
           "with more types with diminishing returns past ~5.\n";
    return 0;
}
