/**
 * @file
 * Ablation study of the compiler's design choices (DESIGN.md §4):
 *  1. two-qubit block consolidation on/off,
 *  2. approximate (Eq. 2) vs exact decomposition selection,
 *  3. noise adaptivity across gate types (multi-type set on the real
 *     device vs on the uniform-fidelity ablated device).
 * Workload: 6-qubit QAOA on synthetic Sycamore with G3.
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "compiler/crosstalk.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_circuits = scale.circuits(6, 50);

    Rng rng(14);
    Device sycamore = makeSycamore(rng);
    Device uniform = sycamore.withUniformGateTypes("S1");
    GateSet g3 = isa::googleSet(3);

    std::vector<Circuit> circuits;
    for (int i = 0; i < num_circuits; ++i)
        circuits.push_back(makeRandomQaoaCircuit(6, rng));

    ProfileCache cache;
    std::cout << "=== Compiler-pass ablations (QAOA-6, Sycamore, G3) "
                 "===\n\n";
    Table table({"configuration", "QAOA XED", "avg 2Q#"});

    auto run = [&](const char* name, const Device& device,
                   bool consolidate, bool approximate) {
        CompileOptions options = bench::benchCompileOptions();
        options.consolidate = consolidate;
        options.approximate = approximate;
        auto score =
            bench::scoreGateSet(device, g3, circuits, cache, options,
                                crossEntropyDifference);
        table.addRow({name, fmtDouble(score.metric, 3),
                      fmtDouble(score.avg_two_qubit, 1)});
    };

    run("full pipeline", sycamore, true, true);
    run("no consolidation", sycamore, false, true);
    run("exact decomposition", sycamore, true, false);
    run("no consolidation + exact", sycamore, false, false);
    run("no cross-type noise variation", uniform, true, true);

    // Crosstalk sensitivity: inflate simultaneous adjacent 2Q gates
    // (ref. [30]) after compilation and re-simulate.
    {
        CompileOptions options = bench::benchCompileOptions();
        double total = 0.0, twoq = 0.0;
        for (const auto& app : circuits) {
            CompileResult result =
                compileCircuit(app, sycamore, g3, cache, options);
            applyCrosstalkInflation(result.circuit, result.physical,
                                    sycamore.topology(), 3.0);
            total += crossEntropyDifference(idealProbabilities(app),
                                            simulateCompiled(result));
            twoq += result.two_qubit_count;
        }
        table.addRow({"with 3x crosstalk inflation",
                      fmtDouble(total / circuits.size(), 3),
                      fmtDouble(twoq / circuits.size(), 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: consolidation cuts instruction counts (SWAP "
           "fusion); approximation\ntrades decomposition accuracy for "
           "fewer noisy gates; removing cross-type noise\nvariation "
           "removes the adaptivity benefit that multi-type sets "
           "exploit.\n";
    return 0;
}
