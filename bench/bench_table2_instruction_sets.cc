/**
 * @file
 * Table II reproduction: every instruction set studied (S1-S7, G1-G7,
 * R1-R5, Full XY, Full fSim) with its gate types and calibration
 * footprint.
 */

#include <iostream>

#include "calibration/calibration_model.h"
#include "common/table.h"
#include "isa/gate_set.h"
#include "qc/gates.h"

using namespace qiset;

namespace {

std::string
describeType(const GateType& type)
{
    if (type.is_swap)
        return "SWAP";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "fSim(%.3f,%.3f)", type.theta,
                  type.phi);
    return std::string(type.name) + "=" + buf;
}

void
addRow(Table& table, const GateSet& set, const CalibrationCostModel& model,
       int pairs)
{
    std::string types;
    if (set.isContinuous()) {
        types = set.continuous == ContinuousFamily::FullXy
                    ? "XY(theta), theta in [0,pi] (+CZ)"
                    : "fSim(theta,phi), theta,phi in [0,pi]";
    } else {
        for (const auto& type : set.types)
            types += describeType(type) + " ";
    }
    table.addRow({set.name, std::to_string(set.calibrationTypeCount()),
                  types,
                  fmtSci(static_cast<double>(model.totalCircuits(
                             pairs, set.calibrationTypeCount())),
                         1)});
}

} // namespace

int
main()
{
    std::cout << "=== Table II: instruction sets studied ===\n"
              << "(calibration circuits computed for a 54-qubit grid "
                 "device)\n\n";

    CalibrationCostModel model;
    int pairs = gridPairCount(54);

    Table table(
        {"set", "#types", "gate types", "calibration circuits"});
    for (int i = 1; i <= 7; ++i)
        addRow(table, isa::singleTypeSet(i), model, pairs);
    for (int i = 1; i <= 7; ++i)
        addRow(table, isa::googleSet(i), model, pairs);
    for (int i = 1; i <= 5; ++i)
        addRow(table, isa::rigettiSet(i), model, pairs);
    addRow(table, isa::fullXy(), model, pairs);
    addRow(table, isa::fullFsim(), model, pairs);
    table.print(std::cout);

    std::cout << "\nIdentities: XY(theta) = fSim(theta/2, 0) up to 1Q "
                 "rotations; CZ(phi) = fSim(0, phi);\n"
                 "SWAP is locally equivalent to fSim(pi/2, pi).\n";
    return 0;
}
