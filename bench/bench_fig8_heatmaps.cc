/**
 * @file
 * Fig. 8 reproduction: expressivity heatmaps over the fSim(theta, phi)
 * parameter space. For each grid point, the average number of exact
 * NuOp gate applications needed per application unitary (QV, QAOA,
 * QFT, FH, SWAP). Quick mode uses a 10x10 grid; --full uses the
 * paper's 19x19.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/qv.h"
#include "bench_common.h"
#include "common/rng.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"

using namespace qiset;

namespace {

/** Pretty-print one heatmap as a text grid (theta columns, phi rows). */
void
printHeatmap(const char* title, const std::vector<std::vector<double>>& map,
             int grid)
{
    std::cout << "-- " << title
              << " (rows: phi = 0..pi top to bottom; cols: theta = "
                 "0..pi/2) --\n";
    for (int iy = 0; iy < grid; ++iy) {
        for (int ix = 0; ix < grid; ++ix)
            std::printf("%4.1f", map[iy][ix]);
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int grid = scale.full ? 19 : 10;
    const int samples = scale.full ? 10 : 3;
    const int max_layers = scale.full ? 6 : 5;

    Rng rng(8);
    std::vector<Matrix> qv_pool, qaoa_pool, qft_pool, fh_pool;
    for (int i = 0; i < samples; ++i) {
        qv_pool.push_back(randomSu4(rng));
        qaoa_pool.push_back(gates::zz(rng.uniform(0.02, 1.5)));
        qft_pool.push_back(
            gates::cphase(-gates::kPi / (1 << (i % 4 + 1))));
        fh_pool.push_back(i % 2 == 0
                              ? gates::xxPlusYy(rng.uniform(0.1, 1.5))
                              : gates::zz(rng.uniform(0.05, 0.8)));
    }
    std::vector<Matrix> swap_pool = {gates::swap()};

    struct AppClass
    {
        const char* name;
        const std::vector<Matrix>* pool;
    };
    const AppClass apps[] = {
        {"(a) QV unitaries", &qv_pool},
        {"(b) QAOA unitaries", &qaoa_pool},
        {"(c) QFT unitaries", &qft_pool},
        {"(d) FH unitaries", &fh_pool},
        {"(e) SWAP unitary", &swap_pool},
    };

    NuOpOptions options;
    options.max_layers = max_layers;
    options.multistarts = 2;
    options.bfgs.max_iterations = 100;
    NuOpDecomposer nuop(options);

    std::cout << "=== Fig. 8: average 2Q gate counts across the "
                 "fSim(theta, phi) space ===\n"
              << "(counts capped at max_layers = " << max_layers
              << "; grid " << grid << "x" << grid << ")\n\n";

    for (const auto& app : apps) {
        std::vector<std::vector<double>> heat(
            grid, std::vector<double>(grid, 0.0));
        for (int iy = 0; iy < grid; ++iy) {
            double phi = gates::kPi * iy / (grid - 1);
            for (int ix = 0; ix < grid; ++ix) {
                double theta = (gates::kPi / 2.0) * ix / (grid - 1);
                HardwareGate gate = makeFixedGate(
                    "fSim", gates::fsim(theta, phi));
                double total = 0.0;
                for (const auto& target : *app.pool) {
                    Decomposition d = nuop.decomposeExact(target, gate);
                    total += d.meets_threshold
                                 ? d.layers
                                 : options.max_layers;
                }
                heat[iy][ix] = total / app.pool->size();
            }
        }
        printHeatmap(app.name, heat, grid);
    }

    std::cout
        << "Expected structure (Sec. VIII): QV best near "
           "fSim(5pi/12,0) and fSim(pi/6,pi);\nQAOA best near CZ "
           "(theta=0, phi=pi) and iSWAP (theta=pi/2, phi=0); FH best\n"
           "near sqrt(iSWAP); SWAP costs 3 almost everywhere but 1 at "
           "fSim(pi/2, pi).\n";
    return 0;
}
