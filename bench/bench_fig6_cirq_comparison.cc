/**
 * @file
 * Fig. 6 reproduction: average hardware gate counts of the Cirq
 * (KAK-rule) baseline vs NuOp exact (100%) and approximate
 * (99.9% / 99% / 95% hardware-fidelity) decompositions, per target
 * gate type, averaged over QV, QAOA and QFT unitaries.
 */

#include <iostream>
#include <vector>

#include "apps/qv.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "nuop/decomposer.h"
#include "nuop/kak.h"
#include "qc/gates.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int samples = scale.circuits(12, 100);

    Rng rng(6);
    // Unitary pools per application class (Section VII used 100 each).
    std::vector<Matrix> qv_pool, qaoa_pool, qft_pool;
    for (int i = 0; i < samples; ++i) {
        qv_pool.push_back(randomSu4(rng));
        qaoa_pool.push_back(gates::zz(rng.uniform(0.02, 1.5)));
        qft_pool.push_back(
            gates::cphase(-gates::kPi / (1 << (i % 5 + 1))));
    }

    struct Target
    {
        const char* name;
        const char* cirq_name;
        Matrix unitary;
    };
    const Target targets[] = {
        {"CZ", "CZ", gates::cz()},
        {"SYC", "SYC", gates::sycamore()},
        {"iSWAP", "iSWAP", gates::iswap()},
        {"sqiSWAP", "sqrt_iSWAP", gates::sqrtIswap()},
    };

    NuOpOptions options;
    options.max_layers = 6;
    options.multistarts = 3;
    NuOpDecomposer nuop(options);

    const double fidelity_grades[] = {1.0, 0.999, 0.99, 0.95};
    const char* grade_names[] = {"NuOp-100%", "NuOp-99.9%", "NuOp-99%",
                                 "NuOp-95%"};

    std::cout << "=== Fig. 6: Cirq vs NuOp hardware gate counts "
                 "(lower is better) ===\n\n";

    for (const char* app : {"QV", "QAOA", "QFT"}) {
        const std::vector<Matrix>& pool =
            app == std::string("QV")
                ? qv_pool
                : (app == std::string("QAOA") ? qaoa_pool : qft_pool);

        Table table({"method", "CZ", "SYC", "iSWAP", "sqiSWAP"});

        // Cirq baseline row.
        std::vector<std::string> row = {"Cirq"};
        for (const auto& target : targets) {
            double total = 0.0;
            bool supported = true;
            for (const auto& u : pool) {
                int count = cirqBaselineGateCount(u, target.cirq_name);
                if (count < 0) {
                    supported = false;
                    break;
                }
                total += count;
            }
            row.push_back(supported ? fmtDouble(total / pool.size(), 2)
                                    : "n/a");
        }
        table.addRow(row);

        // NuOp rows.
        for (int g = 0; g < 4; ++g) {
            row = {grade_names[g]};
            for (const auto& target : targets) {
                double total = 0.0;
                double err_total = 0.0;
                for (const auto& u : pool) {
                    HardwareGate gate = makeFixedGate(
                        target.name, target.unitary, fidelity_grades[g]);
                    Decomposition d =
                        fidelity_grades[g] == 1.0
                            ? nuop.decomposeExact(u, gate)
                            : nuop.decomposeApproximate(u, gate);
                    total += d.layers;
                    err_total += 1.0 - d.decomposition_fidelity;
                }
                row.push_back(fmtDouble(total / pool.size(), 2));
                (void)err_total;
            }
            table.addRow(row);
        }

        std::cout << "-- " << app << " unitaries (" << pool.size()
                  << " samples) --\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Expected shape: NuOp-100% <= Cirq everywhere "
                 "(Cirq lacks a generic sqrt(iSWAP)\npath for QV); "
                 "approximate grades reduce counts further as the "
                 "assumed hardware\nfidelity drops.\n";
    return 0;
}
