/**
 * @file
 * Sharded batch-compilation bench: a mixed workload compiled serially
 * on one device vs. sharded over a 2-device fleet with a thread pool.
 * Reports wall-clock, throughput and the sharded/serial speedup, plus
 * per-shard assignment counts and the mean-fidelity delta vs. the
 * single-device baseline — and verifies that every sharded result is
 * bit-identical to compiling the same circuit alone on its assigned
 * device (exit code 1 on any mismatch, so CI catches determinism
 * breaks on the perf path).
 *
 * Emits a single JSON object on stdout (captured as
 * BENCH_sharding.json by scripts/bench_smoke.sh); the regression gate
 * tracks the speedup, which is machine-relative and therefore stable
 * across runner generations. The pool is capped at 4 threads so the
 * figure is comparable between laptops and CI runners.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "compiler/shard.h"
#include "isa/gate_set.h"

namespace {

using namespace qiset;

Device
makeLineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

std::vector<Circuit>
makeWorkload()
{
    std::vector<Circuit> apps;
    Rng rng(2024);
    for (int i = 0; i < 4; ++i) {
        apps.push_back(makeQftCircuit(4 + i % 2));
        apps.push_back(makeRandomQaoaCircuit(5, rng));
        apps.push_back(makeQuantumVolumeCircuit(4, rng));
    }
    return apps;
}

double
wallMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
meanFidelity(const std::vector<CompileResult>& results)
{
    double sum = 0.0;
    for (const CompileResult& r : results)
        sum += r.estimated_fidelity;
    return results.empty() ? 0.0 : sum / results.size();
}

} // namespace

int
main()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    GateSet set = isa::rigettiSet(1);

    std::vector<Circuit> apps = makeWorkload();

    // Fleet: two calibrated 8-qubit devices, the second slightly
    // worse, so the planner has both load and fidelity to trade off.
    DeviceFleet fleet(opts);
    fleet.addDevice(makeLineDevice("alpha", 8, 0.995));
    fleet.addDevice(makeLineDevice("beta", 8, 0.990));

    size_t hardware = std::thread::hardware_concurrency();
    size_t threads = std::min<size_t>(4, hardware ? hardware : 4);
    if (const char* env = std::getenv("BENCH_SHARDING_THREADS"))
        threads = std::max(1, std::atoi(env));

    // Serial single-device baseline: the whole workload on the best
    // device, no pool.
    ProfileCache serial_cache;
    auto serial_start = std::chrono::steady_clock::now();
    std::vector<CompileResult> serial = compileBatch(
        apps, fleet.shard(0).device, set, serial_cache, opts);
    double serial_ms = wallMsSince(serial_start);

    // Sharded: planner spreads the workload over the fleet, compiles
    // fan out over the pool with one shared cache.
    ProfileCache sharded_cache;
    ThreadPool pool(threads);
    auto sharded_start = std::chrono::steady_clock::now();
    ShardedBatchResult sharded =
        compileBatchSharded(apps, fleet, set, sharded_cache, {}, &pool);
    double sharded_ms = wallMsSince(sharded_start);

    // Bit-identity: every sharded result must equal a solo compile on
    // its assigned device. Circuits placed on shard 0 compare against
    // the serial baseline for free; the rest are recompiled solo.
    bool bit_identical = true;
    ProfileCache check_cache;
    for (size_t i = 0; i < apps.size(); ++i) {
        int s = sharded.plan.assignments[i].shard;
        const Shard& shard = fleet.shard(static_cast<size_t>(s));
        if (s == 0) {
            bit_identical =
                bit_identical &&
                bench::resultsBitIdentical(serial[i], sharded.results[i]);
        } else {
            CompileResult solo =
                compileCircuit(apps[i], shard.device, set, check_cache,
                               shard.options);
            bit_identical =
                bit_identical &&
                bench::resultsBitIdentical(solo, sharded.results[i]);
        }
    }

    double speedup = sharded_ms > 0.0 ? serial_ms / sharded_ms : 0.0;
    double serial_cps = serial_ms > 0.0 ? 1000.0 * apps.size() / serial_ms
                                        : 0.0;
    double sharded_cps =
        sharded_ms > 0.0 ? 1000.0 * apps.size() / sharded_ms : 0.0;
    double fid_serial = meanFidelity(serial);
    double fid_sharded = meanFidelity(sharded.results);

    std::cout << "{\n  \"bench\": \"sharding\",\n"
              << "  \"num_circuits\": " << apps.size() << ",\n"
              << "  \"num_shards\": " << fleet.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"serial\": {\"wall_ms\": " << serial_ms
              << ", \"throughput_cps\": " << serial_cps << "},\n"
              << "  \"sharded\": {\"wall_ms\": " << sharded_ms
              << ", \"throughput_cps\": " << sharded_cps
              << ", \"speedup\": " << speedup << "},\n"
              << "  \"bit_identical\": "
              << (bit_identical ? "true" : "false") << ",\n"
              << "  \"mean_fidelity_serial\": " << fid_serial << ",\n"
              << "  \"mean_fidelity_sharded\": " << fid_sharded << ",\n"
              << "  \"fidelity_delta\": " << fid_sharded - fid_serial
              << ",\n  \"shards\": [\n";
    for (size_t s = 0; s < fleet.size(); ++s) {
        const PassMetric& metric = sharded.shard_metrics[s];
        std::cout << "    {\"name\": \"" << fleet.shard(s).name
                  << "\", \"assigned\": "
                  << metric.counters.at("assigned")
                  << ", \"queue_ns\": " << metric.counters.at("queue_ns")
                  << ", \"compile_wall_ms\": " << metric.wall_ms << "}"
                  << (s + 1 < fleet.size() ? "," : "") << '\n';
    }
    std::cout << "  ]\n}\n";

    if (!bit_identical) {
        std::cerr << "FAIL: sharded results diverge from single-device "
                     "compiles\n";
        return 1;
    }
    return 0;
}
