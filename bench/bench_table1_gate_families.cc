/**
 * @file
 * Table I reproduction: the current and anticipated two-qubit gate
 * types of Rigetti and Google, their unitaries and the fidelity
 * assumptions the simulation study uses.
 */

#include <iostream>

#include "common/table.h"
#include "device/device.h"
#include "qc/gates.h"

using namespace qiset;

int
main()
{
    std::cout << "=== Table I: two-qubit gate families ===\n\n";

    std::cout << "Rigetti CZ (current):\n"
              << gates::cz().toString(2) << "\n";
    std::cout << "Rigetti XY(pi) == iSWAP-like (current):\n"
              << gates::xy(gates::kPi).toString(2) << "\n";
    std::cout << "Rigetti XY(theta) family example, XY(pi/2):\n"
              << gates::xy(gates::kPi / 2).toString(2) << "\n";
    std::cout << "Google SYC = fSim(pi/2, pi/6) (current):\n"
              << gates::sycamore().toString(2) << "\n";
    std::cout << "Google sqrt(iSWAP) = fSim(pi/4, 0) (current):\n"
              << gates::sqrtIswap().toString(2) << "\n";
    std::cout << "Google fSim(theta, phi) family example, "
                 "fSim(pi/6, pi/8):\n"
              << gates::fsim(gates::kPi / 6, gates::kPi / 8).toString(2)
              << "\n";

    std::cout << "Fidelity assumptions (synthetic calibration, seeded):\n";
    Rng rng(1);
    Device aspen = makeAspen8(rng);
    Device sycamore = makeSycamore(rng);

    Table table({"vendor", "gate family", "mean fidelity (measured)",
                 "paper's band"});
    table.addRow({"Rigetti", "CZ",
                  fmtDouble(aspen.meanEdgeFidelity("S3"), 3), "~95%"});
    table.addRow({"Rigetti", "XY(pi)",
                  fmtDouble(aspen.meanEdgeFidelity("S4"), 3), "~95%"});
    table.addRow({"Rigetti", "XY(theta) family",
                  fmtDouble(aspen.meanEdgeFidelity("XY"), 3), "95-99%"});
    table.addRow({"Google", "SYC",
                  fmtDouble(sycamore.meanEdgeFidelity("S1"), 4),
                  "~99.6%"});
    table.addRow({"Google", "fSim(theta, phi) family",
                  fmtDouble(sycamore.meanEdgeFidelity("fSim"), 4),
                  "~99.6%"});
    table.print(std::cout);
    return 0;
}
