/**
 * @file
 * Fig. 9 reproduction: noisy simulations on synthetic Rigetti Aspen-8.
 * Single-type sets S2-S6 vs multi-type sets R1-R5 vs Full XY on
 * (a) 3-qubit QV (HOP), (b) 4-qubit QAOA (XED), (c) 3-qubit QFT
 * (success rate).
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_circuits = scale.circuits(8, 100);

    Rng rng(9);
    Device aspen = makeAspen8(rng);

    std::vector<Circuit> qv_circuits, qaoa_circuits;
    for (int i = 0; i < num_circuits; ++i) {
        qv_circuits.push_back(makeQuantumVolumeCircuit(3, rng));
        qaoa_circuits.push_back(makeRandomQaoaCircuit(4, rng));
    }
    Circuit qft = makeQftCircuitOnInput(3, 5);

    std::vector<GateSet> sets;
    for (int i = 2; i <= 6; ++i)
        sets.push_back(isa::singleTypeSet(i));
    for (int i = 1; i <= 5; ++i)
        sets.push_back(isa::rigettiSet(i));
    sets.push_back(isa::fullXy());

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;

    std::cout << "=== Fig. 9: Rigetti Aspen-8 instruction-set study "
                 "===\n(HOP threshold for quantum volume: 0.667)\n\n";

    Table table({"gate set", "QV-3 HOP", "QV 2Q#", "QAOA-4 XED",
                 "QAOA 2Q#", "QFT-3 success", "QFT 2Q#"});
    for (const auto& set : sets) {
        auto qv = bench::scoreGateSet(aspen, set, qv_circuits, cache,
                                      options, heavyOutputProbability);
        auto qaoa =
            bench::scoreGateSet(aspen, set, qaoa_circuits, cache,
                                options, crossEntropyDifference);

        CompileResult qft_result =
            compileCircuit(qft, aspen, set, cache, options);
        double qft_success = bench::successRate(qft_result, qft);

        table.addRow({set.name, fmtDouble(qv.metric, 3),
                      fmtDouble(qv.avg_two_qubit, 1),
                      fmtDouble(qaoa.metric, 3),
                      fmtDouble(qaoa.avg_two_qubit, 1),
                      fmtDouble(qft_success, 3),
                      std::to_string(qft_result.two_qubit_count)});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: multi-type sets (R1-R5) beat the "
           "single-type sets; R5 (native\nSWAP) approaches Full XY on "
           "every benchmark and in instruction counts.\n";
    return 0;
}
