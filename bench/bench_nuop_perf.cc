/**
 * @file
 * Micro-benchmarks (google-benchmark): NuOp decomposition latency per
 * layer count and gate family, plus simulator gate-application
 * throughput. Mirrors the paper's Section VI compile-time discussion.
 */

#include <benchmark/benchmark.h>

#include "apps/qv.h"
#include "common/rng.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

using namespace qiset;

namespace {

void
BM_NuOpExactSu4IntoCz(benchmark::State& state)
{
    Rng rng(1);
    Matrix target = randomSu4(rng);
    NuOpOptions options;
    options.max_layers = 4;
    options.multistarts = static_cast<int>(state.range(0));
    NuOpDecomposer nuop(options);
    HardwareGate gate = makeFixedGate("CZ", gates::cz());
    for (auto _ : state) {
        Decomposition d = nuop.decomposeExact(target, gate);
        benchmark::DoNotOptimize(d.decomposition_fidelity);
    }
}
BENCHMARK(BM_NuOpExactSu4IntoCz)->Arg(1)->Arg(2)->Arg(4);

void
BM_NuOpZzIntoCz(benchmark::State& state)
{
    NuOpOptions options;
    options.max_layers = 4;
    NuOpDecomposer nuop(options);
    HardwareGate gate = makeFixedGate("CZ", gates::cz());
    Matrix target = gates::zz(0.4);
    for (auto _ : state) {
        Decomposition d = nuop.decomposeExact(target, gate);
        benchmark::DoNotOptimize(d.layers);
    }
}
BENCHMARK(BM_NuOpZzIntoCz);

void
BM_NuOpFullFsimFamily(benchmark::State& state)
{
    Rng rng(2);
    Matrix target = randomSu4(rng);
    NuOpOptions options;
    options.max_layers = 3;
    options.multistarts = 2;
    NuOpDecomposer nuop(options);
    HardwareGate family;
    family.name = "fSim";
    family.family = TemplateFamily::FullFsim;
    for (auto _ : state) {
        Decomposition d = nuop.decomposeExact(target, family);
        benchmark::DoNotOptimize(d.layers);
    }
}
BENCHMARK(BM_NuOpFullFsimFamily);

void
BM_StateVector2qGate(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    Matrix gate = gates::fsim(0.3, 0.9);
    for (auto _ : state)
        sv.apply2q(gate, 0, n / 2);
    state.SetItemsProcessed(state.iterations() * (1 << n));
}
BENCHMARK(BM_StateVector2qGate)->Arg(10)->Arg(16)->Arg(20);

void
BM_DensityMatrixNoisy2qGate(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    DensityMatrix rho(n);
    Matrix gate = gates::fsim(0.3, 0.9);
    for (auto _ : state) {
        rho.applyUnitary(gate, {0, 1});
        rho.applyDepolarizing(0.006, {0, 1});
    }
    state.SetItemsProcessed(state.iterations() * (1 << (2 * n)));
}
BENCHMARK(BM_DensityMatrixNoisy2qGate)->Arg(6)->Arg(8)->Arg(10);

} // namespace

BENCHMARK_MAIN();
