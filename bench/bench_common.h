#ifndef QISET_BENCH_BENCH_COMMON_H
#define QISET_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the figure/table benches: scale flags and the
 * compile-simulate-score loop used by the Fig. 9/10 reproductions.
 */

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "compiler/service.h"
#include "metrics/metrics.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

namespace qiset {
namespace bench {

/** Bench scale selected on the command line. */
struct Scale
{
    /** True when --full was passed: paper-scale sampling. */
    bool full = false;

    /** Random-circuit count per benchmark. */
    int circuits(int quick_count, int full_count) const
    {
        return full ? full_count : quick_count;
    }
};

inline Scale
parseArgs(int argc, char** argv)
{
    Scale scale;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--full")
            scale.full = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0] << " [--full]\n"
                      << "  --full  paper-scale sample counts (slow)\n";
            std::exit(0);
        }
    }
    if (!scale.full) {
        std::cout << "(quick mode: reduced sample counts; pass --full "
                     "for paper-scale runs)\n\n";
    }
    return scale;
}

/** Compile options tuned for the serial bench environment. */
inline CompileOptions
benchCompileOptions()
{
    CompileOptions options;
    options.approximate = true;
    options.nuop.max_layers = 5;
    options.nuop.multistarts = 3;
    options.nuop.exact_threshold = 1.0 - 1e-6;
    options.nuop.bfgs.max_iterations = 150;
    return options;
}

/** Average metric and instruction count of a gate set on a workload. */
struct GateSetScore
{
    double metric = 0.0;
    double avg_two_qubit = 0.0;
};

/**
 * Compile every circuit for the gate set, simulate exactly (density
 * matrix + readout) and average metric(ideal, noisy). Compilation
 * goes through a one-shot CompileService request/job round trip (the
 * same path the async front end serves), so a pool parallelizes
 * across circuits while the shared cache still deduplicates NuOp
 * work; results are bit-identical to the legacy compileBatch path.
 */
inline GateSetScore
scoreGateSet(const Device& device, const GateSet& gate_set,
             const std::vector<Circuit>& circuits, ProfileCache& cache,
             const CompileOptions& options,
             const std::function<double(const std::vector<double>&,
                                        const std::vector<double>&)>&
                 metric,
             ThreadPool* pool = nullptr)
{
    GateSetScore score;
    DeviceFleet fleet(options);
    fleet.addDevice(device, options);
    CompileService service(
        std::move(fleet), gate_set,
        oneShotServiceOptions(cache, circuits.size(), pool));

    CompileRequest request;
    request.circuits = circuits;
    std::vector<CompileResult> results =
        service.submit(std::move(request)).takeResults();
    for (size_t i = 0; i < circuits.size(); ++i) {
        auto ideal = idealProbabilities(circuits[i]);
        auto noisy = simulateCompiled(results[i]);
        score.metric += metric(ideal, noisy);
        score.avg_two_qubit += results[i].two_qubit_count;
    }
    score.metric /= circuits.size();
    score.avg_two_qubit /= circuits.size();
    return score;
}

/** State-fidelity success rate (the QFT metric); see the library's
 *  simulateSuccessRate. */
inline double
successRate(const CompileResult& result, const Circuit& app)
{
    return simulateSuccessRate(result, app);
}

/**
 * Field-by-field bit-identity of two compile results — the
 * determinism self-check the sharding/service benches gate CI on.
 * One shared definition so a new CompileResult field only needs the
 * comparison added here.
 */
inline bool
resultsBitIdentical(const CompileResult& a, const CompileResult& b)
{
    if (a.physical != b.physical ||
        a.initial_positions != b.initial_positions ||
        a.final_positions != b.final_positions ||
        a.swaps_inserted != b.swaps_inserted ||
        a.two_qubit_count != b.two_qubit_count ||
        a.type_usage != b.type_usage ||
        a.estimated_fidelity != b.estimated_fidelity ||
        a.circuit.size() != b.circuit.size())
        return false;
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        // Interned ids compare label text exactly (one global table).
        if (x.qubits() != y.qubits() || x.labelId() != y.labelId() ||
            x.errorRate() != y.errorRate() ||
            x.unitary().maxAbsDiff(y.unitary()) != 0.0)
            return false;
    }
    return true;
}

} // namespace bench
} // namespace qiset

#endif // QISET_BENCH_BENCH_COMMON_H
