#ifndef QISET_BENCH_BENCH_COMMON_H
#define QISET_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the figure/table benches: scale flags and the
 * compile-simulate-score loop used by the Fig. 9/10 reproductions.
 */

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "metrics/metrics.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

namespace qiset {
namespace bench {

/** Bench scale selected on the command line. */
struct Scale
{
    /** True when --full was passed: paper-scale sampling. */
    bool full = false;

    /** Random-circuit count per benchmark. */
    int circuits(int quick_count, int full_count) const
    {
        return full ? full_count : quick_count;
    }
};

inline Scale
parseArgs(int argc, char** argv)
{
    Scale scale;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--full")
            scale.full = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0] << " [--full]\n"
                      << "  --full  paper-scale sample counts (slow)\n";
            std::exit(0);
        }
    }
    if (!scale.full) {
        std::cout << "(quick mode: reduced sample counts; pass --full "
                     "for paper-scale runs)\n\n";
    }
    return scale;
}

/** Compile options tuned for the serial bench environment. */
inline CompileOptions
benchCompileOptions()
{
    CompileOptions options;
    options.approximate = true;
    options.nuop.max_layers = 5;
    options.nuop.multistarts = 3;
    options.nuop.exact_threshold = 1.0 - 1e-6;
    options.nuop.bfgs.max_iterations = 150;
    return options;
}

/** Average metric and instruction count of a gate set on a workload. */
struct GateSetScore
{
    double metric = 0.0;
    double avg_two_qubit = 0.0;
};

/**
 * Compile every circuit for the gate set, simulate exactly (density
 * matrix + readout) and average metric(ideal, noisy). Compilation
 * goes through compileBatch, so a pool parallelizes across circuits
 * while the shared cache still deduplicates NuOp work.
 */
inline GateSetScore
scoreGateSet(const Device& device, const GateSet& gate_set,
             const std::vector<Circuit>& circuits, ProfileCache& cache,
             const CompileOptions& options,
             const std::function<double(const std::vector<double>&,
                                        const std::vector<double>&)>&
                 metric,
             ThreadPool* pool = nullptr)
{
    GateSetScore score;
    std::vector<CompileResult> results =
        compileBatch(circuits, device, gate_set, cache, options, pool);
    for (size_t i = 0; i < circuits.size(); ++i) {
        auto ideal = idealProbabilities(circuits[i]);
        auto noisy = simulateCompiled(results[i]);
        score.metric += metric(ideal, noisy);
        score.avg_two_qubit += results[i].two_qubit_count;
    }
    score.metric /= circuits.size();
    score.avg_two_qubit /= circuits.size();
    return score;
}

/** State-fidelity success rate (the QFT metric); see the library's
 *  simulateSuccessRate. */
inline double
successRate(const CompileResult& result, const Circuit& app)
{
    return simulateSuccessRate(result, app);
}

} // namespace bench
} // namespace qiset

#endif // QISET_BENCH_BENCH_COMMON_H
