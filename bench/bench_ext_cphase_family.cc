/**
 * @file
 * Extension study: the continuous Controlled-Phase family CZ(phi)
 * (Lacroix et al., the paper's ref. [13]) as an instruction set.
 * Compares fixed CZ, the CZ(phi)+iSWAP continuous set and Full fSim
 * on QAOA — the workload Lacroix et al. demonstrated gains for — and
 * on QV, where the phase family alone should *not* help much.
 */

#include <iostream>
#include <vector>

#include "apps/qaoa.h"
#include "apps/qv.h"
#include "bench_common.h"
#include "calibration/calibration_model.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    bench::Scale scale = bench::parseArgs(argc, argv);
    const int num_circuits = scale.circuits(6, 50);

    Rng rng(15);
    Device sycamore = makeSycamore(rng);

    std::vector<Circuit> qaoa_circuits, qv_circuits;
    for (int i = 0; i < num_circuits; ++i) {
        qaoa_circuits.push_back(makeRandomQaoaCircuit(6, rng));
        qv_circuits.push_back(makeQuantumVolumeCircuit(4, rng));
    }

    CompileOptions options = bench::benchCompileOptions();
    ProfileCache cache;
    CalibrationCostModel model;
    int pairs = gridPairCount(54);

    std::cout << "=== Extension: continuous CZ(phi) instruction set "
                 "===\n\n";
    Table table({"gate set", "QAOA-6 XED", "2Q#", "QV-4 HOP", "2Q#",
                 "calibration circuits"});
    for (const GateSet& set :
         {isa::singleTypeSet(3), isa::fullCphase(), isa::googleSet(3),
          isa::fullFsim()}) {
        auto qaoa =
            bench::scoreGateSet(sycamore, set, qaoa_circuits, cache,
                                options, crossEntropyDifference);
        auto qv = bench::scoreGateSet(sycamore, set, qv_circuits, cache,
                                      options, heavyOutputProbability);
        table.addRow(
            {set.name, fmtDouble(qaoa.metric, 3),
             fmtDouble(qaoa.avg_two_qubit, 1), fmtDouble(qv.metric, 3),
             fmtDouble(qv.avg_two_qubit, 1),
             fmtSci(static_cast<double>(model.totalCircuits(
                        pairs, set.calibrationTypeCount())),
                    1)});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected: CZ(phi) implements each QAOA ZZ interaction "
           "with one gate\n(vs two fixed CZs) at a 19-point "
           "calibration grid — far cheaper than Full fSim —\nwhile "
           "QV's SU(4) blocks still need ~3 gates, so the family is "
           "workload-specific.\n";
    return 0;
}
