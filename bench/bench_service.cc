/**
 * @file
 * CompileService throughput/latency bench: a stream of single-circuit
 * jobs submitted to one async service over a 2-device fleet, measured
 * end to end (submit -> complete). Reports jobs/sec, p50/p95/mean
 * latency, queue-wait percentiles and the warm-cache hit ratio, plus
 * the service/serial speedup against compiling the same stream with
 * the legacy one-shot compileCircuit path — and verifies that every
 * service result is bit-identical to that solo compile (exit code 1
 * on any mismatch, so CI catches determinism breaks).
 *
 * Emits a single JSON object on stdout (captured as BENCH_service.json
 * by scripts/bench_smoke.sh); the regression gate tracks the speedup,
 * which is machine-relative and therefore stable across runner
 * generations. The worker pool is capped at 4 threads so the figure is
 * comparable between laptops and CI runners.
 *
 * A second *soak* leg replays a few hundred tiny jobs with the full
 * observability stack on — event stream + background recorder,
 * completion callbacks, periodic telemetry snapshots, online cost
 * model — and exports the drained log as a Chrome trace
 * (SERVICE_TRACE_OUT, default "trace.json"; load it in Perfetto or
 * chrome://tracing). scripts/trace_lint.py validates the file in CI.
 * The soak fails the bench on dropped packets, missed callbacks or an
 * unwritable trace, so observability regressions are as loud as
 * determinism breaks.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "metrics/event_stream.h"
#include "metrics/trace_export.h"

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "compiler/service.h"
#include "isa/gate_set.h"
#include "metrics/metrics.h"

namespace {

using namespace qiset;
using Clock = std::chrono::steady_clock;

Device
makeLineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

std::vector<Circuit>
makeJobStream()
{
    std::vector<Circuit> apps;
    Rng rng(2026);
    for (int i = 0; i < 6; ++i) {
        apps.push_back(makeQftCircuit(4 + i % 2));
        apps.push_back(makeRandomQaoaCircuit(5, rng));
        apps.push_back(makeQuantumVolumeCircuit(4, rng));
    }
    return apps;
}

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    GateSet set = isa::rigettiSet(1);

    DeviceFleet fleet(opts);
    fleet.addDevice(makeLineDevice("alpha", 8, 0.995));
    fleet.addDevice(makeLineDevice("beta", 8, 0.990));

    size_t hardware = std::thread::hardware_concurrency();
    size_t threads = std::min<size_t>(4, hardware ? hardware : 4);
    if (const char* env = std::getenv("BENCH_SERVICE_THREADS"))
        threads = std::max(1, std::atoi(env));

    std::vector<Circuit> apps = makeJobStream();

    // ---- async service: one job per circuit, all submitted upfront --
    CompileServiceOptions service_options;
    service_options.workers = threads;
    CompileService service(fleet, set, service_options);

    auto service_start = Clock::now();
    std::vector<CompileJob> jobs;
    std::vector<Clock::time_point> submit_at;
    jobs.reserve(apps.size());
    for (const Circuit& app : apps) {
        CompileRequest request;
        request.circuits.push_back(app);
        submit_at.push_back(Clock::now());
        jobs.push_back(service.submit(std::move(request)));
    }
    std::vector<double> latency_ms(jobs.size(), 0.0);
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].wait();
        latency_ms[i] = msSince(submit_at[i]);
    }
    double service_ms = msSince(service_start);

    std::vector<double> queue_wait_ms;
    double cache_hit_ratio_last = 0.0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        CompileJobStats stats = jobs[i].stats();
        queue_wait_ms.push_back(stats.queue_wait_ns_mean / 1e6);
        if (i + 1 == jobs.size())
            cache_hit_ratio_last = stats.cache_hit_ratio;
    }

    // ---- serial baseline: the legacy one-shot path, shared cache ----
    ProfileCache serial_cache;
    auto serial_start = Clock::now();
    std::vector<CompileResult> serial;
    serial.reserve(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        const Shard& shard = fleet.shard(
            static_cast<size_t>(jobs[i].plan().assignments[0].shard));
        serial.push_back(compileCircuit(apps[i], shard.device, set,
                                        serial_cache, shard.options));
    }
    double serial_ms = msSince(serial_start);

    // ---- self-check: service results == legacy solo compiles --------
    bool bit_identical = true;
    bool all_done = true;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].poll() != JobStatus::Done) {
            all_done = false;
            continue;
        }
        bit_identical =
            bit_identical &&
            bench::resultsBitIdentical(serial[i], jobs[i].results()[0]);
    }

    double speedup = service_ms > 0.0 ? serial_ms / service_ms : 0.0;
    double jobs_per_sec =
        service_ms > 0.0 ? 1000.0 * jobs.size() / service_ms : 0.0;

    // ---- soak leg: the full observability stack under a job storm ---
    const char* trace_env = std::getenv("SERVICE_TRACE_OUT");
    std::string trace_path = trace_env ? trace_env : "trace.json";
    const size_t soak_jobs = 300;

    EventStream stream(size_t{1} << 16);
    EventRecorder recorder(stream, 1.0);
    std::atomic<size_t> soak_callbacks{0};
    std::atomic<size_t> snapshots{0};
    CompileCostModel cost_model;
    double soak_ms = 0.0;
    {
        CompileServiceOptions soak_options;
        soak_options.workers = threads;
        soak_options.events = &stream;
        soak_options.cost_model = &cost_model;
        soak_options.planner.use_cost_model = true;
        soak_options.telemetry_interval_ms = 5.0;
        soak_options.telemetry_sink =
            [&snapshots](std::vector<PassMetric>) {
                snapshots.fetch_add(1, std::memory_order_relaxed);
            };
        CompileService soak(fleet, set, soak_options);

        Rng rng(4072);
        auto soak_start = Clock::now();
        for (size_t i = 0; i < soak_jobs; ++i) {
            CompileRequest request;
            request.circuits.push_back(
                i % 3 == 2 ? makeRandomQaoaCircuit(4, rng)
                           : makeQftCircuit(3 + i % 2));
            request.on_complete = [&soak_callbacks](CompileJob job) {
                if (job.poll() == JobStatus::Done)
                    soak_callbacks.fetch_add(
                        1, std::memory_order_relaxed);
            };
            soak.submit(std::move(request));
        }
        soak.shutdown();
        soak_ms = msSince(soak_start);
    }
    recorder.stop();

    TraceExportOptions trace_options;
    for (const Shard& shard : fleet.shards())
        trace_options.shard_names.push_back(shard.name);
    trace_options.pass_names = stream.passNames();
    bool trace_written = writeChromeTraceFile(
        trace_path, recorder.events(), trace_options);
    bool soak_ok = trace_written && stream.dropped() == 0 &&
                   soak_callbacks.load() == soak_jobs &&
                   recorder.events().size() == stream.published();

    std::cout << "{\n  \"bench\": \"service\",\n"
              << "  \"jobs\": " << jobs.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"all_done\": " << (all_done ? "true" : "false")
              << ",\n"
              << "  \"service\": {\"wall_ms\": " << service_ms
              << ", \"jobs_per_sec\": " << jobs_per_sec
              << ", \"speedup\": " << speedup << "},\n"
              << "  \"serial\": {\"wall_ms\": " << serial_ms << "},\n"
              << "  \"latency_ms\": {\"p50\": "
              << quantile(latency_ms, 0.50)
              << ", \"p95\": " << quantile(latency_ms, 0.95)
              << ", \"max\": " << quantile(latency_ms, 1.0) << "},\n"
              << "  \"queue_wait_ms\": {\"p50\": "
              << quantile(queue_wait_ms, 0.50)
              << ", \"p95\": " << quantile(queue_wait_ms, 0.95) << "},\n"
              << "  \"cache_hit_ratio_last_job\": " << cache_hit_ratio_last
              << ",\n"
              << "  \"bit_identical\": "
              << (bit_identical ? "true" : "false") << ",\n"
              << "  \"soak\": {\"jobs\": " << soak_jobs
              << ", \"wall_ms\": " << soak_ms
              << ", \"events_published\": " << stream.published()
              << ", \"events_dropped\": " << stream.dropped()
              << ", \"events_recorded\": " << recorder.events().size()
              << ", \"callbacks\": " << soak_callbacks.load()
              << ", \"cost_model_samples\": " << cost_model.samples()
              << ", \"telemetry_snapshots\": " << snapshots.load()
              << ", \"trace_file\": \"" << trace_path << "\""
              << ", \"trace_written\": "
              << (trace_written ? "true" : "false")
              << ", \"ok\": " << (soak_ok ? "true" : "false") << "}\n}\n";

    if (!all_done) {
        std::cerr << "FAIL: not every service job completed\n";
        return 1;
    }
    if (!bit_identical) {
        std::cerr << "FAIL: service results diverge from legacy "
                     "compileCircuit\n";
        return 1;
    }
    if (!soak_ok) {
        std::cerr << "FAIL: soak telemetry invariants violated "
                     "(dropped packets, missed callbacks, or "
                     "unwritable trace)\n";
        return 1;
    }
    return 0;
}
