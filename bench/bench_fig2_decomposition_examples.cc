/**
 * @file
 * Fig. 2 reproduction: decompose a two-qubit QV (SU(4)) unitary and a
 * QAOA ZZ unitary into CZ (Rigetti) and sqrt(iSWAP) (Google) gates and
 * report the exact gate counts and decomposition errors.
 */

#include <iostream>

#include "apps/qv.h"
#include "common/rng.h"
#include "common/table.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"

using namespace qiset;

int
main()
{
    Rng rng(2);
    Matrix qv_unitary = randomSu4(rng);
    Matrix qaoa_unitary = gates::zz(0.0303);

    std::cout << "=== Fig. 2: decomposition examples ===\n\n";
    std::cout << "(a) Two-qubit QV unitary (random SU(4)):\n"
              << qv_unitary.toString(3) << "\n";
    std::cout << "(b) Two-qubit QAOA unitary exp(-0.0303 i ZZ):\n"
              << qaoa_unitary.toString(3) << "\n";

    NuOpOptions options;
    options.max_layers = 6;
    NuOpDecomposer nuop(options);

    struct Case
    {
        const char* target_name;
        const Matrix* target;
        const char* gate_name;
        Matrix gate;
    };
    const Case cases[] = {
        {"QV", &qv_unitary, "CZ", gates::cz()},
        {"QAOA", &qaoa_unitary, "CZ", gates::cz()},
        {"QV", &qv_unitary, "sqrt(iSWAP)", gates::sqrtIswap()},
        {"QAOA", &qaoa_unitary, "sqrt(iSWAP)", gates::sqrtIswap()},
    };

    Table table({"panel", "target", "hardware gate", "2Q gates",
                 "decomposition error"});
    const char* panels[] = {"(c)", "(d)", "(e)", "(f)"};
    int panel = 0;
    for (const auto& c : cases) {
        Decomposition d = nuop.decomposeExact(
            *c.target, makeFixedGate(c.gate_name, c.gate));
        table.addRow({panels[panel++], c.target_name, c.gate_name,
                      std::to_string(d.layers),
                      fmtSci(1.0 - d.decomposition_fidelity, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper's observation: the best gate type depends on the "
           "application unitary --\nCZ implements the QAOA ZZ "
           "interaction with fewer gates than sqrt(iSWAP).\n";
    return 0;
}
