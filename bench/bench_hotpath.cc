/**
 * @file
 * Single-circuit compile hot-path bench: p50/p95 cold- and warm-cache
 * latency of one 32-qubit compile (QFT-32 and QV-32 on the Sycamore
 * device, CZ instruction set), the intra-circuit parallel speedup of
 * fanning one circuit's decompositions over a worker pool, and global
 * allocation counters (operator new count/bytes) per cold compile —
 * so the arena/SBO savings are measured, not asserted.
 *
 * QFT-32's controlled-phase ladder canonicalizes to a few dozen
 * distinct profiles (cache-bound, allocation-sensitive); QV-32's
 * random SU(4)s need ~500 independent BFGS profile optimizations
 * (compute-bound, where the intra-circuit fan-out pays off). The
 * parallel path must be bit-identical to serial — checked here and
 * gated in CI alongside the latency/speedup baselines
 * (scripts/check_bench_regression.py).
 *
 * Emits a single JSON object on stdout (scripts/bench_smoke.sh
 * captures it as BENCH_hotpath.json).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "apps/qft.h"
#include "apps/qv.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "compiler/pipeline.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "qc/kernels.h"
#include "qc/linalg.h"
#include "qc/matrix.h"

// ------------------------------------------------- allocation counters
//
// Replaceable global allocation functions, counting every heap
// allocation the process makes. Serial compiles are deterministic, so
// the per-compile deltas are exact, reproducible figures of merit for
// the arena/SBO work (they shrink when scratch stops hitting malloc).

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

// Optional size-bucket histogram (QISET_ALLOC_HISTOGRAM=1): bucket k
// holds allocations with 2^(k-1) < size <= 2^k (bucket 0: size <= 1).
// Printed to stderr around the warm rep of each workload — the tool
// that localizes which size classes dominate warm_bytes.
constexpr int kHistBuckets = 28;
std::atomic<std::uint64_t> g_hist_count[kHistBuckets];
std::atomic<std::uint64_t> g_hist_bytes[kHistBuckets];
bool g_hist_enabled = false;

int
histBucket(std::size_t size)
{
    int b = 0;
    while (b + 1 < kHistBuckets &&
           size > (static_cast<std::size_t>(1) << b))
        ++b;
    return b;
}

void
recordAlloc(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    if (g_hist_enabled) {
        int b = histBucket(size);
        g_hist_count[b].fetch_add(1, std::memory_order_relaxed);
        g_hist_bytes[b].fetch_add(size, std::memory_order_relaxed);
    }
}

void*
countedAlloc(std::size_t size)
{
    recordAlloc(size);
    void* p = std::malloc(size == 0 ? 1 : size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    recordAlloc(size);
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t padded = (size + align - 1) / align * align;
    void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

// ----------------------------------------------------------- the bench

namespace {

using namespace qiset;

double
percentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    // Nearest-rank on the sorted samples (small-n friendly).
    double n = static_cast<double>(samples.size());
    size_t rank = static_cast<size_t>(std::ceil(q * n));
    return samples[std::min(samples.size() - 1,
                            rank == 0 ? 0 : rank - 1)];
}

struct TimedCompile
{
    double ms = 0.0;
    CompileResult result;
};

TimedCompile
timedCompile(const Circuit& app, const Device& device,
             const GateSet& set, const CompileOptions& options,
             ProfileCache& cache, ThreadPool* pool)
{
    TimedCompile timed;
    auto start = std::chrono::steady_clock::now();
    timed.result = compileCircuit(app, device, set, cache, options, pool);
    auto end = std::chrono::steady_clock::now();
    timed.ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    return timed;
}

struct AllocDelta
{
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

struct HistSnapshot
{
    std::uint64_t count[kHistBuckets] = {};
    std::uint64_t bytes[kHistBuckets] = {};
};

HistSnapshot
histSnapshot()
{
    HistSnapshot s;
    for (int b = 0; b < kHistBuckets; ++b) {
        s.count[b] = g_hist_count[b].load(std::memory_order_relaxed);
        s.bytes[b] = g_hist_bytes[b].load(std::memory_order_relaxed);
    }
    return s;
}

/** Histogram delta to stderr (stdout stays pure JSON). */
void
histReport(const std::string& label, const HistSnapshot& before)
{
    HistSnapshot now = histSnapshot();
    std::cerr << "[alloc-hist " << label << "]\n";
    for (int b = 0; b < kHistBuckets; ++b) {
        std::uint64_t c = now.count[b] - before.count[b];
        std::uint64_t by = now.bytes[b] - before.bytes[b];
        if (c == 0)
            continue;
        std::cerr << "  <=2^" << b << " B: " << c << " allocs, " << by
                  << " bytes\n";
    }
}

struct WorkloadReport
{
    std::string name;
    double cold_p50 = 0.0, cold_p95 = 0.0;
    double warm_p50 = 0.0, warm_p95 = 0.0;
    double parallel_p50 = 0.0, parallel_p95 = 0.0;
    double speedup = 0.0;
    AllocDelta cold_alloc, warm_alloc;
    bool bit_identical = false;
};

WorkloadReport
runWorkload(const std::string& name, const Circuit& app,
            const Device& device, const GateSet& set,
            const CompileOptions& options, ThreadPool& pool,
            int cold_reps, int warm_reps)
{
    WorkloadReport report;
    report.name = name;

    // Serial cold: fresh cache per rep, every profile recomputed. The
    // first rep's result anchors the bit-identity check, and its
    // allocation delta is the deterministic counter reported below.
    std::vector<double> cold_ms;
    CompileResult serial_result;
    for (int rep = 0; rep < cold_reps; ++rep) {
        ProfileCache cache;
        std::uint64_t c0 = g_alloc_count.load();
        std::uint64_t b0 = g_alloc_bytes.load();
        TimedCompile timed =
            timedCompile(app, device, set, options, cache, nullptr);
        if (rep == 0) {
            report.cold_alloc.count = g_alloc_count.load() - c0;
            report.cold_alloc.bytes = g_alloc_bytes.load() - b0;
            serial_result = std::move(timed.result);
        }
        cold_ms.push_back(timed.ms);
    }

    // Serial warm: one shared cache, warmed by an untimed compile.
    std::vector<double> warm_ms;
    {
        ProfileCache cache;
        timedCompile(app, device, set, options, cache, nullptr);
        for (int rep = 0; rep < warm_reps; ++rep) {
            std::uint64_t c0 = g_alloc_count.load();
            std::uint64_t b0 = g_alloc_bytes.load();
            HistSnapshot h0;
            if (rep == 0 && g_hist_enabled)
                h0 = histSnapshot();
            warm_ms.push_back(
                timedCompile(app, device, set, options, cache, nullptr)
                    .ms);
            if (rep == 0) {
                report.warm_alloc.count = g_alloc_count.load() - c0;
                report.warm_alloc.bytes = g_alloc_bytes.load() - b0;
                if (g_hist_enabled)
                    histReport(name + " warm", h0);
            }
        }
    }

    // Parallel cold: the worker pool fans the circuit's independent
    // profile optimizations (cooperative parallelFor; no cap).
    std::vector<double> parallel_ms;
    CompileResult parallel_result;
    for (int rep = 0; rep < cold_reps; ++rep) {
        ProfileCache cache;
        TimedCompile timed =
            timedCompile(app, device, set, options, cache, &pool);
        if (rep == 0)
            parallel_result = std::move(timed.result);
        parallel_ms.push_back(timed.ms);
    }

    report.cold_p50 = percentile(cold_ms, 0.50);
    report.cold_p95 = percentile(cold_ms, 0.95);
    report.warm_p50 = percentile(warm_ms, 0.50);
    report.warm_p95 = percentile(warm_ms, 0.95);
    report.parallel_p50 = percentile(parallel_ms, 0.50);
    report.parallel_p95 = percentile(parallel_ms, 0.95);
    report.speedup = report.parallel_p50 > 0.0
                         ? report.cold_p50 / report.parallel_p50
                         : 0.0;
    report.bit_identical =
        bench::resultsBitIdentical(serial_result, parallel_result);
    return report;
}

void
emitWorkload(const WorkloadReport& r, bool last)
{
    std::cout << "    {\n      \"name\": \"" << r.name << "\",\n"
              << "      \"cold\": {\"p50_ms\": " << r.cold_p50
              << ", \"p95_ms\": " << r.cold_p95 << "},\n"
              << "      \"warm\": {\"p50_ms\": " << r.warm_p50
              << ", \"p95_ms\": " << r.warm_p95 << "},\n"
              << "      \"parallel_cold\": {\"p50_ms\": "
              << r.parallel_p50 << ", \"p95_ms\": " << r.parallel_p95
              << "},\n"
              << "      \"speedup\": " << r.speedup << ",\n"
              << "      \"alloc\": {\"cold_count\": "
              << r.cold_alloc.count
              << ", \"cold_bytes\": " << r.cold_alloc.bytes
              << ", \"warm_count\": " << r.warm_alloc.count
              << ", \"warm_bytes\": " << r.warm_alloc.bytes << "},\n"
              << "      \"bit_identical\": "
              << (r.bit_identical ? "true" : "false") << "\n    }"
              << (last ? "" : ",") << '\n';
}

// ------------------------------------------- kernel micro-throughput
//
// Per-kernel Gflop/s of the active dispatch tier on fixed Haar-random
// operands. Calls go through the dispatch table's function pointers
// (opaque across TUs), so the loop cannot be folded away. Flop
// counts use 6 flops per complex mul and 2 per complex add: mul4x4 =
// 64 cmul + 48 cadd = 512, mul2x2 = 8 + 4 = 64, kron2x2 = 16 cmul =
// 96, hsDot(16) = 16 cmul + 16 cadd = 128 (conjugation is free).

struct KernelThroughput
{
    double mul4x4 = 0.0, mul2x2 = 0.0, kron2x2 = 0.0, hs_dot = 0.0;
};

template <typename Fn>
double
gflopsOf(int iters, double flops_per_call, Fn&& fn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    return secs > 0.0 ? flops_per_call * iters / secs / 1e9 : 0.0;
}

KernelThroughput
measureKernelThroughput(bool quick)
{
    const kernels::KernelOps& ops = kernels::active();
    Rng rng(20260808);
    Matrix a4 = haarRandomUnitary(4, rng);
    Matrix b4 = haarRandomUnitary(4, rng);
    Matrix a2 = haarRandomUnitary(2, rng);
    Matrix b2 = haarRandomUnitary(2, rng);
    cplx out[16];
    int iters = quick ? 200000 : 1000000;
    KernelThroughput t;
    t.mul4x4 = gflopsOf(iters, 512.0, [&] {
        ops.mul4x4(out, a4.data(), b4.data());
    });
    t.mul2x2 = gflopsOf(iters * 4, 64.0, [&] {
        ops.mul2x2(out, a2.data(), b2.data());
    });
    t.kron2x2 = gflopsOf(iters * 2, 96.0, [&] {
        ops.kron2x2(out, a2.data(), b2.data());
    });
    t.hs_dot = gflopsOf(iters * 2, 128.0, [&] {
        out[0] = ops.hsDot(a4.data(), b4.data(), 16);
    });
    return t;
}

} // namespace

int
main(int argc, char** argv)
{
    // --quick trims the compute-bound leg for the CI smoke run: the
    // QV workload drops to 24 qubits and every rep count shrinks. The
    // QFT workload stays at 32 qubits so its deterministic allocation
    // counters — the numbers bench_baseline.json gates — are the same
    // figures in both modes.
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else {
            // Usage goes to stderr: stdout must stay pure JSON for
            // the smoke capture (same contract as bench_translation).
            std::cerr << "usage: " << argv[0] << " [--quick]\n"
                      << "  --quick  CI smoke scale: QV-24, fewer reps\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    // Opt-in allocation histogram for hunting residual hot-path
    // allocations (reported to stderr around each warm rep).
    const char* hist_env = std::getenv("QISET_ALLOC_HISTOGRAM");
    g_hist_enabled =
        hist_env && *hist_env && std::strcmp(hist_env, "0") != 0;

    Rng rng(4242);
    Device device = makeSycamore(rng);
    GateSet set = isa::singleTypeSet(3); // CZ
    CompileOptions options = bench::benchCompileOptions();

    unsigned hw = std::thread::hardware_concurrency();
    ThreadPool pool(hw == 0 ? 1 : hw);

    Circuit qft = makeQftCircuit(32);
    Rng qv_rng(77);
    int qv_qubits = quick ? 24 : 32;
    Circuit qv = makeQuantumVolumeCircuit(qv_qubits, qv_rng);

    // QFT-32 is sub-second per compile: enough reps for a stable p95.
    // QV-32 pays ~500 BFGS optimizations per cold rep; keep it to a
    // handful (its p95 is effectively the max of the reps).
    WorkloadReport qft_report =
        runWorkload("qft32", qft, device, set, options, pool,
                    quick ? 3 : 7, quick ? 5 : 15);
    WorkloadReport qv_report = runWorkload(
        quick ? "qv24" : "qv32", qv, device, set, options, pool,
        quick ? 2 : 3, quick ? 2 : 3);

    bool bit_identical =
        qft_report.bit_identical && qv_report.bit_identical;

    // SIMD-vs-scalar A/B leg: rerun the QV serial cold compiles with
    // the dispatch tier pinned to scalar, then restore. Same circuit,
    // same seeds, bit-identical results (the kernel contract) — the
    // only difference is kernel width, so the p50 ratio isolates the
    // SIMD payoff from everything else in this binary.
    std::string active_tier = kernels::tierName();
    double qv_scalar_p50 = qv_report.cold_p50;
    double cold_speedup_vs_scalar = 1.0;
    if (active_tier != "scalar") {
        kernels::setTier("scalar");
        std::vector<double> scalar_ms;
        int reps = quick ? 2 : 3;
        for (int rep = 0; rep < reps; ++rep) {
            ProfileCache cache;
            scalar_ms.push_back(
                timedCompile(qv, device, set, options, cache, nullptr)
                    .ms);
        }
        kernels::setTier(active_tier.c_str());
        qv_scalar_p50 = percentile(scalar_ms, 0.50);
        cold_speedup_vs_scalar = qv_report.cold_p50 > 0.0
                                     ? qv_scalar_p50 / qv_report.cold_p50
                                     : 0.0;
    }

    KernelThroughput kt = measureKernelThroughput(quick);

    std::cout << "{\n  \"bench\": \"hotpath\",\n"
              << "  \"mode\": \"" << (quick ? "quick" : "full")
              << "\",\n"
              << "  \"threads\": " << pool.size() << ",\n"
              << "  \"gate_set\": \"" << set.name << "\",\n"
              << "  \"kernel_dispatch_tier\": \"" << active_tier
              << "\",\n"
              << "  \"workloads\": [\n";
    emitWorkload(qft_report, false);
    emitWorkload(qv_report, true);
    // Headline figures the CI gate reads: QFT-32 serial latency and
    // allocation counters (the deterministic cache-bound path), the
    // QV intra-circuit parallel speedup (the compute-bound path that
    // needs the cores), and the QV cold p50 plus its ratio against
    // the forced-scalar leg (the SIMD kernel payoff).
    std::cout << "  ],\n"
              << "  \"qft32_cold_p95_ms\": " << qft_report.cold_p95
              << ",\n"
              << "  \"qv24_cold_p50_ms\": " << qv_report.cold_p50
              << ",\n"
              << "  \"qv24_cold_scalar_p50_ms\": " << qv_scalar_p50
              << ",\n"
              << "  \"cold_speedup_vs_scalar\": "
              << cold_speedup_vs_scalar << ",\n"
              << "  \"kernel_gflops\": {\"mul4x4\": " << kt.mul4x4
              << ", \"mul2x2\": " << kt.mul2x2
              << ", \"kron2x2\": " << kt.kron2x2
              << ", \"hs_dot\": " << kt.hs_dot << "},\n"
              << "  \"cold_speedup\": " << qv_report.speedup << ",\n"
              << "  \"bit_identical\": "
              << (bit_identical ? "true" : "false") << "\n}\n";

    // Self-check: on an AVX2 host the SIMD cold path must beat the
    // scalar leg clearly (acceptance floor 1.5x measured with margin;
    // 1.2x here is the gross-failure line — below it the kernels are
    // not actually being dispatched). check_bench_regression.py holds
    // the tighter baseline-tracked floor.
    if (active_tier == "avx2" && cold_speedup_vs_scalar < 1.2) {
        std::cerr << "FAIL: avx2 tier active but cold_speedup_vs_scalar"
                  << " = " << cold_speedup_vs_scalar << " < 1.2\n";
        return 1;
    }
    return 0;
}
