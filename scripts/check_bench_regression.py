#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares the freshly-emitted BENCH_routing.json, BENCH_sharding.json
and BENCH_service.json against the committed baseline
(scripts/bench_baseline.json) and exits nonzero when a tracked metric
regresses beyond the baseline tolerance:

  - QFT-16 SABRE SWAP count (deterministic): fails when the router
    inserts more than (1 + tolerance) * baseline SWAPs.
  - Sharded batch throughput: fails when the sharded/serial speedup
    drops below (1 - tolerance) * baseline or below the hard floor
    (min_sharding_speedup).
  - CompileService throughput: fails when the service/serial speedup
    drops below (1 - tolerance) * baseline or below the hard floor
    (min_service_speedup), or when any submitted job failed to reach
    a terminal Done state.
  - Decomposition engines: fails when the cold-cache "auto"/"nuop"
    compile speedup drops below (1 - tolerance) * baseline or the
    hard floor (min_translation_speedup), when the canonicalized
    cache hit ratio on QFT-16 stops exceeding the raw-key baseline,
    when "auto" loses exact-mode Fu parity on any workload, or when
    the "nuop" engine stops being bit-identical to the legacy path.
  - Compile hot path: fails when the QFT-32 serial cold-cache compile
    p95 exceeds (1 + hotpath_latency_tolerance) * hotpath_p95_ms, or
    when the QV-leg intra-circuit parallel speedup drops below
    (1 - tolerance) * baseline or the hard floor
    (min_hotpath_speedup), or when the parallel compile stops being
    bit-identical to serial (always enforced), or when the QFT-32
    warm-cache heap allocation count/bytes exceed
    (1 + hotpath_alloc_tolerance) * baseline. The allocation counters
    are serial, seeded and mode-invariant (--quick shrinks only the
    QV leg), so — like the SWAP-count gate — they are enforced on
    every runner regardless of thread count. On AVX2 hosts the QV
    cold p50 speedup of the SIMD kernels over the forced-scalar leg
    (cold_speedup_vs_scalar) must also hold its floor
    (min_hotpath_simd_speedup); other dispatch tiers skip that gate
    with a warning.
  - Chiplet routing: fails when teleport-aware routing stops beating
    the SWAP-only link baseline on any chiplet workload
    (teleport_wins, always enforced), or when the worst-case
    teleport-aware fidelity (deterministic: seeded calibration,
    serial compiles) drops below the committed floor
    (chiplet_min_teleport_fidelity).
  - Bit-identity of sharded and service results (always enforced).

The sharding/service/hotpath speedup baselines — and the hotpath p95
latency — are calibrated on the 4-thread CI runner (see
bench_baseline.json), so those gates are skipped with a warning when
a bench got fewer than 4 threads — on such runners the floor would
fire without a real regression. The translation speedup is
serial-vs-serial on one thread and always gated.

Usage:
  check_bench_regression.py <baseline.json> <BENCH_routing.json> \
      <BENCH_sharding.json> <BENCH_service.json> \
      <BENCH_translation.json> <BENCH_hotpath.json> \
      <BENCH_chiplet.json>
"""

import json
import sys


def fail(message: str) -> None:
    print(f"REGRESSION: {message}", file=sys.stderr)
    sys.exit(1)


def gate_speedup(
    name: str,
    speedup: float,
    threads: int,
    baseline_speedup: float,
    floor: float,
    tolerance: float,
    min_threads: int = 4,
) -> None:
    """Shared speedup gate; baselines needing a multi-core runner set
    min_threads and are skipped (with a warning) below it, while
    serial-vs-serial ratios pass min_threads=1 and always gate."""
    limit = max(floor, baseline_speedup * (1.0 - tolerance))
    print(
        f"{name} speedup: {speedup:.2f}x on {threads} threads "
        f"(baseline {baseline_speedup}, floor {limit:.2f})"
    )
    if threads < min_threads:
        print(
            f"WARNING: {name} bench ran on {threads} thread(s) but the "
            f"baseline is calibrated for {min_threads}; skipping its "
            "throughput gate"
        )
    elif speedup < limit:
        fail(
            f"{name} throughput regressed: {speedup:.2f}x < {limit:.2f}x"
        )


def main() -> None:
    if len(sys.argv) != 8:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    (
        baseline_path,
        routing_path,
        sharding_path,
        service_path,
        translation_path,
        hotpath_path,
        chiplet_path,
    ) = sys.argv[1:8]
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(routing_path) as f:
        routing = json.load(f)
    with open(sharding_path) as f:
        sharding = json.load(f)
    with open(service_path) as f:
        service = json.load(f)
    with open(translation_path) as f:
        translation = json.load(f)
    with open(hotpath_path) as f:
        hotpath = json.load(f)
    with open(chiplet_path) as f:
        chiplet = json.load(f)

    tolerance = baseline.get("tolerance", 0.10)

    # --- routing: QFT-16 SABRE SWAP count (deterministic) ------------
    workload = next(
        (w for w in routing["workloads"] if w["name"] == "qft16_grid4x4"),
        None,
    )
    if workload is None:
        fail("BENCH_routing.json has no qft16_grid4x4 workload")
    swaps = workload["strategies"]["sabre"]["swaps"]
    swaps_baseline = baseline["qft16_grid4x4_sabre_swaps"]
    swaps_limit = swaps_baseline * (1.0 + tolerance)
    print(
        f"qft16_grid4x4 sabre swaps: {swaps} "
        f"(baseline {swaps_baseline}, limit {swaps_limit:.1f})"
    )
    if swaps > swaps_limit:
        fail(
            f"QFT-16 SABRE SWAP count regressed: {swaps} > {swaps_limit:.1f}"
        )

    # --- sharding: bit-identity (always) and throughput --------------
    if not sharding.get("bit_identical", False):
        fail("sharded results are not bit-identical to solo compiles")
    gate_speedup(
        "sharding",
        sharding["sharded"]["speedup"],
        sharding.get("threads", 1),
        baseline["sharding_speedup"],
        baseline.get("min_sharding_speedup", 0.0),
        tolerance,
    )

    # --- service: completion + bit-identity (always) and throughput --
    if not service.get("all_done", False):
        fail("not every CompileService job completed")
    if not service.get("bit_identical", False):
        fail(
            "CompileService results are not bit-identical to legacy "
            "compileCircuit"
        )
    gate_speedup(
        "service",
        service["service"]["speedup"],
        service.get("threads", 1),
        baseline["service_speedup"],
        baseline.get("min_service_speedup", 0.0),
        tolerance,
    )

    # --- decomposition engines: correctness (always) and speedup -----
    if not translation.get("bit_identical", False):
        fail(
            'the "nuop" decomposition strategy is not bit-identical to '
            "the legacy compile path"
        )
    if not translation.get("fu_parity", False):
        fail(
            '"auto" lost exact-mode Fu parity against "nuop" on a '
            "bench workload"
        )
    # Deterministic (seeded, serial) but the margin is a handful of
    # extra hits: a routing/consolidation change that alters which
    # dressed controlled-phase variants appear can legitimately move
    # it — re-measure and re-baseline rather than relaxing the gate.
    hit_ratio = translation["qft16_hit_ratio"]
    print(
        f"qft16 cache hit ratio: canonical {hit_ratio['auto']:.4f} vs "
        f"raw {hit_ratio['nuop']:.4f}"
    )
    if hit_ratio["auto"] <= hit_ratio["nuop"]:
        fail(
            "canonicalized cache keys no longer beat raw keys on the "
            f"QFT-16 bench: {hit_ratio['auto']:.4f} <= "
            f"{hit_ratio['nuop']:.4f}"
        )
    # Serial-vs-serial on the same host: always gated (min_threads=1).
    gate_speedup(
        "translation cold-cache",
        translation["cold"]["speedup"],
        1,
        baseline["translation_speedup"],
        baseline.get("min_translation_speedup", 0.0),
        tolerance,
        min_threads=1,
    )

    # --- compile hot path: bit-identity (always), latency, speedup ---
    if not hotpath.get("bit_identical", False):
        fail(
            "intra-circuit parallel compiles are not bit-identical to "
            "the serial hot path"
        )
    # Warm-cache allocation counters: deterministic (serial rep, seeded
    # workload, QFT leg unchanged by --quick), so always enforced. A
    # count regression means a pass sweep started allocating again —
    # the exact thing the SoA IR / scratch-reuse work pays for.
    qft32 = next(
        (w for w in hotpath["workloads"] if w["name"] == "qft32"), None
    )
    if qft32 is None:
        fail("BENCH_hotpath.json has no qft32 workload")
    alloc_tolerance = baseline.get("hotpath_alloc_tolerance", 0.50)
    for metric, key in (
        ("warm_count", "hotpath_warm_alloc_count"),
        ("warm_bytes", "hotpath_warm_alloc_bytes"),
    ):
        measured = qft32["alloc"][metric]
        alloc_baseline = baseline[key]
        alloc_limit = alloc_baseline * (1.0 + alloc_tolerance)
        print(
            f"qft32 warm-cache alloc {metric}: {measured} "
            f"(baseline {alloc_baseline}, limit {alloc_limit:.0f})"
        )
        if measured > alloc_limit:
            fail(
                f"hot-path warm-compile {metric} regressed: "
                f"{measured} > {alloc_limit:.0f}"
            )

    hotpath_threads = hotpath.get("threads", 1)
    p95 = hotpath["qft32_cold_p95_ms"]
    p95_baseline = baseline["hotpath_p95_ms"]
    # Wall-clock latency varies more across hosts than a same-host
    # speedup ratio does, so this gate takes its own (wider) tolerance
    # and, like the pool gates, only fires on the runner class it was
    # calibrated for.
    p95_limit = p95_baseline * (
        1.0 + baseline.get("hotpath_latency_tolerance", 0.50)
    )
    print(
        f"qft32 cold-cache compile p95: {p95:.1f} ms "
        f"(baseline {p95_baseline}, limit {p95_limit:.1f})"
    )
    if hotpath_threads < 4:
        print(
            f"WARNING: hotpath bench ran on {hotpath_threads} thread(s) "
            "but the latency baseline is calibrated for the 4-thread CI "
            "runner; skipping its p95 gate"
        )
    elif p95 > p95_limit:
        fail(
            f"single-circuit cold compile p95 regressed: {p95:.1f} ms > "
            f"{p95_limit:.1f} ms"
        )
    gate_speedup(
        "hotpath intra-circuit",
        hotpath["cold_speedup"],
        hotpath_threads,
        baseline["hotpath_speedup"],
        baseline.get("min_hotpath_speedup", 0.0),
        tolerance,
    )

    # SIMD kernel payoff: QV cold p50 of the forced-scalar leg over the
    # active dispatch tier. Serial-vs-serial on one host, so the ratio
    # is stable — but the floor is calibrated for the AVX2 kernels;
    # other ISAs (NEON, plain scalar hosts) skip with a warning rather
    # than gate against a foreign baseline.
    tier = hotpath.get("kernel_dispatch_tier", "unknown")
    simd_speedup = hotpath.get("cold_speedup_vs_scalar", 0.0)
    if tier == "avx2":
        gate_speedup(
            "hotpath simd-vs-scalar",
            simd_speedup,
            1,
            baseline["hotpath_simd_speedup"],
            baseline.get("min_hotpath_simd_speedup", 0.0),
            tolerance,
            min_threads=1,
        )
    else:
        print(
            f"WARNING: kernel dispatch tier is '{tier}' (not avx2); "
            "skipping the SIMD-vs-scalar speedup gate "
            f"(measured {simd_speedup:.2f}x)"
        )

    # --- chiplet routing: teleport advantage (always) + fidelity floor
    if not chiplet.get("teleport_wins", False):
        fail(
            "teleport-aware routing no longer beats the SWAP-only link "
            "baseline on every chiplet workload"
        )
    min_fid = chiplet["min_teleport_fidelity"]
    fid_floor = baseline["chiplet_min_teleport_fidelity"]
    print(
        f"chiplet worst-case teleport-aware fidelity: {min_fid:.4f} "
        f"(floor {fid_floor})"
    )
    # Deterministic (seeded device calibration, serial compiles), so
    # the floor is hard: a drop means routing or link-cost accounting
    # changed — re-measure and re-baseline deliberately, not silently.
    if min_fid < fid_floor:
        fail(
            "chiplet teleport-aware fidelity regressed: "
            f"{min_fid:.4f} < {fid_floor}"
        )

    print("bench regression gate: OK")


if __name__ == "__main__":
    main()
