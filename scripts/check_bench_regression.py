#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares the freshly-emitted BENCH_routing.json and BENCH_sharding.json
against the committed baseline (scripts/bench_baseline.json) and exits
nonzero when a tracked metric regresses beyond the baseline tolerance:

  - QFT-16 SABRE SWAP count (deterministic): fails when the router
    inserts more than (1 + tolerance) * baseline SWAPs.
  - Sharded batch throughput: fails when the sharded/serial speedup
    drops below (1 - tolerance) * baseline or below the hard floor
    (min_sharding_speedup). The baseline is calibrated on a 4-thread
    pool (see bench_baseline.json), so the gate is skipped with a
    warning when the bench got fewer than 4 threads — on such runners
    the floor would fire without a real regression.
  - Bit-identity of sharded results (always enforced).

Usage:
  check_bench_regression.py <baseline.json> <BENCH_routing.json> \
      <BENCH_sharding.json>
"""

import json
import sys


def fail(message: str) -> None:
    print(f"REGRESSION: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    baseline_path, routing_path, sharding_path = sys.argv[1:4]
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(routing_path) as f:
        routing = json.load(f)
    with open(sharding_path) as f:
        sharding = json.load(f)

    tolerance = baseline.get("tolerance", 0.10)

    # --- routing: QFT-16 SABRE SWAP count (deterministic) ------------
    workload = next(
        (w for w in routing["workloads"] if w["name"] == "qft16_grid4x4"),
        None,
    )
    if workload is None:
        fail("BENCH_routing.json has no qft16_grid4x4 workload")
    swaps = workload["strategies"]["sabre"]["swaps"]
    swaps_baseline = baseline["qft16_grid4x4_sabre_swaps"]
    swaps_limit = swaps_baseline * (1.0 + tolerance)
    print(
        f"qft16_grid4x4 sabre swaps: {swaps} "
        f"(baseline {swaps_baseline}, limit {swaps_limit:.1f})"
    )
    if swaps > swaps_limit:
        fail(
            f"QFT-16 SABRE SWAP count regressed: {swaps} > {swaps_limit:.1f}"
        )

    # --- sharding: bit-identity (always) and throughput --------------
    if not sharding.get("bit_identical", False):
        fail("sharded results are not bit-identical to solo compiles")

    speedup = sharding["sharded"]["speedup"]
    threads = sharding.get("threads", 1)
    speedup_baseline = baseline["sharding_speedup"]
    floor = max(
        baseline.get("min_sharding_speedup", 0.0),
        speedup_baseline * (1.0 - tolerance),
    )
    print(
        f"sharding speedup: {speedup:.2f}x on {threads} threads "
        f"(baseline {speedup_baseline}, floor {floor:.2f})"
    )
    if threads < 4:
        print(
            f"WARNING: bench ran on {threads} thread(s) but the "
            "baseline is calibrated for 4; skipping the sharded-"
            "throughput gate"
        )
    elif speedup < floor:
        fail(
            f"sharded batch throughput regressed: {speedup:.2f}x < "
            f"{floor:.2f}x"
        )

    print("bench regression gate: OK")


if __name__ == "__main__":
    main()
