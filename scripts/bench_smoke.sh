#!/usr/bin/env bash
# Smoke test for the perf path: build the library + benches and run the
# small benches in quick mode. Catches compile breaks and gross runtime
# regressions in the code paths the figure benches exercise, without
# paying for a paper-scale run.
#
# Every bench binary's exit code is checked explicitly (on top of
# `set -euo pipefail`), so a crashing bench — even one whose output is
# being captured into a JSON file — fails the script loudly instead of
# slipping through CI.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH="${BENCH:-bench_table1_gate_families}"
ROUTING_JSON="${ROUTING_JSON:-$BUILD_DIR/BENCH_routing.json}"
SHARDING_JSON="${SHARDING_JSON:-$BUILD_DIR/BENCH_sharding.json}"
SERVICE_JSON="${SERVICE_JSON:-$BUILD_DIR/BENCH_service.json}"
SERVICE_TRACE_OUT="${SERVICE_TRACE_OUT:-$BUILD_DIR/trace.json}"
TRANSLATION_JSON="${TRANSLATION_JSON:-$BUILD_DIR/BENCH_translation.json}"
HOTPATH_JSON="${HOTPATH_JSON:-$BUILD_DIR/BENCH_hotpath.json}"
CHIPLET_JSON="${CHIPLET_JSON:-$BUILD_DIR/BENCH_chiplet.json}"

# Extra configure arguments (e.g. -DCMAKE_CXX_COMPILER_LAUNCHER=ccache
# in CI); intentionally unquoted so multiple flags split.
cmake -B "$BUILD_DIR" -S . ${CMAKE_EXTRA_ARGS:-}
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "$BENCH" \
    bench_routing bench_sharding bench_service bench_translation \
    bench_hotpath bench_chiplet quickstart

# run_bench <binary> [json-output] [args...]: run a bench, streaming
# its output to the terminal (and to the JSON file when given), and
# abort with the bench's own exit code if it fails.
run_bench() {
    local bin="$1"
    local out="${2:-}"
    shift $(( $# >= 2 ? 2 : 1 ))
    echo "=== ${bin}${out:+ -> ${out}}${*:+ ($*)} ==="
    local status=0
    if [[ -n "$out" ]]; then
        "./$BUILD_DIR/$bin" "$@" > "$out" || status=$?
        cat "$out"
    else
        "./$BUILD_DIR/$bin" "$@" || status=$?
    fi
    if (( status != 0 )); then
        echo "FAIL: $bin exited with status $status" >&2
        exit "$status"
    fi
}

time run_bench "$BENCH"

# quickstart prints pass timings + cache stats.
run_bench quickstart

# Machine-readable perf trajectories: routing SWAP counts (PR 2 on),
# sharded batch throughput (PR 3 on), compile-service submit->
# complete latency/throughput (PR 4 on) and decomposition-engine
# cold-cache speedup / canonicalized cache hit ratio (PR 5 on). The
# committed baseline in scripts/bench_baseline.json gates regressions
# in CI.
run_bench bench_routing "$ROUTING_JSON"
run_bench bench_sharding "$SHARDING_JSON"
# The service bench's soak leg exports a Chrome trace of the run
# (PR 8 on); lint it against the documented schema right away so a
# malformed trace fails next to the bench that produced it.
SERVICE_TRACE_OUT="$SERVICE_TRACE_OUT" run_bench bench_service "$SERVICE_JSON"
python3 scripts/trace_lint.py "$SERVICE_TRACE_OUT"
run_bench bench_translation "$TRANSLATION_JSON"
# Single-circuit hot-path latency, allocation counters and the
# intra-circuit parallel speedup/bit-identity self-check (PR 6 on).
# HOTPATH_ARGS=--quick (the CI smoke setting) trims the compute-bound
# QV leg to 24 qubits; the gated QFT-32 counters are mode-invariant.
# Intentionally unquoted so multiple flags split.
run_bench bench_hotpath "$HOTPATH_JSON" ${HOTPATH_ARGS:-}
# Chiplet routing (PR 9 on): teleport-aware vs SWAP-only link
# crossings on multi-core devices. The binary self-checks that the
# teleport-aware compile wins on every workload (nonzero exit
# otherwise); the baseline additionally gates its worst-case fidelity.
run_bench bench_chiplet "$CHIPLET_JSON"
