#!/usr/bin/env bash
# Smoke test for the perf path: build the library + benches and run one
# small bench in quick mode. Catches compile breaks and gross runtime
# regressions in the code paths the figure benches exercise, without
# paying for a paper-scale run.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH="${BENCH:-bench_table1_gate_families}"
ROUTING_JSON="${ROUTING_JSON:-$BUILD_DIR/BENCH_routing.json}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "$BENCH" \
    bench_routing quickstart

echo "=== $BENCH (quick mode) ==="
time "./$BUILD_DIR/$BENCH"

echo "=== quickstart (pass timings + cache stats) ==="
"./$BUILD_DIR/quickstart"

# Machine-readable routing trajectory: SWAP counts and routing
# wall-clock per strategy per workload, tracked from PR 2 on.
echo "=== bench_routing -> $ROUTING_JSON ==="
"./$BUILD_DIR/bench_routing" > "$ROUTING_JSON"
cat "$ROUTING_JSON"
