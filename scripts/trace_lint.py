#!/usr/bin/env python3
"""Validate a Chrome trace exported by metrics/trace_export.cc.

Checks the schema documented in docs/telemetry.md:

  * the file is valid JSON with a "traceEvents" list;
  * every event carries name/ph/ts/pid/tid, with ph in {B, E, i, M};
  * non-metadata timestamps are monotone in file order (the exporter
    emits a stable ts-sort);
  * per (pid, tid) track, B/E spans balance like a stack: every E
    matches the innermost open B by name, job spans ("job <id>[...]")
    open only at depth 0, pass spans only nest inside a job span, and
    no span is left open at end of file;
  * "i" instants live on the synthetic service process (pid 0) except
    per-compile cache and teleport marks, which sit on their shard's
    track.

Exit code 0 when the trace is clean (prints a one-line summary),
1 with one line per violation otherwise.  CI runs this on the trace
the bench_service soak leg exports.

Usage: trace_lint.py TRACE.json
"""

import json
import sys


def lint(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"], {}

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no \"traceEvents\" list"], {}

    stacks = {}  # (pid, tid) -> [span name, ...]
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    last_ts = None
    for n, event in enumerate(events):
        where = f"event {n}"
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in event]
        if missing:
            errors.append(f"{where}: missing {', '.join(missing)}")
            continue
        name, ph = event["name"], event["ph"]
        track = (event["pid"], event["tid"])
        if ph not in counts:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        counts[ph] += 1
        if ph == "M":
            continue

        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"{where}: ts {ts} < previous {last_ts} "
                "(exporter must emit a stable ts-sort)")
        last_ts = ts

        stack = stacks.setdefault(track, [])
        if ph == "B":
            if name.startswith("job ") and stack:
                errors.append(
                    f"{where}: job span {name!r} opens inside "
                    f"{stack[-1]!r} on track {track}")
            if not name.startswith("job ") and not stack:
                errors.append(
                    f"{where}: pass span {name!r} opens outside any "
                    f"job span on track {track}")
            stack.append(name)
        elif ph == "E":
            if not stack:
                errors.append(
                    f"{where}: E {name!r} with no open span on track "
                    f"{track}")
            elif stack[-1] != name:
                errors.append(
                    f"{where}: E {name!r} does not match innermost "
                    f"open span {stack[-1]!r} on track {track}")
            else:
                stack.pop()
        elif ph == "i":
            # Lifecycle instants live on pid 0; cache and teleport
            # marks on their shard's track.
            if name not in ("cache", "teleport") and event["pid"] != 0:
                errors.append(
                    f"{where}: instant {name!r} on pid {event['pid']} "
                    "(lifecycle instants belong to the service pid 0)")

    for track, stack in sorted(stacks.items()):
        for name in stack:
            errors.append(f"end of file: span {name!r} still open on "
                          f"track {track}")
    if counts["B"] != counts["E"]:
        errors.append(
            f"unbalanced spans: {counts['B']} B vs {counts['E']} E")
    return errors, counts


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    path = argv[1]
    errors, counts = lint(path)
    if errors:
        for error in errors:
            print(f"trace_lint: {path}: {error}", file=sys.stderr)
        return 1
    print(f"trace_lint: {path}: OK "
          f"({counts.get('B', 0)} spans, {counts.get('i', 0)} instants, "
          f"{counts.get('M', 0)} metadata)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
