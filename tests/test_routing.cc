// SWAP-routing pass tests.

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/routing.h"
#include "qc/gates.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Routing, AdjacentOpsPassThrough)
{
    Circuit logical(3);
    logical.add2q(0, 1, cz(), "CZ");
    logical.add2q(1, 2, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    EXPECT_EQ(routed.swaps_inserted, 0);
    EXPECT_EQ(routed.circuit.twoQubitGateCount(), 2);
}

TEST(Routing, InsertsSwapForDistantPair)
{
    Circuit logical(3);
    logical.add2q(0, 2, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    EXPECT_EQ(routed.swaps_inserted, 1);
    EXPECT_EQ(routed.circuit.countLabel("SWAP"), 1);
}

TEST(Routing, AllEmittedOpsAreOnCoupledPairs)
{
    // All-to-all logical circuit on a line: heavy routing.
    Circuit logical(5);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
            logical.add2q(a, b, iswap(), "ISWAP");
    Topology line = Topology::line(5);
    RoutedCircuit routed = routeCircuit(logical, line);
    for (const auto& op : routed.circuit.ops())
        if (op.isTwoQubit())
            EXPECT_TRUE(line.adjacent(op.qubits[0], op.qubits[1]));
    EXPECT_GT(routed.swaps_inserted, 0);
}

TEST(Routing, FinalPositionsAreAPermutation)
{
    Circuit logical(4);
    logical.add2q(0, 3, cz(), "CZ");
    logical.add2q(1, 3, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(4));
    std::vector<bool> seen(4, false);
    for (int pos : routed.final_positions) {
        ASSERT_GE(pos, 0);
        ASSERT_LT(pos, 4);
        EXPECT_FALSE(seen[pos]);
        seen[pos] = true;
    }
}

TEST(Routing, PreservesCircuitSemantics)
{
    // The routed circuit, followed by undoing the final permutation,
    // must equal the logical circuit's unitary.
    Circuit logical(4);
    logical.add1q(0, hadamard(), "H");
    logical.add2q(0, 3, cnot(), "CNOT");
    logical.add2q(1, 2, fsim(0.3, 0.7), "fSim");
    logical.add2q(0, 2, cz(), "CZ");

    Topology line = Topology::line(4);
    RoutedCircuit routed = routeCircuit(logical, line);

    StateVector ideal(4);
    ideal.run(logical);

    StateVector physical(4);
    physical.run(routed.circuit);

    // Permute physical amplitudes back: logical qubit l lives at
    // position final_positions[l].
    const auto& map = routed.final_positions;
    std::vector<cplx> restored(16);
    for (size_t phys = 0; phys < 16; ++phys) {
        size_t logical_idx = 0;
        for (int l = 0; l < 4; ++l) {
            size_t mask = size_t{1} << (3 - map[l]);
            if (phys & mask)
                logical_idx |= size_t{1} << (3 - l);
        }
        restored[logical_idx] = physical.amplitudes()[phys];
    }
    cplx overlap(0.0, 0.0);
    for (size_t i = 0; i < 16; ++i)
        overlap += std::conj(ideal.amplitudes()[i]) * restored[i];
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-10);
}

TEST(Routing, OneQubitOpsFollowTheirQubit)
{
    Circuit logical(3);
    logical.add2q(0, 2, cz(), "CZ"); // forces a swap on a line
    logical.add1q(0, pauliX(), "X");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    // The X must land on logical 0's current position.
    const auto& ops = routed.circuit.ops();
    const Operation& x_op = ops.back();
    EXPECT_EQ(x_op.label, "X");
    EXPECT_EQ(x_op.qubits[0], routed.final_positions[0]);
}

TEST(Routing, WidthMismatchThrows)
{
    Circuit logical(3);
    EXPECT_THROW(routeCircuit(logical, Topology::line(4)), FatalError);
}

} // namespace
} // namespace qiset
