// SWAP-routing tests: the greedy baseline, the strategy registry and
// the SABRE-style lookahead router.

#include <algorithm>

#include <gtest/gtest.h>

#include "apps/qft.h"
#include "common/error.h"
#include "compiler/routing.h"
#include "compiler/routing_strategy.h"
#include "qc/gates.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

using namespace gates;

/**
 * Check a routed circuit implements the logical one: run both from
 * |0...0>, undo the router's output permutation, compare amplitudes.
 * Valid for any initial_positions (the all-zeros input is symmetric
 * under the start permutation, and every preparation gate rides along
 * inside the routed circuit).
 */
void
expectPreservesSemantics(const Circuit& logical,
                         const RoutedCircuit& routed)
{
    int n = logical.numQubits();
    size_t dim = size_t{1} << n;

    StateVector ideal(n);
    ideal.run(logical);
    StateVector physical(n);
    physical.run(routed.circuit);

    const auto& map = routed.final_positions;
    std::vector<cplx> restored(dim);
    for (size_t phys = 0; phys < dim; ++phys) {
        size_t logical_idx = 0;
        for (int l = 0; l < n; ++l) {
            size_t mask = size_t{1} << (n - 1 - map[l]);
            if (phys & mask)
                logical_idx |= size_t{1} << (n - 1 - l);
        }
        restored[logical_idx] = physical.amplitudes()[phys];
    }
    cplx overlap(0.0, 0.0);
    for (size_t i = 0; i < dim; ++i)
        overlap += std::conj(ideal.amplitudes()[i]) * restored[i];
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-10);
}

/** All 2Q ops on coupled pairs; both position maps are permutations. */
void
expectWellFormedRouting(const RoutedCircuit& routed,
                        const Topology& coupling)
{
    for (const auto& op : routed.circuit.ops())
        if (op.isTwoQubit())
            EXPECT_TRUE(coupling.adjacent(op.qubits()[0], op.qubits()[1]));
    for (const auto* positions :
         {&routed.initial_positions, &routed.final_positions}) {
        std::vector<bool> seen(routed.circuit.numQubits(), false);
        ASSERT_EQ(positions->size(),
                  static_cast<size_t>(routed.circuit.numQubits()));
        for (int pos : *positions) {
            ASSERT_GE(pos, 0);
            ASSERT_LT(pos, routed.circuit.numQubits());
            EXPECT_FALSE(seen[pos]);
            seen[pos] = true;
        }
    }
}

TEST(Routing, AdjacentOpsPassThrough)
{
    Circuit logical(3);
    logical.add2q(0, 1, cz(), "CZ");
    logical.add2q(1, 2, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    EXPECT_EQ(routed.swaps_inserted, 0);
    EXPECT_EQ(routed.circuit.twoQubitGateCount(), 2);
}

TEST(Routing, InsertsSwapForDistantPair)
{
    Circuit logical(3);
    logical.add2q(0, 2, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    EXPECT_EQ(routed.swaps_inserted, 1);
    EXPECT_EQ(routed.circuit.countLabel("SWAP"), 1);
}

TEST(Routing, AllEmittedOpsAreOnCoupledPairs)
{
    // All-to-all logical circuit on a line: heavy routing.
    Circuit logical(5);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
            logical.add2q(a, b, iswap(), "ISWAP");
    Topology line = Topology::line(5);
    RoutedCircuit routed = routeCircuit(logical, line);
    for (const auto& op : routed.circuit.ops())
        if (op.isTwoQubit())
            EXPECT_TRUE(line.adjacent(op.qubits()[0], op.qubits()[1]));
    EXPECT_GT(routed.swaps_inserted, 0);
}

TEST(Routing, FinalPositionsAreAPermutation)
{
    Circuit logical(4);
    logical.add2q(0, 3, cz(), "CZ");
    logical.add2q(1, 3, cz(), "CZ");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(4));
    std::vector<bool> seen(4, false);
    for (int pos : routed.final_positions) {
        ASSERT_GE(pos, 0);
        ASSERT_LT(pos, 4);
        EXPECT_FALSE(seen[pos]);
        seen[pos] = true;
    }
}

TEST(Routing, PreservesCircuitSemantics)
{
    // The routed circuit, followed by undoing the final permutation,
    // must equal the logical circuit's unitary.
    Circuit logical(4);
    logical.add1q(0, hadamard(), "H");
    logical.add2q(0, 3, cnot(), "CNOT");
    logical.add2q(1, 2, fsim(0.3, 0.7), "fSim");
    logical.add2q(0, 2, cz(), "CZ");

    Topology line = Topology::line(4);
    RoutedCircuit routed = routeCircuit(logical, line);

    StateVector ideal(4);
    ideal.run(logical);

    StateVector physical(4);
    physical.run(routed.circuit);

    // Permute physical amplitudes back: logical qubit l lives at
    // position final_positions[l].
    const auto& map = routed.final_positions;
    std::vector<cplx> restored(16);
    for (size_t phys = 0; phys < 16; ++phys) {
        size_t logical_idx = 0;
        for (int l = 0; l < 4; ++l) {
            size_t mask = size_t{1} << (3 - map[l]);
            if (phys & mask)
                logical_idx |= size_t{1} << (3 - l);
        }
        restored[logical_idx] = physical.amplitudes()[phys];
    }
    cplx overlap(0.0, 0.0);
    for (size_t i = 0; i < 16; ++i)
        overlap += std::conj(ideal.amplitudes()[i]) * restored[i];
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-10);
}

TEST(Routing, OneQubitOpsFollowTheirQubit)
{
    Circuit logical(3);
    logical.add2q(0, 2, cz(), "CZ"); // forces a swap on a line
    logical.add1q(0, pauliX(), "X");
    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    // The X must land on logical 0's current position.
    auto ops = routed.circuit.ops();
    ConstOpRef x_op = ops[ops.size() - 1];
    EXPECT_EQ(x_op.label(), "X");
    EXPECT_EQ(x_op.qubits()[0], routed.final_positions[0]);
}

TEST(Routing, WidthMismatchThrows)
{
    Circuit logical(3);
    EXPECT_THROW(routeCircuit(logical, Topology::line(4)), FatalError);
}

// ----------------------------------------------------------- registry

TEST(RoutingStrategy, RegistryHasBuiltins)
{
    auto names = routingStrategyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "greedy"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "sabre"),
              names.end());
    EXPECT_EQ(makeRoutingStrategy("greedy")->name(), "greedy");
    EXPECT_EQ(makeRoutingStrategy("sabre")->name(), "sabre");
}

TEST(RoutingStrategy, UnknownNameThrows)
{
    EXPECT_THROW(makeRoutingStrategy("no-such-router"), FatalError);
}

TEST(RoutingStrategy, CustomStrategyRegisters)
{
    // A project-specific router plugs in by name; duplicate names are
    // rejected so builtins cannot be silently shadowed.
    bool registered = registerRoutingStrategy("test-custom", [] {
        return std::unique_ptr<RoutingStrategy>(new GreedyRouter());
    });
    EXPECT_TRUE(registered);
    EXPECT_FALSE(registerRoutingStrategy("test-custom", [] {
        return std::unique_ptr<RoutingStrategy>(new GreedyRouter());
    }));
    EXPECT_FALSE(registerRoutingStrategy("greedy", [] {
        return std::unique_ptr<RoutingStrategy>(new GreedyRouter());
    }));
    EXPECT_EQ(makeRoutingStrategy("test-custom")->name(), "greedy");
}

TEST(RoutingStrategy, GreedyStrategyMatchesRouteCircuit)
{
    Circuit logical(4);
    logical.add2q(0, 3, cz(), "CZ");
    logical.add2q(1, 3, cz(), "CZ");
    Topology line = Topology::line(4);

    RoutedCircuit direct = routeCircuit(logical, line);
    RoutedCircuit via_strategy =
        GreedyRouter().route(logical, line, Schedule(logical));
    EXPECT_EQ(via_strategy.swaps_inserted, direct.swaps_inserted);
    EXPECT_EQ(via_strategy.final_positions, direct.final_positions);
    EXPECT_EQ(via_strategy.circuit.size(), direct.circuit.size());
    // Greedy keeps the identity start layout.
    for (size_t l = 0; l < via_strategy.initial_positions.size(); ++l)
        EXPECT_EQ(via_strategy.initial_positions[l],
                  static_cast<int>(l));
}

// -------------------------------------------------------------- sabre

TEST(SabreRouter, PreservesCircuitSemantics)
{
    Circuit logical(4);
    logical.add1q(0, hadamard(), "H");
    logical.add2q(0, 3, cnot(), "CNOT");
    logical.add2q(1, 2, fsim(0.3, 0.7), "fSim");
    logical.add2q(0, 2, cz(), "CZ");

    Topology line = Topology::line(4);
    RoutedCircuit routed = SabreRouter().route(logical, line);
    expectWellFormedRouting(routed, line);
    expectPreservesSemantics(logical, routed);
}

TEST(SabreRouter, PreservesSemanticsOnQftWithPreparation)
{
    // X-preparation gates ride inside the routed circuit, so a
    // permuted start layout must still reproduce the logical state.
    Circuit logical = makeQftCircuitOnInput(4, 0b1011);
    Topology line = Topology::line(4);
    RoutedCircuit routed = SabreRouter().route(logical, line);
    expectWellFormedRouting(routed, line);
    expectPreservesSemantics(logical, routed);
}

TEST(SabreRouter, HeavyAllToAllWorkloadStaysLegal)
{
    Circuit logical(5);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
            logical.add2q(a, b, iswap(), "ISWAP");
    Topology line = Topology::line(5);
    RoutedCircuit routed = SabreRouter().route(logical, line);
    expectWellFormedRouting(routed, line);
    EXPECT_GT(routed.swaps_inserted, 0);
    EXPECT_EQ(routed.circuit.twoQubitGateCount(),
              10 + routed.swaps_inserted);
}

TEST(SabreRouter, DeterministicAcrossRuns)
{
    Circuit logical = makeQftCircuit(6);
    Topology grid = Topology::grid(2, 3);
    RoutedCircuit first = SabreRouter().route(logical, grid);
    RoutedCircuit second = SabreRouter().route(logical, grid);
    EXPECT_EQ(first.swaps_inserted, second.swaps_inserted);
    EXPECT_EQ(first.initial_positions, second.initial_positions);
    EXPECT_EQ(first.final_positions, second.final_positions);
    ASSERT_EQ(first.circuit.size(), second.circuit.size());
    for (size_t i = 0; i < first.circuit.size(); ++i)
        EXPECT_EQ(first.circuit.ops()[i].qubits(),
                  second.circuit.ops()[i].qubits());
}

TEST(SabreRouter, RequiresMatchingSchedule)
{
    Circuit logical = makeQftCircuit(4);
    Circuit other(4);
    other.add2q(0, 1, cz(), "CZ");
    EXPECT_THROW(SabreRouter().route(logical, Topology::line(4),
                                     Schedule(other)),
                 FatalError);
}

TEST(SabreRouter, FewerSwapsThanGreedyOnQft16)
{
    // The acceptance bar of this refactor: SABRE's lookahead must
    // strictly beat greedy nearest-neighbor SWAP chains on the
    // long-range 16-qubit QFT (both on the 4x4 grid and on a line).
    Circuit qft = makeQftCircuit(16);
    for (const Topology& coupling :
         {Topology::grid(4, 4), Topology::line(16)}) {
        Schedule schedule(qft);
        RoutedCircuit greedy =
            GreedyRouter().route(qft, coupling, schedule);
        RoutedCircuit sabre =
            SabreRouter().route(qft, coupling, schedule);
        expectWellFormedRouting(sabre, coupling);
        EXPECT_LT(sabre.swaps_inserted, greedy.swaps_inserted);
    }
}

} // namespace
} // namespace qiset
