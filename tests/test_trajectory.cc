// Trajectory-simulator tests: convergence to the density-matrix
// result and basic statistical sanity.

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "qc/gates.h"
#include "sim/density_matrix.h"
#include "sim/trajectory.h"

namespace qiset {
namespace {

using namespace gates;

Circuit
noisyBellCircuit()
{
    Circuit c(2);
    Operation h;
    h.qubits = {0};
    h.unitary = hadamard();
    h.error_rate = 0.01;
    h.duration_ns = 25.0;
    c.add(h);
    Operation cx;
    cx.qubits = {0, 1};
    cx.unitary = cnot();
    cx.error_rate = 0.05;
    cx.duration_ns = 150.0;
    c.add(cx);
    return c;
}

NoiseModel
testNoise(int n)
{
    QubitNoise qn;
    qn.t1_ns = 15e3;
    qn.t2_ns = 12e3;
    return NoiseModel(n, qn);
}

TEST(Trajectory, NoiselessTrajectoryIsDeterministic)
{
    Circuit c(2);
    c.add1q(0, hadamard());
    c.add2q(0, 1, cnot());
    TrajectorySimulator sim((NoiseModel()));
    Rng rng(1);
    StateVector a = sim.runTrajectory(c, rng);
    StateVector b = sim.runTrajectory(c, rng);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-12);
    EXPECT_NEAR(a.probabilities()[0], 0.5, 1e-12);
}

TEST(Trajectory, AverageConvergesToDensityMatrix)
{
    Circuit c = noisyBellCircuit();
    NoiseModel noise = testNoise(2);

    DensityMatrix rho(2);
    rho.runNoisy(c, noise);
    auto exact = noise.applyReadoutError(rho.probabilities());

    TrajectorySimulator sim(noise);
    Rng rng(7);
    auto sampled = sim.averageProbabilities(c, 3000, rng);

    for (size_t i = 0; i < exact.size(); ++i)
        EXPECT_NEAR(sampled[i], exact[i], 0.03) << "outcome " << i;
}

TEST(Trajectory, ObservableAverageMatchesFidelity)
{
    Circuit c = noisyBellCircuit();
    NoiseModel noise = testNoise(2);

    // Ideal (noiseless) reference state.
    StateVector ideal(2);
    ideal.apply1q(hadamard(), 0);
    ideal.apply2q(cnot(), 0, 1);

    DensityMatrix rho(2);
    rho.runNoisy(c, noise);
    double exact_fidelity = rho.fidelityWithPure(ideal);

    TrajectorySimulator sim(noise);
    Rng rng(11);
    double sampled = sim.averageObservable(
        c, 3000, rng, [&](const StateVector& s) {
            return std::norm(ideal.innerProduct(s));
        });
    EXPECT_NEAR(sampled, exact_fidelity, 0.03);
}

TEST(Trajectory, StatesStayNormalized)
{
    Circuit c = noisyBellCircuit();
    TrajectorySimulator sim(testNoise(2));
    Rng rng(3);
    for (int t = 0; t < 50; ++t) {
        StateVector s = sim.runTrajectory(c, rng);
        EXPECT_NEAR(s.norm(), 1.0, 1e-9);
    }
}

TEST(Trajectory, HeavyNoiseDepolarizes)
{
    // Many high-error gates drive the average distribution toward
    // uniform.
    Circuit c(2);
    for (int rep = 0; rep < 30; ++rep) {
        Operation op;
        op.qubits = {0, 1};
        op.unitary = fsim(0.3, 0.4);
        op.error_rate = 0.3;
        c.add(op);
    }
    TrajectorySimulator sim(testNoise(2));
    Rng rng(5);
    auto probs = sim.averageProbabilities(c, 1500, rng);
    for (double p : probs)
        EXPECT_NEAR(p, 0.25, 0.06);
}

} // namespace
} // namespace qiset
