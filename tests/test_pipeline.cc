// End-to-end compilation + simulation integration tests.

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "common/error.h"
#include "compiler/pipeline.h"
#include "metrics/metrics.h"
#include "qc/gates.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

TEST(Pipeline, CompiledNoiselessCircuitMatchesIdeal)
{
    // Build a perfect device: compiling must preserve semantics
    // exactly (up to the tracked output permutation).
    Device d("perfect", Topology::line(3));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", 1.0);
        d.setEdgeFidelity(a, b, "S4", 1.0);
    }
    QubitNoise noiseless;
    noiseless.t1_ns = 1e15;
    noiseless.t2_ns = 1e15;
    for (int q = 0; q < 3; ++q)
        d.setQubitNoise(q, noiseless);

    Rng rng(81);
    Circuit app = makeQuantumVolumeCircuit(3, rng);

    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.approximate = false;
    CompileResult result =
        compileCircuit(app, d, isa::rigettiSet(1), cache, opts);

    auto ideal = idealProbabilities(app);
    auto compiled = simulateCompiled(result);
    // Exact decompositions carry up to sqrt(1 - threshold) amplitude
    // error each; allow the accumulated slack.
    for (size_t i = 0; i < ideal.size(); ++i)
        EXPECT_NEAR(compiled[i], ideal[i], 2e-3) << "outcome " << i;
}

TEST(Pipeline, NoisyCompilationDegradesGracefully)
{
    Rng rng(82);
    Device d = makeSycamore(rng);
    Circuit app = makeQuantumVolumeCircuit(3, rng);

    ProfileCache cache;
    CompileResult result =
        compileCircuit(app, d, isa::googleSet(3), cache, fastCompile());

    auto ideal = idealProbabilities(app);
    auto noisy = simulateCompiled(result);

    double hop_ideal = heavyOutputProbability(ideal, ideal);
    double hop_noisy = heavyOutputProbability(ideal, noisy);
    EXPECT_LT(hop_noisy, hop_ideal + 1e-9);
    EXPECT_GT(hop_noisy, 0.4); // still far from fully depolarized
}

TEST(Pipeline, NativeSwapReducesInstructionCount)
{
    Rng rng(83);
    Device d = makeSycamore(rng);
    // QFT has long-range CPhases: routing inserts SWAPs on the grid.
    Circuit app = makeQftCircuit(5);

    ProfileCache cache;
    CompileOptions opts = fastCompile();
    CompileResult without_swap =
        compileCircuit(app, d, isa::googleSet(6), cache, opts);
    CompileResult with_swap =
        compileCircuit(app, d, isa::googleSet(7), cache, opts);

    if (with_swap.swaps_inserted > 0) {
        EXPECT_LT(with_swap.two_qubit_count,
                  without_swap.two_qubit_count);
        EXPECT_GT(with_swap.type_usage.count("SWAP"), 0u);
    }
}

TEST(Pipeline, IntraCircuitParallelismBitIdenticalAcrossCaps)
{
    // Full pipeline through the one-shot service with a worker pool:
    // every intra_circuit_parallelism setting must reproduce the
    // serial compile bit-for-bit (cold cache per variant, so nothing
    // is shared between runs but the inputs).
    Rng rng(84);
    Device d = makeSycamore(rng);
    Circuit app = makeQuantumVolumeCircuit(4, rng);
    GateSet set = isa::googleSet(3);

    auto compile = [&](ThreadPool* pool, size_t cap) {
        ProfileCache cold;
        CompileOptions opts = fastCompile();
        opts.intra_circuit_parallelism = cap;
        return compileCircuit(app, d, set, cold, opts, pool);
    };

    CompileResult serial = compile(nullptr, 0);
    ThreadPool pool(4);
    for (size_t cap : {size_t(0), size_t(1), size_t(2)}) {
        SCOPED_TRACE("cap " + std::to_string(cap));
        CompileResult parallel = compile(&pool, cap);
        EXPECT_EQ(serial.physical, parallel.physical);
        EXPECT_EQ(serial.final_positions, parallel.final_positions);
        EXPECT_EQ(serial.swaps_inserted, parallel.swaps_inserted);
        EXPECT_EQ(serial.two_qubit_count, parallel.two_qubit_count);
        EXPECT_EQ(serial.type_usage, parallel.type_usage);
        EXPECT_DOUBLE_EQ(serial.estimated_fidelity,
                         parallel.estimated_fidelity);
        ASSERT_EQ(serial.circuit.size(), parallel.circuit.size());
        for (size_t i = 0; i < serial.circuit.size(); ++i) {
            ConstOpRef x = serial.circuit.ops()[i];
            ConstOpRef y = parallel.circuit.ops()[i];
            EXPECT_EQ(x.qubits(), y.qubits());
            EXPECT_EQ(x.labelId(), y.labelId());
            EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
        }
    }
}

TEST(Pipeline, EstimatedFidelityIsProbability)
{
    Rng rng(84);
    Device d = makeAspen8(rng);
    Circuit app = makeRandomQaoaCircuit(4, rng);
    ProfileCache cache;
    CompileOptions approx = fastCompile();
    CompileResult result =
        compileCircuit(app, d, isa::rigettiSet(3), cache, approx);
    EXPECT_GT(result.estimated_fidelity, 0.0);
    EXPECT_LE(result.estimated_fidelity, 1.0);

    // Exact mode must realize every ZZ with real entangling gates
    // (approximate mode may legally drop near-identity interactions
    // on hardware this noisy, Eq. 2).
    CompileOptions exact = approx;
    exact.approximate = false;
    CompileResult exact_result =
        compileCircuit(app, d, isa::rigettiSet(3), cache, exact);
    EXPECT_GT(exact_result.two_qubit_count, 0);
    // And Eq. 2 guarantees the approximate pick estimates at least as
    // high an overall fidelity.
    EXPECT_GE(result.estimated_fidelity,
              exact_result.estimated_fidelity - 1e-9);
}

TEST(Pipeline, SharedCacheAcrossGateSets)
{
    Rng rng(85);
    Device d = makeSycamore(rng);
    Circuit app = makeRandomQaoaCircuit(4, rng);
    ProfileCache cache;
    compileCircuit(app, d, isa::googleSet(1), cache, fastCompile());
    size_t after_first = cache.size();
    // G2 adds one type: only the new (target, type) pairs compute.
    compileCircuit(app, d, isa::googleSet(2), cache, fastCompile());
    size_t after_second = cache.size();
    EXPECT_GT(after_second, after_first);
    // S1/S2 profiles were reused, so growth is at most one per target.
    EXPECT_LE(after_second - after_first, after_first);
}

TEST(Pipeline, ConsolidationToggleAffectsCounts)
{
    Rng rng(87);
    Device d = makeSycamore(rng);
    // QFT's long-range CPhases force routing SWAPs, which fuse with
    // application gates only when consolidation is on.
    Circuit app = makeQftCircuit(5);
    ProfileCache cache;
    CompileOptions with = fastCompile();
    CompileOptions without = with;
    without.consolidate = false;
    CompileResult merged =
        compileCircuit(app, d, isa::googleSet(3), cache, with);
    CompileResult split =
        compileCircuit(app, d, isa::googleSet(3), cache, without);
    EXPECT_LE(merged.two_qubit_count, split.two_qubit_count);

    // Both still implement the same distribution (approximately).
    auto ideal = idealProbabilities(app);
    auto p_merged = simulateCompiled(merged);
    EXPECT_LT(totalVariationDistance(ideal, p_merged), 0.5);
}

TEST(Pipeline, SuccessRateMatchesPerfectCompilation)
{
    Device d("perfect", Topology::line(3));
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 1.0);
    QubitNoise noiseless;
    noiseless.t1_ns = 1e15;
    noiseless.t2_ns = 1e15;
    for (int q = 0; q < 3; ++q)
        d.setQubitNoise(q, noiseless);

    Rng rng(88);
    Circuit app = makeQuantumVolumeCircuit(3, rng);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.approximate = false;
    opts.nuop.exact_threshold = 1.0 - 1e-8;
    CompileResult result =
        compileCircuit(app, d, isa::singleTypeSet(3), cache, opts);
    EXPECT_NEAR(simulateSuccessRate(result, app), 1.0, 1e-4);
}

TEST(Pipeline, SabreRoutingCompilesCorrectly)
{
    // End-to-end with options.routing = "sabre" on a perfect device:
    // the permuted start layout and tracked output permutation must
    // still reproduce the ideal state exactly.
    Device d("perfect", Topology::line(4));
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 1.0);
    QubitNoise noiseless;
    noiseless.t1_ns = 1e15;
    noiseless.t2_ns = 1e15;
    for (int q = 0; q < 4; ++q)
        d.setQubitNoise(q, noiseless);

    // Long-range CPhases force real routing on the line.
    Circuit app = makeQftCircuit(4);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.routing = "sabre";
    opts.approximate = false;
    opts.nuop.exact_threshold = 1.0 - 1e-8;
    CompileResult result =
        compileCircuit(app, d, isa::singleTypeSet(3), cache, opts);
    EXPECT_NEAR(simulateSuccessRate(result, app), 1.0, 1e-4);
    ASSERT_EQ(result.initial_positions.size(), 4u);
}

TEST(Pipeline, SabreRoutingNeverWorseOnQft)
{
    Rng rng(91);
    Device d = makeSycamore(rng);
    Circuit app = makeQftCircuit(6);
    ProfileCache cache;
    CompileOptions greedy_opts = fastCompile();
    CompileOptions sabre_opts = greedy_opts;
    sabre_opts.routing = "sabre";
    CompileResult greedy =
        compileCircuit(app, d, isa::googleSet(3), cache, greedy_opts);
    CompileResult sabre =
        compileCircuit(app, d, isa::googleSet(3), cache, sabre_opts);
    EXPECT_LE(sabre.swaps_inserted, greedy.swaps_inserted);
}

TEST(Pipeline, UnknownRoutingStrategyFailsLoudly)
{
    Device d("line", Topology::line(2));
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 0.99);
    Circuit app(2);
    app.add2q(0, 1, gates::cz(), "CZ");
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.routing = "definitely-not-registered";
    EXPECT_THROW(
        compileCircuit(app, d, isa::rigettiSet(1), cache, opts),
        FatalError);
}

TEST(Pipeline, BestOfMetaRouterMatchesBestStrategy)
{
    // options.routing = "best-of" routes with every registered
    // strategy and keeps the best predicted-fidelity result — on a
    // QFT workload that must be bit-identical to one of the
    // individual strategies, and deterministic across runs.
    Rng rng(93);
    Device d = makeSycamore(rng);
    Circuit app = makeQftCircuit(6);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.routing = "best-of";
    CompileResult best =
        compileCircuit(app, d, isa::googleSet(3), cache, opts);
    CompileResult best_again =
        compileCircuit(app, d, isa::googleSet(3), cache, opts);
    EXPECT_EQ(best.swaps_inserted, best_again.swaps_inserted);
    EXPECT_EQ(best.estimated_fidelity, best_again.estimated_fidelity);

    std::vector<int> candidate_swaps;
    for (const char* name : {"greedy", "sabre"}) {
        CompileOptions single = fastCompile();
        single.routing = name;
        candidate_swaps.push_back(
            compileCircuit(app, d, isa::googleSet(3), cache, single)
                .swaps_inserted);
    }
    EXPECT_NE(std::find(candidate_swaps.begin(), candidate_swaps.end(),
                        best.swaps_inserted),
              candidate_swaps.end());
    // And it still produces a correct circuit.
    EXPECT_GT(best.estimated_fidelity, 0.0);
}

TEST(Pipeline, AutoDecompositionCompilesExactly)
{
    // End-to-end options.decomposition = "auto" on a perfect device:
    // the analytic engine must reproduce the ideal output exactly,
    // without any BFGS profile computation for CZ-class targets.
    Device d("perfect", Topology::line(4));
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 1.0);
    QubitNoise noiseless;
    noiseless.t1_ns = 1e15;
    noiseless.t2_ns = 1e15;
    for (int q = 0; q < 4; ++q)
        d.setQubitNoise(q, noiseless);

    Circuit app = makeQftCircuit(4);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.decomposition = "auto";
    opts.approximate = false;
    CompileResult result =
        compileCircuit(app, d, isa::singleTypeSet(3), cache, opts);
    EXPECT_NEAR(simulateSuccessRate(result, app), 1.0, 1e-4);

    // The translation pass reported analytic coverage.
    double analytic = 0.0;
    for (const auto& metric : result.pass_metrics)
        if (metric.pass == "translation")
            analytic = metric.counters.at("analytic_ops");
    EXPECT_GT(analytic, 0.0);
}

TEST(Pipeline, UnknownDecompositionStrategyFailsLoudly)
{
    Device d("line", Topology::line(2));
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 0.99);
    Circuit app(2);
    app.add2q(0, 1, gates::cz(), "CZ");
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.decomposition = "definitely-not-registered";
    EXPECT_THROW(
        compileCircuit(app, d, isa::singleTypeSet(3), cache, opts),
        FatalError);
}

TEST(Pipeline, FullCphaseSetCompilesQaoaCheaply)
{
    // Nearest-neighbour MaxCut on a line device: no routing, so the
    // CZ(phi) family's one-gate-per-ZZ advantage is isolated.
    Device d("line4", Topology::line(4));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", 0.99);
        d.setEdgeFidelity(a, b, "CZt", 0.99);
    }
    Rng rng(89);
    Circuit app = makeQaoaCircuit(
        4, {{0, 1}, {1, 2}, {2, 3}}, rng);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.approximate = false;
    CompileResult czt =
        compileCircuit(app, d, isa::fullCphase(), cache, opts);
    CompileResult cz_only =
        compileCircuit(app, d, isa::singleTypeSet(3), cache, opts);
    EXPECT_EQ(czt.two_qubit_count, 3);     // one CZ(phi) per ZZ
    EXPECT_EQ(cz_only.two_qubit_count, 6); // two CZs per ZZ
}

TEST(Pipeline, ReannotateErrorRatesUsesTruthDevice)
{
    Rng rng(90);
    Device stale = makeSycamore(rng);
    Device truth = stale.withDriftedCalibration(rng, 2.0);
    Circuit app = makeRandomQaoaCircuit(3, rng);
    ProfileCache cache;
    CompileResult result =
        compileCircuit(app, stale, isa::googleSet(2), cache,
                       fastCompile());
    reannotateErrorRates(result, truth);
    for (const auto& op : result.circuit.ops()) {
        if (!op.isTwoQubit())
            continue;
        int pa = result.physical[op.qubits()[0]];
        int pb = result.physical[op.qubits()[1]];
        EXPECT_NEAR(op.errorRate(),
                    1.0 - truth.edgeFidelity(pa, pb, op.label()),
                    1e-12);
    }
}

TEST(Pipeline, ContinuousFamilyCompiles)
{
    Rng rng(86);
    Device d = makeSycamore(rng);
    Circuit app = makeRandomQaoaCircuit(3, rng);
    ProfileCache cache;
    CompileOptions opts = fastCompile();
    opts.approximate = false; // keep every interaction entangling
    CompileResult result =
        compileCircuit(app, d, isa::fullFsim(), cache, opts);
    EXPECT_GT(result.two_qubit_count, 0);
    // All native 2Q gates must carry the family label.
    for (const auto& [type, count] : result.type_usage)
        EXPECT_EQ(type, "fSim");

    auto ideal = idealProbabilities(app);
    auto noisy = simulateCompiled(result);
    EXPECT_GT(crossEntropyDifference(ideal, noisy), 0.3);
}

} // namespace
} // namespace qiset
