// Two-qubit block consolidation tests.

#include <gtest/gtest.h>

#include "compiler/consolidate.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Consolidate, MergesSamePairRun)
{
    Circuit c(2);
    c.add2q(0, 1, swap(), "SWAP");
    c.add2q(0, 1, zz(0.4), "ZZ");
    Circuit out = consolidateTwoQubitBlocks(c);
    EXPECT_EQ(out.twoQubitGateCount(), 1);
    EXPECT_NEAR(traceFidelity(out.ops()[0].unitary(),
                              zz(0.4) * swap()),
                1.0, 1e-12);
}

TEST(Consolidate, AbsorbsInterleavedOneQubitOps)
{
    Circuit c(2);
    c.add2q(0, 1, cz(), "CZ");
    c.add1q(0, hadamard(), "H");
    c.add1q(1, tGate(), "T");
    c.add2q(0, 1, iswap(), "iSWAP");
    Circuit out = consolidateTwoQubitBlocks(c);
    ASSERT_EQ(out.size(), 1u);
    Matrix expected = iswap() *
                      hadamard().kron(tGate()) * cz();
    EXPECT_NEAR(traceFidelity(out.ops()[0].unitary(), expected), 1.0,
                1e-12);
}

TEST(Consolidate, HandlesReversedQubitOrder)
{
    Circuit c(2);
    c.add2q(0, 1, cnot(), "CNOT");
    c.add2q(1, 0, cnot(), "CNOT");
    Circuit out = consolidateTwoQubitBlocks(c);
    ASSERT_EQ(out.twoQubitGateCount(), 1);
    Matrix expected = (swap() * cnot() * swap()) * cnot();
    EXPECT_NEAR(traceFidelity(out.ops()[0].unitary(), expected), 1.0,
                1e-12);
}

TEST(Consolidate, DifferentPairsStaySeparate)
{
    Circuit c(3);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(1, 2, cz(), "CZ");
    c.add2q(0, 1, cz(), "CZ");
    Circuit out = consolidateTwoQubitBlocks(c);
    EXPECT_EQ(out.twoQubitGateCount(), 3);
}

TEST(Consolidate, PreservesCircuitUnitary)
{
    Circuit c(4);
    c.add1q(0, hadamard(), "H");
    c.add2q(0, 2, fsim(0.3, 0.7), "fSim");
    c.add1q(2, tGate(), "T");
    c.add2q(2, 0, swap(), "SWAP");
    c.add2q(1, 3, cz(), "CZ");
    c.add1q(1, pauliX(), "X");
    c.add2q(3, 1, iswap(), "iSWAP");
    c.add2q(0, 1, cnot(), "CNOT");

    Circuit out = consolidateTwoQubitBlocks(c);
    EXPECT_LT(out.size(), c.size());
    EXPECT_NEAR(traceFidelity(out.unitary(), c.unitary()), 1.0, 1e-10);
}

TEST(Consolidate, LoneOneQubitOpsPassThrough)
{
    Circuit c(3);
    c.add1q(0, hadamard(), "H");
    c.add1q(2, tGate(), "T");
    Circuit out = consolidateTwoQubitBlocks(c);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out.oneQubitGateCount(), 2);
}

TEST(Consolidate, TrailingOneQubitAfterBlockIsAbsorbed)
{
    Circuit c(2);
    c.add2q(0, 1, cz(), "CZ");
    c.add1q(0, hadamard(), "H");
    Circuit out = consolidateTwoQubitBlocks(c);
    ASSERT_EQ(out.size(), 1u);
    Matrix expected = hadamard().kron(identity1q()) * cz();
    EXPECT_NEAR(traceFidelity(out.ops()[0].unitary(), expected), 1.0,
                1e-12);
}

TEST(Consolidate, QaoaStyleChainShrinks)
{
    // H layer + ZZ chain + RX layer on a line: each qubit's 1Q ops
    // merge into neighbouring interaction blocks.
    Circuit c(4);
    for (int q = 0; q < 4; ++q)
        c.add1q(q, hadamard(), "H");
    for (int q = 0; q + 1 < 4; ++q)
        c.add2q(q, q + 1, zz(0.7), "ZZ");
    for (int q = 0; q < 4; ++q)
        c.add1q(q, rx(0.9), "RX");
    Circuit out = consolidateTwoQubitBlocks(c);
    EXPECT_EQ(out.twoQubitGateCount(), 3);
    EXPECT_NEAR(traceFidelity(out.unitary(), c.unitary()), 1.0, 1e-10);
}

} // namespace
} // namespace qiset
