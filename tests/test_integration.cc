// Cross-module integration properties tying workloads, simulators and
// metrics together.

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "metrics/metrics.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"
#include "sim/trajectory.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Integration, IdealQvHopNearPorterThomasValue)
{
    // For Haar-random circuits the ideal heavy-output probability
    // approaches (1 + ln 2) / 2 ~ 0.847 (Aaronson-Chen); finite-size
    // 6-qubit instances land nearby.
    Rng rng(41);
    double total = 0.0;
    const int samples = 10;
    for (int s = 0; s < samples; ++s) {
        Circuit qv = makeQuantumVolumeCircuit(6, rng);
        StateVector state(6);
        state.run(qv);
        auto ideal = state.probabilities();
        total += heavyOutputProbability(ideal, ideal);
    }
    double mean = total / samples;
    EXPECT_GT(mean, 0.78);
    EXPECT_LT(mean, 0.92);
}

TEST(Integration, DepolarizedQvHopApproachesHalf)
{
    Rng rng(42);
    Circuit qv = makeQuantumVolumeCircuit(4, rng);
    StateVector state(4);
    state.run(qv);
    auto ideal = state.probabilities();
    std::vector<double> uniform(ideal.size(), 1.0 / ideal.size());
    EXPECT_NEAR(heavyOutputProbability(ideal, uniform), 0.5, 1e-9);
}

TEST(Integration, NoisyQvMetricsDegradeMonotonically)
{
    // More depolarizing noise must not improve HOP.
    Rng rng(43);
    Circuit qv = makeQuantumVolumeCircuit(4, rng);
    StateVector ideal_state(4);
    ideal_state.run(qv);
    auto ideal = ideal_state.probabilities();

    double last_hop = 1.0;
    for (double error : {0.0, 0.01, 0.05, 0.15}) {
        DensityMatrix rho(4);
        for (const auto& op : qv.ops()) {
            rho.applyUnitary(op.unitary(), op.qubits());
            if (error > 0.0)
                rho.applyDepolarizing(error, op.qubits());
        }
        double hop = heavyOutputProbability(ideal, rho.probabilities());
        EXPECT_LE(hop, last_hop + 1e-9) << "error=" << error;
        last_hop = hop;
    }
}

TEST(Integration, TrajectoryReadoutMatchesDensityMatrixReadout)
{
    QubitNoise qn;
    qn.t1_ns = 15e3;
    qn.t2_ns = 12e3;
    qn.readout_p01 = 0.05;
    qn.readout_p10 = 0.08;
    NoiseModel noise(2, qn);

    Circuit c(2);
    Operation h;
    h.qubits = {0};
    h.unitary = hadamard();
    h.duration_ns = 25.0;
    c.add(h);
    Operation cx;
    cx.qubits = {0, 1};
    cx.unitary = cnot();
    cx.error_rate = 0.02;
    cx.duration_ns = 150.0;
    c.add(cx);

    DensityMatrix rho(2);
    rho.runNoisy(c, noise);
    auto exact = noise.applyReadoutError(rho.probabilities());

    TrajectorySimulator sim(noise);
    Rng rng(44);
    auto sampled = sim.averageProbabilities(c, 4000, rng);
    for (size_t i = 0; i < exact.size(); ++i)
        EXPECT_NEAR(sampled[i], exact[i], 0.03);
}

TEST(Integration, QftSuccessRateDropsWithNoise)
{
    Circuit qft = makeQftCircuitOnInput(4, 9);
    StateVector ideal(4);
    ideal.run(qft);

    double last = 1.1;
    for (double error : {0.0, 0.02, 0.08}) {
        DensityMatrix rho(4);
        for (const auto& op : qft.ops()) {
            rho.applyUnitary(op.unitary(), op.qubits());
            if (error > 0.0 && op.isTwoQubit())
                rho.applyDepolarizing(error, op.qubits());
        }
        double success = rho.fidelityWithPure(ideal);
        EXPECT_LT(success, last);
        last = success;
    }
    EXPECT_GT(last, 0.1);
}

TEST(Integration, DecompositionSubstitutionPreservesCircuitOutput)
{
    // Replace every 2Q op of a QAOA circuit by its NuOp-exact SYC
    // decomposition and verify the full-circuit distribution.
    Rng rng(45);
    Circuit app = makeRandomQaoaCircuit(3, rng);

    NuOpOptions opts;
    opts.max_layers = 4;
    opts.exact_threshold = 1.0 - 1e-8;
    NuOpDecomposer nuop(opts);
    HardwareGate syc = makeFixedGate("SYC", sycamore());

    Circuit compiled(3);
    for (const auto& op : app.ops()) {
        if (!op.isTwoQubit()) {
            compiled.add(op);
            continue;
        }
        Decomposition d = nuop.decomposeExact(op.unitary(), syc);
        ASSERT_TRUE(d.meets_threshold);
        TwoQubitTemplate templ(d.layers, syc.unitary);
        auto u3s = templ.u3Matrices(d.params);
        compiled.add1q(op.qubits()[0], u3s[0], "U3");
        compiled.add1q(op.qubits()[1], u3s[1], "U3");
        for (int layer = 0; layer < d.layers; ++layer) {
            compiled.add2q(op.qubits()[0], op.qubits()[1], syc.unitary,
                           "SYC");
            compiled.add1q(op.qubits()[0], u3s[2 * (layer + 1)], "U3");
            compiled.add1q(op.qubits()[1], u3s[2 * (layer + 1) + 1],
                           "U3");
        }
    }

    StateVector a(3), b(3);
    a.run(app);
    b.run(compiled);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-5);
}

TEST(Integration, XedAndXebAgreeOnGlobalDepolarization)
{
    // Under global depolarization both metrics equal the surviving
    // signal fraction.
    Rng rng(46);
    Circuit qv = makeQuantumVolumeCircuit(4, rng);
    StateVector state(4);
    state.run(qv);
    auto ideal = state.probabilities();

    double f = 0.42;
    std::vector<double> mixed(ideal.size());
    for (size_t i = 0; i < ideal.size(); ++i)
        mixed[i] = f * ideal[i] + (1.0 - f) / ideal.size();
    EXPECT_NEAR(crossEntropyDifference(ideal, mixed), f, 1e-9);
    EXPECT_NEAR(linearXebFidelity(ideal, mixed), f, 1e-9);
}

} // namespace
} // namespace qiset
