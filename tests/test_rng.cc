// Tests for the deterministic random number generator.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace qiset {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 8; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int x = rng.uniformInt(0, 3);
        EXPECT_GE(x, 0);
        EXPECT_LE(x, 3);
        saw_lo |= x == 0;
        saw_hi |= x == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect)
{
    Rng rng(5);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(1.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, TruncatedNormalRespectsBounds)
{
    Rng rng(6);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.truncatedNormal(0.0062, 0.0024, 0.0005, 0.03);
        EXPECT_GE(x, 0.0005);
        EXPECT_LE(x, 0.03);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(8);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 12000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.35);
}

TEST(Rng, DiscreteRejectsInvalid)
{
    Rng rng(9);
    EXPECT_THROW(rng.discrete({}), FatalError);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), FatalError);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(10);
    auto perm = rng.permutation(16);
    std::vector<bool> seen(16, false);
    for (int value : perm) {
        ASSERT_GE(value, 0);
        ASSERT_LT(value, 16);
        EXPECT_FALSE(seen[value]);
        seen[value] = true;
    }
}

} // namespace
} // namespace qiset
