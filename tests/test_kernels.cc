// Kernel-tier equivalence suite: every runnable SIMD tier must
// reproduce the scalar reference bit for bit (the contract documented
// in src/qc/kernels.h), across randomized SU(2)/SU(4) inputs and the
// structural-zero shapes of real gates. Also covers the dispatch
// machinery (env resolution, setTier) and the Matrix-level routing.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qc/gates.h"
#include "qc/kernels.h"
#include "qc/linalg.h"
#include "qc/matrix.h"

namespace qiset {
namespace {

/** Bitwise equality, distinguishing +0.0 from -0.0 (memcmp). */
bool
bitEqual(const cplx* a, const cplx* b, size_t count)
{
    return std::memcmp(a, b, count * sizeof(cplx)) == 0;
}

bool
bitEqual(const Matrix& a, const Matrix& b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           bitEqual(a.data(), b.data(), a.size());
}

/** Restores the active dispatch tier on scope exit. */
struct TierGuard
{
    std::string saved;
    TierGuard() : saved(kernels::tierName()) {}
    ~TierGuard() { kernels::setTier(saved.c_str()); }
};

TEST(KernelEquivalence, AllTiersMatchScalarOnRandomUnitaries)
{
    const kernels::KernelOps* scalar = kernels::opsForTier("scalar");
    ASSERT_NE(scalar, nullptr);
    Rng rng(20240808);
    for (const char* tier : kernels::runnableTiers()) {
        const kernels::KernelOps* ops = kernels::opsForTier(tier);
        ASSERT_NE(ops, nullptr) << tier;
        for (int trial = 0; trial < 64; ++trial) {
            Matrix a4 = haarRandomUnitary(4, rng);
            Matrix b4 = haarRandomUnitary(4, rng);
            Matrix a2 = haarRandomUnitary(2, rng);
            Matrix b2 = haarRandomUnitary(2, rng);

            cplx got[16], want[16];
            ops->mul4x4(got, a4.data(), b4.data());
            scalar->mul4x4(want, a4.data(), b4.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier << " mul4x4";

            ops->mul2x2(got, a2.data(), b2.data());
            scalar->mul2x2(want, a2.data(), b2.data());
            EXPECT_TRUE(bitEqual(got, want, 4)) << tier << " mul2x2";

            ops->dagger(got, a4.data(), 4);
            scalar->dagger(want, a4.data(), 4);
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier << " dagger4";

            ops->dagger(got, a2.data(), 2);
            scalar->dagger(want, a2.data(), 2);
            EXPECT_TRUE(bitEqual(got, want, 4)) << tier << " dagger2";

            ops->kron2x2(got, a2.data(), b2.data());
            scalar->kron2x2(want, a2.data(), b2.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier << " kron2x2";

            cplx dot_got = ops->hsDot(a4.data(), b4.data(), 16);
            cplx dot_want = scalar->hsDot(a4.data(), b4.data(), 16);
            EXPECT_TRUE(bitEqual(&dot_got, &dot_want, 1))
                << tier << " hsDot16";

            dot_got = ops->hsDot(a2.data(), b2.data(), 4);
            dot_want = scalar->hsDot(a2.data(), b2.data(), 4);
            EXPECT_TRUE(bitEqual(&dot_got, &dot_want, 1))
                << tier << " hsDot4";
        }
    }
}

TEST(KernelEquivalence, StructuralZeroSkipsMatchScalar)
{
    // Sparse gates (CZ, iSWAP, identity) exercise the structural-zero
    // skip: skipped terms must leave the +0.0 from the zero fill, not
    // a computed signed zero — a bit difference that would leak into
    // quantizedForm cache keys.
    const kernels::KernelOps* scalar = kernels::opsForTier("scalar");
    Rng rng(11);
    Matrix dense4 = haarRandomUnitary(4, rng);
    Matrix dense2 = haarRandomUnitary(2, rng);
    std::vector<Matrix> sparse4 = {gates::cz(), gates::iswap(),
                                   Matrix::identity(4)};
    std::vector<Matrix> sparse2 = {gates::pauliX(), gates::pauliZ(),
                                   Matrix::identity(2)};
    for (const char* tier : kernels::runnableTiers()) {
        const kernels::KernelOps* ops = kernels::opsForTier(tier);
        cplx got[16], want[16];
        for (const Matrix& s : sparse4) {
            ops->mul4x4(got, s.data(), dense4.data());
            scalar->mul4x4(want, s.data(), dense4.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier;
            ops->mul4x4(got, dense4.data(), s.data());
            scalar->mul4x4(want, dense4.data(), s.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier;
        }
        for (const Matrix& s : sparse2) {
            ops->mul2x2(got, s.data(), dense2.data());
            scalar->mul2x2(want, s.data(), dense2.data());
            EXPECT_TRUE(bitEqual(got, want, 4)) << tier;
            ops->kron2x2(got, s.data(), dense2.data());
            scalar->kron2x2(want, s.data(), dense2.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier;
            ops->kron2x2(got, dense2.data(), s.data());
            scalar->kron2x2(want, dense2.data(), s.data());
            EXPECT_TRUE(bitEqual(got, want, 16)) << tier;
        }
    }
}

TEST(KernelDispatch, EnvResolution)
{
    const char* native = kernels::resolveTier(nullptr, nullptr);
    // Force-scalar wins over everything, except when explicitly "0".
    EXPECT_STREQ(kernels::resolveTier(nullptr, "1"), "scalar");
    EXPECT_STREQ(kernels::resolveTier("avx2", "1"), "scalar");
    EXPECT_STREQ(kernels::resolveTier(nullptr, "0"), native);
    // Explicit runnable tier requests are honored.
    EXPECT_STREQ(kernels::resolveTier("scalar", nullptr), "scalar");
    // Unknown or unrunnable tiers fall back to the best native one.
    EXPECT_STREQ(kernels::resolveTier("bogus", nullptr), native);
}

TEST(KernelDispatch, SetTierSwitchesAndRejectsUnknown)
{
    TierGuard guard;
    ASSERT_TRUE(kernels::setTier("scalar"));
    EXPECT_STREQ(kernels::tierName(), "scalar");
    EXPECT_FALSE(kernels::setTier("bogus"));
    EXPECT_STREQ(kernels::tierName(), "scalar"); // unchanged
    for (const char* tier : kernels::runnableTiers()) {
        EXPECT_TRUE(kernels::setTier(tier));
        EXPECT_STREQ(kernels::tierName(), tier);
    }
}

TEST(KernelDispatch, ScalarAlwaysRunnable)
{
    std::vector<const char*> tiers = kernels::runnableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_STREQ(tiers.front(), "scalar");
}

TEST(MatrixRouting, MatrixOpsBitIdenticalAcrossTiers)
{
    // The Matrix entry points (operator*, multiplyInto, dagger, kron,
    // hilbertSchmidt) route through the active tier; whatever tier is
    // selected, results must match the scalar tier bit for bit.
    TierGuard guard;
    Rng rng(77);
    Matrix a4 = haarRandomUnitary(4, rng);
    Matrix b4 = haarRandomUnitary(4, rng);
    Matrix a2 = haarRandomUnitary(2, rng);
    Matrix b2 = haarRandomUnitary(2, rng);

    ASSERT_TRUE(kernels::setTier("scalar"));
    Matrix mul_ref = a4 * b4;
    Matrix dag_ref = a4.dagger();
    Matrix kron_ref = a2.kron(b2);
    cplx hs_ref = hilbertSchmidt(a4, b4);
    Matrix into_ref;
    Matrix::multiplyInto(into_ref, a4, b4);
    Matrix kron_into_ref;
    Matrix::kronInto(kron_into_ref, a2, b2);

    for (const char* tier : kernels::runnableTiers()) {
        ASSERT_TRUE(kernels::setTier(tier));
        EXPECT_TRUE(bitEqual(a4 * b4, mul_ref)) << tier;
        EXPECT_TRUE(bitEqual(a4.dagger(), dag_ref)) << tier;
        EXPECT_TRUE(bitEqual(a2.kron(b2), kron_ref)) << tier;
        cplx hs = hilbertSchmidt(a4, b4);
        EXPECT_TRUE(bitEqual(&hs, &hs_ref, 1)) << tier;
        Matrix into;
        Matrix::multiplyInto(into, a4, b4);
        EXPECT_TRUE(bitEqual(into, into_ref)) << tier;
        Matrix kron_into;
        Matrix::kronInto(kron_into, a2, b2);
        EXPECT_TRUE(bitEqual(kron_into, kron_into_ref)) << tier;
    }
}

TEST(MatrixRouting, GenericShapesUnaffectedByTier)
{
    // Non-hot shapes (8x8 here) use the generic loops regardless of
    // tier; sanity-check the 4x4 kernel path composes with them.
    TierGuard guard;
    Rng rng(99);
    Matrix a = haarRandomUnitary(8, rng);
    Matrix b = haarRandomUnitary(8, rng);
    ASSERT_TRUE(kernels::setTier("scalar"));
    Matrix ref = a * b;
    cplx hs_ref = hilbertSchmidt(a, b);
    for (const char* tier : kernels::runnableTiers()) {
        ASSERT_TRUE(kernels::setTier(tier));
        EXPECT_TRUE(bitEqual(a * b, ref)) << tier;
        cplx hs = hilbertSchmidt(a, b);
        EXPECT_TRUE(bitEqual(&hs, &hs_ref, 1)) << tier;
    }
}

} // namespace
} // namespace qiset
