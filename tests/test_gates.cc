// Gate-library tests: unitarity across parameter sweeps and the gate
// identities Table I / Table II rely on.

#include <cmath>

#include <gtest/gtest.h>

#include "qc/gates.h"
#include "qc/matrix.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Gates, PauliAlgebra)
{
    Matrix xy = pauliX() * pauliY();
    Matrix iz = pauliZ() * cplx(0.0, 1.0);
    EXPECT_LT(xy.maxAbsDiff(iz), 1e-12);
    EXPECT_LT((pauliX() * pauliX()).maxAbsDiff(identity1q()), 1e-12);
    EXPECT_LT((hadamard() * hadamard()).maxAbsDiff(identity1q()), 1e-12);
}

TEST(Gates, SAndTGates)
{
    EXPECT_LT((sGate() * sGate()).maxAbsDiff(pauliZ()), 1e-12);
    EXPECT_LT((tGate() * tGate()).maxAbsDiff(sGate()), 1e-12);
}

TEST(Gates, U3ReproducesNamedGates)
{
    // U3(pi/2, 0, pi) is the Hadamard up to global phase.
    EXPECT_NEAR(traceFidelity(u3(kPi / 2.0, 0.0, kPi), hadamard()), 1.0,
                1e-12);
    // U3(pi, 0, pi) is X.
    EXPECT_NEAR(traceFidelity(u3(kPi, 0.0, kPi), pauliX()), 1.0, 1e-12);
    // U3(0, 0, 0) is the identity.
    EXPECT_LT(u3(0.0, 0.0, 0.0).maxAbsDiff(identity1q()), 1e-12);
}

class RotationUnitarityTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RotationUnitarityTest, RotationsAreUnitary)
{
    double angle = GetParam();
    EXPECT_TRUE(rx(angle).isUnitary());
    EXPECT_TRUE(ry(angle).isUnitary());
    EXPECT_TRUE(rz(angle).isUnitary());
    EXPECT_TRUE(u3(angle, 0.7, 1.9).isUnitary());
    EXPECT_TRUE(xy(angle).isUnitary());
    EXPECT_TRUE(cphase(angle).isUnitary());
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationUnitarityTest,
                         ::testing::Values(0.0, 0.3, kPi / 2, kPi, 2.5,
                                           2 * kPi));

class FsimUnitarityTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(FsimUnitarityTest, FsimIsUnitary)
{
    auto [theta, phi] = GetParam();
    EXPECT_TRUE(fsim(theta, phi).isUnitary());
}

INSTANTIATE_TEST_SUITE_P(
    Angles, FsimUnitarityTest,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{kPi / 2, kPi / 6},
                      std::pair{kPi / 4, 0.0}, std::pair{1.1, 2.2},
                      std::pair{kPi, kPi}));

TEST(Gates, TableOneIdentities)
{
    // CZ == fSim(0, pi).
    EXPECT_LT(cz().maxAbsDiff(fsim(0.0, kPi)), 1e-12);
    // iSWAP == fSim(pi/2, 0).
    EXPECT_LT(iswap().maxAbsDiff(fsim(kPi / 2.0, 0.0)), 1e-12);
    // sqrt(iSWAP) squared is iSWAP.
    EXPECT_LT((sqrtIswap() * sqrtIswap()).maxAbsDiff(iswap()), 1e-12);
    // SYC == fSim(pi/2, pi/6).
    EXPECT_LT(sycamore().maxAbsDiff(fsim(kPi / 2.0, kPi / 6.0)), 1e-12);
}

TEST(Gates, CzIsDiagonalWithMinusOne)
{
    Matrix c = cz();
    EXPECT_EQ(c(0, 0), cplx(1.0));
    EXPECT_EQ(c(1, 1), cplx(1.0));
    EXPECT_EQ(c(2, 2), cplx(1.0));
    EXPECT_NEAR(std::abs(c(3, 3) - cplx(-1.0)), 0.0, 1e-12);
}

TEST(Gates, XyRelatesToFsimUpToLocalPhases)
{
    // XY(theta) and fSim(theta/2, 0) differ only in the sign of the
    // sin terms, i.e. by single-qubit Z rotations; their interaction
    // strength matches.
    Matrix a = xy(1.2);
    Matrix b = fsim(0.6, 0.0);
    EXPECT_NEAR(std::abs(a(1, 1)), std::abs(b(1, 1)), 1e-12);
    EXPECT_NEAR(std::abs(a(1, 2)), std::abs(b(1, 2)), 1e-12);
}

TEST(Gates, SwapPermutesBasis)
{
    Matrix s = swap();
    EXPECT_EQ(s(1, 2), cplx(1.0));
    EXPECT_EQ(s(2, 1), cplx(1.0));
    EXPECT_LT((s * s).maxAbsDiff(Matrix::identity(4)), 1e-12);
}

TEST(Gates, CnotMapsBasisStates)
{
    Matrix c = cnot();
    // |10> -> |11>.
    EXPECT_EQ(c(3, 2), cplx(1.0));
    // |11> -> |10>.
    EXPECT_EQ(c(2, 3), cplx(1.0));
}

TEST(Gates, ZzIsDiagonalInteraction)
{
    double beta = 0.0303;
    Matrix m = zz(beta);
    EXPECT_NEAR(std::arg(m(0, 0)), -beta, 1e-12);
    EXPECT_NEAR(std::arg(m(1, 1)), beta, 1e-12);
    EXPECT_NEAR(std::arg(m(3, 3)), -beta, 1e-12);
    EXPECT_TRUE(m.isUnitary());
}

TEST(Gates, ZzIdentityAtZeroAngle)
{
    EXPECT_LT(zz(0.0).maxAbsDiff(Matrix::identity(4)), 1e-12);
}

TEST(Gates, XxPlusYyEqualsFsimTheta)
{
    EXPECT_LT(xxPlusYy(0.8).maxAbsDiff(fsim(0.8, 0.0)), 1e-12);
}

TEST(Gates, FsimComposition)
{
    // fSim(a, b) * fSim(c, d) == fSim(a+c, b+d): the family is a
    // two-parameter abelian group.
    Matrix lhs = fsim(0.3, 0.5) * fsim(0.4, 0.1);
    Matrix rhs = fsim(0.7, 0.6);
    EXPECT_LT(lhs.maxAbsDiff(rhs), 1e-12);
}

} // namespace
} // namespace qiset
