// Online cost models: streaming least-squares recovery of a known
// linear law, min-sample gating, hit-ratio clamping, per-pass fits —
// and the planner contract: with use_cost_model off (or a cold/null
// model) the shard plan is bit-identical to the static proxy, while a
// warmed-up model shifts predicted durations without touching the
// fidelity ranking.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "compiler/service.h"
#include "metrics/cost_model.h"

namespace qiset {
namespace {

using Features = CompileCostModel::Features;

Features
feat(double ops, double two_q, double depth)
{
    Features f;
    f.ops = ops;
    f.two_q = two_q;
    f.depth = depth;
    return f;
}

/** A varied, non-collinear feature sweep. */
std::vector<Features>
sweep(int n)
{
    std::vector<Features> out;
    for (int i = 0; i < n; ++i)
        out.push_back(feat(10.0 + 3.0 * i, 2.0 + (i * 5) % 7,
                           4.0 + (i * 3) % 5));
    return out;
}

// ------------------------------------------------------------- the fit

TEST(CostModel, RecoversLinearCompileTime)
{
    CompileCostModel model;
    auto law = [](const Features& f) {
        return 2.0 + 0.5 * f.ops + 3.0 * f.two_q + 0.1 * f.depth;
    };
    for (const Features& f : sweep(40))
        model.observeCompile(f, law(f), 0, 0);

    EXPECT_EQ(model.samples(), 40u);
    Features probe = feat(55.0, 6.0, 9.0);
    double ms = 0.0;
    ASSERT_TRUE(model.predictCompileMs(probe, &ms));
    EXPECT_NEAR(ms, law(probe), 0.05 * law(probe));
}

TEST(CostModel, GatesOnMinSamples)
{
    CompileCostModel model;
    double ms = 0.0;
    EXPECT_FALSE(model.predictCompileMs(feat(10, 2, 4), &ms));
    std::vector<Features> features = sweep(10);
    for (size_t i = 0; i < features.size(); ++i) {
        model.observeCompile(features[i], 1.0 + i, 0, 0);
        if (i + 1 < CompileCostModel::kFeatures) {
            EXPECT_FALSE(model.predictCompileMs(features[0], &ms));
        }
    }
    // Default gate satisfied, but a caller can demand more history.
    EXPECT_TRUE(model.predictCompileMs(features[0], &ms));
    EXPECT_FALSE(model.predictCompileMs(features[0], &ms, 64));
    EXPECT_TRUE(model.predictCompileMs(features[0], &ms, 10));
}

TEST(CostModel, PredictionsNeverNegative)
{
    CompileCostModel model;
    // Steep slope + large intercept offset: extrapolating to a tiny
    // circuit would dip below zero without the clamp.
    for (const Features& f : sweep(20))
        model.observeCompile(f, 10.0 * f.ops - 200.0, 0, 0);
    double ms = -1.0;
    ASSERT_TRUE(model.predictCompileMs(feat(0.0, 0.0, 0.0), &ms));
    EXPECT_GE(ms, 0.0);
}

TEST(CostModel, HitRatioClampedToUnitInterval)
{
    CompileCostModel model;
    for (const Features& f : sweep(20))
        model.observeCompile(f, 1.0, 95, 5);
    double ratio = -1.0;
    ASSERT_TRUE(model.predictHitRatio(feat(200.0, 20.0, 30.0), &ratio));
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);

    // No lookups observed -> no hit-ratio model.
    CompileCostModel dry;
    for (const Features& f : sweep(20))
        dry.observeCompile(f, 1.0, 0, 0);
    EXPECT_FALSE(dry.predictHitRatio(feat(10, 2, 4), &ratio));
}

TEST(CostModel, PerPassFitsAreIndependent)
{
    CompileCostModel model;
    for (const Features& f : sweep(30)) {
        model.observePass("routing", f, 0.2 * f.two_q);
        model.observePass("translation", f, 1.0 + 0.1 * f.ops);
    }
    double ms = 0.0;
    Features probe = feat(40.0, 5.0, 8.0);
    ASSERT_TRUE(model.predictPassMs("routing", probe, &ms));
    EXPECT_NEAR(ms, 0.2 * probe.two_q, 0.1);
    ASSERT_TRUE(model.predictPassMs("translation", probe, &ms));
    EXPECT_NEAR(ms, 1.0 + 0.1 * probe.ops, 0.25);
    EXPECT_FALSE(model.predictPassMs("mapping", probe, &ms));
    std::vector<std::string> names = model.passNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "routing");
    EXPECT_EQ(names[1], "translation");
}

// ------------------------------------------------------- planner wiring

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

DeviceFleet
twoShardFleet()
{
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.990));
    return fleet;
}

std::vector<Circuit>
makeWorkload(int circuits, int qubits, uint64_t seed = 901)
{
    std::vector<Circuit> apps;
    Rng rng(seed);
    for (int i = 0; i < circuits; ++i)
        apps.push_back(i % 2 == 0 ? makeQftCircuit(qubits)
                                  : makeRandomQaoaCircuit(qubits, rng));
    return apps;
}

void
expectSamePlan(const ShardPlan& a, const ShardPlan& b)
{
    ASSERT_EQ(a.assignments.size(), b.assignments.size());
    for (size_t i = 0; i < a.assignments.size(); ++i) {
        EXPECT_EQ(a.assignments[i].shard, b.assignments[i].shard);
        EXPECT_DOUBLE_EQ(a.assignments[i].predicted_fidelity,
                         b.assignments[i].predicted_fidelity);
        EXPECT_DOUBLE_EQ(a.assignments[i].predicted_duration_ns,
                         b.assignments[i].predicted_duration_ns);
    }
    ASSERT_EQ(a.queues, b.queues);
    ASSERT_EQ(a.queue_ns.size(), b.queue_ns.size());
    for (size_t s = 0; s < a.queue_ns.size(); ++s)
        EXPECT_DOUBLE_EQ(a.queue_ns[s], b.queue_ns[s]);
}

TEST(CostModelPlanner, KnobOffOrColdModelPlansIdentically)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    std::vector<Circuit> apps = makeWorkload(6, 3);

    ShardPlannerOptions off;
    ShardPlan baseline = planShardAssignments(apps, fleet, set, off);

    // Knob on, no model: identical.
    ShardPlannerOptions on = off;
    on.use_cost_model = true;
    expectSamePlan(baseline,
                   planShardAssignments(apps, fleet, set, on, {}));

    // Knob on, cold model (below min_samples): identical.
    CompileCostModel cold;
    cold.observeCompile(feat(10, 2, 4), 1.0, 0, 0);
    expectSamePlan(baseline, planShardAssignments(apps, fleet, set, on,
                                                  {}, &cold));

    // Knob off, warm model: still identical (never consulted).
    CompileCostModel warm;
    for (const Features& f : sweep(32))
        warm.observeCompile(f, 5.0 + 0.1 * f.ops, 0, 0);
    expectSamePlan(baseline, planShardAssignments(apps, fleet, set, off,
                                                  {}, &warm));
}

TEST(CostModelPlanner, WarmModelShiftsDurationsNotFidelity)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    std::vector<Circuit> apps = makeWorkload(6, 3);

    ShardPlan baseline = planShardAssignments(apps, fleet, set);

    CompileCostModel warm;
    for (const Features& f : sweep(32))
        warm.observeCompile(f, 50.0 + 2.0 * f.ops, 0, 0);

    ShardPlannerOptions on;
    on.use_cost_model = true;
    on.cost_model_min_samples = 16;
    ShardPlan steered =
        planShardAssignments(apps, fleet, set, on, {}, &warm);

    ASSERT_EQ(steered.assignments.size(), baseline.assignments.size());
    for (size_t i = 0; i < steered.assignments.size(); ++i) {
        // The model adds a strictly positive per-circuit term...
        EXPECT_GT(steered.assignments[i].predicted_duration_ns,
                  baseline.assignments[i].predicted_duration_ns);
        // ...and never perturbs the fidelity estimate of a placement.
        double ms = 0.0;
        ASSERT_TRUE(warm.predictCompileMs(
            steered.assignments[i].features, &ms, 16));
        EXPECT_GT(ms, 0.0);
    }

    // Features are captured at plan time, with or without a model.
    for (size_t i = 0; i < baseline.assignments.size(); ++i) {
        EXPECT_EQ(baseline.assignments[i].features.ops,
                  static_cast<double>(apps[i].size()));
        EXPECT_EQ(baseline.assignments[i].features.two_q,
                  static_cast<double>(apps[i].twoQubitGateCount()));
        EXPECT_GT(baseline.assignments[i].features.depth, 0.0);
    }
}

TEST(CostModelPlanner, ServiceFeedsModelAndStaysBitIdentical)
{
    GateSet set = isa::rigettiSet(1);
    std::vector<Circuit> apps = makeWorkload(4, 3);

    // Reference: model-free service.
    std::vector<CompileResult> reference;
    {
        CompileService service(twoShardFleet(), set);
        reference = service.submit(CompileRequest{apps}).takeResults();
    }

    // Borrowed model, knob off: observes without steering — results
    // bit-identical, one observation per compile.
    CompileCostModel model;
    CompileServiceOptions options;
    options.cost_model = &model;
    CompileService service(twoShardFleet(), set, options);
    EXPECT_EQ(service.costModel(), &model);
    std::vector<CompileResult> observed =
        service.submit(CompileRequest{apps}).takeResults();
    EXPECT_EQ(model.samples(), apps.size());
    EXPECT_FALSE(model.passNames().empty());

    ASSERT_EQ(observed.size(), reference.size());
    for (size_t i = 0; i < observed.size(); ++i) {
        EXPECT_EQ(observed[i].swaps_inserted,
                  reference[i].swaps_inserted);
        EXPECT_DOUBLE_EQ(observed[i].estimated_fidelity,
                         reference[i].estimated_fidelity);
    }

    // Planner knob without a borrowed model: the service owns one.
    CompileServiceOptions owning;
    owning.planner.use_cost_model = true;
    CompileService owner(twoShardFleet(), set, owning);
    ASSERT_NE(owner.costModel(), nullptr);
    owner.submit(CompileRequest{apps}).wait();
    EXPECT_EQ(owner.costModel()->samples(), apps.size());
}

} // namespace
} // namespace qiset
