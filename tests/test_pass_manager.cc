// Pass-manager core tests: registration, ordering, context metrics
// and equivalence of the compileCircuit wrapper with a manual run.

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "common/error.h"
#include "compiler/pipeline.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(int n)
{
    Device d("line", Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", 0.995);
        d.setEdgeFidelity(a, b, "S4", 0.99);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

/** Test pass recording its execution into a shared log. */
class RecordingPass : public Pass
{
  public:
    RecordingPass(std::string name, std::vector<std::string>* log)
        : name_(std::move(name)), log_(log)
    {
    }

    std::string name() const override { return name_; }

    void run(CompilationContext& ctx) override
    {
        log_->push_back(name_);
        ctx.reportCounter("ran", 1.0);
    }

  private:
    std::string name_;
    std::vector<std::string>* log_;
};

TEST(PassManager, DefaultPipelineOrder)
{
    CompileOptions opts;
    PassManager manager = defaultPipeline(opts);
    std::vector<std::string> expected = {"mapping", "routing",
                                         "consolidation", "translation",
                                         "scheduling",
                                         "noise-annotation"};
    EXPECT_EQ(manager.passNames(), expected);
}

TEST(PassManager, DefaultPipelineRespectsOptions)
{
    CompileOptions opts;
    opts.consolidate = false;
    opts.crosstalk_inflation = 2.0;
    PassManager manager = defaultPipeline(opts);
    std::vector<std::string> expected = {"mapping", "routing",
                                         "translation", "scheduling",
                                         "crosstalk",
                                         "noise-annotation"};
    EXPECT_EQ(manager.passNames(), expected);
}

TEST(PassManager, RegistrationAndOrdering)
{
    std::vector<std::string> log;
    PassManager manager;
    manager.append(std::make_unique<RecordingPass>("a", &log));
    manager.append(std::make_unique<RecordingPass>("c", &log));
    EXPECT_TRUE(manager.insertBefore(
        "c", std::make_unique<RecordingPass>("b", &log)));
    EXPECT_TRUE(manager.insertAfter(
        "c", std::make_unique<RecordingPass>("d", &log)));
    EXPECT_FALSE(manager.insertBefore(
        "missing", std::make_unique<RecordingPass>("x", &log)));
    EXPECT_TRUE(manager.contains("b"));
    EXPECT_FALSE(manager.contains("x"));
    EXPECT_EQ(manager.size(), 4u);

    EXPECT_TRUE(manager.remove("a"));
    EXPECT_FALSE(manager.remove("a"));
    std::vector<std::string> expected = {"b", "c", "d"};
    EXPECT_EQ(manager.passNames(), expected);

    Device d = lineDevice(2);
    Circuit app(2);
    ProfileCache cache;
    CompileOptions opts;
    CompilationContext ctx(app, d, isa::rigettiSet(1), opts, cache);
    manager.run(ctx);
    EXPECT_EQ(log, expected);

    // One timed metric record per executed pass, in order, with the
    // counter each pass reported.
    ASSERT_EQ(ctx.pass_metrics.size(), 3u);
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(ctx.pass_metrics[i].pass, expected[i]);
        EXPECT_GE(ctx.pass_metrics[i].wall_ms, 0.0);
        EXPECT_EQ(ctx.pass_metrics[i].counters.at("ran"), 1.0);
    }
}

TEST(PassManager, CompileResultCarriesPassMetrics)
{
    Device d = lineDevice(3);
    Rng rng(42);
    Circuit app = makeRandomQaoaCircuit(3, rng);
    ProfileCache cache;
    CompileResult result =
        compileCircuit(app, d, isa::rigettiSet(1), cache, fastCompile());

    ASSERT_EQ(result.pass_metrics.size(), 6u);
    EXPECT_EQ(result.pass_metrics.front().pass, "mapping");
    EXPECT_EQ(result.pass_metrics.back().pass, "noise-annotation");
    EXPECT_EQ(result.pass_metrics[0].counters.at("physical_qubits"), 3.0);

    const PassMetric* translation = nullptr;
    for (const auto& metric : result.pass_metrics)
        if (metric.pass == "translation")
            translation = &metric;
    ASSERT_NE(translation, nullptr);
    EXPECT_EQ(translation->counters.at("two_qubit_count"),
              static_cast<double>(result.two_qubit_count));
    // A cold cache means every profile was computed here.
    EXPECT_GT(translation->counters.at("cache_misses"), 0.0);
    EXPECT_GT(totalWallMs(result.pass_metrics), 0.0);
}

TEST(PassManager, WrapperMatchesManualPipeline)
{
    Device d = lineDevice(3);
    Rng rng(43);
    Circuit app = makeRandomQaoaCircuit(3, rng);
    CompileOptions opts = fastCompile();

    ProfileCache cache_a;
    CompileResult via_wrapper =
        compileCircuit(app, d, isa::rigettiSet(1), cache_a, opts);

    ProfileCache cache_b;
    CompilationContext ctx(app, d, isa::rigettiSet(1), opts, cache_b);
    defaultPipeline(opts).run(ctx);
    CompileResult manual = ctx.takeResult();

    EXPECT_EQ(via_wrapper.physical, manual.physical);
    EXPECT_EQ(via_wrapper.final_positions, manual.final_positions);
    EXPECT_EQ(via_wrapper.two_qubit_count, manual.two_qubit_count);
    EXPECT_EQ(via_wrapper.type_usage, manual.type_usage);
    EXPECT_DOUBLE_EQ(via_wrapper.estimated_fidelity,
                     manual.estimated_fidelity);
    ASSERT_EQ(via_wrapper.circuit.size(), manual.circuit.size());
    for (size_t i = 0; i < via_wrapper.circuit.size(); ++i) {
        ConstOpRef a = via_wrapper.circuit.ops()[i];
        ConstOpRef b = manual.circuit.ops()[i];
        EXPECT_EQ(a.qubits(), b.qubits());
        EXPECT_EQ(a.labelId(), b.labelId());
        EXPECT_EQ(a.unitary().maxAbsDiff(b.unitary()), 0.0);
    }
}

TEST(PassManager, RoutingWithoutMappingThrows)
{
    PassManager manager;
    manager.append(makeRoutingPass());
    Device d = lineDevice(2);
    Circuit app(2);
    app.add2q(0, 1, Matrix::identity(4), "block");
    ProfileCache cache;
    CompileOptions opts;
    CompilationContext ctx(app, d, isa::rigettiSet(1), opts, cache);
    EXPECT_THROW(manager.run(ctx), FatalError);
}

TEST(PassManager, CrosstalkPassRunsWhenEnabled)
{
    Device d = lineDevice(4);
    Rng rng(44);
    // Two disjoint ZZ pairs scheduled in the same moment on adjacent
    // couplers of a line: the crosstalk model must inflate them.
    Circuit app = makeQaoaCircuit(4, {{0, 1}, {2, 3}}, rng);
    CompileOptions opts = fastCompile();
    opts.crosstalk_inflation = 3.0;
    ProfileCache cache;
    CompileResult result =
        compileCircuit(app, d, isa::rigettiSet(1), cache, opts);

    bool saw_crosstalk = false;
    for (const auto& metric : result.pass_metrics)
        if (metric.pass == "crosstalk")
            saw_crosstalk = true;
    EXPECT_TRUE(saw_crosstalk);
    EXPECT_GE(result.crosstalk_inflated, 0);

    // Baseline options never register the pass.
    ProfileCache cache2;
    CompileResult baseline =
        compileCircuit(app, d, isa::rigettiSet(1), cache2, fastCompile());
    for (const auto& metric : baseline.pass_metrics)
        EXPECT_NE(metric.pass, "crosstalk");
}

} // namespace
} // namespace qiset
