// Crosstalk inflation pass tests.

#include <gtest/gtest.h>

#include "circuit/schedule.h"
#include "common/error.h"
#include "compiler/crosstalk.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

Operation
noisy2q(int a, int b, double error)
{
    Operation op;
    op.qubits = {a, b};
    op.unitary = cz();
    op.label = "CZ";
    op.error_rate = error;
    return op;
}

TEST(Crosstalk, ParallelAdjacentCouplersInflate)
{
    // Line 0-1-2-3: gates on (0,1) and (2,3) run in the same moment
    // and couplers (0,1)/(2,3) touch via the (1,2) edge.
    Circuit c(4);
    c.add(noisy2q(0, 1, 0.01));
    c.add(noisy2q(2, 3, 0.01));
    Topology line = Topology::line(4);
    int inflated =
        applyCrosstalkInflation(c, {0, 1, 2, 3}, line, 2.0);
    EXPECT_EQ(inflated, 2);
    EXPECT_NEAR(c.ops()[0].errorRate(), 0.02, 1e-12);
    EXPECT_NEAR(c.ops()[1].errorRate(), 0.02, 1e-12);
}

TEST(Crosstalk, SequentialGatesDoNotInflate)
{
    // Same couplers but forced into different moments by a shared
    // qubit chain.
    Circuit c(4);
    c.add(noisy2q(0, 1, 0.01));
    c.add(noisy2q(1, 2, 0.01));
    c.add(noisy2q(2, 3, 0.01));
    Topology line = Topology::line(4);
    int inflated =
        applyCrosstalkInflation(c, {0, 1, 2, 3}, line, 2.0);
    EXPECT_EQ(inflated, 0);
    for (const auto& op : c.ops())
        EXPECT_NEAR(op.errorRate(), 0.01, 1e-12);
}

TEST(Crosstalk, DistantParallelGatesUnaffected)
{
    // On a long line, (0,1) and (4,5) are not adjacent couplers.
    Circuit c(6);
    c.add(noisy2q(0, 1, 0.01));
    c.add(noisy2q(4, 5, 0.01));
    Topology line = Topology::line(6);
    int inflated =
        applyCrosstalkInflation(c, {0, 1, 2, 3, 4, 5}, line, 3.0);
    EXPECT_EQ(inflated, 0);
}

TEST(Crosstalk, PhysicalMappingDecidesAdjacency)
{
    // Register-adjacent but physically distant: no inflation.
    Circuit c(4);
    c.add(noisy2q(0, 1, 0.01));
    c.add(noisy2q(2, 3, 0.01));
    Topology line = Topology::line(10);
    int inflated =
        applyCrosstalkInflation(c, {0, 1, 8, 9}, line, 2.0);
    EXPECT_EQ(inflated, 0);
}

TEST(Crosstalk, OneQubitOpsIgnored)
{
    Circuit c(2);
    Operation op;
    op.qubits = {0};
    op.unitary = hadamard();
    op.error_rate = 0.01;
    c.add(op);
    c.add(noisy2q(0, 1, 0.01));
    int inflated = applyCrosstalkInflation(c, {0, 1},
                                           Topology::line(2), 2.0);
    EXPECT_EQ(inflated, 0);
}

TEST(Crosstalk, RejectsInvalidInflation)
{
    Circuit c(2);
    c.add(noisy2q(0, 1, 0.01));
    EXPECT_THROW(
        applyCrosstalkInflation(c, {0, 1}, Topology::line(2), 0.5),
        FatalError);
}

TEST(Crosstalk, SharedScheduleMatchesInternalScheduling)
{
    // The pipeline hands the pass a shared Schedule; results must be
    // bit-identical to the convenience overload that schedules
    // internally (the pre-refactor behavior).
    auto build = [] {
        Circuit c(6);
        c.add(noisy2q(0, 1, 0.01));
        c.add(noisy2q(2, 3, 0.02));
        c.add(noisy2q(4, 5, 0.03));
        c.add(noisy2q(1, 2, 0.04));
        c.add(noisy2q(3, 4, 0.05));
        return c;
    };
    Topology line = Topology::line(6);
    std::vector<int> physical = {0, 1, 2, 3, 4, 5};

    Circuit internally_scheduled = build();
    int count_a = applyCrosstalkInflation(internally_scheduled,
                                          physical, line, 2.5);

    Circuit shared_schedule = build();
    Schedule schedule(shared_schedule);
    int count_b = applyCrosstalkInflation(shared_schedule, schedule,
                                          physical, line, 2.5);

    EXPECT_EQ(count_a, count_b);
    ASSERT_EQ(internally_scheduled.size(), shared_schedule.size());
    for (size_t i = 0; i < internally_scheduled.size(); ++i)
        EXPECT_EQ(internally_scheduled.ops()[i].errorRate(),
                  shared_schedule.ops()[i].errorRate())
            << "op " << i;
    // Error-rate edits keep the shared schedule reusable.
    EXPECT_TRUE(schedule.consistentWith(shared_schedule));
}

TEST(Crosstalk, RejectsStaleSchedule)
{
    Circuit c(2);
    c.add(noisy2q(0, 1, 0.01));
    Schedule schedule(c);
    c.add(noisy2q(0, 1, 0.01)); // structural edit: schedule is stale
    EXPECT_THROW(applyCrosstalkInflation(c, schedule, {0, 1},
                                         Topology::line(2), 2.0),
                 FatalError);
}

} // namespace
} // namespace qiset
