// BFGS optimizer tests on standard problems.

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "nuop/bfgs.h"

namespace qiset {
namespace {

TEST(Bfgs, MinimizesConvexQuadratic)
{
    // f(x) = (x0 - 1)^2 + 10 (x1 + 2)^2
    auto f = [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) +
               10.0 * (x[1] + 2.0) * (x[1] + 2.0);
    };
    BfgsResult r = minimizeBfgs(f, {0.0, 0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], -2.0, 1e-5);
    EXPECT_LT(r.value, 1e-9);
}

TEST(Bfgs, SolvesRosenbrock)
{
    auto f = [](const std::vector<double>& x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    BfgsOptions opts;
    opts.max_iterations = 2000;
    BfgsResult r = minimizeBfgs(f, {-1.2, 1.0}, opts);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Bfgs, HandlesTrigLandscape)
{
    // Smooth periodic objective similar to gate-fidelity landscapes.
    auto f = [](const std::vector<double>& x) {
        return 2.0 - std::cos(x[0]) - std::cos(x[1] - 0.5);
    };
    BfgsResult r = minimizeBfgs(f, {0.4, 0.1});
    EXPECT_LT(r.value, 1e-8);
}

TEST(Bfgs, StopBelowShortCircuits)
{
    int evals = 0;
    auto f = [&](const std::vector<double>& x) {
        ++evals;
        return x[0] * x[0];
    };
    BfgsOptions opts;
    opts.stop_below = 1e-2;
    BfgsResult r = minimizeBfgs(f, {0.05}, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 1);
}

TEST(Bfgs, EmptyInputThrows)
{
    auto f = [](const std::vector<double>&) { return 0.0; };
    EXPECT_THROW(minimizeBfgs(f, {}), FatalError);
}

TEST(Bfgs, HighDimensionalQuadratic)
{
    // Dimensions comparable to a 5-layer NuOp template (36 angles).
    const size_t n = 36;
    auto f = [](const std::vector<double>& x) {
        double sum = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            double d = x[i] - 0.1 * static_cast<double>(i);
            sum += (1.0 + 0.1 * i) * d * d;
        }
        return sum;
    };
    std::vector<double> x0(n, 1.0);
    BfgsOptions opts;
    opts.max_iterations = 500;
    BfgsResult r = minimizeBfgs(f, x0, opts);
    EXPECT_LT(r.value, 1e-8);
}

TEST(NumericalGradient, MatchesAnalyticGradient)
{
    auto f = [](const std::vector<double>& x) {
        return std::sin(x[0]) * std::exp(x[1]);
    };
    std::vector<double> x = {0.7, -0.3};
    auto g = numericalGradient(f, x);
    EXPECT_NEAR(g[0], std::cos(0.7) * std::exp(-0.3), 1e-6);
    EXPECT_NEAR(g[1], std::sin(0.7) * std::exp(-0.3), 1e-6);
}

TEST(Bfgs, ReportsIterationCount)
{
    auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
    BfgsResult r = minimizeBfgs(f, {2.0});
    EXPECT_GE(r.iterations, 1);
    EXPECT_TRUE(r.converged);
}

} // namespace
} // namespace qiset
