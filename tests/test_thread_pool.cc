// Tests for the worker pool used by the figure benches.

#include <atomic>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace qiset {
namespace {

TEST(ThreadPool, RunsAllSubmittedJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsIdempotent)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversIndexSpace)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool called = false;
    parallelFor(pool, 0, [&](size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    for (int batch = 0; batch < 3; ++batch) {
        parallelFor(pool, 50, [&](size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
    }
    EXPECT_EQ(sum.load(), 3 * (49 * 50 / 2));
}

TEST(ThreadPool, DefaultSizeIsPositive)
{
    ThreadPool pool;
    EXPECT_GT(pool.size(), 0u);
}

} // namespace
} // namespace qiset
