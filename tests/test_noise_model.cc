// Noise-channel tests: Kraus completeness, depolarizing behaviour,
// T1/T2 relaxation and readout confusion.

#include <gtest/gtest.h>

#include "common/error.h"
#include "qc/gates.h"
#include "sim/noise_model.h"

namespace qiset {
namespace {

/** Check sum_k K^dagger K == I (trace preservation). */
void
expectCompleteness(const std::vector<Matrix>& kraus, size_t dim)
{
    Matrix sum(dim, dim);
    for (const auto& k : kraus)
        sum += k.dagger() * k;
    EXPECT_LT(sum.maxAbsDiff(Matrix::identity(dim)), 1e-10);
}

class DepolarizingCompleteness : public ::testing::TestWithParam<double>
{
};

TEST_P(DepolarizingCompleteness, OneQubit)
{
    expectCompleteness(NoiseModel::depolarizingKraus1q(GetParam()), 2);
}

TEST_P(DepolarizingCompleteness, TwoQubit)
{
    expectCompleteness(NoiseModel::depolarizingKraus2q(GetParam()), 4);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DepolarizingCompleteness,
                         ::testing::Values(0.0, 0.0062, 0.05, 0.3, 1.0));

TEST(Depolarizing, RejectsInvalidProbability)
{
    EXPECT_THROW(NoiseModel::depolarizingKraus1q(-0.1), FatalError);
    EXPECT_THROW(NoiseModel::depolarizingKraus2q(1.1), FatalError);
}

TEST(Depolarizing, TwoQubitHasSixteenOperators)
{
    EXPECT_EQ(NoiseModel::depolarizingKraus2q(0.01).size(), 16u);
}

class ThermalCompleteness : public ::testing::TestWithParam<double>
{
};

TEST_P(ThermalCompleteness, KrausComplete)
{
    expectCompleteness(NoiseModel::thermalKraus(15e3, 12e3, GetParam()),
                       2);
}

INSTANTIATE_TEST_SUITE_P(Durations, ThermalCompleteness,
                         ::testing::Values(0.0, 25.0, 200.0, 5e3, 60e3));

TEST(Thermal, RejectsUnphysicalT2)
{
    EXPECT_THROW(NoiseModel::thermalKraus(10e3, 30e3, 100.0), FatalError);
}

TEST(Thermal, ZeroDurationIsIdentity)
{
    auto kraus = NoiseModel::thermalKraus(15e3, 15e3, 0.0);
    ASSERT_EQ(kraus.size(), 1u);
    EXPECT_LT(kraus[0].maxAbsDiff(Matrix::identity(2)), 1e-12);
}

TEST(Readout, FlipsDistribution)
{
    QubitNoise qn;
    qn.readout_p01 = 0.1;
    qn.readout_p10 = 0.2;
    NoiseModel model(1, qn);
    // Perfect |0>: expect 10% leakage into "1".
    auto probs = model.applyReadoutError({1.0, 0.0});
    EXPECT_NEAR(probs[0], 0.9, 1e-12);
    EXPECT_NEAR(probs[1], 0.1, 1e-12);
    // Perfect |1>: expect 20% leakage into "0".
    probs = model.applyReadoutError({0.0, 1.0});
    EXPECT_NEAR(probs[0], 0.2, 1e-12);
    EXPECT_NEAR(probs[1], 0.8, 1e-12);
}

TEST(Readout, PreservesTotalProbability)
{
    QubitNoise qn;
    qn.readout_p01 = 0.03;
    qn.readout_p10 = 0.05;
    NoiseModel model(3, qn);
    std::vector<double> probs(8, 0.125);
    auto out = model.applyReadoutError(probs);
    double total = 0.0;
    for (double p : out)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Readout, NoErrorIsIdentity)
{
    NoiseModel model(2, QubitNoise{});
    std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
    auto out = model.applyReadoutError(probs);
    for (size_t i = 0; i < probs.size(); ++i)
        EXPECT_NEAR(out[i], probs[i], 1e-12);
}

TEST(NoiseModel, DisabledModelPassesThrough)
{
    NoiseModel model;
    EXPECT_FALSE(model.enabled());
    std::vector<double> probs = {0.5, 0.5};
    auto out = model.applyReadoutError(probs);
    EXPECT_EQ(out, probs);
}

} // namespace
} // namespace qiset
